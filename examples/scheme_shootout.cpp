/**
 * @file
 * Scheme shootout: compare arbitrary Table 2 scheme names on chosen
 * benchmarks from the command line.
 *
 * Usage:
 *   scheme_shootout [--budget N] [--bench name]... scheme...
 *
 * Example:
 *   scheme_shootout --bench gcc --bench li \
 *       "AT(AHRT(512,12SR),PT(2^12,A2),)" "LS(AHRT(512,A2),,)" BTFN
 *
 * With no schemes given, a representative set from the paper's
 * Figure 10 is used; with no benchmarks given, all nine run.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/figure_runner.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    using namespace tlat;

    std::uint64_t budget = 100000;
    std::vector<std::string> benchmarks;
    std::vector<std::string> schemes;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--budget" && i + 1 < argc) {
            budget = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--bench" && i + 1 < argc) {
            benchmarks.emplace_back(argv[++i]);
        } else if (arg == "--help") {
            std::cout << "usage: scheme_shootout [--budget N] "
                         "[--bench name]... scheme...\n";
            return 0;
        } else {
            schemes.push_back(arg);
        }
    }

    if (schemes.empty()) {
        schemes = {
            "AT(AHRT(512,12SR),PT(2^12,A2),)",
            "ST(AHRT(512,12SR),PT(2^12,PB),Same)",
            "LS(AHRT(512,A2),,)",
            "LS(AHRT(512,LT),,)",
            "Profile",
            "BTFN",
            "AlwaysTaken",
        };
    }

    harness::BenchmarkSuite suite(budget);
    harness::AccuracyReport report =
        harness::runSchemes(suite, "scheme shootout", schemes);

    if (benchmarks.empty()) {
        report.print(std::cout);
    } else {
        // Narrow printout for the selected benchmarks.
        for (const std::string &benchmark : benchmarks) {
            std::cout << benchmark << ":\n";
            for (const std::string &scheme : report.schemes()) {
                const double value = report.cell(benchmark, scheme);
                std::cout << "  " << scheme << "  ";
                if (value < 0)
                    std::cout << "-";
                else
                    std::cout << value << " %";
                std::cout << '\n';
            }
        }
    }
    return 0;
}
