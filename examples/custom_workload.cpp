/**
 * @file
 * Workload authoring walkthrough: build a new micro88 benchmark with
 * the ProgramBuilder API, characterize it, and see how each predictor
 * family handles it.
 *
 * The program is a small hash-join: build a hash table from one
 * relation, probe it with another. It is built in two variants that
 * teach the fundamental lesson of branch prediction:
 *
 *  - "uniform": every probe key is an independent random draw. The
 *    hit/miss branch outcome is i.i.d. coin-flipping — NO history
 *    scheme can beat the bias, and the profile bit wins.
 *  - "clustered": each probe key repeats four times (hot keys, as in
 *    real joins). Outcomes now come in runs; pattern history learns
 *    the run structure and two-level prediction pulls ahead of the
 *    per-branch counters.
 *
 * Prediction is the exploitation of repetition; this example lets
 * you watch it appear and disappear.
 *
 * Usage: custom_workload [budget]
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "isa/program.hh"
#include "predictors/scheme_factory.hh"
#include "sim/simulator.hh"
#include "trace/trace_stats.hh"
#include "util/table_printer.hh"
#include "workloads/emit_helpers.hh" // LcgEmitter, emitFillLoop

namespace
{

using namespace tlat;
using workloads::Label;
using workloads::LcgEmitter;

/** Builds the hash-join benchmark. */
isa::Program
buildHashJoin(bool clustered)
{
    isa::ProgramBuilder b(clustered ? "hashjoin-clustered"
                                    : "hashjoin-uniform");
    LcgEmitter lcg(b, 0x704a57);

    constexpr std::int64_t kBuckets = 64;     // power of two
    constexpr std::int64_t kBuildRows = 40;   // load factor < 1!
    constexpr std::int64_t kProbeRows = 512;

    // Open-addressed table: key slots (0 = empty).
    const std::uint64_t table = b.bss(kBuckets);
    const std::uint64_t matches = b.data({0});

    // r19 = table base, r21 = bucket mask, r25 = &matches.
    b.loadImm(19, static_cast<std::int64_t>(table));
    b.loadImm(21, kBuckets - 1);
    b.loadImm(25, static_cast<std::int64_t>(matches));

    // Clear the table: data memory persists across restart-on-halt
    // passes, and a table that keeps last pass's keys would overflow.
    workloads::emitFillLoop(b, table, kBuckets, 0);

    // ---- build phase: insert kBuildRows keys with linear probing.
    b.li(4, 0);
    Label build = b.newLabel();
    b.bind(build);
    lcg.emitNextBelowPow2(b, 7, 8, 1 << 12); // key, 12 bits
    b.ori(7, 7, 1);                          // keys are non-zero
    b.and_(5, 7, 21);                        // slot = key & mask
    Label probe_slot = b.newLabel();
    Label insert = b.newLabel();
    b.bind(probe_slot);
    b.slli(1, 5, 3);
    b.add(1, 1, 19);
    b.ld(2, 1, 0);
    b.beq(2, 0, insert);  // empty slot found
    b.addi(5, 5, 1);      // collision: linear probe (short loop)
    b.and_(5, 5, 21);
    b.jmp(probe_slot);
    b.bind(insert);
    b.st(1, 7, 0);
    b.addi(4, 4, 1);
    b.li(1, kBuildRows);
    b.blt(4, 1, build);

    // ---- probe phase: look up kProbeRows keys; ~50% hit.
    b.li(4, 0);
    b.li(9, 1); // previous probe key (clustered variant)
    Label probe = b.newLabel();
    b.bind(probe);
    if (clustered) {
        // Repeat each key four times: draw fresh only when
        // (i & 3) == 0, the hot-key locality of real joins.
        Label fresh = b.newLabel();
        Label have_key = b.newLabel();
        b.andi(1, 4, 3);
        b.beq(1, 0, fresh);
        b.mov(7, 9);
        b.jmp(have_key);
        b.bind(fresh);
        lcg.emitNextBelowPow2(b, 7, 8, 1 << 12);
        b.ori(7, 7, 1);
        b.mov(9, 7);
        b.bind(have_key);
    } else {
        lcg.emitNextBelowPow2(b, 7, 8, 1 << 12);
        b.ori(7, 7, 1);
    }
    b.and_(5, 7, 21);
    b.li(6, 0); // probe length bound
    Label chase = b.newLabel();
    Label hit = b.newLabel();
    Label miss = b.newLabel();
    Label next = b.newLabel();
    b.bind(chase);
    b.slli(1, 5, 3);
    b.add(1, 1, 19);
    b.ld(2, 1, 0);
    b.beq(2, 0, miss);  // empty slot: key absent
    b.beq(2, 7, hit);   // found
    b.addi(5, 5, 1);
    b.and_(5, 5, 21);
    b.addi(6, 6, 1);
    b.li(1, static_cast<std::int32_t>(kBuckets));
    b.blt(6, 1, chase);
    b.jmp(miss);
    b.bind(hit);
    b.ld(2, 25, 0); // matches++
    b.addi(2, 2, 1);
    b.st(25, 2, 0);
    b.bind(miss);
    b.bind(next);
    b.addi(4, 4, 1);
    b.li(1, kProbeRows);
    b.blt(4, 1, probe);

    b.halt();
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t budget =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

    const trace::TraceBuffer uniform =
        sim::collectTrace(buildHashJoin(false), budget);
    const trace::TraceBuffer clustered =
        sim::collectTrace(buildHashJoin(true), budget);

    for (const auto *trace : {&uniform, &clustered}) {
        const trace::TraceStats stats = trace::computeStats(*trace);
        std::cout << trace->name() << ": "
                  << stats.staticConditionalBranches
                  << " static conditional branches, "
                  << 100.0 * stats.takenFraction() << " % taken\n";
    }
    std::cout << "\n";

    TablePrinter table("prediction accuracy (percent)");
    table.setHeader({"scheme", "uniform keys", "clustered keys"});
    for (const char *scheme : {
             "AT(AHRT(512,12SR),PT(2^12,A2),)",
             "ST(AHRT(512,12SR),PT(2^12,PB),Same)",
             "LS(AHRT(512,A2),,)",
             "Profile",
             "BTFN",
             "AlwaysTaken",
         }) {
        auto predictor = predictors::makePredictor(scheme);
        const auto on_uniform =
            harness::runExperiment(*predictor, uniform);
        const auto on_clustered =
            harness::runExperiment(*predictor, clustered);
        table.addRow(
            {scheme,
             TablePrinter::percentCell(
                 on_uniform.accuracy.accuracyPercent()),
             TablePrinter::percentCell(
                 on_clustered.accuracy.accuracyPercent())});
    }
    table.print(std::cout);
    std::cout
        << "Uniform random probes are unpredictable for every "
           "history scheme;\nclustered probes restore repetition — "
           "and pattern history exploits it best.\n";
    return 0;
}
