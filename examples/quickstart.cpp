/**
 * @file
 * Quickstart: build a Two-Level Adaptive Training predictor with the
 * paper's flagship configuration — AT(AHRT(512,12SR),PT(2^12,A2)) —
 * and measure it on a generated benchmark trace.
 *
 * Usage: quickstart [benchmark] [branch-budget]
 */

#include <cstdlib>
#include <iostream>

#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace tlat;

    const std::string benchmark = argc > 1 ? argv[1] : "eqntott";
    const std::uint64_t budget =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

    // 1. Build the workload program and trace it with the micro88
    //    instruction-level simulator.
    const auto workload = workloads::makeWorkload(benchmark);
    const isa::Program program = workload->buildTest();
    const trace::TraceBuffer trace =
        sim::collectTrace(program, budget);
    std::cout << "traced " << trace.size() << " branches ("
              << trace.conditionalCount() << " conditional) of '"
              << benchmark << "'\n";

    // 2. Configure the paper's flagship predictor: 512-entry 4-way
    //    associative HRT, 12-bit history registers, A2 automata.
    core::TwoLevelConfig config;
    config.hrtKind = core::TableKind::Associative;
    config.hrtEntries = 512;
    config.historyBits = 12;
    config.automaton = core::AutomatonKind::A2;
    core::TwoLevelPredictor predictor(config);

    // 3. Measure: predict + verify + update per conditional branch.
    const AccuracyCounter accuracy =
        harness::measure(predictor, trace);

    std::cout << predictor.name() << "\n"
              << "  accuracy:  " << accuracy.accuracyPercent()
              << " %\n"
              << "  miss rate: " << accuracy.missPercent() << " %\n"
              << "  HRT hit ratio: "
              << predictor.hrtStats().hitRatio() * 100.0 << " %\n";
    return 0;
}
