/**
 * @file
 * Custom predictor example: the library's BranchPredictor interface is
 * open — this example implements GAg-style *global*-history two-level
 * prediction (a single shared history register instead of the paper's
 * per-address registers, in later literature the paper's design is
 * "PAg" and this one "GAg") and compares both on a benchmark.
 *
 * It also shows the automaton framework directly by simulating a
 * hand-rolled pattern sequence through each of the five automata.
 *
 * Usage: custom_automaton [benchmark]
 */

#include <iostream>

#include "core/automaton.hh"
#include "core/pattern_table.hh"
#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace
{

using namespace tlat;

/** Two-level prediction with one global history register (GAg). */
class GlobalHistoryPredictor : public core::BranchPredictor
{
  public:
    GlobalHistoryPredictor(unsigned history_bits,
                           core::AutomatonKind kind)
        : history_bits_(history_bits),
          mask_((1u << history_bits) - 1), history_(mask_),
          table_(history_bits, kind)
    {
    }

    std::string
    name() const override
    {
        return "GAg(" + std::to_string(history_bits_) + "," +
               core::automatonName(table_.automatonKind()) + ")";
    }

    bool
    predict(const trace::BranchRecord &) override
    {
        return table_.predict(history_);
    }

    void
    update(const trace::BranchRecord &record) override
    {
        table_.update(history_, record.taken);
        history_ =
            ((history_ << 1) | (record.taken ? 1u : 0u)) & mask_;
    }

    void
    reset() override
    {
        history_ = mask_;
        table_.reset();
    }

  private:
    unsigned history_bits_;
    std::uint32_t mask_;
    std::uint32_t history_;
    core::PatternTable table_;
};

void
traceAutomata()
{
    // Feed the classic loop pattern T T T N through every automaton
    // and print the prediction it settles on.
    const bool outcomes[] = {true, true, true, false};
    std::cout << "automaton behaviour on repeating T T T N:\n";
    for (unsigned k = 0;
         k < static_cast<unsigned>(core::AutomatonKind::NumKinds);
         ++k) {
        const auto kind = static_cast<core::AutomatonKind>(k);
        core::Automaton automaton(kind);
        unsigned correct = 0;
        unsigned total = 0;
        for (int pass = 0; pass < 64; ++pass) {
            for (bool outcome : outcomes) {
                if (automaton.predict() == outcome)
                    ++correct;
                ++total;
                automaton.update(outcome);
            }
        }
        std::cout << "  " << core::automatonName(kind) << ": "
                  << 100.0 * correct / total << " % correct\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "gcc";

    traceAutomata();

    const auto workload = workloads::makeWorkload(benchmark);
    const trace::TraceBuffer trace =
        sim::collectTrace(workload->buildTest(), 100000);

    core::TwoLevelConfig config;
    config.hrtKind = core::TableKind::Ideal;
    config.historyBits = 12;
    core::TwoLevelPredictor per_address(config);

    GlobalHistoryPredictor global(12, core::AutomatonKind::A2);

    std::cout << "\n" << benchmark << " (100k conditional branches):\n";
    for (core::BranchPredictor *predictor :
         {static_cast<core::BranchPredictor *>(&per_address),
          static_cast<core::BranchPredictor *>(&global)}) {
        const AccuracyCounter accuracy =
            harness::measure(*predictor, trace);
        std::cout << "  " << predictor->name() << ": "
                  << accuracy.accuracyPercent() << " %\n";
    }
    std::cout << "\nPer-address history (the paper's design) usually "
                 "wins at equal history length;\nglobal history "
                 "needs longer registers to separate branches.\n";
    return 0;
}
