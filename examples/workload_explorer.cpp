/**
 * @file
 * Workload explorer: generates each benchmark's trace and prints the
 * workload-characterization statistics of the paper's methodology
 * section — dynamic instruction mix (Figure 3), branch-class mix
 * (Figure 4), static conditional branch census (Table 1), and the
 * overall taken rate (~60% in the paper).
 *
 * Usage: workload_explorer [branch-budget]
 */

#include <cstdlib>
#include <iostream>

#include "sim/simulator.hh"
#include "trace/trace_stats.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace tlat;

    const std::uint64_t budget =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

    TablePrinter table("workload characterization (per-benchmark)");
    table.setHeader({"benchmark", "data set", "dyn instr", "branch %",
                     "cond %", "ret %", "uncond %", "static cond",
                     "taken %"});

    for (const std::string &name : workloads::workloadNames()) {
        const auto workload = workloads::makeWorkload(name);
        const isa::Program program = workload->buildTest();
        const trace::TraceBuffer buffer =
            sim::collectTrace(program, budget);
        const trace::TraceStats stats = trace::computeStats(buffer);

        const double uncond_pct =
            (stats.classFraction(
                 trace::BranchClass::ImmediateUnconditional) +
             stats.classFraction(
                 trace::BranchClass::RegisterUnconditional)) *
            100.0;
        table.addRow({
            name,
            workload->testSet(),
            std::to_string(stats.mix.total()),
            TablePrinter::percentCell(stats.mix.branchFraction() *
                                      100.0),
            TablePrinter::percentCell(
                stats.classFraction(trace::BranchClass::Conditional) *
                100.0),
            TablePrinter::percentCell(
                stats.classFraction(trace::BranchClass::Return) *
                100.0),
            TablePrinter::percentCell(uncond_pct),
            std::to_string(stats.staticConditionalBranches),
            TablePrinter::percentCell(stats.takenFraction() * 100.0),
        });
    }
    table.print(std::cout);
    return 0;
}
