/**
 * @file
 * Pipeline model: turns miss rates into performance, the paper's
 * motivation ("a prediction miss requires flushing of the speculative
 * execution already in progress").
 *
 * A simple deep-pipeline CPI model:
 *
 *   CPI = CPI_base + branch_fraction * miss_rate * flush_penalty
 *
 * evaluated for the Two-Level Adaptive Training predictor and the
 * best conventional scheme, sweeping the flush penalty (pipeline
 * depth). Prints the speedup AT buys at each depth.
 *
 * Usage: pipeline_model [benchmark] [budget]
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "predictors/scheme_factory.hh"
#include "sim/simulator.hh"
#include "trace/trace_stats.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace tlat;
    const std::string benchmark = argc > 1 ? argv[1] : "gcc";
    const std::uint64_t budget =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    const auto workload = workloads::makeWorkload(benchmark);
    const trace::TraceBuffer trace =
        sim::collectTrace(workload->buildTest(), budget);
    const trace::TraceStats stats = trace::computeStats(trace);

    // Fraction of dynamic instructions that are conditional branches.
    const double cond_fraction =
        trace.mix().branchFraction() *
        stats.classFraction(trace::BranchClass::Conditional);

    const auto miss_rate = [&trace](const std::string &scheme) {
        auto predictor = predictors::makePredictor(scheme);
        const auto result = harness::runExperiment(*predictor, trace);
        return result.accuracy.missPercent() / 100.0;
    };
    const double at_miss =
        miss_rate("AT(AHRT(512,12SR),PT(2^12,A2),)");
    const double ls_miss = miss_rate("LS(AHRT(512,A2),,)");

    std::cout << benchmark << ": conditional branches are "
              << 100.0 * cond_fraction
              << " % of dynamic instructions\n"
              << "miss rates: AT " << 100.0 * at_miss << " %, BTB "
              << 100.0 * ls_miss << " %\n\n";

    TablePrinter table(
        "CPI and speedup vs flush penalty (CPI_base = 1.0)");
    table.setHeader({"flush penalty (cycles)", "CPI with BTB",
                     "CPI with AT", "AT speedup %"});
    for (const int penalty : {2, 4, 8, 12, 16, 24}) {
        const double cpi_ls =
            1.0 + cond_fraction * ls_miss * penalty;
        const double cpi_at =
            1.0 + cond_fraction * at_miss * penalty;
        table.addRow({std::to_string(penalty),
                      TablePrinter::percentCell(cpi_ls),
                      TablePrinter::percentCell(cpi_at),
                      TablePrinter::percentCell(
                          (cpi_ls / cpi_at - 1.0) * 100.0)});
    }
    table.print(std::cout);

    std::cout
        << "The deeper the pipeline, the more the halved miss rate "
           "matters —\nexactly the trend that motivated the paper.\n";
    return 0;
}
