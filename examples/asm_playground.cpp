/**
 * @file
 * Assembler playground: write micro88 assembly, run it, and watch how
 * different predictors handle each static branch.
 *
 * The built-in program is a nested loop with one data-dependent
 * branch; pass a file path to assemble your own program instead.
 *
 * Usage: asm_playground [program.s]
 */

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "core/two_level_predictor.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "predictors/lee_smith_btb.hh"
#include "sim/simulator.hh"

namespace
{

const char *kDefaultProgram = R"(
# Nested loop with a data-dependent branch: the inner branch
# alternates in a period-3 pattern that defeats a plain 2-bit
# counter but is trivially captured by pattern history.
        li   r1, 0          # outer counter
outer:
        li   r2, 0          # inner counter
inner:
        # data-dependent: taken when (r1 + r2) % 3 != 0
        add  r3, r1, r2
        li   r4, 3
        rem  r3, r3, r4
        beq  r3, r0, skip
        addi r5, r5, 1
skip:
        addi r2, r2, 1
        li   r4, 6
        blt  r2, r4, inner
        addi r1, r1, 1
        li   r4, 2000
        blt  r1, r4, outer
        halt
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace tlat;

    std::string source = kDefaultProgram;
    if (argc > 1) {
        std::ifstream file(argv[1]);
        if (!file) {
            std::cerr << "cannot open " << argv[1] << '\n';
            return 1;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        source = buffer.str();
    }

    const isa::Program program =
        isa::assembleOrDie(source, "playground");
    std::cout << isa::disassemble(program) << '\n';

    const trace::TraceBuffer trace = sim::collectTrace(program, 0);
    std::cout << "executed: " << trace.conditionalCount()
              << " conditional branches\n\n";

    core::TwoLevelConfig at_config;
    at_config.hrtKind = core::TableKind::Ideal;
    at_config.historyBits = 8;
    core::TwoLevelPredictor at(at_config);

    predictors::LeeSmithConfig ls_config;
    ls_config.tableKind = core::TableKind::Ideal;
    predictors::LeeSmithPredictor ls(ls_config);

    for (core::BranchPredictor *predictor :
         {static_cast<core::BranchPredictor *>(&at),
          static_cast<core::BranchPredictor *>(&ls)}) {
        // Per-branch accuracy breakdown.
        std::map<std::uint64_t, std::pair<std::uint64_t,
                                          std::uint64_t>> per_pc;
        for (const trace::BranchRecord &record : trace.records()) {
            if (record.cls != trace::BranchClass::Conditional)
                continue;
            const bool correct =
                predictor->predict(record) == record.taken;
            auto &[hits, total] = per_pc[record.pc];
            hits += correct ? 1 : 0;
            ++total;
            predictor->update(record);
        }

        std::cout << predictor->name() << ":\n";
        std::uint64_t hits = 0;
        std::uint64_t total = 0;
        for (const auto &[pc, counts] : per_pc) {
            std::cout << "  branch @" << pc / 4 << ": "
                      << 100.0 * counts.first / counts.second
                      << " % over " << counts.second
                      << " executions\n";
            hits += counts.first;
            total += counts.second;
        }
        std::cout << "  overall: " << 100.0 * hits / total << " %\n\n";
    }
    return 0;
}
