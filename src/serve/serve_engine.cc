#include "serve_engine.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "predictors/scheme_factory.hh"
#include "trace/predecode.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace tlat::serve
{

namespace
{

/**
 * Pending-batch size from which building a per-batch predecoded SoA
 * view pays for itself. Below it the fused AoS span path runs; the
 * two are bit-identical by the simulateBatch contract, so the
 * threshold is pure performance shape and cannot affect results.
 */
constexpr std::size_t kSoaBatchFloor = 16;

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** FNV-1a over the tenant name — the stable shard placement rule. */
std::uint64_t
nameHash(const std::string &name)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

std::string
ServeConfig::validate() const
{
    if (shards == 0)
        return "shards must be >= 1";
    if (batchRecords == 0)
        return "batchRecords must be >= 1";
    if (!SpscRing<int>::validCapacity(ringCapacity))
        return "ringCapacity must be a power of two >= 2";
    return {};
}

/**
 * Per-tenant serving state. Ownership protocol: the control thread
 * creates a tenant and from then on touches these fields only while
 * the engine is drained; between ingest() and drain() every field
 * below the predictor is written exclusively by the tenant's shard
 * worker, which reaches the tenant through the ring's Item::tenant
 * pointer (the ring's release/acquire pair is the visibility edge —
 * see spsc_ring.hh).
 */
struct ServeEngine::Tenant
{
    std::string name;
    /** Routing target for *subsequent* ingests (control thread). */
    unsigned shard = 0;
    std::unique_ptr<core::BranchPredictor> predictor;
    /** Conditional tally, worker-owned between drains. */
    AccuracyCounter accuracy;
    /** Records ingested, all classes, worker-owned. */
    std::uint64_t records = 0;
    /** Conditionals awaiting the next micro-batch flush. */
    std::vector<trace::BranchRecord> pending;
    /** Enqueue timestamps of pending[], latency tracking only. */
    std::vector<std::uint64_t> pendingNs;
};

/**
 * Per-shard state. The ring carries records in; `completed` carries
 * progress out (published with release by the worker, observed with
 * acquire by drain() — the edge that makes every tenant field the
 * worker wrote visible to the control thread). Everything else is
 * single-side-owned: `pushed` by the ingest thread, the rest by the
 * shard worker.
 */
struct ServeEngine::Shard
{
    explicit Shard(std::size_t capacity) : ring(capacity) {}

    SpscRing<Item> ring;
    /** Records applied (flushed into a predictor); worker publishes. */
    PaddedAtomicU64 completed;
    /** Latch: nonzero after a worker exception (error has details). */
    PaddedAtomicU64 failed;
    /** Written by the worker before failed is published. */
    std::string error;

    /** Records pushed to this ring; ingest-thread-owned. */
    std::uint64_t pushed = 0;

    // Worker-owned fields (no locks: one consumer per ring).
    std::uint64_t popped = 0;
    std::uint64_t applied = 0;
    /** Tenants with a non-empty pending batch since the last idle
     *  flush (may hold duplicates; empty batches are skipped). */
    std::vector<Tenant *> dirtyTenants;
    /** Enqueue->applied samples, ns; harvested after drain(). */
    std::vector<std::uint64_t> latenciesNs;
};

ServeEngine::ServeEngine(const core::SchemeConfig &scheme,
                         const ServeConfig &config)
    : scheme_(scheme), scheme_text_(scheme.text()), config_(config),
      pool_(config.shards)
{
    const std::string why = config.validate();
    tlat_assert(why.empty(), "bad ServeConfig: ", why);
    // Profile-guided schemes need a training trace before measuring;
    // a live stream has none, so they cannot be served.
    tlat_assert(!predictors::makePredictor(scheme_)->needsTraining(),
                "scheme '", scheme_text_,
                "' requires profile training and cannot be served");
    shards_.reserve(config_.shards);
    for (unsigned i = 0; i < config_.shards; ++i)
        shards_.push_back(
            std::make_unique<Shard>(config_.ringCapacity));
    workers_.reserve(config_.shards);
    for (unsigned i = 0; i < config_.shards; ++i) {
        Shard *shard = shards_[i].get();
        workers_.push_back(
            pool_.submit([this, shard] { shardLoop(*shard); }));
    }
}

ServeEngine::~ServeEngine()
{
    for (const auto &shard : shards_)
        shard->ring.close();
    // pool_ (declared last) joins the shard loops on destruction;
    // waiting here keeps exceptions from escaping the destructor
    // (they were already latched into Shard::failed).
    for (std::future<void> &worker : workers_)
        worker.wait();
}

std::size_t
ServeEngine::addTenant(const std::string &name)
{
    return addTenant(name,
                     static_cast<unsigned>(nameHash(name) %
                                           config_.shards));
}

std::size_t
ServeEngine::addTenant(const std::string &name, unsigned shard)
{
    tlat_assert(shard < config_.shards, "tenant shard out of range");
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    tenant->shard = shard;
    tenant->predictor = predictors::makePredictor(scheme_);
    tenant->predictor->reset();
    const util::MutexLock lock(registry_mutex_);
    tenants_.push_back(std::move(tenant));
    return tenants_.size() - 1;
}

std::size_t
ServeEngine::tenantCount() const
{
    const util::MutexLock lock(registry_mutex_);
    return tenants_.size();
}

unsigned
ServeEngine::tenantShard(std::size_t tenant) const
{
    const util::MutexLock lock(registry_mutex_);
    tlat_assert(tenant < tenants_.size(), "bad tenant handle");
    return tenants_[tenant]->shard;
}

void
ServeEngine::ingest(std::size_t tenant,
                    const trace::BranchRecord &record)
{
    ingestSpan(tenant, {&record, 1});
}

void
ServeEngine::ingestSpan(std::size_t tenant,
                        std::span<const trace::BranchRecord> records)
{
    if (records.empty())
        return;
    Tenant *t;
    {
        const util::MutexLock lock(registry_mutex_);
        tlat_assert(tenant < tenants_.size(), "bad tenant handle");
        t = tenants_[tenant].get();
    }
    Shard &shard = *shards_[t->shard];
    drained_ = false;
    for (const trace::BranchRecord &record : records) {
        Item item;
        item.tenant = t;
        item.record = record;
        item.enqueueNs =
            config_.trackLatency ? steadyNowNs() : 0;
        // Backpressure: a full ring means the shard worker is the
        // bottleneck; yield until it frees a slot rather than grow
        // an unbounded queue.
        while (!shard.ring.tryPush(item))
            std::this_thread::yield();
        ++shard.pushed;
    }
}

void
ServeEngine::drain()
{
    for (const auto &shard : shards_) {
        // `pushed` is ours (ingest thread); `completed` is the
        // worker's release-published progress. Equality plus the
        // acquire load gives the happens-before edge that makes all
        // tenant state written by the worker readable here.
        while (shard->completed.observe() != shard->pushed) {
            if (shard->failed.observe() != 0)
                break;
            std::this_thread::yield();
        }
    }
    for (const auto &shard : shards_) {
        if (shard->failed.observe() != 0)
            throw std::runtime_error("serve shard worker failed: " +
                                     shard->error);
    }
    drained_ = true;
}

void
ServeEngine::requireDrained(const char *op) const
{
    tlat_assert(drained_, op,
                " requires a drained engine (call drain() first)");
}

void
ServeEngine::shardLoop(Shard &shard)
{
    try {
        Item item;
        for (;;) {
            while (shard.ring.tryPop(item))
                applyItem(shard, item);
            // Ring momentarily empty: flush every pending batch so
            // progress (and per-record latency) is bounded by the
            // poll interval, then publish.
            for (Tenant *tenant : shard.dirtyTenants)
                flushTenant(shard, *tenant);
            shard.dirtyTenants.clear();
            shard.completed.publish(shard.applied);
            if (shard.ring.closed()) {
                // close() is release-published after the final push;
                // one more pop round after observing it catches any
                // records that raced the close.
                if (shard.ring.tryPop(item)) {
                    applyItem(shard, item);
                    continue;
                }
                return;
            }
            std::this_thread::yield();
        }
    } catch (const std::exception &error) {
        shard.error = error.what();
    } catch (...) {
        shard.error = "unknown exception";
    }
    // Failure path: latch the error, then keep the ring draining
    // (discarding) so the producer's backpressure loop and drain()
    // terminate instead of spinning forever.
    shard.applied = shard.popped;
    shard.completed.publish(shard.applied);
    shard.failed.publish(1);
    Item item;
    for (;;) {
        while (shard.ring.tryPop(item)) {
            ++shard.popped;
            shard.applied = shard.popped;
        }
        shard.completed.publish(shard.applied);
        if (shard.ring.closed()) {
            while (shard.ring.tryPop(item)) {
                ++shard.popped;
                shard.applied = shard.popped;
            }
            shard.completed.publish(shard.applied);
            return;
        }
        std::this_thread::yield();
    }
}

void
ServeEngine::applyItem(Shard &shard, const Item &item)
{
    Tenant &tenant = *item.tenant;
    ++shard.popped;
    ++tenant.records;
    if (item.record.cls != trace::BranchClass::Conditional) {
        // Non-conditional classes carry no predictor work (exactly
        // like the offline measuring loop): applied immediately.
        ++shard.applied;
        if (config_.trackLatency)
            shard.latenciesNs.push_back(steadyNowNs() -
                                        item.enqueueNs);
        return;
    }
    if (tenant.pending.empty())
        shard.dirtyTenants.push_back(&tenant);
    tenant.pending.push_back(item.record);
    if (config_.trackLatency)
        tenant.pendingNs.push_back(item.enqueueNs);
    if (tenant.pending.size() >= config_.batchRecords) {
        flushTenant(shard, tenant);
        shard.completed.publish(shard.applied);
    }
}

void
ServeEngine::flushTenant(Shard &shard, Tenant &tenant)
{
    const std::span<const trace::BranchRecord> batch(tenant.pending);
    if (batch.empty())
        return;
    // The micro-batch rides the same fused simulateBatch fast paths
    // as the offline sweep engine; batch boundaries cannot affect
    // results (the chunk-identity contract), so the SoA build is
    // gated purely on amortization.
    if (batch.size() >= kSoaBatchFloor) {
        auto soa =
            std::make_shared<const trace::PredecodedTrace>(batch);
        tenant.predictor->simulateBatch(
            trace::PredecodedView(batch, std::move(soa)),
            tenant.accuracy);
    } else {
        tenant.predictor->simulateBatch(batch, tenant.accuracy);
    }
    shard.applied += batch.size();
    if (config_.trackLatency) {
        const std::uint64_t now = steadyNowNs();
        for (const std::uint64_t enqueued : tenant.pendingNs)
            shard.latenciesNs.push_back(now - enqueued);
    }
    tenant.pending.clear();
    tenant.pendingNs.clear();
}

bool
ServeEngine::snapshotTenant(std::size_t tenant,
                            std::string *bytes) const
{
    requireDrained("snapshotTenant");
    const util::MutexLock lock(registry_mutex_);
    tlat_assert(tenant < tenants_.size(), "bad tenant handle");
    std::ostringstream os(std::ios::binary);
    if (!tenants_[tenant]->predictor->saveCheckpoint(os))
        return false;
    if (bytes != nullptr)
        *bytes = os.str();
    return true;
}

bool
ServeEngine::restoreTenant(std::size_t tenant,
                           const std::string &bytes)
{
    requireDrained("restoreTenant");
    const util::MutexLock lock(registry_mutex_);
    tlat_assert(tenant < tenants_.size(), "bad tenant handle");
    std::istringstream is(bytes, std::ios::binary);
    return tenants_[tenant]->predictor->loadCheckpoint(is);
}

bool
ServeEngine::migrateTenant(std::size_t tenant, unsigned new_shard)
{
    requireDrained("migrateTenant");
    tlat_assert(new_shard < config_.shards,
                "tenant shard out of range");
    const util::MutexLock lock(registry_mutex_);
    tlat_assert(tenant < tenants_.size(), "bad tenant handle");
    Tenant &t = *tenants_[tenant];
    // Migrate *through the checkpoint format*: the moved tenant's
    // warm state is exactly what a snapshot carries, proving
    // snapshot/restore completeness on every migration. Schemes
    // without checkpoint support keep their live predictor object.
    std::ostringstream os(std::ios::binary);
    if (t.predictor->saveCheckpoint(os)) {
        auto fresh = predictors::makePredictor(scheme_);
        fresh->reset();
        std::istringstream is(os.str(), std::ios::binary);
        if (!fresh->loadCheckpoint(is))
            return false;
        t.predictor = std::move(fresh);
    }
    t.shard = new_shard;
    return true;
}

TenantReport
ServeEngine::tenantReport(std::size_t tenant) const
{
    requireDrained("tenantReport");
    const util::MutexLock lock(registry_mutex_);
    tlat_assert(tenant < tenants_.size(), "bad tenant handle");
    const Tenant &t = *tenants_[tenant];
    TenantReport report;
    report.name = t.name;
    report.records = t.records;
    report.accuracy = t.accuracy;
    t.predictor->collectMetrics(report.metrics);
    return report;
}

void
ServeEngine::writeTenantJson(JsonWriter &json,
                             const TenantReport &report)
{
    json.beginObject();
    json.member("tenant", report.name);
    json.member("records", report.records);
    json.key("accuracy").beginObject();
    json.member("conditional_branches", report.accuracy.total());
    json.member("hits", report.accuracy.hits());
    json.member("misses", report.accuracy.misses());
    json.member("accuracy_percent",
                report.accuracy.accuracyPercent());
    json.member("miss_percent", report.accuracy.missPercent());
    json.endObject();
    // The predictor block mirrors the run-metrics document's key
    // layout so consumers share one reader for both schemas.
    const core::RunMetrics &m = report.metrics;
    json.key("predictor").beginObject();
    json.key("hrt").beginObject();
    json.member("hits", m.hrtHits);
    json.member("misses", m.hrtMisses);
    json.member("hit_ratio", m.hrtHitRatio());
    json.member("evictions", m.hrtEvictions);
    json.member("aliased_lookups", m.hrtAliasedLookups);
    json.endObject();
    json.key("pattern_table").beginObject();
    json.key("state_histogram").beginArray();
    for (const std::uint64_t count : m.ptStateHistogram)
        json.value(count);
    json.endArray();
    json.endObject();
    json.key("speculation").beginObject();
    json.member("squash_events", m.squashEvents);
    json.member("squashed_speculations", m.squashedSpeculations);
    json.member("in_flight_branches", m.inFlightBranches);
    json.endObject();
    json.key("combining").beginObject();
    json.member("present", m.combPresent);
    json.member("component_a", m.combComponentA);
    json.member("component_b", m.combComponentB);
    json.member("correct_a", m.combCorrectA);
    json.member("correct_b", m.combCorrectB);
    json.member("disagreements", m.combDisagreements);
    json.member("overrides_a", m.combOverridesA);
    json.member("overrides_b", m.combOverridesB);
    json.member("chooser_flips", m.combChooserFlips);
    json.endObject();
    json.endObject();
    json.endObject();
}

void
ServeEngine::writeMetricsJson(std::ostream &os) const
{
    requireDrained("writeMetricsJson");
    // Collect first (tenantReport locks per call), then emit in
    // name order: the document must not depend on registration
    // order, shard placement or batch size.
    std::vector<TenantReport> reports;
    const std::size_t count = tenantCount();
    reports.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        reports.push_back(tenantReport(i));
    std::sort(reports.begin(), reports.end(),
              [](const TenantReport &a, const TenantReport &b) {
                  return a.name < b.name;
              });

    std::uint64_t total_records = 0;
    AccuracyCounter totals;
    for (const TenantReport &report : reports) {
        total_records += report.records;
        totals.merge(report.accuracy);
    }

    JsonWriter json(os);
    json.beginObject();
    json.member("schema", kServeMetricsSchema);
    json.member("scheme", scheme_text_);
    json.key("totals").beginObject();
    json.member("tenants",
                static_cast<std::uint64_t>(reports.size()));
    json.member("records", total_records);
    json.member("conditional_branches", totals.total());
    json.member("hits", totals.hits());
    json.member("misses", totals.misses());
    json.endObject();
    json.key("tenants").beginArray();
    for (const TenantReport &report : reports)
        writeTenantJson(json, report);
    json.endArray();
    json.endObject();
    os << "\n";
}

std::string
ServeEngine::metricsJsonString() const
{
    std::ostringstream os;
    writeMetricsJson(os);
    return os.str();
}

std::vector<std::uint64_t>
ServeEngine::takeLatenciesNs()
{
    requireDrained("takeLatenciesNs");
    std::vector<std::uint64_t> all;
    for (const auto &shard : shards_) {
        all.insert(all.end(), shard->latenciesNs.begin(),
                   shard->latenciesNs.end());
        shard->latenciesNs.clear();
    }
    return all;
}

} // namespace tlat::serve
