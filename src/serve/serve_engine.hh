/**
 * @file
 * Sharded multi-tenant streaming prediction engine — the library
 * behind `tlat serve`.
 *
 * The scenario (ROADMAP item 2): thousands of independent branch
 * streams ("tenants"), each with its own warm predictor and
 * RunMetrics, served by one long-running process. Parallelism here
 * is *across tenants*, not across sweep cells: tenants are assigned
 * to shards, each shard owns one worker thread on the engine's
 * util::ThreadPool and one lock-free SPSC ring (spsc_ring.hh), and
 * the single ingest thread routes each record to its tenant's shard
 * ring. Full rings exert backpressure (the ingest call spins with
 * yield until a slot frees), so memory stays bounded no matter how
 * far the producer runs ahead.
 *
 * Micro-batching: a shard worker does not simulate record-at-a-time.
 * It accumulates each tenant's popped conditionals into a pending
 * buffer and flushes it through the fused simulateBatch path — with
 * a per-batch predecoded SoA view once the batch is large enough to
 * amortize the lane build — so steady-state serving runs the same
 * SoA/SIMD kernels as the offline sweep engine.
 *
 * Determinism contract (pinned by tests/test_serve.cc): a tenant's
 * records are applied in ingest order by exactly one worker at a
 * time, and BranchPredictor::simulateBatch is bit-identical however
 * a record stream is split into batches. Therefore a served stream
 * yields byte-identical checkpoints and metrics JSON to the same
 * trace simulated offline, at any shard count and any batch size.
 * Wall-clock latency is deliberately *not* part of the metrics
 * document — it is run shape, not result.
 *
 * Threading rules (enforced by the drain protocol, documented in
 * DESIGN.md §15): one ingest/control thread drives addTenant /
 * ingest / drain; tenant state is touched only by its shard worker
 * between ingest and drain; every control-plane operation that reads
 * or writes tenant state (snapshot, restore, migrate, reports)
 * requires a drained engine, where the per-shard applied-record
 * counters provide the release/acquire edge that makes the worker's
 * writes visible.
 */

#ifndef TLAT_SERVE_SERVE_ENGINE_HH
#define TLAT_SERVE_SERVE_ENGINE_HH

#include <cstdint>
#include <future>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "core/branch_predictor.hh"
#include "core/run_metrics.hh"
#include "core/scheme_config.hh"
#include "spsc_ring.hh"
#include "trace/record.hh"
#include "util/json_writer.hh"
#include "util/mutex.hh"
#include "util/stats.hh"
#include "util/thread_annotations.hh"
#include "util/thread_pool.hh"

namespace tlat::serve
{

/**
 * Schema identifier of the serve metrics document
 * (writeMetricsJson). Every field is a pure function of each
 * tenant's record stream — no shard numbers, timestamps or batch
 * sizes — so documents are byte-identical across serving
 * configurations (the contract the CLI integration test pins).
 */
inline constexpr const char *kServeMetricsSchema =
    "tlat-serve-metrics-v1";

/** Engine shape knobs; validate() names the first bad one. */
struct ServeConfig
{
    /** Shard workers (>= 1); tenants hash across them. */
    unsigned shards = 1;
    /** Conditionals per micro-batch flush (>= 1). */
    std::size_t batchRecords = 64;
    /** Per-shard ring capacity; power of two >= 2. */
    std::size_t ringCapacity = 4096;
    /**
     * Record enqueue->applied latency sampling (bench_serve). Off by
     * default: the serving hot path then never reads a clock.
     */
    bool trackLatency = false;

    /** Nullopt-style check: empty string means valid. */
    std::string validate() const;
};

/** Everything the engine reports about one drained tenant. */
struct TenantReport
{
    std::string name;
    /** Records ingested, all branch classes. */
    std::uint64_t records = 0;
    /** Conditional hit/miss tally (accuracy.total() conditionals). */
    AccuracyCounter accuracy;
    /** Predictor-internal counters (collectMetrics snapshot). */
    core::RunMetrics metrics;
};

/**
 * The engine. Construction spins up the shard workers; destruction
 * closes every ring and joins them. See the file comment for the
 * threading rules.
 */
class ServeEngine
{
  public:
    /**
     * @param scheme Parsed scheme every tenant's predictor is built
     *        from (one warm predictor per tenant).
     * @param config Must validate() clean — asserted here.
     */
    ServeEngine(const core::SchemeConfig &scheme,
                const ServeConfig &config);

    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    unsigned shards() const { return config_.shards; }
    const std::string &schemeText() const { return scheme_text_; }

    /**
     * Registers a tenant and returns its handle. The default shard
     * assignment hashes the name, so placement is stable across
     * runs; pass @p shard to place explicitly. Control plane —
     * ingest thread only, but legal while records are in flight
     * (workers touch a tenant only via records routed after its
     * registration).
     */
    std::size_t addTenant(const std::string &name);
    std::size_t addTenant(const std::string &name, unsigned shard);

    std::size_t tenantCount() const;

    /** The shard currently serving @p tenant. */
    unsigned tenantShard(std::size_t tenant) const;

    /**
     * Data plane, single ingest thread: routes one record to the
     * tenant's shard ring, spinning (yield) while the ring is full —
     * the backpressure bound. Never blocks on predictor work.
     */
    void ingest(std::size_t tenant, const trace::BranchRecord &record);

    /** Convenience loop over ingest() for replay/bench drivers. */
    void ingestSpan(std::size_t tenant,
                    std::span<const trace::BranchRecord> records);

    /**
     * Blocks until every ingested record has been applied to its
     * tenant's predictor (pending micro-batches flushed). After
     * drain() the control-plane accessors below are safe. Rethrows
     * the first shard worker failure, if any.
     */
    void drain();

    /**
     * Warm-state snapshot of a drained tenant in the framed
     * checkpoint format (core/checkpoint.hh) — the same bytes an
     * offline predictor over the same stream would save. False when
     * the scheme does not support checkpoints.
     */
    bool snapshotTenant(std::size_t tenant, std::string *bytes) const;

    /**
     * Restores a drained tenant's predictor from snapshot bytes
     * (atomic: untouched on mismatch/corruption). The entry point
     * for warm-state handoff into a fresh engine.
     */
    bool restoreTenant(std::size_t tenant, const std::string &bytes);

    /**
     * Moves a drained tenant to @p new_shard through the checkpoint
     * path: snapshot, rebuild a fresh predictor, restore into it,
     * then reroute — proving the snapshot carries the complete warm
     * state. Schemes without checkpoint support keep their live
     * predictor object and just reroute. False only when a
     * checkpoint round-trip fails (tenant is left untouched).
     */
    bool migrateTenant(std::size_t tenant, unsigned new_shard);

    /** Full report for one drained tenant. */
    TenantReport tenantReport(std::size_t tenant) const;

    /**
     * The tlat-serve-metrics-v1 document over every tenant, sorted
     * by tenant name: schema, scheme, per-tenant accuracy +
     * predictor counters, and stream totals. Requires a drained
     * engine.
     */
    void writeMetricsJson(std::ostream &os) const;
    std::string metricsJsonString() const;

    /**
     * Enqueue->applied latency samples collected so far (empties the
     * store). Meaningful only with config.trackLatency; requires a
     * drained engine. Unsorted nanoseconds.
     */
    std::vector<std::uint64_t> takeLatenciesNs();

    /**
     * Writes one tenant's entry exactly as writeMetricsJson() does —
     * exposed so tests can build the offline twin of a served
     * document from an offline-simulated predictor and compare
     * bytes.
     */
    static void writeTenantJson(JsonWriter &json,
                                const TenantReport &report);

  private:
    struct Tenant;
    struct Shard;

    /** One ring crossing: the tenant plus its next record. */
    struct Item
    {
        Tenant *tenant = nullptr;
        trace::BranchRecord record;
        /** steady-clock ns at enqueue; 0 when latency is off. */
        std::uint64_t enqueueNs = 0;
    };

    void shardLoop(Shard &shard);
    /** Applies one popped item to its tenant (worker context). */
    void applyItem(Shard &shard, const Item &item);
    /** Flushes a tenant's pending micro-batch (worker context). */
    void flushTenant(Shard &shard, Tenant &tenant);
    /** Asserts the drained control-plane precondition. */
    void requireDrained(const char *op) const;

    const core::SchemeConfig scheme_;
    const std::string scheme_text_;
    const ServeConfig config_;

    // Registry mutex: guards the tenant index for the (control
    // thread only, today) registration path; workers reach tenants
    // exclusively through Item::tenant pointers whose visibility
    // rides the ring's release/acquire hand-off, never through this
    // container.
    mutable util::Mutex registry_mutex_;
    std::vector<std::unique_ptr<Tenant>> tenants_
        TLAT_GUARDED_BY(registry_mutex_);

    std::vector<std::unique_ptr<Shard>> shards_;
    /** True when every pushed record is known applied. */
    bool drained_ = true;

    /** Shard-loop completion handles (exceptions surface in drain). */
    std::vector<std::future<void>> workers_;
    /** Declared last: destructs (joins workers) before shard and
     *  tenant state above goes away. */
    util::ThreadPool pool_;
};

} // namespace tlat::serve

#endif // TLAT_SERVE_SERVE_ENGINE_HH
