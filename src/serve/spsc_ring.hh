/**
 * @file
 * Lock-free single-producer / single-consumer ring buffer — the
 * per-shard ingestion queue of the serve engine.
 *
 * Why lock-free here and nowhere else: every record a tenant streams
 * crosses exactly one of these rings on its way from the ingest
 * thread to its shard worker, so this hand-off *is* the serving hot
 * path. A util::Mutex round trip per record would cost more than the
 * predictor work it delivers. The ring is the narrowest primitive
 * that removes it: one producer (the ingest thread), one consumer
 * (the shard worker), bounded capacity for backpressure.
 *
 * Memory-ordering argument (the whole correctness story — DESIGN.md
 * §15 restates it with the engine context):
 *
 *  - `tail_` is written only by the producer, `head_` only by the
 *    consumer. Each side reads its own cursor relaxed (no
 *    concurrent writer exists for it).
 *  - push: the slot write happens-before the `tail_` release store;
 *    the consumer's acquire load of `tail_` therefore observes a
 *    fully constructed slot for every index below it.
 *  - pop: the slot read happens-before the `head_` release store;
 *    the producer's acquire load of `head_` therefore never reuses
 *    a slot the consumer might still be reading.
 *  - close(): release store after the producer's final push; the
 *    consumer re-checks emptiness after its acquire load of
 *    `closed_`, so no record pushed before close() can be missed.
 *
 * Each cursor sits on its own destructively-interfering-free line
 * (cache-line padding), and each side caches its last view of the
 * *other* side's cursor, so steady-state pushes and pops touch one
 * shared line each only when the cached view goes stale — the
 * classic SPSC layout (Lamport queue with cached cursors).
 *
 * This header is on the tlat_lint lock-discipline sanctioned list:
 * it is the one place in src/serve allowed to spell std::atomic.
 * Rationale mirrors util/simd.cc's entry — the primitive *is* the
 * synchronization, there is no guarded multi-field invariant a
 * util::Mutex capability could express, and confining the atomics
 * here keeps every acquire/release pair of the serve subsystem in
 * one reviewable file.
 */

#ifndef TLAT_SERVE_SPSC_RING_HH
#define TLAT_SERVE_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitops.hh"

namespace tlat::serve
{

/** Cache-line stride used to pad the ring cursors apart. */
inline constexpr std::size_t kCacheLineBytes = 64;

/**
 * A cache-line-padded atomic counter for cross-thread progress
 * publication (the serve engine's per-shard applied-record counters
 * and failure latches). Same sanctioning rationale as the ring: one
 * word, release/acquire only, nothing a mutex capability could
 * guard.
 */
struct alignas(kCacheLineBytes) PaddedAtomicU64
{
    std::atomic<std::uint64_t> value{0};

    void
    publish(std::uint64_t v)
    {
        value.store(v, std::memory_order_release);
    }

    std::uint64_t
    observe() const
    {
        return value.load(std::memory_order_acquire);
    }
};

/**
 * Bounded SPSC ring. Exactly one thread may call the producer face
 * (tryPush/close) and exactly one the consumer face (tryPop); the
 * capacity must be a power of two (checked at construction).
 */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : capacity_(capacity), mask_(capacity - 1), slots_(capacity)
    {
        // Power-of-two capacity so the cursor-to-slot map is one
        // AND; free-running 64-bit cursors never wrap in practice.
        static_assert(sizeof(std::atomic<std::uint64_t>) <=
                          kCacheLineBytes,
                      "cursor exceeds its padding line");
    }

    /** True when @p capacity is a valid ring size. */
    static bool
    validCapacity(std::size_t capacity)
    {
        return capacity >= 2 && isPowerOfTwo(capacity);
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * Producer face: enqueues @p item, or returns false when the
     * ring is full (the caller implements backpressure — the serve
     * engine spins with yield).
     */
    bool
    tryPush(const T &item)
    {
        const std::uint64_t tail =
            tail_.load(std::memory_order_relaxed);
        if (tail - cached_head_ == capacity_) {
            cached_head_ = head_.load(std::memory_order_acquire);
            if (tail - cached_head_ == capacity_)
                return false;
        }
        slots_[tail & mask_] = item;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer face: dequeues into @p item, or returns false when
     * the ring is empty.
     */
    bool
    tryPop(T &item)
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        if (head == cached_tail_) {
            cached_tail_ = tail_.load(std::memory_order_acquire);
            if (head == cached_tail_)
                return false;
        }
        item = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Producer face: marks the stream complete. The consumer drains
     * remaining items and then observes closed-and-empty.
     */
    void
    close()
    {
        closed_.store(true, std::memory_order_release);
    }

    /** Consumer face (also safe on the producer side). */
    bool
    closed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

  private:
    const std::size_t capacity_;
    const std::size_t mask_;
    std::vector<T> slots_;

    // Producer line: its own cursor plus its cached view of the
    // consumer's; the consumer never touches either field.
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};
    std::uint64_t cached_head_ = 0;

    // Consumer line, mirror-image.
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
    std::uint64_t cached_tail_ = 0;

    alignas(kCacheLineBytes) std::atomic<bool> closed_{false};
};

} // namespace tlat::serve

#endif // TLAT_SERVE_SPSC_RING_HH
