#include "cost_model.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tlat::core
{

unsigned
automatonStateBits(AutomatonKind kind)
{
    return automatonSpec(kind).numStates <= 2 ? 1 : 2;
}

namespace
{

/** ceil(log2) of an LRU encoding for @p ways entries per set. */
std::uint64_t
lruBitsPerSet(unsigned ways)
{
    // True-LRU state for n ways: log2(n!) bits, rounded up; 4-way
    // needs 5 bits (4! = 24 orderings).
    std::uint64_t log_factorial = 0;
    for (unsigned w = 2; w <= ways; ++w)
        log_factorial += floorLog2(w) + 1; // coarse upper bound
    // Use exact small-n values; the coarse bound above is only a
    // fallback for unusual associativities.
    switch (ways) {
      case 1:
        return 0;
      case 2:
        return 1;
      case 4:
        return 5;
      case 8:
        return 16;
      default:
        return log_factorial;
    }
}

} // namespace

StorageCost
storageCost(const SchemeConfig &config, std::uint64_t staticBranches,
            unsigned addressBits, bool cachedPredictionBit)
{
    StorageCost cost;

    // A combining predictor is the sum of its components plus the
    // chooser: one 2-bit counter per chooser-table entry, accounted
    // as pattern storage (it is a second-level structure).
    if (config.scheme == Scheme::Combining) {
        for (const SchemeConfig &component : config.components) {
            const StorageCost part =
                storageCost(component, staticBranches, addressBits,
                            cachedPredictionBit);
            cost.historyBits += part.historyBits;
            cost.tagBits += part.tagBits;
            cost.lruBits += part.lruBits;
            cost.patternBits += part.patternBits;
        }
        cost.patternBits +=
            2 * (std::uint64_t{1} << config.chooserBits);
        return cost;
    }

    // Gshare keeps a single global k-bit register and one pattern
    // table; the address XOR adds no storage.
    if (config.scheme == Scheme::Gshare) {
        cost.historyBits = config.historyBits;
        cost.patternBits = (std::uint64_t{1} << config.historyBits) *
                           automatonStateBits(config.automaton);
        return cost;
    }

    // Entry payload: a k-bit shift register for AT/ST, an automaton
    // for LS.
    std::uint64_t payload_bits;
    if (config.scheme == Scheme::LeeSmithBtb)
        payload_bits = automatonStateBits(config.automaton);
    else
        payload_bits = config.historyBits;
    if (cachedPredictionBit &&
        config.scheme == Scheme::TwoLevelAdaptive)
        payload_bits += 1;

    // History-table storage.
    switch (config.scheme) {
      case Scheme::TwoLevelAdaptive:
      case Scheme::StaticTraining:
      case Scheme::LeeSmithBtb: {
        const std::uint64_t entries =
            config.hrtKind == TableKind::Ideal ? staticBranches
                                               : config.hrtEntries;
        cost.historyBits = entries * payload_bits;
        if (config.hrtKind == TableKind::Associative) {
            tlat_assert(config.associativity > 0, "bad associativity");
            const std::uint64_t sets =
                entries / config.associativity;
            const unsigned index_bits =
                sets > 1 ? ceilLog2(sets) : 0;
            const unsigned tag_bits =
                addressBits > index_bits ? addressBits - index_bits
                                         : 0;
            cost.tagBits = entries * (tag_bits + 1); // +valid
            cost.lruBits = sets * lruBitsPerSet(config.associativity);
        }
        break;
      }
      default:
        break; // static schemes keep no per-branch storage
    }

    // Pattern-table storage.
    if (config.scheme == Scheme::TwoLevelAdaptive) {
        cost.patternBits = (std::uint64_t{1} << config.historyBits) *
                           automatonStateBits(config.automaton);
    } else if (config.scheme == Scheme::StaticTraining) {
        cost.patternBits = std::uint64_t{1} << config.historyBits;
    }

    return cost;
}

} // namespace tlat::core
