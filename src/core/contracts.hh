/**
 * @file
 * Compile-time determinism and layout contracts.
 *
 * The reproduction's headline guarantees — bit-identical sweeps at
 * any --jobs count, byte-identical metrics JSON, fused simulateBatch
 * == reference loop — rest on invariants that are cheap to state but
 * easy to erode: the Figure 2 automata tables, the policy-object
 * shapes the fused loops dispatch over, and the pinned record
 * layouts the trace hot path streams. This header turns each of them
 * into a static_assert, so drifting from the paper's definitions is
 * a compile error with a named diagnostic rather than a silently
 * different accuracy table.
 *
 * The header is include-what-you-pin: every translation unit in
 * core/, predictors/ and trace/ that implements one of these
 * contracts includes it, so the battery is re-evaluated wherever the
 * contract could be broken. It defines no runtime symbols — only
 * constexpr verification — and therefore costs nothing to include.
 *
 * tools/tlat_lint.py is the runtime-free sibling: it enforces the
 * source-level rules (ordered emission, seeded randomness, schema
 * single-definition) that the type system cannot see.
 */

#ifndef TLAT_CORE_CONTRACTS_HH
#define TLAT_CORE_CONTRACTS_HH

#include <cstddef>
#include <cstdint>

#include "automaton.hh"
#include "trace/wire_contracts.hh"

namespace tlat::core
{

// ---------------------------------------------------------------------
// Policy-shape contracts: everything the fused loops dispatch over
// satisfies AutomatonPolicy (automaton.hh), so PatternTable's
// devirtualized accessors accept exactly these types and nothing
// shape-compatible-by-accident.
// ---------------------------------------------------------------------

static_assert(AutomatonPolicy<AutomatonOps<AutomatonKind::LastTime>>);
static_assert(AutomatonPolicy<AutomatonOps<AutomatonKind::A1>>);
static_assert(AutomatonPolicy<AutomatonOps<AutomatonKind::A2>>);
static_assert(AutomatonPolicy<AutomatonOps<AutomatonKind::A3>>);
static_assert(AutomatonPolicy<AutomatonOps<AutomatonKind::A4>>);
static_assert(AutomatonPolicy<CounterOps>);

// ---------------------------------------------------------------------
// Automaton table well-formedness: states fit in 4 bits (pattern
// table entries are stored as packed bytes and checkpointed as such),
// the initial state is a real state, and delta is total — every
// (state, outcome) pair maps back into the state set. An automaton
// that can step outside its own state set would index past the
// lambda/delta tables at simulation time.
// ---------------------------------------------------------------------

/** Hard ceiling on automaton state count: 4 bits of state. */
inline constexpr unsigned kMaxAutomatonStates = 16;

namespace contract_detail
{

constexpr bool
specWellFormed(const AutomatonSpec &spec)
{
    if (spec.numStates < 1 || spec.numStates > kMaxAutomatonStates)
        return false;
    if (spec.initialState >= spec.numStates)
        return false;
    for (std::uint8_t state = 0; state < spec.numStates; ++state) {
        for (int outcome = 0; outcome < 2; ++outcome) {
            if (spec.nextState[state][outcome] >= spec.numStates)
                return false;
        }
    }
    return true;
}

constexpr bool
allSpecsWellFormed()
{
    for (const AutomatonSpec &spec : kAutomatonSpecs) {
        if (!specWellFormed(spec))
            return false;
    }
    return true;
}

// ------------------------------------------------------------------
// Figure 2 semantic pins. Each automaton's lambda and delta are
// re-derived here from their *behavioural* definition in the paper
// (and DESIGN.md for A3/A4, whose diagrams live in tech report [3])
// and checked state-by-state against the kAutomatonSpecs tables the
// simulator actually runs. A table edit that changes behaviour now
// fails to compile instead of shifting Figure 5 by a fraction of a
// percent.
// ------------------------------------------------------------------

/** Last-Time: state is the last outcome; predict it again. */
constexpr bool
lastTimeMatchesFigure2()
{
    constexpr AutomatonOps<AutomatonKind::LastTime> ops;
    for (std::uint8_t state = 0; state < 2; ++state) {
        if (ops.predict(state) != (state == 1))
            return false;
        for (int outcome = 0; outcome < 2; ++outcome) {
            if (ops.next(state, outcome != 0) != outcome)
                return false;
        }
    }
    return true;
}

/**
 * A1: 2-bit shift register of the last two outcomes; predict
 * not-taken only when neither recorded outcome was taken.
 */
constexpr bool
a1MatchesFigure2()
{
    constexpr AutomatonOps<AutomatonKind::A1> ops;
    for (std::uint8_t state = 0; state < 4; ++state) {
        if (ops.predict(state) != (state != 0))
            return false;
        for (int outcome = 0; outcome < 2; ++outcome) {
            const auto expected = static_cast<std::uint8_t>(
                ((state << 1) | outcome) & 3);
            if (ops.next(state, outcome != 0) != expected)
                return false;
        }
    }
    return true;
}

/** The 2-bit saturating up/down counter delta. */
constexpr std::uint8_t
saturatingNext(std::uint8_t state, bool taken)
{
    if (taken)
        return state < 3 ? static_cast<std::uint8_t>(state + 1)
                         : state;
    return state > 0 ? static_cast<std::uint8_t>(state - 1) : state;
}

/** A2: saturating 2-bit counter; predict taken iff state >= 2. */
constexpr bool
a2MatchesFigure2()
{
    constexpr AutomatonOps<AutomatonKind::A2> ops;
    for (std::uint8_t state = 0; state < 4; ++state) {
        if (ops.predict(state) != (state >= 2))
            return false;
        for (int outcome = 0; outcome < 2; ++outcome) {
            if (ops.next(state, outcome != 0) !=
                saturatingNext(state, outcome != 0))
                return false;
        }
    }
    return true;
}

/** A3: A2 except a not-taken in strong-taken drops straight to 1. */
constexpr bool
a3MatchesFigure2()
{
    constexpr AutomatonOps<AutomatonKind::A3> ops;
    for (std::uint8_t state = 0; state < 4; ++state) {
        if (ops.predict(state) != (state >= 2))
            return false;
        for (int outcome = 0; outcome < 2; ++outcome) {
            const bool taken = outcome != 0;
            const std::uint8_t expected =
                (state == 3 && !taken) ? 1
                                       : saturatingNext(state, taken);
            if (ops.next(state, taken) != expected)
                return false;
        }
    }
    return true;
}

/**
 * A4: big-jump hysteresis — a confirming outcome in a weak state
 * jumps to the strong state of that side (1 -T-> 3, 2 -NT-> 0), and
 * disconfirming outcomes in weak states fall to the opposite strong
 * state; the strong states step like A2.
 */
constexpr bool
a4MatchesFigure2()
{
    constexpr AutomatonOps<AutomatonKind::A4> ops;
    constexpr std::uint8_t expected[4][2] = {
        {0, 1}, // strong not-taken: step like the counter
        {0, 3}, // weak not-taken: T confirms taken-side strongly
        {0, 3}, // weak taken: NT drops to strong not-taken
        {2, 3}, // strong taken: step like the counter
    };
    for (std::uint8_t state = 0; state < 4; ++state) {
        if (ops.predict(state) != (state >= 2))
            return false;
        for (int outcome = 0; outcome < 2; ++outcome) {
            if (ops.next(state, outcome != 0) !=
                expected[state][outcome])
                return false;
        }
    }
    return true;
}

/**
 * The counter-entry extension's anchor: a 2-bit CounterOps is
 * exactly automaton A2, state for state — the paper's observation
 * that the 2-bit saturating counter *is* A2.
 */
constexpr bool
counter2IsA2()
{
    constexpr CounterOps counter(2);
    constexpr AutomatonOps<AutomatonKind::A2> a2;
    for (std::uint8_t state = 0; state < 4; ++state) {
        if (counter.predict(state) != a2.predict(state))
            return false;
        for (int outcome = 0; outcome < 2; ++outcome) {
            if (counter.next(state, outcome != 0) !=
                a2.next(state, outcome != 0))
                return false;
        }
    }
    return true;
}

/** Every CounterOps width saturates inside its own range. */
constexpr bool
countersStayInRange()
{
    for (unsigned bits = 1; bits <= 8; ++bits) {
        const CounterOps ops(bits);
        const unsigned states = 1u << bits;
        if (states > 256)
            return false;
        for (unsigned state = 0; state < states; ++state) {
            for (int outcome = 0; outcome < 2; ++outcome) {
                if (ops.next(static_cast<std::uint8_t>(state),
                             outcome != 0) >= states)
                    return false;
            }
        }
    }
    return true;
}

} // namespace contract_detail

static_assert(contract_detail::allSpecsWellFormed(),
              "automaton spec broken: state count must be 1..16, the "
              "initial state a real state, and delta total over the "
              "state set");
static_assert(contract_detail::lastTimeMatchesFigure2(),
              "Last-Time table drifted from Figure 2: state must be "
              "the last outcome and predict it again");
static_assert(contract_detail::a1MatchesFigure2(),
              "A1 table drifted from Figure 2: must be a 2-bit shift "
              "register predicting taken unless both outcomes were "
              "not-taken");
static_assert(contract_detail::a2MatchesFigure2(),
              "A2 table drifted from Figure 2: must be the 2-bit "
              "saturating up/down counter with threshold 2");
static_assert(contract_detail::a3MatchesFigure2(),
              "A3 table drifted from DESIGN.md's definition: A2 with "
              "fast recovery 3 --NT--> 1");
static_assert(contract_detail::a4MatchesFigure2(),
              "A4 table drifted from DESIGN.md's definition: "
              "big-jump hysteresis (1 -T-> 3, 2 -NT-> 0)");
static_assert(contract_detail::counter2IsA2(),
              "CounterOps(2) must be exactly automaton A2");
static_assert(contract_detail::countersStayInRange(),
              "CounterOps must saturate inside 2^bits states for "
              "every supported width");

// ---------------------------------------------------------------------
// Layout contracts: the in-memory BranchRecord, the packed TLTR wire
// record, and the predecoded SoA lane element types are pinned in
// trace/wire_contracts.hh — owned by the trace layer (layer-order:
// trace sits below core), re-evaluated here via the include above so
// every hot-path TU that includes this battery still sees them.
// ---------------------------------------------------------------------

} // namespace tlat::core

#endif // TLAT_CORE_CONTRACTS_HH
