#include "two_level_predictor.hh"

#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <utility>
#include <vector>

#include "checkpoint.hh"
#include "contracts.hh"
#include "lane_prober.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/string_utils.hh"

namespace tlat::core
{

namespace
{

PatternTable
makePatternTable(const TwoLevelConfig &config)
{
    if (config.counterBits > 0) {
        return PatternTable(
            config.historyBits,
            PatternTable::CounterEntries{config.counterBits});
    }
    return PatternTable(config.historyBits, config.automaton,
                        config.automatonInitState);
}

/**
 * Flattens the configured pattern-entry policy into the 16-entry
 * nibble LUTs the SIMD kernels shuffle through, or nullopt when the
 * policy does not fit (counters wider than 4 bits) or is not one the
 * SoA dispatch handles (mirroring dispatchAutomatonSoa's fallback
 * set, so SIMD eligibility never exceeds scalar-SoA eligibility).
 */
std::optional<util::simd::FusedLuts>
buildFusedLuts(const TwoLevelConfig &config)
{
    util::simd::FusedLuts luts{};
    if (config.counterBits > 0) {
        if (config.counterBits > 4)
            return std::nullopt;
        const CounterOps ops(config.counterBits);
        const unsigned states = 1u << config.counterBits;
        for (unsigned s = 0; s < states; ++s) {
            const auto state = static_cast<std::uint8_t>(s);
            luts.predict[s] = ops.predict(state) ? 1 : 0;
            luts.nextTaken[s] = ops.next(state, true);
            luts.nextNotTaken[s] = ops.next(state, false);
        }
        return luts;
    }
    switch (config.automaton) {
      case AutomatonKind::LastTime:
      case AutomatonKind::A1:
      case AutomatonKind::A2:
      case AutomatonKind::A3:
      case AutomatonKind::A4:
        break;
      default:
        return std::nullopt;
    }
    const AutomatonSpec &spec = automatonSpec(config.automaton);
    for (unsigned s = 0; s < spec.numStates; ++s) {
        luts.predict[s] = spec.predictTaken[s] ? 1 : 0;
        luts.nextTaken[s] = spec.nextState[s][1];
        luts.nextNotTaken[s] = spec.nextState[s][0];
    }
    return luts;
}

} // namespace

TwoLevelPredictor::TwoLevelPredictor(const TwoLevelConfig &config)
    : config_(config),
      history_mask_(static_cast<std::uint32_t>(
          lowMask(config.historyBits))),
      pattern_table_(makePatternTable(config))
{
    initial_entry_.history =
        config_.initHistoryOnes ? history_mask_ : 0;
    initial_entry_.cachedPrediction =
        pattern_table_.predict(initial_entry_.history);
    hrt_ = makeHrt();
}

std::unique_ptr<HistoryTable<TwoLevelPredictor::HrtEntry>>
TwoLevelPredictor::makeHrt() const
{
    switch (config_.hrtKind) {
      case TableKind::Ideal:
        return std::make_unique<IdealTable<HrtEntry>>(
            initial_entry_);
      case TableKind::Associative:
        return std::make_unique<AssociativeTable<HrtEntry>>(
            config_.hrtEntries, config_.associativity,
            initial_entry_, config_.addrShift);
      case TableKind::Hashed:
        return std::make_unique<HashedTable<HrtEntry>>(
            config_.hrtEntries, initial_entry_, config_.addrShift,
            config_.hhrtHash);
    }
    tlat_panic("unhandled HRT kind");
}

std::string
TwoLevelPredictor::name() const
{
    // Table 2 notation: AT(AHRT(512,12SR),PT(2^12,A2),)
    const std::string hrt_part =
        config_.hrtKind == TableKind::Ideal
            ? format("IHRT(,%uSR)", config_.historyBits)
            : format("%s(%zu,%uSR)", tableKindName(config_.hrtKind),
                     config_.hrtEntries, config_.historyBits);
    const std::string entry =
        config_.counterBits > 0
            ? format("C%u", config_.counterBits)
            : std::string(automatonName(config_.automaton));
    return format("AT(%s,PT(2^%u,%s),)", hrt_part.c_str(),
                  config_.historyBits, entry.c_str());
}

TwoLevelPredictor::HrtEntry &
TwoLevelPredictor::lookup(std::uint64_t pc)
{
    if (last_entry_ && last_pc_ == pc)
        return *last_entry_;
    last_pc_ = pc;
    last_entry_ = &hrt_->lookup(pc);
    return *last_entry_;
}

bool
TwoLevelPredictor::predict(const trace::BranchRecord &record)
{
    HrtEntry &entry = lookup(record.pc);
    const bool prediction = config_.cachedPredictionBit
        ? entry.cachedPrediction
        : pattern_table_.predict(entry.history);
    if (config_.speculativeHistoryUpdate) {
        // Record the pre-speculation pattern, then shift the
        // predicted outcome in so younger fetches see fresh history.
        in_flight_[record.pc].push_back(
            Speculation{entry.history, prediction});
        entry.history = ((entry.history << 1) |
                         (prediction ? 1u : 0u)) &
                        history_mask_;
        if (config_.cachedPredictionBit) {
            entry.cachedPrediction =
                pattern_table_.predict(entry.history);
        }
    }
    return prediction;
}

void
TwoLevelPredictor::update(const trace::BranchRecord &record)
{
    HrtEntry &entry = lookup(record.pc);

    if (config_.speculativeHistoryUpdate) {
        const auto it = in_flight_.find(record.pc);
        if (it != in_flight_.end() && !it->second.empty()) {
            const Speculation speculation = it->second.front();
            it->second.pop_front();
            // delta on the pattern the prediction actually used.
            pattern_table_.update(speculation.pattern, record.taken);
            if (speculation.predicted != record.taken) {
                // Misprediction: the pipeline flushes. Repair the
                // register from the resolved outcome and squash the
                // younger speculations of this branch.
                entry.history = ((speculation.pattern << 1) |
                                 (record.taken ? 1u : 0u)) &
                                history_mask_;
                ++squash_events_;
                squashed_speculations_ += it->second.size();
                it->second.clear();
            }
            // Erase drained pcs: keeping empty deques would grow the
            // map by one node per static branch for the whole run.
            if (it->second.empty())
                in_flight_.erase(it);
            if (config_.cachedPredictionBit) {
                entry.cachedPrediction =
                    pattern_table_.predict(entry.history);
            }
            last_pc_ = ~std::uint64_t{0};
            last_entry_ = nullptr;
            return;
        }
        // No matching predict() (unpaired use): fall through to the
        // non-speculative path below.
    }

    // delta on the entry the *old* pattern indexes, then the history
    // register shifts in the outcome (paper Section 2.1).
    pattern_table_.update(entry.history, record.taken);
    entry.history = ((entry.history << 1) |
                     (record.taken ? 1u : 0u)) &
                    history_mask_;
    if (config_.cachedPredictionBit)
        entry.cachedPrediction = pattern_table_.predict(entry.history);
    // The memo only spans one predict/update pair — the next
    // execution of this branch is a fresh HRT access (LRU recency and
    // hit statistics must see it).
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
}

template <typename Table, AutomatonPolicy Ops>
void
TwoLevelPredictor::fusedBatch(Table &table, const Ops &ops,
                              std::span<const trace::BranchRecord>
                                  records,
                              AccuracyCounter &accuracy)
{
    // Flag loads hoisted out of the loop; the branches on them are
    // perfectly predicted. Everything else — the HRT probe, lambda,
    // delta — inlines through the concrete Table/Ops types.
    const bool cached = config_.cachedPredictionBit;
    const bool speculative = config_.speculativeHistoryUpdate;
    const std::uint32_t mask = history_mask_;

    for (const trace::BranchRecord &record : records) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        HrtEntry &entry = table.lookupDirect(record.pc);
        // One PT index computation serves both lambda and delta: the
        // prediction reads and the update writes the same entry (the
        // one the pre-shift history selects), so keep a reference.
        std::uint8_t &state = pattern_table_.stateAt(entry.history);
        const bool predicted =
            cached ? entry.cachedPrediction : ops.predict(state);
        accuracy.record(predicted == record.taken);

        if (speculative) {
            // Mirrors the predict()/update() pair exactly: the
            // speculative shift happens at "predict" time against the
            // pre-speculation pattern, then resolution updates delta
            // on that pattern and repairs the register on a
            // misprediction. With strictly paired calls the in-flight
            // deque holds exactly the one speculation we are about to
            // resolve, so the bookkeeping reduces to locals. The
            // cached-bit recomputes keep the reference ordering: the
            // first reads the PT *before* delta lands on the
            // speculated pattern, the second after.
            const std::uint32_t spec_pattern = entry.history;
            entry.history = ((entry.history << 1) |
                             (predicted ? 1u : 0u)) &
                            mask;
            if (cached) {
                entry.cachedPrediction =
                    pattern_table_.predictWith(ops, entry.history);
            }
            state = ops.next(state, record.taken);
            if (predicted != record.taken) {
                entry.history = ((spec_pattern << 1) |
                                 (record.taken ? 1u : 0u)) &
                                mask;
                ++squash_events_;
            }
            if (cached) {
                entry.cachedPrediction =
                    pattern_table_.predictWith(ops, entry.history);
            }
        } else {
            state = ops.next(state, record.taken);
            entry.history = ((entry.history << 1) |
                             (record.taken ? 1u : 0u)) &
                            mask;
            if (cached) {
                entry.cachedPrediction =
                    pattern_table_.predictWith(ops, entry.history);
            }
        }
    }
}

template <typename Prober, AutomatonPolicy Ops>
void
TwoLevelPredictor::fusedBatchSoa(Prober &prober, const Ops &ops,
                                 const trace::PredecodedView &view,
                                 AccuracyCounter &accuracy)
{
    // Mirrors fusedBatch() line for line; the only differences are
    // where the operands come from — the HRT entry via the prober's
    // precomputed index lane instead of a per-branch pc derivation,
    // and the outcome via the packed bitvector instead of the AoS
    // record — so the bit-equivalence argument is fusedBatch's own.
    const bool cached = config_.cachedPredictionBit;
    const bool speculative = config_.speculativeHistoryUpdate;
    const std::uint32_t mask = history_mask_;
    const trace::PredecodedTrace &soa = view.soa();
    const std::span<const trace::BranchId> ids = soa.branchIds();

    for (std::size_t i = 0; i < ids.size(); ++i) {
        HrtEntry &entry = prober.probe(ids[i]);
        const bool taken = soa.taken(i);
        std::uint8_t &state = pattern_table_.stateAt(entry.history);
        const bool predicted =
            cached ? entry.cachedPrediction : ops.predict(state);
        accuracy.record(predicted == taken);

        if (speculative) {
            const std::uint32_t spec_pattern = entry.history;
            entry.history = ((entry.history << 1) |
                             (predicted ? 1u : 0u)) &
                            mask;
            if (cached) {
                entry.cachedPrediction =
                    pattern_table_.predictWith(ops, entry.history);
            }
            state = ops.next(state, taken);
            if (predicted != taken) {
                entry.history = ((spec_pattern << 1) |
                                 (taken ? 1u : 0u)) &
                                mask;
                ++squash_events_;
            }
            if (cached) {
                entry.cachedPrediction =
                    pattern_table_.predictWith(ops, entry.history);
            }
        } else {
            state = ops.next(state, taken);
            entry.history = ((entry.history << 1) |
                             (taken ? 1u : 0u)) &
                            mask;
            if (cached) {
                entry.cachedPrediction =
                    pattern_table_.predictWith(ops, entry.history);
            }
        }
    }
}

template <typename Table>
void
TwoLevelPredictor::dispatchAutomaton(Table &table,
                                     std::span<
                                         const trace::BranchRecord>
                                         records,
                                     AccuracyCounter &accuracy)
{
    if (config_.counterBits > 0) {
        fusedBatch(table, CounterOps(config_.counterBits), records,
                   accuracy);
        return;
    }
    switch (config_.automaton) {
      case AutomatonKind::LastTime:
        fusedBatch(table, AutomatonOps<AutomatonKind::LastTime>{},
                   records, accuracy);
        break;
      case AutomatonKind::A1:
        fusedBatch(table, AutomatonOps<AutomatonKind::A1>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A2:
        fusedBatch(table, AutomatonOps<AutomatonKind::A2>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A3:
        fusedBatch(table, AutomatonOps<AutomatonKind::A3>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A4:
        fusedBatch(table, AutomatonOps<AutomatonKind::A4>{}, records,
                   accuracy);
        break;
      default:
        BranchPredictor::simulateBatch(records, accuracy);
        break;
    }
}

template <typename Prober>
void
TwoLevelPredictor::dispatchAutomatonSoa(
    Prober &prober, const trace::PredecodedView &view,
    AccuracyCounter &accuracy)
{
    if (config_.counterBits > 0) {
        fusedBatchSoa(prober, CounterOps(config_.counterBits), view,
                      accuracy);
        return;
    }
    switch (config_.automaton) {
      case AutomatonKind::LastTime:
        fusedBatchSoa(prober,
                      AutomatonOps<AutomatonKind::LastTime>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A1:
        fusedBatchSoa(prober, AutomatonOps<AutomatonKind::A1>{},
                      view, accuracy);
        break;
      case AutomatonKind::A2:
        fusedBatchSoa(prober, AutomatonOps<AutomatonKind::A2>{},
                      view, accuracy);
        break;
      case AutomatonKind::A3:
        fusedBatchSoa(prober, AutomatonOps<AutomatonKind::A3>{},
                      view, accuracy);
        break;
      case AutomatonKind::A4:
        fusedBatchSoa(prober, AutomatonOps<AutomatonKind::A4>{},
                      view, accuracy);
        break;
      default:
        simulateBatch(view.records(), accuracy);
        break;
    }
}

bool
TwoLevelPredictor::trySimdBatch(const trace::PredecodedView &view,
                                AccuracyCounter &accuracy)
{
    if (config_.cachedPredictionBit ||
        config_.speculativeHistoryUpdate)
        return false;
    if (util::simd::activeLevel() == util::simd::Level::Scalar)
        return false;
    const auto luts = buildFusedLuts(config_);
    if (!luts)
        return false;

    const trace::PredecodedTrace &soa = view.soa();
    const std::span<const trace::BranchId> ids = soa.branchIds();
    const std::size_t n = ids.size();
    auto &table = static_cast<IdealTable<HrtEntry> &>(*hrt_);
    if (n == 0)
        return true;

    // Prologue: resolve each unique pc exactly once, in id order —
    // ids are assigned at first appearance, so this is the order the
    // reference loop first touches them — then account the remaining
    // n - unique probes as repeat hits. Totals match the per-record
    // loop's probe statistics exactly.
    const std::span<const std::uint64_t> pcs = soa.uniquePcs();
    const std::size_t unique = pcs.size();
    std::vector<HrtEntry *> entries(unique);
    std::vector<std::uint32_t> history(unique);
    for (std::size_t id = 0; id < unique; ++id) {
        entries[id] = &table.lookupDirect(pcs[id]);
        history[id] = entries[id]->history;
    }
    table.noteRepeatHits(n - unique);

    // Non-speculative history evolution is prediction-independent, so
    // every record's PT index is known before simulating: replay the
    // shift registers, scalar, into a dense index lane. The replay is
    // tiled so the lane stays L1-resident between its write (here)
    // and its read (the kernel) instead of round-tripping an
    // n-record buffer through L2/L3; the tile is a multiple of 64
    // records so each kernel call still starts on an outcome-word
    // boundary (fusedPass indexes outcome bits from its own base).
    constexpr std::size_t kTile = 4096;
    static_assert(kTile % 64 == 0);
    const std::uint32_t mask = history_mask_;
    std::uint32_t lane[kTile + util::simd::kLaneSlack] = {};
    const std::uint64_t *outcome_words = soa.outcomeWords().data();
    std::uint8_t *capture = accuracy.captureCursor();
    std::uint64_t hits = 0;
    for (std::size_t base = 0; base < n; base += kTile) {
        const std::size_t count = std::min(kTile, n - base);
        for (std::size_t i = 0; i < count; ++i) {
            const trace::BranchId id = ids[base + i];
            lane[i] = history[id];
            history[id] = ((history[id] << 1) |
                           (soa.taken(base + i) ? 1u : 0u)) &
                          mask;
        }
        hits += util::simd::fusedPass(
            lane, outcome_words + base / 64, count,
            pattern_table_.statesData(), *luts,
            capture == nullptr ? nullptr : capture + base);
    }
    accuracy.recordBulk(hits, n);

    // Epilogue: final shift-register values back into the HRT.
    for (std::size_t id = 0; id < unique; ++id)
        entries[id]->history = history[id];
    return true;
}

void
TwoLevelPredictor::simulateBatch(const trace::PredecodedView &view,
                                 AccuracyCounter &accuracy)
{
    // Same unsafe-state guard as the AoS overload; delegating to the
    // AoS twin (which re-checks and defers to the reference loop)
    // keeps the fallback decision in exactly one place per overload.
    if (last_entry_ != nullptr || !in_flight_.empty()) {
        simulateBatch(view.records(), accuracy);
        return;
    }
    switch (config_.hrtKind) {
      case TableKind::Ideal: {
        if (trySimdBatch(view, accuracy))
            break;
        IdealLaneProber<HrtEntry> prober(
            static_cast<IdealTable<HrtEntry> &>(*hrt_),
            view.soa().uniquePcs());
        dispatchAutomatonSoa(prober, view, accuracy);
        break;
      }
      case TableKind::Associative: {
        AssociativeLaneProber<HrtEntry> prober(
            static_cast<AssociativeTable<HrtEntry> &>(*hrt_),
            view.soa());
        dispatchAutomatonSoa(prober, view, accuracy);
        break;
      }
      case TableKind::Hashed: {
        HashedLaneProber<HrtEntry> prober(
            static_cast<HashedTable<HrtEntry> &>(*hrt_), view.soa());
        dispatchAutomatonSoa(prober, view, accuracy);
        break;
      }
    }
}

void
TwoLevelPredictor::simulateBatch(std::span<const trace::BranchRecord>
                                     records,
                                 AccuracyCounter &accuracy)
{
    // A live lookup memo (a predict() awaiting its update()) or
    // in-flight speculation means we are mid predict/update pair;
    // only the reference loop reproduces the memo'd probe accounting
    // exactly, so defer to it. The harness never hits this — it is a
    // guard for direct API users.
    if (last_entry_ != nullptr || !in_flight_.empty()) {
        BranchPredictor::simulateBatch(records, accuracy);
        return;
    }
    switch (config_.hrtKind) {
      case TableKind::Ideal:
        dispatchAutomaton(
            static_cast<IdealTable<HrtEntry> &>(*hrt_), records,
            accuracy);
        break;
      case TableKind::Associative:
        dispatchAutomaton(
            static_cast<AssociativeTable<HrtEntry> &>(*hrt_), records,
            accuracy);
        break;
      case TableKind::Hashed:
        dispatchAutomaton(
            static_cast<HashedTable<HrtEntry> &>(*hrt_), records,
            accuracy);
        break;
    }
}

void
TwoLevelPredictor::reset()
{
    pattern_table_.reset();
    hrt_->reset();
    in_flight_.clear();
    squash_events_ = 0;
    squashed_speculations_ = 0;
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
}

void
TwoLevelPredictor::collectMetrics(RunMetrics &metrics) const
{
    const TableStats &stats = hrt_->stats();
    metrics.hrtHits = stats.hits;
    metrics.hrtMisses = stats.misses;
    metrics.hrtEvictions = stats.evictions;
    metrics.hrtAliasedLookups = stats.aliasedLookups;
    metrics.ptStateHistogram = pattern_table_.stateHistogram();
    metrics.squashEvents = squash_events_;
    metrics.squashedSpeculations = squashed_speculations_;
    metrics.inFlightBranches = in_flight_.size();
}

namespace
{

// v2: TableStats gained eviction/aliasing counters and the HHRT
// serializes its per-slot last-line attribution state.
// v3: core/checkpoint.hh framing — end sentinel plus the
// fully-consumed check, and loads commit atomically.
constexpr std::uint32_t kCheckpointVersion = 3;

/** Geometry/behaviour fingerprint; checkpoints only restore onto an
 *  identically configured predictor. */
std::uint64_t
configFingerprint(const TwoLevelConfig &config)
{
    std::uint64_t fp = 0xf17e;
    const auto mixIn = [&fp](std::uint64_t value) {
        fp = mix64(fp ^ value);
    };
    mixIn(static_cast<std::uint64_t>(config.hrtKind));
    mixIn(config.hrtEntries);
    mixIn(config.associativity);
    mixIn(config.historyBits);
    mixIn(static_cast<std::uint64_t>(config.automaton));
    mixIn(config.counterBits);
    mixIn(config.cachedPredictionBit ? 1 : 0);
    mixIn(config.speculativeHistoryUpdate ? 1 : 0);
    mixIn(static_cast<std::uint64_t>(config.hhrtHash));
    mixIn(config.addrShift);
    return fp;
}

} // namespace

bool
TwoLevelPredictor::saveCheckpoint(std::ostream &os) const
{
    // Drained deques are erased in update(), so a non-empty map means
    // live speculation — and checkpointing requires none.
    if (!in_flight_.empty())
        return false;

    ckpt::writeHeader(os, kCheckpointVersion,
                      configFingerprint(config_));
    pattern_table_.saveState(os);
    hrt_->saveState(os, [](std::ostream &out, const HrtEntry &entry) {
        ckpt::putScalar(out, entry.history);
        ckpt::putScalar(out, static_cast<std::uint8_t>(
                                 entry.cachedPrediction ? 1 : 0));
    });
    ckpt::writeEnd(os);
    return static_cast<bool>(os);
}

bool
TwoLevelPredictor::loadCheckpoint(std::istream &is)
{
    if (!ckpt::readHeader(is, kCheckpointVersion,
                          configFingerprint(config_)))
        return false;
    // Parse the whole stream into same-geometry temporaries first;
    // the live tables are only touched by the commit below, so a
    // stream that fails anywhere — truncated mid-table, wrong
    // sentinel, trailing junk — leaves the predictor exactly as it
    // was.
    PatternTable pattern_table = pattern_table_;
    if (!pattern_table.loadState(is))
        return false;
    std::unique_ptr<HistoryTable<HrtEntry>> hrt = makeHrt();
    const bool loaded = hrt->loadState(
        is, [](std::istream &in, HrtEntry &entry) {
            std::uint8_t cached;
            if (!ckpt::getScalar(in, entry.history) ||
                !ckpt::getScalar(in, cached) || cached > 1)
                return false;
            entry.cachedPrediction = cached != 0;
            return true;
        });
    if (!loaded || !ckpt::readEnd(is))
        return false;

    pattern_table_ = std::move(pattern_table);
    hrt_ = std::move(hrt);
    in_flight_.clear();
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
    return true;
}

} // namespace tlat::core
