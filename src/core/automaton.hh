/**
 * @file
 * Pattern-history automata (paper Figure 2).
 *
 * Each pattern table entry holds the state of a small Moore machine:
 * the state-transition function delta consumes the branch outcome, and
 * the prediction decision function lambda maps the state to a
 * taken/not-taken prediction (paper equations 1 and 2).
 *
 * Automata implemented:
 *  - Last-Time (LT): one bit; predict what happened last time.
 *  - A1: records the outcomes of the last two occurrences; predicts
 *    not-taken only when both were not-taken.
 *  - A2: 2-bit saturating up/down counter; predict taken iff state>=2.
 *  - A3, A4: variants of A2. The paper's Figure 2 diagrams for these
 *    are not recoverable from the text (they live in tech report [3]);
 *    following DESIGN.md they are implemented as 4-state up/down
 *    counter variants:
 *      A3: like A2, but from state 3 a not-taken outcome drops
 *          straight to 1 (fast recovery from strong-taken).
 *      A4: big-jump hysteresis — a confirming outcome in a weak
 *          state jumps to the strong state (1 -T-> 3, 2 -N-> 0).
 *    The paper's only quantitative claim — A2/A3/A4 within noise of
 *    each other and ~1% above LT — is insensitive to this choice.
 *
 * Initialization (paper Section 4.2): the four-state automata start in
 * state 3 and LT starts in state 1, so early branches predict taken.
 */

#ifndef TLAT_CORE_AUTOMATON_HH
#define TLAT_CORE_AUTOMATON_HH

#include <concepts>
#include <cstdint>
#include <optional>
#include <string>

namespace tlat::core
{

/** The automata of paper Figure 2. */
enum class AutomatonKind : std::uint8_t
{
    LastTime,
    A1,
    A2,
    A3,
    A4,
    NumKinds
};

/** Table-driven definition of one automaton. */
struct AutomatonSpec
{
    const char *name;
    std::uint8_t numStates;
    std::uint8_t initialState;
    /** nextState[state][outcome] (outcome: 0 = not taken, 1 = taken). */
    std::uint8_t nextState[4][2];
    /** lambda: predictTaken[state]. */
    bool predictTaken[4];
};

/**
 * The automata definitions (paper Figure 2), constexpr so the fused
 * simulation loop's compile-time dispatch (AutomatonOps) folds table
 * lookups into immediate loads. Outcome index 0 = not taken,
 * 1 = taken.
 */
inline constexpr AutomatonSpec kAutomatonSpecs[] = {
    // Last-Time: state is simply the last outcome.
    {
        "LT", 2, 1,
        {{0, 1}, {0, 1}, {0, 0}, {0, 0}},
        {false, true, false, false},
    },
    // A1: 2-bit shift register of the last two outcomes; predict
    // not-taken only when no taken outcome is recorded (state 0).
    {
        "A1", 4, 3,
        {{0, 1}, {2, 3}, {0, 1}, {2, 3}},
        {false, true, true, true},
    },
    // A2: saturating up/down counter; predict taken iff state >= 2.
    {
        "A2", 4, 3,
        {{0, 1}, {0, 2}, {1, 3}, {2, 3}},
        {false, false, true, true},
    },
    // A3: A2 with fast recovery from strong-taken (3 --NT--> 1).
    {
        "A3", 4, 3,
        {{0, 1}, {0, 2}, {1, 3}, {1, 3}},
        {false, false, true, true},
    },
    // A4: big-jump hysteresis — a confirming outcome in a weak state
    // jumps straight to the strong state of that side (1 --T--> 3,
    // 2 --NT--> 0).
    {
        "A4", 4, 3,
        {{0, 1}, {0, 3}, {0, 3}, {2, 3}},
        {false, false, true, true},
    },
};

static_assert(sizeof(kAutomatonSpecs) / sizeof(kAutomatonSpecs[0]) ==
              static_cast<std::size_t>(AutomatonKind::NumKinds));

/** Spec lookup; the returned reference has static storage duration. */
const AutomatonSpec &automatonSpec(AutomatonKind kind);

/**
 * Compile-time automaton policy for the fused simulation loop: with
 * the kind a template parameter, lambda and delta reduce to indexed
 * loads from a constexpr table that the optimizer keeps in registers
 * — no virtual call, no runtime kind dispatch per branch. Behaviour
 * is defined to be identical to PatternTable::predict()/update() and
 * Automaton::predict()/update() for the same kind.
 */
template <AutomatonKind K>
struct AutomatonOps
{
    constexpr bool
    predict(std::uint8_t state) const
    {
        return kAutomatonSpecs[static_cast<std::size_t>(K)]
            .predictTaken[state];
    }

    constexpr std::uint8_t
    next(std::uint8_t state, bool taken) const
    {
        return kAutomatonSpecs[static_cast<std::size_t>(K)]
            .nextState[state][taken ? 1 : 0];
    }
};

/**
 * Runtime-width saturating-counter policy (the PatternTable
 * counter-entry extension): predict taken in the upper half of the
 * range. Width is a runtime value (1..8 bits), but the policy is
 * still branch-free enough to inline into the fused loop.
 */
struct CounterOps
{
    explicit constexpr CounterOps(unsigned bits)
        : max(static_cast<std::uint8_t>((1u << bits) - 1)),
          threshold(static_cast<std::uint8_t>(1u << (bits - 1)))
    {
    }

    constexpr bool
    predict(std::uint8_t state) const
    {
        return state >= threshold;
    }

    constexpr std::uint8_t
    next(std::uint8_t state, bool taken) const
    {
        if (taken && state < max)
            return static_cast<std::uint8_t>(state + 1);
        if (!taken && state > 0)
            return static_cast<std::uint8_t>(state - 1);
        return state;
    }

    std::uint8_t max;
    std::uint8_t threshold;
};

/**
 * The shape every pattern-history policy must have: lambda maps a
 * state to a direction, delta maps (state, outcome) to the successor
 * state. PatternTable's devirtualized accessors and every fused
 * simulateBatch loop are constrained on this concept, so a policy
 * that drifts from the AutomatonOps/CounterOps contract is a compile
 * error at the call site, not a subtle behavioural divergence. The
 * full semantic pins (Figure 2 tables, CounterOps(2) == A2) live in
 * core/contracts.hh.
 */
template <typename Ops>
concept AutomatonPolicy =
    requires(const Ops ops, std::uint8_t state, bool taken) {
        { ops.predict(state) } -> std::same_as<bool>;
        { ops.next(state, taken) } -> std::same_as<std::uint8_t>;
    };

/** Parses "LT", "A1".."A4" (as used in Table 2 scheme names). */
std::optional<AutomatonKind> automatonFromName(const std::string &name);

/** Short name as used in scheme strings ("LT", "A2", ...). */
const char *automatonName(AutomatonKind kind);

/**
 * A single automaton instance: one pattern table entry's worth of
 * state. Kept trivially copyable — pattern tables store millions.
 */
class Automaton
{
  public:
    Automaton() = default;

    explicit Automaton(AutomatonKind kind)
        : kind_(kind), state_(automatonSpec(kind).initialState)
    {
    }

    /** lambda(S): the prediction for the current state. */
    bool
    predict() const
    {
        return automatonSpec(kind_).predictTaken[state_];
    }

    /** delta(S, R): consumes the resolved outcome. */
    void
    update(bool taken)
    {
        state_ = automatonSpec(kind_).nextState[state_][taken ? 1 : 0];
    }

    std::uint8_t state() const { return state_; }
    AutomatonKind kind() const { return kind_; }

    /** Forces a state (tests and initialization ablations). */
    void setState(std::uint8_t state) { state_ = state; }

  private:
    AutomatonKind kind_ = AutomatonKind::A2;
    std::uint8_t state_ = 3;
};

} // namespace tlat::core

#endif // TLAT_CORE_AUTOMATON_HH
