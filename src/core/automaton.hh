/**
 * @file
 * Pattern-history automata (paper Figure 2).
 *
 * Each pattern table entry holds the state of a small Moore machine:
 * the state-transition function delta consumes the branch outcome, and
 * the prediction decision function lambda maps the state to a
 * taken/not-taken prediction (paper equations 1 and 2).
 *
 * Automata implemented:
 *  - Last-Time (LT): one bit; predict what happened last time.
 *  - A1: records the outcomes of the last two occurrences; predicts
 *    not-taken only when both were not-taken.
 *  - A2: 2-bit saturating up/down counter; predict taken iff state>=2.
 *  - A3, A4: variants of A2. The paper's Figure 2 diagrams for these
 *    are not recoverable from the text (they live in tech report [3]);
 *    following DESIGN.md they are implemented as 4-state up/down
 *    counter variants:
 *      A3: like A2, but from state 3 a not-taken outcome drops
 *          straight to 1 (fast recovery from strong-taken).
 *      A4: big-jump hysteresis — a confirming outcome in a weak
 *          state jumps to the strong state (1 -T-> 3, 2 -N-> 0).
 *    The paper's only quantitative claim — A2/A3/A4 within noise of
 *    each other and ~1% above LT — is insensitive to this choice.
 *
 * Initialization (paper Section 4.2): the four-state automata start in
 * state 3 and LT starts in state 1, so early branches predict taken.
 */

#ifndef TLAT_CORE_AUTOMATON_HH
#define TLAT_CORE_AUTOMATON_HH

#include <cstdint>
#include <optional>
#include <string>

namespace tlat::core
{

/** The automata of paper Figure 2. */
enum class AutomatonKind : std::uint8_t
{
    LastTime,
    A1,
    A2,
    A3,
    A4,
    NumKinds
};

/** Table-driven definition of one automaton. */
struct AutomatonSpec
{
    const char *name;
    std::uint8_t numStates;
    std::uint8_t initialState;
    /** nextState[state][outcome] (outcome: 0 = not taken, 1 = taken). */
    std::uint8_t nextState[4][2];
    /** lambda: predictTaken[state]. */
    bool predictTaken[4];
};

/** Spec lookup; the returned reference has static storage duration. */
const AutomatonSpec &automatonSpec(AutomatonKind kind);

/** Parses "LT", "A1".."A4" (as used in Table 2 scheme names). */
std::optional<AutomatonKind> automatonFromName(const std::string &name);

/** Short name as used in scheme strings ("LT", "A2", ...). */
const char *automatonName(AutomatonKind kind);

/**
 * A single automaton instance: one pattern table entry's worth of
 * state. Kept trivially copyable — pattern tables store millions.
 */
class Automaton
{
  public:
    Automaton() = default;

    explicit Automaton(AutomatonKind kind)
        : kind_(kind), state_(automatonSpec(kind).initialState)
    {
    }

    /** lambda(S): the prediction for the current state. */
    bool
    predict() const
    {
        return automatonSpec(kind_).predictTaken[state_];
    }

    /** delta(S, R): consumes the resolved outcome. */
    void
    update(bool taken)
    {
        state_ = automatonSpec(kind_).nextState[state_][taken ? 1 : 0];
    }

    std::uint8_t state() const { return state_; }
    AutomatonKind kind() const { return kind_; }

    /** Forces a state (tests and initialization ablations). */
    void setState(std::uint8_t state) { state_ = state; }

  private:
    AutomatonKind kind_ = AutomatonKind::A2;
    std::uint8_t state_ = 3;
};

} // namespace tlat::core

#endif // TLAT_CORE_AUTOMATON_HH
