#include "generalized_two_level.hh"

#include <algorithm>
#include <utility>

#include "checkpoint.hh"
#include "contracts.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace tlat::core
{

GeneralizedTwoLevelPredictor::GeneralizedTwoLevelPredictor(
    const GeneralizedConfig &config)
    : config_(config),
      history_mask_(static_cast<std::uint32_t>(
          lowMask(config.historyBits))),
      set_mask_(static_cast<std::uint32_t>(lowMask(config.setBits))),
      global_history_(history_mask_)
{
    tlat_assert(config_.historyBits >= 1 && config_.historyBits <= 24,
                "history length out of range");
    tlat_assert(config_.setBits <= 12, "set bits out of range");
    tlat_assert(!config_.xorAddress ||
                    config_.historyScope == HistoryScope::Global,
                "xorAddress is a global-history (gshare) refinement");

    if (config_.historyScope == HistoryScope::PerSet) {
        set_histories_.assign(std::size_t{1} << config_.setBits,
                              history_mask_);
    }

    switch (config_.patternScope) {
      case PatternScope::Global:
        fixed_tables_.emplace_back(config_.historyBits,
                                   config_.automaton);
        break;
      case PatternScope::PerSet:
        for (std::size_t s = 0;
             s < (std::size_t{1} << config_.setBits); ++s) {
            fixed_tables_.emplace_back(config_.historyBits,
                                       config_.automaton);
        }
        break;
      case PatternScope::PerAddress:
        break; // allocated on demand
    }
}

std::string
GeneralizedTwoLevelPredictor::name() const
{
    const char history_letter =
        config_.historyScope == HistoryScope::Global
            ? 'G'
            : config_.historyScope == HistoryScope::PerAddress ? 'P'
                                                               : 'S';
    const char pattern_letter =
        config_.patternScope == PatternScope::Global
            ? 'g'
            : config_.patternScope == PatternScope::PerSet ? 's'
                                                           : 'p';
    std::string text =
        format("%cA%c(%u,%s)", history_letter, pattern_letter,
               config_.historyBits, automatonName(config_.automaton));
    if (config_.xorAddress)
        text += "+xor";
    return text;
}

std::uint32_t &
GeneralizedTwoLevelPredictor::historyFor(std::uint64_t pc)
{
    switch (config_.historyScope) {
      case HistoryScope::Global:
        return global_history_;
      case HistoryScope::PerSet:
        return set_histories_[(pc >> config_.addrShift) & set_mask_];
      case HistoryScope::PerAddress:
      default: {
        auto [it, inserted] =
            address_histories_.try_emplace(pc, history_mask_);
        return it->second;
      }
    }
}

PatternTable &
GeneralizedTwoLevelPredictor::tableFor(std::uint64_t pc)
{
    switch (config_.patternScope) {
      case PatternScope::Global:
        return fixed_tables_[0];
      case PatternScope::PerSet:
        return fixed_tables_[(pc >> config_.addrShift) & set_mask_];
      case PatternScope::PerAddress:
      default: {
        auto it = address_tables_.find(pc);
        if (it == address_tables_.end()) {
            it = address_tables_
                     .emplace(pc,
                              PatternTable(config_.historyBits,
                                           config_.automaton))
                     .first;
        }
        return it->second;
      }
    }
}

std::uint32_t
GeneralizedTwoLevelPredictor::patternFor(std::uint32_t history,
                                         std::uint64_t pc) const
{
    std::uint32_t pattern = history;
    if (config_.xorAddress) {
        pattern ^= static_cast<std::uint32_t>(pc >> config_.addrShift) &
                   history_mask_;
    }
    return pattern;
}

bool
GeneralizedTwoLevelPredictor::predict(
    const trace::BranchRecord &record)
{
    const std::uint32_t history = historyFor(record.pc);
    return tableFor(record.pc)
        .predict(patternFor(history, record.pc));
}

void
GeneralizedTwoLevelPredictor::update(const trace::BranchRecord &record)
{
    std::uint32_t &history = historyFor(record.pc);
    tableFor(record.pc)
        .update(patternFor(history, record.pc), record.taken);
    history = ((history << 1) | (record.taken ? 1u : 0u)) &
              history_mask_;
}

template <AutomatonPolicy Ops>
void
GeneralizedTwoLevelPredictor::fusedBatch(
    const Ops &ops, std::span<const trace::BranchRecord> records,
    AccuracyCounter &accuracy)
{
    const std::uint32_t mask = history_mask_;
    for (const trace::BranchRecord &record : records) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        // One scope resolution per branch: the reference pair re-runs
        // historyFor()/tableFor() (hash lookups for the per-address
        // scopes) in both predict() and update().
        std::uint32_t &history = historyFor(record.pc);
        PatternTable &table = tableFor(record.pc);
        const std::uint32_t pattern = patternFor(history, record.pc);
        std::uint8_t &state = table.stateAt(pattern);
        const bool predicted = ops.predict(state);
        accuracy.record(predicted == record.taken);
        state = ops.next(state, record.taken);
        history =
            ((history << 1) | (record.taken ? 1u : 0u)) & mask;
    }
}

template <AutomatonPolicy Ops>
void
GeneralizedTwoLevelPredictor::fusedBatchSoa(
    const Ops &ops, const trace::PredecodedView &view,
    AccuracyCounter &accuracy)
{
    const std::uint32_t mask = history_mask_;
    const bool use_xor = config_.xorAddress;
    const trace::PredecodedTrace &soa = view.soa();
    const std::span<const trace::BranchId> ids = soa.branchIds();
    const std::span<const std::uint64_t> pcs = soa.uniquePcs();

    // Lazy per-unique-branch scope lanes: each static branch resolves
    // its (history register, pattern table, xor term) triple at first
    // appearance — the same moment the reference loop would insert it
    // into the per-address maps, so demand-grown state is created in
    // the identical order. The cached references stay valid because
    // the global/per-set stores are preallocated and unordered_map
    // nodes are stable across growth.
    std::vector<std::uint32_t *> histories(soa.uniquePcCount(),
                                           nullptr);
    std::vector<PatternTable *> tables(soa.uniquePcCount(), nullptr);
    std::vector<std::uint32_t> xor_terms(
        use_xor ? soa.uniquePcCount() : 0, 0);

    for (std::size_t i = 0; i < ids.size(); ++i) {
        const trace::BranchId id = ids[i];
        std::uint32_t *&history = histories[id];
        if (history == nullptr) {
            const std::uint64_t pc = pcs[id];
            history = &historyFor(pc);
            tables[id] = &tableFor(pc);
            if (use_xor) {
                xor_terms[id] =
                    static_cast<std::uint32_t>(
                        pc >> config_.addrShift) &
                    mask;
            }
        }
        const bool taken = soa.taken(i);
        std::uint32_t pattern = *history;
        if (use_xor)
            pattern ^= xor_terms[id];
        std::uint8_t &state = tables[id]->stateAt(pattern);
        const bool predicted = ops.predict(state);
        accuracy.record(predicted == taken);
        state = ops.next(state, taken);
        *history = ((*history << 1) | (taken ? 1u : 0u)) & mask;
    }
}

void
GeneralizedTwoLevelPredictor::simulateBatch(
    const trace::PredecodedView &view, AccuracyCounter &accuracy)
{
    switch (config_.automaton) {
      case AutomatonKind::LastTime:
        fusedBatchSoa(AutomatonOps<AutomatonKind::LastTime>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A1:
        fusedBatchSoa(AutomatonOps<AutomatonKind::A1>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A2:
        fusedBatchSoa(AutomatonOps<AutomatonKind::A2>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A3:
        fusedBatchSoa(AutomatonOps<AutomatonKind::A3>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A4:
        fusedBatchSoa(AutomatonOps<AutomatonKind::A4>{}, view,
                      accuracy);
        break;
      default:
        simulateBatch(view.records(), accuracy);
        break;
    }
}

void
GeneralizedTwoLevelPredictor::simulateBatch(
    std::span<const trace::BranchRecord> records,
    AccuracyCounter &accuracy)
{
    switch (config_.automaton) {
      case AutomatonKind::LastTime:
        fusedBatch(AutomatonOps<AutomatonKind::LastTime>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A1:
        fusedBatch(AutomatonOps<AutomatonKind::A1>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A2:
        fusedBatch(AutomatonOps<AutomatonKind::A2>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A3:
        fusedBatch(AutomatonOps<AutomatonKind::A3>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A4:
        fusedBatch(AutomatonOps<AutomatonKind::A4>{}, records,
                   accuracy);
        break;
      default:
        BranchPredictor::simulateBatch(records, accuracy);
        break;
    }
}

void
GeneralizedTwoLevelPredictor::reset()
{
    global_history_ = history_mask_;
    if (config_.historyScope == HistoryScope::PerSet) {
        set_histories_.assign(set_histories_.size(), history_mask_);
    }
    address_histories_.clear();
    for (PatternTable &table : fixed_tables_)
        table.reset();
    address_tables_.clear();
}

std::size_t
GeneralizedTwoLevelPredictor::patternTableCount() const
{
    return config_.patternScope == PatternScope::PerAddress
        ? address_tables_.size()
        : fixed_tables_.size();
}

std::size_t
GeneralizedTwoLevelPredictor::historyRegisterCount() const
{
    switch (config_.historyScope) {
      case HistoryScope::Global:
        return 1;
      case HistoryScope::PerSet:
        return set_histories_.size();
      case HistoryScope::PerAddress:
      default:
        return address_histories_.size();
    }
}

namespace
{

constexpr std::uint32_t kCheckpointVersion = 1;

/** Scope/geometry fingerprint, salted per class (0x6e2a1 = GTL). */
std::uint64_t
configFingerprint(const GeneralizedConfig &config)
{
    std::uint64_t fp = 0x6e2a1;
    const auto mixIn = [&fp](std::uint64_t value) {
        fp = mix64(fp ^ value);
    };
    mixIn(static_cast<std::uint64_t>(config.historyScope));
    mixIn(static_cast<std::uint64_t>(config.patternScope));
    mixIn(config.historyBits);
    mixIn(static_cast<std::uint64_t>(config.automaton));
    mixIn(config.setBits);
    mixIn(config.xorAddress ? 1 : 0);
    mixIn(config.addrShift);
    return fp;
}

} // namespace

bool
GeneralizedTwoLevelPredictor::saveCheckpoint(std::ostream &os) const
{
    ckpt::writeHeader(os, kCheckpointVersion,
                      configFingerprint(config_));
    ckpt::putScalar(os, global_history_);

    ckpt::putScalar(
        os, static_cast<std::uint64_t>(set_histories_.size()));
    for (const std::uint32_t history : set_histories_)
        ckpt::putScalar(os, history);

    // The demand-grown maps serialize as pc-sorted ordered
    // projections, so the bytes are independent of hash iteration
    // order (determinism contract).
    std::vector<std::pair<std::uint64_t, std::uint32_t>> histories;
    histories.reserve(address_histories_.size());
    for (const auto &[pc, history] : address_histories_)
        histories.emplace_back(pc, history);
    std::sort(histories.begin(), histories.end());
    ckpt::putScalar(os,
                    static_cast<std::uint64_t>(histories.size()));
    for (const auto &[pc, history] : histories) {
        ckpt::putScalar(os, pc);
        ckpt::putScalar(os, history);
    }

    ckpt::putScalar(
        os, static_cast<std::uint64_t>(fixed_tables_.size()));
    for (const PatternTable &table : fixed_tables_)
        table.saveState(os);

    std::vector<std::pair<std::uint64_t, const PatternTable *>>
        tables;
    tables.reserve(address_tables_.size());
    for (const auto &[pc, table] : address_tables_)
        tables.emplace_back(pc, &table);
    std::sort(tables.begin(), tables.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    ckpt::putScalar(os, static_cast<std::uint64_t>(tables.size()));
    for (const auto &[pc, table] : tables) {
        ckpt::putScalar(os, pc);
        table->saveState(os);
    }

    ckpt::writeEnd(os);
    return static_cast<bool>(os);
}

bool
GeneralizedTwoLevelPredictor::loadCheckpoint(std::istream &is)
{
    if (!ckpt::readHeader(is, kCheckpointVersion,
                          configFingerprint(config_)))
        return false;

    // Parse everything into temporaries; commit only after the end
    // sentinel and the fully-consumed check pass.
    std::uint32_t global_history = 0;
    if (!ckpt::getScalar(is, global_history) ||
        (global_history & ~history_mask_) != 0)
        return false;

    std::uint64_t set_count = 0;
    if (!ckpt::getScalar(is, set_count) ||
        set_count != set_histories_.size())
        return false;
    std::vector<std::uint32_t> set_histories(
        static_cast<std::size_t>(set_count));
    for (std::uint32_t &history : set_histories) {
        if (!ckpt::getScalar(is, history) ||
            (history & ~history_mask_) != 0)
            return false;
    }

    std::uint64_t history_count = 0;
    if (!ckpt::getScalar(is, history_count) ||
        history_count > (std::uint64_t{1} << 32))
        return false;
    std::unordered_map<std::uint64_t, std::uint32_t>
        address_histories;
    address_histories.reserve(
        static_cast<std::size_t>(history_count));
    std::uint64_t previous_pc = 0;
    for (std::uint64_t i = 0; i < history_count; ++i) {
        std::uint64_t pc = 0;
        std::uint32_t history = 0;
        if (!ckpt::getScalar(is, pc) ||
            !ckpt::getScalar(is, history) ||
            (history & ~history_mask_) != 0)
            return false;
        if (i > 0 && pc <= previous_pc)
            return false; // must be strictly pc-sorted
        previous_pc = pc;
        address_histories.emplace(pc, history);
    }

    std::uint64_t fixed_count = 0;
    if (!ckpt::getScalar(is, fixed_count) ||
        fixed_count != fixed_tables_.size())
        return false;
    std::vector<PatternTable> fixed_tables = fixed_tables_;
    for (PatternTable &table : fixed_tables) {
        if (!table.loadState(is))
            return false;
    }

    std::uint64_t table_count = 0;
    if (!ckpt::getScalar(is, table_count) ||
        table_count > (std::uint64_t{1} << 32))
        return false;
    std::unordered_map<std::uint64_t, PatternTable> address_tables;
    address_tables.reserve(static_cast<std::size_t>(table_count));
    previous_pc = 0;
    for (std::uint64_t i = 0; i < table_count; ++i) {
        std::uint64_t pc = 0;
        if (!ckpt::getScalar(is, pc))
            return false;
        if (i > 0 && pc <= previous_pc)
            return false;
        previous_pc = pc;
        PatternTable table(config_.historyBits, config_.automaton);
        if (!table.loadState(is))
            return false;
        address_tables.emplace(pc, std::move(table));
    }

    if (!ckpt::readEnd(is))
        return false;

    global_history_ = global_history;
    set_histories_ = std::move(set_histories);
    address_histories_ = std::move(address_histories);
    fixed_tables_ = std::move(fixed_tables);
    address_tables_ = std::move(address_tables);
    return true;
}

} // namespace tlat::core
