#include "generalized_two_level.hh"

#include "contracts.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace tlat::core
{

GeneralizedTwoLevelPredictor::GeneralizedTwoLevelPredictor(
    const GeneralizedConfig &config)
    : config_(config),
      history_mask_(static_cast<std::uint32_t>(
          lowMask(config.historyBits))),
      set_mask_(static_cast<std::uint32_t>(lowMask(config.setBits))),
      global_history_(history_mask_)
{
    tlat_assert(config_.historyBits >= 1 && config_.historyBits <= 24,
                "history length out of range");
    tlat_assert(config_.setBits <= 12, "set bits out of range");
    tlat_assert(!config_.xorAddress ||
                    config_.historyScope == HistoryScope::Global,
                "xorAddress is a global-history (gshare) refinement");

    if (config_.historyScope == HistoryScope::PerSet) {
        set_histories_.assign(std::size_t{1} << config_.setBits,
                              history_mask_);
    }

    switch (config_.patternScope) {
      case PatternScope::Global:
        fixed_tables_.emplace_back(config_.historyBits,
                                   config_.automaton);
        break;
      case PatternScope::PerSet:
        for (std::size_t s = 0;
             s < (std::size_t{1} << config_.setBits); ++s) {
            fixed_tables_.emplace_back(config_.historyBits,
                                       config_.automaton);
        }
        break;
      case PatternScope::PerAddress:
        break; // allocated on demand
    }
}

std::string
GeneralizedTwoLevelPredictor::name() const
{
    const char history_letter =
        config_.historyScope == HistoryScope::Global
            ? 'G'
            : config_.historyScope == HistoryScope::PerAddress ? 'P'
                                                               : 'S';
    const char pattern_letter =
        config_.patternScope == PatternScope::Global
            ? 'g'
            : config_.patternScope == PatternScope::PerSet ? 's'
                                                           : 'p';
    std::string text =
        format("%cA%c(%u,%s)", history_letter, pattern_letter,
               config_.historyBits, automatonName(config_.automaton));
    if (config_.xorAddress)
        text += "+xor";
    return text;
}

std::uint32_t &
GeneralizedTwoLevelPredictor::historyFor(std::uint64_t pc)
{
    switch (config_.historyScope) {
      case HistoryScope::Global:
        return global_history_;
      case HistoryScope::PerSet:
        return set_histories_[(pc >> config_.addrShift) & set_mask_];
      case HistoryScope::PerAddress:
      default: {
        auto [it, inserted] =
            address_histories_.try_emplace(pc, history_mask_);
        return it->second;
      }
    }
}

PatternTable &
GeneralizedTwoLevelPredictor::tableFor(std::uint64_t pc)
{
    switch (config_.patternScope) {
      case PatternScope::Global:
        return fixed_tables_[0];
      case PatternScope::PerSet:
        return fixed_tables_[(pc >> config_.addrShift) & set_mask_];
      case PatternScope::PerAddress:
      default: {
        auto it = address_tables_.find(pc);
        if (it == address_tables_.end()) {
            it = address_tables_
                     .emplace(pc,
                              PatternTable(config_.historyBits,
                                           config_.automaton))
                     .first;
        }
        return it->second;
      }
    }
}

std::uint32_t
GeneralizedTwoLevelPredictor::patternFor(std::uint32_t history,
                                         std::uint64_t pc) const
{
    std::uint32_t pattern = history;
    if (config_.xorAddress) {
        pattern ^= static_cast<std::uint32_t>(pc >> config_.addrShift) &
                   history_mask_;
    }
    return pattern;
}

bool
GeneralizedTwoLevelPredictor::predict(
    const trace::BranchRecord &record)
{
    const std::uint32_t history = historyFor(record.pc);
    return tableFor(record.pc)
        .predict(patternFor(history, record.pc));
}

void
GeneralizedTwoLevelPredictor::update(const trace::BranchRecord &record)
{
    std::uint32_t &history = historyFor(record.pc);
    tableFor(record.pc)
        .update(patternFor(history, record.pc), record.taken);
    history = ((history << 1) | (record.taken ? 1u : 0u)) &
              history_mask_;
}

template <AutomatonPolicy Ops>
void
GeneralizedTwoLevelPredictor::fusedBatch(
    const Ops &ops, std::span<const trace::BranchRecord> records,
    AccuracyCounter &accuracy)
{
    const std::uint32_t mask = history_mask_;
    for (const trace::BranchRecord &record : records) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        // One scope resolution per branch: the reference pair re-runs
        // historyFor()/tableFor() (hash lookups for the per-address
        // scopes) in both predict() and update().
        std::uint32_t &history = historyFor(record.pc);
        PatternTable &table = tableFor(record.pc);
        const std::uint32_t pattern = patternFor(history, record.pc);
        std::uint8_t &state = table.stateAt(pattern);
        const bool predicted = ops.predict(state);
        accuracy.record(predicted == record.taken);
        state = ops.next(state, record.taken);
        history =
            ((history << 1) | (record.taken ? 1u : 0u)) & mask;
    }
}

template <AutomatonPolicy Ops>
void
GeneralizedTwoLevelPredictor::fusedBatchSoa(
    const Ops &ops, const trace::PredecodedView &view,
    AccuracyCounter &accuracy)
{
    const std::uint32_t mask = history_mask_;
    const bool use_xor = config_.xorAddress;
    const trace::PredecodedTrace &soa = view.soa();
    const std::span<const trace::BranchId> ids = soa.branchIds();
    const std::span<const std::uint64_t> pcs = soa.uniquePcs();

    // Lazy per-unique-branch scope lanes: each static branch resolves
    // its (history register, pattern table, xor term) triple at first
    // appearance — the same moment the reference loop would insert it
    // into the per-address maps, so demand-grown state is created in
    // the identical order. The cached references stay valid because
    // the global/per-set stores are preallocated and unordered_map
    // nodes are stable across growth.
    std::vector<std::uint32_t *> histories(soa.uniquePcCount(),
                                           nullptr);
    std::vector<PatternTable *> tables(soa.uniquePcCount(), nullptr);
    std::vector<std::uint32_t> xor_terms(
        use_xor ? soa.uniquePcCount() : 0, 0);

    for (std::size_t i = 0; i < ids.size(); ++i) {
        const trace::BranchId id = ids[i];
        std::uint32_t *&history = histories[id];
        if (history == nullptr) {
            const std::uint64_t pc = pcs[id];
            history = &historyFor(pc);
            tables[id] = &tableFor(pc);
            if (use_xor) {
                xor_terms[id] =
                    static_cast<std::uint32_t>(
                        pc >> config_.addrShift) &
                    mask;
            }
        }
        const bool taken = soa.taken(i);
        std::uint32_t pattern = *history;
        if (use_xor)
            pattern ^= xor_terms[id];
        std::uint8_t &state = tables[id]->stateAt(pattern);
        const bool predicted = ops.predict(state);
        accuracy.record(predicted == taken);
        state = ops.next(state, taken);
        *history = ((*history << 1) | (taken ? 1u : 0u)) & mask;
    }
}

void
GeneralizedTwoLevelPredictor::simulateBatch(
    const trace::PredecodedView &view, AccuracyCounter &accuracy)
{
    switch (config_.automaton) {
      case AutomatonKind::LastTime:
        fusedBatchSoa(AutomatonOps<AutomatonKind::LastTime>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A1:
        fusedBatchSoa(AutomatonOps<AutomatonKind::A1>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A2:
        fusedBatchSoa(AutomatonOps<AutomatonKind::A2>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A3:
        fusedBatchSoa(AutomatonOps<AutomatonKind::A3>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A4:
        fusedBatchSoa(AutomatonOps<AutomatonKind::A4>{}, view,
                      accuracy);
        break;
      default:
        simulateBatch(view.records(), accuracy);
        break;
    }
}

void
GeneralizedTwoLevelPredictor::simulateBatch(
    std::span<const trace::BranchRecord> records,
    AccuracyCounter &accuracy)
{
    switch (config_.automaton) {
      case AutomatonKind::LastTime:
        fusedBatch(AutomatonOps<AutomatonKind::LastTime>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A1:
        fusedBatch(AutomatonOps<AutomatonKind::A1>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A2:
        fusedBatch(AutomatonOps<AutomatonKind::A2>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A3:
        fusedBatch(AutomatonOps<AutomatonKind::A3>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A4:
        fusedBatch(AutomatonOps<AutomatonKind::A4>{}, records,
                   accuracy);
        break;
      default:
        BranchPredictor::simulateBatch(records, accuracy);
        break;
    }
}

void
GeneralizedTwoLevelPredictor::reset()
{
    global_history_ = history_mask_;
    if (config_.historyScope == HistoryScope::PerSet) {
        set_histories_.assign(set_histories_.size(), history_mask_);
    }
    address_histories_.clear();
    for (PatternTable &table : fixed_tables_)
        table.reset();
    address_tables_.clear();
}

std::size_t
GeneralizedTwoLevelPredictor::patternTableCount() const
{
    return config_.patternScope == PatternScope::PerAddress
        ? address_tables_.size()
        : fixed_tables_.size();
}

std::size_t
GeneralizedTwoLevelPredictor::historyRegisterCount() const
{
    switch (config_.historyScope) {
      case HistoryScope::Global:
        return 1;
      case HistoryScope::PerSet:
        return set_histories_.size();
      case HistoryScope::PerAddress:
      default:
        return address_histories_.size();
    }
}

} // namespace tlat::core
