/**
 * @file
 * The scheme naming convention of paper Table 2:
 *
 *   Scheme(History(Size,Entry_Content), Pattern(Size,Entry_Content), Data)
 *
 * Examples (all from Table 2):
 *   AT(AHRT(512,12SR),PT(2^12,A2),)
 *   AT(IHRT(,12SR),PT(2^12,A2),)
 *   ST(HHRT(512,12SR),PT(2^12,PB),Diff)
 *   LS(AHRT(512,A2),,)
 *
 * plus the static schemes, which the paper names in prose:
 *   AlwaysTaken, AlwaysNotTaken, BTFN, Profile
 *
 * and two post-paper extensions in the same spirit:
 *   GSH(12,A2)            gshare: one global 12-bit history XORed
 *                         with the branch address into one PT
 *   CMB(A,B,CT(2^12))     tournament of any two schemes A and B,
 *                         arbitrated by 2^12 2-bit chooser counters
 *
 * CMB components are themselves full scheme names, e.g.
 *   CMB(AT(AHRT(512,12SR),PT(2^12,A2),),LS(AHRT(512,A2),,),CT(2^12))
 *
 * SchemeConfig is the parsed form; makePredictor() (in
 * predictors/scheme_factory.hh) turns one into a live predictor.
 */

#ifndef TLAT_CORE_SCHEME_CONFIG_HH
#define TLAT_CORE_SCHEME_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "automaton.hh"
#include "history_table.hh"

namespace tlat::core
{

/** Prediction scheme families. */
enum class Scheme : std::uint8_t
{
    TwoLevelAdaptive, ///< AT — the paper's contribution
    StaticTraining,   ///< ST — Lee & Smith, preset pattern bits
    LeeSmithBtb,      ///< LS — per-address automaton, no pattern level
    AlwaysTaken,
    AlwaysNotTaken,
    Btfn,             ///< backward taken / forward not taken
    Profile,          ///< per-branch majority from a profiling run
    Gshare,           ///< GSH — global history XOR address, one PT
    Combining         ///< CMB — tournament of two components
};

/** How training data relates to testing data (ST only). */
enum class DataMode : std::uint8_t
{
    None, ///< scheme needs no training data
    Same, ///< trained and tested on the same data set
    Diff  ///< trained on the training set, tested on the testing set
};

/** A parsed Table 2 scheme name. */
struct SchemeConfig
{
    Scheme scheme = Scheme::TwoLevelAdaptive;

    // History table part (AT, ST, LS).
    TableKind hrtKind = TableKind::Associative;
    std::size_t hrtEntries = 512; ///< ignored for IHRT
    unsigned associativity = 4;

    /** History register length (AT, ST). */
    unsigned historyBits = 12;

    /** PT automaton (AT) or HRT entry automaton (LS). */
    AutomatonKind automaton = AutomatonKind::A2;

    /** Training/testing data relationship (ST; Profile implies Same). */
    DataMode data = DataMode::None;

    /**
     * Component schemes (CMB only, exactly two, recursive — a
     * component may itself be a CMB). Empty for every other scheme.
     */
    std::vector<SchemeConfig> components;

    /** log2 of the chooser table size (CMB only). */
    unsigned chooserBits = 12;

    /** Canonical Table 2 rendering. */
    std::string text() const;

    /** Parses a scheme name; nullopt on malformed input. */
    static std::optional<SchemeConfig> parse(const std::string &name);

    bool operator==(const SchemeConfig &other) const = default;
};

} // namespace tlat::core

#endif // TLAT_CORE_SCHEME_CONFIG_HH
