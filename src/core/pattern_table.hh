/**
 * @file
 * The global pattern table (PT): the second level of Two-Level
 * Adaptive Training.
 *
 * One entry per possible history pattern (2^k entries for k history
 * bits); every entry holds the state of one pattern-history automaton.
 * All branches share this table — the paper calls it a *global*
 * pattern table because every history register indexes into the same
 * array.
 */

#ifndef TLAT_CORE_PATTERN_TABLE_HH
#define TLAT_CORE_PATTERN_TABLE_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "automaton.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace tlat::core
{

/**
 * 2^k-entry table of pattern-history state.
 *
 * Entries are either one of the paper's Figure 2 automata, or — as
 * an extension — an n-bit saturating up/down counter (predict taken
 * in the upper half of the range; the 2-bit counter is exactly A2).
 */
class PatternTable
{
  public:
    /**
     * Automaton-entry table (the paper's configurations).
     *
     * @param history_bits History register length k (1..24).
     * @param kind Automaton stored in each entry.
     * @param initial_state Initial automaton state; defaults to the
     *        paper's taken-biased initialization (Section 4.2).
     */
    PatternTable(unsigned history_bits, AutomatonKind kind,
                 std::int32_t initial_state = -1)
        : history_bits_(history_bits), kind_(kind)
    {
        tlat_assert(history_bits >= 1 && history_bits <= 24,
                    "history length out of range: ", history_bits);
        const auto &spec = automatonSpec(kind);
        initial_state_ =
            initial_state < 0
                ? spec.initialState
                : static_cast<std::uint8_t>(initial_state);
        tlat_assert(initial_state_ < spec.numStates,
                    "initial state out of range");
        states_.assign((std::size_t{1} << history_bits) +
                           util::simd::kGatherSlackBytes,
                       initial_state_);
    }

    /** Tag type selecting the counter-entry constructor. */
    struct CounterEntries
    {
        unsigned bits;
    };

    /**
     * Counter-entry table (extension): each entry is a
     * @p counter.bits wide saturating up/down counter, initialized
     * taken-biased (saturated high, matching Section 4.2's policy).
     */
    PatternTable(unsigned history_bits, CounterEntries counter)
        : history_bits_(history_bits), counter_bits_(counter.bits)
    {
        tlat_assert(history_bits >= 1 && history_bits <= 24,
                    "history length out of range: ", history_bits);
        tlat_assert(counter.bits >= 1 && counter.bits <= 8,
                    "counter width out of range: ", counter.bits);
        initial_state_ = static_cast<std::uint8_t>(
            (1u << counter_bits_) - 1);
        states_.assign((std::size_t{1} << history_bits) +
                           util::simd::kGatherSlackBytes,
                       initial_state_);
    }

    /** lambda applied to the entry indexed by @p pattern. */
    bool
    predict(std::uint32_t pattern) const
    {
        const std::uint8_t state = states_[index(pattern)];
        if (counter_bits_ > 0)
            return state >= (1u << (counter_bits_ - 1));
        return automatonSpec(kind_).predictTaken[state];
    }

    /** delta applied to the entry indexed by @p pattern. */
    void
    update(std::uint32_t pattern, bool taken)
    {
        std::uint8_t &state = states_[index(pattern)];
        if (counter_bits_ > 0) {
            const std::uint8_t max = static_cast<std::uint8_t>(
                (1u << counter_bits_) - 1);
            if (taken && state < max)
                ++state;
            else if (!taken && state > 0)
                --state;
            return;
        }
        state = automatonSpec(kind_).nextState[state][taken ? 1 : 0];
    }

    /**
     * lambda through a compile-time policy (AutomatonOps<K> or
     * CounterOps) — the fused simulation loop's devirtualized twin of
     * predict(). The caller must pass the policy matching this
     * table's entry kind; behaviour is then bit-identical to
     * predict().
     */
    template <AutomatonPolicy Ops>
    bool
    predictWith(const Ops &ops, std::uint32_t pattern) const
    {
        return ops.predict(states_[index(pattern)]);
    }

    /** delta through a compile-time policy; twin of update(). */
    template <AutomatonPolicy Ops>
    void
    updateWith(const Ops &ops, std::uint32_t pattern, bool taken)
    {
        std::uint8_t &state = states_[index(pattern)];
        state = ops.next(state, taken);
    }

    /**
     * Direct entry access for the fused loop: index once, then apply
     * lambda and delta to the same reference — equivalent to
     * predictWith() followed by updateWith() on the same pattern,
     * minus the second index computation.
     */
    std::uint8_t &
    stateAt(std::uint32_t pattern)
    {
        return states_[index(pattern)];
    }

    /** Raw state of one entry (tests, inspection). */
    std::uint8_t
    state(std::uint32_t pattern) const
    {
        return states_[index(pattern)];
    }

    std::size_t size() const { return std::size_t{1} << history_bits_; }

    /**
     * Raw entry storage for the SIMD fused pass (util/simd.hh). The
     * array extends util::simd::kGatherSlackBytes past the last real
     * entry so a scale-1 dword gather at the highest index stays in
     * bounds; the slack bytes are never real entries — size(),
     * checkpoints and the histogram all use the logical 2^k count.
     */
    std::uint8_t *statesData() { return states_.data(); }
    unsigned historyBits() const { return history_bits_; }
    AutomatonKind automatonKind() const { return kind_; }

    /** Counter width, or 0 for automaton-entry tables. */
    unsigned counterBits() const { return counter_bits_; }

    /** Distinct states an entry can be in. */
    unsigned
    statesPerEntry() const
    {
        return counter_bits_ > 0 ? (1u << counter_bits_)
                                 : automatonSpec(kind_).numStates;
    }

    /**
     * Occupancy histogram: element i counts entries currently in
     * state i (sums to size()). Computed on demand — a pure snapshot
     * of the table, costing nothing during the measured run.
     */
    std::vector<std::uint64_t>
    stateHistogram() const
    {
        std::vector<std::uint64_t> histogram(statesPerEntry(), 0);
        for (std::size_t i = 0; i < size(); ++i) {
            const std::uint8_t state = states_[i];
            if (state < histogram.size())
                ++histogram[state];
        }
        return histogram;
    }

    void
    reset()
    {
        states_.assign(states_.size(), initial_state_);
    }

    /** Writes the entry states (for predictor checkpointing). */
    void
    saveState(std::ostream &os) const
    {
        os.write(reinterpret_cast<const char *>(states_.data()),
                 static_cast<std::streamsize>(size()));
    }

    /** Restores entry states; false on short input. */
    bool
    loadState(std::istream &is)
    {
        is.read(reinterpret_cast<char *>(states_.data()),
                static_cast<std::streamsize>(size()));
        return static_cast<bool>(is);
    }

  private:
    std::size_t
    index(std::uint32_t pattern) const
    {
        return pattern & (size() - 1);
    }

    unsigned history_bits_;
    AutomatonKind kind_ = AutomatonKind::A2;
    unsigned counter_bits_ = 0;
    std::uint8_t initial_state_;
    std::vector<std::uint8_t> states_;
};

} // namespace tlat::core

#endif // TLAT_CORE_PATTERN_TABLE_HH
