/**
 * @file
 * Generalized two-level adaptive prediction — the design space the
 * paper's scheme sits in.
 *
 * The MICRO-24 predictor keeps *per-address* history registers and a
 * *global* pattern table; in the taxonomy of the authors' follow-up
 * work ("Alternative Implementations of Two-Level Adaptive Branch
 * Prediction", ISCA 1992) that is "PAg". This class implements the
 * full first-level x second-level scope matrix:
 *
 *   history scope:  Global (one register)   -> GA.
 *                   PerAddress (paper)      -> PA.
 *                   PerSet (address-hashed) -> SA.
 *   pattern scope:  global (paper)          -> ..g
 *                   per-set                 -> ..s
 *                   per-address             -> ..p
 *
 * plus an optional XOR of branch-address bits into the pattern-table
 * index for global-history configurations (the later "gshare"
 * refinement), exposed because it is the one-line change the
 * two-level structure made famous.
 *
 * All variants use ideal (unbounded) per-address structures; the
 * implementation-cost questions (AHRT/HHRT) are studied on the
 * flagship PAg scheme in TwoLevelPredictor. PAg here and
 * TwoLevelPredictor with an IHRT make identical predictions — a
 * property the tests pin down.
 */

#ifndef TLAT_CORE_GENERALIZED_TWO_LEVEL_HH
#define TLAT_CORE_GENERALIZED_TWO_LEVEL_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "branch_predictor.hh"
#include "pattern_table.hh"

namespace tlat::core
{

/** First-level (history register) scope. */
enum class HistoryScope : std::uint8_t
{
    Global,     ///< one register shared by all branches (G..)
    PerAddress, ///< one register per static branch (P.., the paper)
    PerSet      ///< one register per address set (S..)
};

/** Second-level (pattern table) scope. */
enum class PatternScope : std::uint8_t
{
    Global,     ///< one table (..g, the paper)
    PerSet,     ///< one table per address set (..s)
    PerAddress  ///< one table per static branch (..p)
};

/** Configuration of a generalized two-level predictor. */
struct GeneralizedConfig
{
    HistoryScope historyScope = HistoryScope::PerAddress;
    PatternScope patternScope = PatternScope::Global;
    unsigned historyBits = 12;
    AutomatonKind automaton = AutomatonKind::A2;
    /** Address bits selecting the set for PerSet scopes. */
    unsigned setBits = 4;
    /** XOR address bits into the pattern index (gshare flavour). */
    bool xorAddress = false;
    /** Low branch-address bits dropped before any indexing. */
    unsigned addrShift = 2;
};

/** The GAg/GAs/.../PAp family. */
class GeneralizedTwoLevelPredictor : public BranchPredictor
{
  public:
    explicit GeneralizedTwoLevelPredictor(
        const GeneralizedConfig &config);

    /** Taxonomy name, e.g. "PAg(12,A2)" or "GAg(12,A2)+xor". */
    std::string name() const override;

    bool predict(const trace::BranchRecord &record) override;
    void update(const trace::BranchRecord &record) override;
    void reset() override;

    /**
     * Fused fast path: resolves the (history register, pattern
     * table) pair once per branch instead of once in predict() and
     * again in update(), with the automaton dispatched per batch so
     * lambda/delta inline. Bit-identical to the reference loop.
     */
    void simulateBatch(std::span<const trace::BranchRecord> records,
                       AccuracyCounter &accuracy) override;

    /**
     * SoA fused fast path over a predecoded trace: the (history
     * register, pattern table, xor term) triple of each *unique*
     * branch is resolved once per batch into dense id-indexed lanes
     * (the per-address scopes otherwise pay an unordered_map probe
     * per dynamic branch), and outcomes stream from the packed
     * bitvector. Same bit-equivalence contract as the AoS overload.
     */
    void simulateBatch(const trace::PredecodedView &view,
                       AccuracyCounter &accuracy) override;

    const GeneralizedConfig &config() const { return config_; }

    /**
     * Checkpointing in the core/checkpoint.hh framing: the history
     * registers and pattern tables of whatever scopes the config
     * uses, with the demand-grown per-address maps serialized as
     * pc-sorted ordered projections (determinism contract). Loads
     * are atomic: parsed into temporaries, committed only after the
     * whole stream — end sentinel included — validated.
     */
    bool saveCheckpoint(std::ostream &os) const override;
    bool loadCheckpoint(std::istream &is) override;

    /** Number of distinct pattern tables instantiated so far. */
    std::size_t patternTableCount() const;

    /** Number of distinct history registers instantiated so far. */
    std::size_t historyRegisterCount() const;

  private:
    std::uint32_t &historyFor(std::uint64_t pc);
    PatternTable &tableFor(std::uint64_t pc);
    std::uint32_t patternFor(std::uint32_t history,
                             std::uint64_t pc) const;

    /** Fused loop body, monomorphized over the automaton policy. */
    template <AutomatonPolicy Ops>
    void fusedBatch(const Ops &ops,
                    std::span<const trace::BranchRecord> records,
                    AccuracyCounter &accuracy);

    /** SoA twin of fusedBatch (lazy per-unique-branch scope lanes). */
    template <AutomatonPolicy Ops>
    void fusedBatchSoa(const Ops &ops,
                       const trace::PredecodedView &view,
                       AccuracyCounter &accuracy);

    GeneralizedConfig config_;
    std::uint32_t history_mask_;
    std::uint32_t set_mask_;

    // First level.
    std::uint32_t global_history_;
    std::vector<std::uint32_t> set_histories_;
    std::unordered_map<std::uint64_t, std::uint32_t>
        address_histories_;

    // Second level. Tables are created on demand for the per-address
    // scope; the global/per-set tables are eager.
    std::vector<PatternTable> fixed_tables_;
    std::unordered_map<std::uint64_t, PatternTable> address_tables_;
};

} // namespace tlat::core

#endif // TLAT_CORE_GENERALIZED_TWO_LEVEL_HH
