#include "combining_predictor.hh"

#include <sstream>
#include <utility>

#include "checkpoint.hh"
#include "trace/predecode.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace tlat::core
{
namespace
{

constexpr std::uint32_t kCheckpointVersion = 1;
// Per-class fingerprint salt: a combining checkpoint can never be
// mistaken for (or fed to) one of its components.
constexpr std::uint64_t kFingerprintSalt = 0xc0b1;

} // namespace

CombiningPredictor::CombiningPredictor(
    std::unique_ptr<BranchPredictor> a,
    std::unique_ptr<BranchPredictor> b,
    const CombiningOptions &options, std::string display_name)
    : a_(std::move(a)), b_(std::move(b)), options_(options),
      display_name_(std::move(display_name))
{
    tlat_assert(a_ && b_, "combining needs two components");
    tlat_assert(options_.chooserBits >= 1 &&
                    options_.chooserBits <= 24,
                "chooser table size out of range");
    tlat_assert(options_.initialState <= 3,
                "chooser counters are 2-bit");
    chooser_.assign(std::size_t{1} << options_.chooserBits,
                    options_.initialState);
}

std::string
CombiningPredictor::name() const
{
    if (!display_name_.empty())
        return display_name_;
    return "CMB(" + a_->name() + "," + b_->name() + ",CT(2^" +
           std::to_string(options_.chooserBits) + "))";
}

std::size_t
CombiningPredictor::slotOf(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        (pc >> options_.addrShift) & (chooser_.size() - 1));
}

std::uint8_t
CombiningPredictor::chooserState(std::uint64_t pc) const
{
    return chooser_[slotOf(pc)];
}

bool
CombiningPredictor::predict(const trace::BranchRecord &record)
{
    memo_a_ = a_->predict(record);
    memo_b_ = b_->predict(record);
    memo_pc_ = record.pc;
    has_memo_ = true;
    return chooser_[slotOf(record.pc)] >= 2 ? memo_a_ : memo_b_;
}

void
CombiningPredictor::update(const trace::BranchRecord &record)
{
    if (!has_memo_ || memo_pc_ != record.pc) {
        // Unpaired update: give the components the predict() they
        // would have seen so their own memo pairing stays intact.
        memo_a_ = a_->predict(record);
        memo_b_ = b_->predict(record);
    }
    has_memo_ = false;
    trainChooser(slotOf(record.pc), memo_a_ == record.taken,
                 memo_b_ == record.taken);
    // Both components always train on the real outcome, whichever
    // one the chooser used — the independence the fused path relies
    // on, and what keeps the losing component warm enough to win
    // back branches it handles better.
    a_->update(record);
    b_->update(record);
}

void
CombiningPredictor::trainChooser(std::size_t slot, bool correct_a,
                                 bool correct_b)
{
    if (correct_a)
        ++correct_a_;
    if (correct_b)
        ++correct_b_;
    if (correct_a == correct_b)
        return;
    ++disagreements_;
    std::uint8_t &counter = chooser_[slot];
    const bool selected_a = counter >= 2;
    if (selected_a)
        ++overrides_a_;
    else
        ++overrides_b_;
    const std::uint8_t next =
        correct_a ? (counter < 3 ? counter + 1 : counter)
                  : (counter > 0 ? counter - 1 : counter);
    if ((next >= 2) != selected_a)
        ++chooser_flips_;
    counter = next;
}

template <typename SlotFn>
void
CombiningPredictor::chooserReplay(const std::uint8_t *a_bits,
                                  const std::uint8_t *b_bits,
                                  std::size_t count, SlotFn &&slots,
                                  AccuracyCounter &accuracy)
{
    for (std::size_t i = 0; i < count; ++i) {
        const bool correct_a = a_bits[i] != 0;
        const bool correct_b = b_bits[i] != 0;
        const std::size_t slot = slots(i);
        const bool select_a = chooser_[slot] >= 2;
        accuracy.record(select_a ? correct_a : correct_b);
        trainChooser(slot, correct_a, correct_b);
    }
}

void
CombiningPredictor::simulateBatch(
    std::span<const trace::BranchRecord> records,
    AccuracyCounter &accuracy)
{
    if (has_memo_) {
        // Mid predict/update pair: only the reference loop resolves
        // the outstanding memo correctly.
        BranchPredictor::simulateBatch(records, accuracy);
        return;
    }
    // The components update with real outcomes regardless of the
    // chooser, so their evolution over the batch is independent of
    // it: run each component's own fused path once, capturing its
    // per-record correctness bits, then replay the two bit streams
    // through the chooser in trace order.
    std::vector<std::size_t> slots;
    slots.reserve(records.size());
    for (const trace::BranchRecord &record : records) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        slots.push_back(slotOf(record.pc));
    }
    std::vector<std::uint8_t> a_bits(slots.size());
    std::vector<std::uint8_t> b_bits(slots.size());
    AccuracyCounter a_accuracy;
    a_accuracy.captureInto(a_bits.data());
    a_->simulateBatch(records, a_accuracy);
    AccuracyCounter b_accuracy;
    b_accuracy.captureInto(b_bits.data());
    b_->simulateBatch(records, b_accuracy);
    chooserReplay(
        a_bits.data(), b_bits.data(), slots.size(),
        [&](std::size_t i) { return slots[i]; }, accuracy);
}

void
CombiningPredictor::simulateBatch(const trace::PredecodedView &view,
                                  AccuracyCounter &accuracy)
{
    if (has_memo_) {
        simulateBatch(view.records(), accuracy);
        return;
    }
    const trace::PredecodedTrace &soa = view.soa();
    const std::span<const trace::BranchId> ids = soa.branchIds();
    // Chooser-slot lane: one index computation per unique PC instead
    // of one per branch, mirroring the component lane probers.
    const std::span<const std::uint64_t> pcs = soa.uniquePcs();
    std::vector<std::uint32_t> slot_of_id(pcs.size());
    for (std::size_t id = 0; id < pcs.size(); ++id)
        slot_of_id[id] =
            static_cast<std::uint32_t>(slotOf(pcs[id]));
    std::vector<std::uint8_t> a_bits(ids.size());
    std::vector<std::uint8_t> b_bits(ids.size());
    AccuracyCounter a_accuracy;
    a_accuracy.captureInto(a_bits.data());
    a_->simulateBatch(view, a_accuracy);
    AccuracyCounter b_accuracy;
    b_accuracy.captureInto(b_bits.data());
    b_->simulateBatch(view, b_accuracy);
    chooserReplay(
        a_bits.data(), b_bits.data(), ids.size(),
        [&](std::size_t i) { return slot_of_id[ids[i]]; }, accuracy);
}

void
CombiningPredictor::reset()
{
    a_->reset();
    b_->reset();
    chooser_.assign(chooser_.size(), options_.initialState);
    has_memo_ = false;
    correct_a_ = 0;
    correct_b_ = 0;
    disagreements_ = 0;
    overrides_a_ = 0;
    overrides_b_ = 0;
    chooser_flips_ = 0;
}

bool
CombiningPredictor::needsTraining() const
{
    return a_->needsTraining() || b_->needsTraining();
}

void
CombiningPredictor::train(const trace::TraceBuffer &trace)
{
    if (a_->needsTraining())
        a_->train(trace);
    if (b_->needsTraining())
        b_->train(trace);
}

void
CombiningPredictor::collectMetrics(RunMetrics &metrics) const
{
    // Component A (the "primary", by convention the two-level
    // scheme) supplies the table-level counters; the combining block
    // is additive on top.
    a_->collectMetrics(metrics);
    metrics.combPresent = true;
    metrics.combComponentA = a_->name();
    metrics.combComponentB = b_->name();
    metrics.combCorrectA = correct_a_;
    metrics.combCorrectB = correct_b_;
    metrics.combDisagreements = disagreements_;
    metrics.combOverridesA = overrides_a_;
    metrics.combOverridesB = overrides_b_;
    metrics.combChooserFlips = chooser_flips_;
}

namespace
{

std::uint64_t
combiningFingerprint(const CombiningOptions &options,
                     const std::string &name_a,
                     const std::string &name_b)
{
    std::uint64_t hash = mix64(kFingerprintSalt);
    hash = mix64(hash ^ options.chooserBits);
    hash = mix64(hash ^ options.addrShift);
    hash = mix64(hash ^ options.initialState);
    hash = ckpt::mixString(hash, name_a);
    hash = ckpt::mixString(hash, name_b);
    return hash;
}

} // namespace

bool
CombiningPredictor::saveCheckpoint(std::ostream &os) const
{
    if (has_memo_)
        return false; // unresolved predict() outstanding
    std::ostringstream a_blob;
    std::ostringstream b_blob;
    if (!a_->saveCheckpoint(a_blob) || !b_->saveCheckpoint(b_blob))
        return false;
    ckpt::writeHeader(os, kCheckpointVersion,
                      combiningFingerprint(options_, a_->name(),
                                           b_->name()));
    ckpt::writeBlob(os, a_blob.str());
    ckpt::writeBlob(os, b_blob.str());
    os.write(reinterpret_cast<const char *>(chooser_.data()),
             static_cast<std::streamsize>(chooser_.size()));
    ckpt::putScalar(os, correct_a_);
    ckpt::putScalar(os, correct_b_);
    ckpt::putScalar(os, disagreements_);
    ckpt::putScalar(os, overrides_a_);
    ckpt::putScalar(os, overrides_b_);
    ckpt::putScalar(os, chooser_flips_);
    ckpt::writeEnd(os);
    return static_cast<bool>(os);
}

bool
CombiningPredictor::loadCheckpoint(std::istream &is)
{
    if (!ckpt::readHeader(is, kCheckpointVersion,
                          combiningFingerprint(options_, a_->name(),
                                               b_->name())))
        return false;
    std::string a_bytes;
    std::string b_bytes;
    if (!ckpt::readBlob(is, a_bytes) || !ckpt::readBlob(is, b_bytes))
        return false;
    std::vector<std::uint8_t> chooser(chooser_.size());
    is.read(reinterpret_cast<char *>(chooser.data()),
            static_cast<std::streamsize>(chooser.size()));
    if (!is)
        return false;
    for (const std::uint8_t counter : chooser)
        if (counter > 3)
            return false;
    std::uint64_t counters[6];
    for (std::uint64_t &value : counters)
        if (!ckpt::getScalar(is, value))
            return false;
    if (!ckpt::readEnd(is))
        return false;

    // Components load atomically on their own, but "A loaded, B
    // refused" would still leave *this* half-restored — so snapshot
    // A's current state first and roll it back if B fails.
    std::ostringstream a_undo;
    if (!a_->saveCheckpoint(a_undo))
        return false;
    std::istringstream a_stream(a_bytes);
    if (!a_->loadCheckpoint(a_stream))
        return false;
    std::istringstream b_stream(b_bytes);
    if (!b_->loadCheckpoint(b_stream)) {
        std::istringstream undo_stream(a_undo.str());
        const bool restored = a_->loadCheckpoint(undo_stream);
        tlat_assert(restored,
                    "combining load rollback must succeed");
        return false;
    }

    chooser_ = std::move(chooser);
    correct_a_ = counters[0];
    correct_b_ = counters[1];
    disagreements_ = counters[2];
    overrides_a_ = counters[3];
    overrides_b_ = counters[4];
    chooser_flips_ = counters[5];
    has_memo_ = false;
    return true;
}

} // namespace tlat::core
