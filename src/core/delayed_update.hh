/**
 * @file
 * Deep-pipeline update-delay model (paper Section 3.2).
 *
 * In a real pipeline a branch's outcome is not known until resolution,
 * several cycles after the next prediction for the same branch may be
 * needed. This wrapper delays every update() by a configurable number
 * of subsequent conditional branches, and implements the paper's
 * policy for the tight-loop case: "Since this kind of branch has a
 * high tendency to be taken, the branch is predicted taken" when the
 * same branch is predicted again while its previous outcome is still
 * unresolved.
 *
 * A delay of zero behaves identically to the wrapped predictor.
 */

#ifndef TLAT_CORE_DELAYED_UPDATE_HH
#define TLAT_CORE_DELAYED_UPDATE_HH

#include <deque>
#include <memory>

#include "branch_predictor.hh"

namespace tlat::core
{

/** Wraps any predictor with an update pipeline of fixed depth. */
class DelayedUpdatePredictor : public BranchPredictor
{
  public:
    /**
     * @param inner The predictor whose updates are delayed.
     * @param delay Number of subsequent branches before an outcome is
     *        applied (0 = immediate, the paper's base methodology).
     * @param predict_taken_when_unresolved Apply the Section 3.2
     *        tight-loop policy.
     */
    DelayedUpdatePredictor(std::unique_ptr<BranchPredictor> inner,
                           unsigned delay,
                           bool predict_taken_when_unresolved = true)
        : inner_(std::move(inner)), delay_(delay),
          predict_taken_when_unresolved_(
              predict_taken_when_unresolved)
    {
    }

    std::string
    name() const override
    {
        return inner_->name() + "+delay" + std::to_string(delay_);
    }

    bool
    predict(const trace::BranchRecord &record) override
    {
        if (predict_taken_when_unresolved_) {
            for (const trace::BranchRecord &pending : pending_) {
                if (pending.pc == record.pc)
                    return true;
            }
        }
        return inner_->predict(record);
    }

    void
    update(const trace::BranchRecord &record) override
    {
        if (delay_ == 0) {
            inner_->update(record);
            return;
        }
        pending_.push_back(record);
        while (pending_.size() > delay_) {
            inner_->update(pending_.front());
            pending_.pop_front();
        }
    }

    /** Applies all still-pending updates (end of trace). */
    void
    drain()
    {
        while (!pending_.empty()) {
            inner_->update(pending_.front());
            pending_.pop_front();
        }
    }

    void
    reset() override
    {
        pending_.clear();
        inner_->reset();
    }

    BranchPredictor &inner() { return *inner_; }

  private:
    std::unique_ptr<BranchPredictor> inner_;
    unsigned delay_;
    bool predict_taken_when_unresolved_;
    std::deque<trace::BranchRecord> pending_;
};

} // namespace tlat::core

#endif // TLAT_CORE_DELAYED_UPDATE_HH
