#include "automaton.hh"

#include "util/logging.hh"

namespace tlat::core
{

namespace
{

// Outcome index 0 = not taken, 1 = taken.
const AutomatonSpec kSpecs[] = {
    // Last-Time: state is simply the last outcome.
    {
        "LT", 2, 1,
        {{0, 1}, {0, 1}, {0, 0}, {0, 0}},
        {false, true, false, false},
    },
    // A1: 2-bit shift register of the last two outcomes; predict
    // not-taken only when no taken outcome is recorded (state 0).
    {
        "A1", 4, 3,
        {{0, 1}, {2, 3}, {0, 1}, {2, 3}},
        {false, true, true, true},
    },
    // A2: saturating up/down counter; predict taken iff state >= 2.
    {
        "A2", 4, 3,
        {{0, 1}, {0, 2}, {1, 3}, {2, 3}},
        {false, false, true, true},
    },
    // A3: A2 with fast recovery from strong-taken (3 --NT--> 1).
    {
        "A3", 4, 3,
        {{0, 1}, {0, 2}, {1, 3}, {1, 3}},
        {false, false, true, true},
    },
    // A4: big-jump hysteresis — a confirming outcome in a weak state
    // jumps straight to the strong state of that side (1 --T--> 3,
    // 2 --NT--> 0).
    {
        "A4", 4, 3,
        {{0, 1}, {0, 3}, {0, 3}, {2, 3}},
        {false, false, true, true},
    },
};

static_assert(sizeof(kSpecs) / sizeof(kSpecs[0]) ==
              static_cast<std::size_t>(AutomatonKind::NumKinds));

} // namespace

const AutomatonSpec &
automatonSpec(AutomatonKind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    tlat_assert(index <
                    static_cast<std::size_t>(AutomatonKind::NumKinds),
                "bad automaton kind ", index);
    return kSpecs[index];
}

std::optional<AutomatonKind>
automatonFromName(const std::string &name)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(AutomatonKind::NumKinds); ++i) {
        if (name == kSpecs[i].name)
            return static_cast<AutomatonKind>(i);
    }
    return std::nullopt;
}

const char *
automatonName(AutomatonKind kind)
{
    return automatonSpec(kind).name;
}

} // namespace tlat::core
