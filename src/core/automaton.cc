#include "automaton.hh"

#include "contracts.hh"
#include "util/logging.hh"

namespace tlat::core
{

// The spec table itself lives in the header (kAutomatonSpecs,
// constexpr) so the fused simulation loop's template dispatch can
// fold it at compile time; this file keeps the runtime lookups.

const AutomatonSpec &
automatonSpec(AutomatonKind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    tlat_assert(index <
                    static_cast<std::size_t>(AutomatonKind::NumKinds),
                "bad automaton kind ", index);
    return kAutomatonSpecs[index];
}

std::optional<AutomatonKind>
automatonFromName(const std::string &name)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(AutomatonKind::NumKinds); ++i) {
        if (name == kAutomatonSpecs[i].name)
            return static_cast<AutomatonKind>(i);
    }
    return std::nullopt;
}

const char *
automatonName(AutomatonKind kind)
{
    return automatonSpec(kind).name;
}

} // namespace tlat::core
