/**
 * @file
 * Tournament / combining predictor (McFarling-style, the
 * bpred_combining shape from SimpleScalar): two arbitrary component
 * predictors run side by side, both always predicting and always
 * updating with the real outcome, while a per-branch table of 2-bit
 * chooser counters decides whose prediction is used. The chooser
 * trains only when the components disagree, toward whichever one was
 * correct — so a branch that one component handles systematically
 * better (the paper's two-level schemes on pattern-driven sites,
 * cheap bimodal tables on Systematic/Chaotic H2P sites) migrates to
 * that component without hurting the other's training.
 */

#ifndef TLAT_CORE_COMBINING_PREDICTOR_HH
#define TLAT_CORE_COMBINING_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "branch_predictor.hh"

namespace tlat::core
{

/** Chooser-table geometry and initial bias. */
struct CombiningOptions
{
    /** log2 of the chooser table size (counters = 2^chooserBits). */
    unsigned chooserBits = 12;
    /** Low PC bits dropped before indexing (instruction alignment). */
    unsigned addrShift = 2;
    /**
     * Initial 2-bit counter value for every chooser entry; >= 2
     * selects component A. The default 2 starts weakly preferring
     * the first (two-level) component, matching bpred_combining.
     */
    std::uint8_t initialState = 2;
};

/**
 * Combining predictor over two components. Owns the components
 * (built by the scheme factory, so core stays independent of the
 * predictors layer) and a 2^chooserBits table of 2-bit counters
 * indexed by (pc >> addrShift).
 */
class CombiningPredictor : public BranchPredictor
{
  public:
    /**
     * @param display_name rendered by name(); pass the scheme
     * config's canonical text, or empty to synthesize one from the
     * component names.
     */
    CombiningPredictor(std::unique_ptr<BranchPredictor> a,
                       std::unique_ptr<BranchPredictor> b,
                       const CombiningOptions &options = {},
                       std::string display_name = {});

    std::string name() const override;
    bool predict(const trace::BranchRecord &record) override;
    void update(const trace::BranchRecord &record) override;
    void reset() override;

    void simulateBatch(std::span<const trace::BranchRecord> records,
                       AccuracyCounter &accuracy) override;
    void simulateBatch(const trace::PredecodedView &view,
                       AccuracyCounter &accuracy) override;

    bool needsTraining() const override;
    void train(const trace::TraceBuffer &trace) override;
    void collectMetrics(RunMetrics &metrics) const override;

    bool saveCheckpoint(std::ostream &os) const override;
    bool loadCheckpoint(std::istream &is) override;

    const BranchPredictor &componentA() const { return *a_; }
    const BranchPredictor &componentB() const { return *b_; }

    /** Chooser counter currently governing @p pc (0..3). */
    std::uint8_t chooserState(std::uint64_t pc) const;

    /** Updates where component A / B predicted correctly. */
    std::uint64_t correctA() const { return correct_a_; }
    std::uint64_t correctB() const { return correct_b_; }
    /** Updates where the components disagreed. */
    std::uint64_t disagreements() const { return disagreements_; }
    /** Disagreements resolved in favour of A / B by the chooser. */
    std::uint64_t overridesA() const { return overrides_a_; }
    std::uint64_t overridesB() const { return overrides_b_; }
    /** Chooser updates that flipped an entry's selected component. */
    std::uint64_t chooserFlips() const { return chooser_flips_; }

  private:
    std::size_t slotOf(std::uint64_t pc) const;
    /**
     * The single chooser training rule, shared verbatim by the
     * reference update() and both fused batch paths so their counter
     * streams stay bit-identical: count per-component correctness,
     * and on disagreement train the counter toward the correct
     * component, tallying which side the chooser had selected.
     */
    void trainChooser(std::size_t slot, bool correct_a,
                      bool correct_b);
    /**
     * Replays captured per-record component correctness bits through
     * the chooser, recording the chosen outcome into @p accuracy.
     * @p slots yields the chooser slot of conditional record i.
     */
    template <typename SlotFn>
    void chooserReplay(const std::uint8_t *a_bits,
                       const std::uint8_t *b_bits, std::size_t count,
                       SlotFn &&slots, AccuracyCounter &accuracy);

    std::unique_ptr<BranchPredictor> a_;
    std::unique_ptr<BranchPredictor> b_;
    CombiningOptions options_;
    std::string display_name_;
    std::vector<std::uint8_t> chooser_;

    // predict()/update() pairing memo for the reference path.
    bool has_memo_ = false;
    std::uint64_t memo_pc_ = 0;
    bool memo_a_ = false;
    bool memo_b_ = false;

    std::uint64_t correct_a_ = 0;
    std::uint64_t correct_b_ = 0;
    std::uint64_t disagreements_ = 0;
    std::uint64_t overrides_a_ = 0;
    std::uint64_t overrides_b_ = 0;
    std::uint64_t chooser_flips_ = 0;
};

} // namespace tlat::core

#endif // TLAT_CORE_COMBINING_PREDICTOR_HH
