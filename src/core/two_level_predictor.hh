/**
 * @file
 * The Two-Level Adaptive Training branch predictor (the paper's
 * contribution, Section 2).
 *
 * Level 1: a per-address history register table (HRT) of k-bit shift
 * registers recording each branch's last k outcomes. Level 2: a
 * global pattern table of automata recording how branches behaved the
 * last times each history pattern occurred.
 *
 *   prediction  z_c     = lambda(S_c)            (eq. 1)
 *   transition  S_{c+1} = delta(S_c, R_{i,c})    (eq. 2)
 *
 * where S_c is the state of the pattern table entry indexed by the
 * branch's current history register contents.
 *
 * Options:
 *  - HRT implementation: IHRT / AHRT / HHRT (Section 3.1).
 *  - History length k and automaton kind (Sections 5.1.1, 5.1.3).
 *  - cachedPredictionBit: the Section 3.2 latency optimization — the
 *    next prediction is computed at update time and stored alongside
 *    the history register, so a prediction needs one table access
 *    instead of two. Note this is *not* semantically identical to the
 *    two-lookup scheme: another branch may update the shared pattern
 *    table entry between caching and use (quantified by
 *    bench_ablation_latency).
 *  - initialization ablations (Section 4.2 defaults: history registers
 *    start all-ones, automata start taken-biased).
 */

#ifndef TLAT_CORE_TWO_LEVEL_PREDICTOR_HH
#define TLAT_CORE_TWO_LEVEL_PREDICTOR_HH

#include <deque>
#include <memory>
#include <unordered_map>

#include "branch_predictor.hh"
#include "history_table.hh"
#include "pattern_table.hh"

namespace tlat::core
{

/** Configuration of a Two-Level Adaptive Training predictor. */
struct TwoLevelConfig
{
    /** HRT flavour. */
    TableKind hrtKind = TableKind::Associative;
    /** Total HRT entries (ignored for the ideal table). */
    std::size_t hrtEntries = 512;
    /** AHRT associativity (paper: always 4). */
    unsigned associativity = 4;
    /** History register length k. */
    unsigned historyBits = 12;
    /** Pattern-history automaton. */
    AutomatonKind automaton = AutomatonKind::A2;
    /**
     * Extension: when non-zero, pattern entries are n-bit saturating
     * counters instead of Figure 2 automata (2 reproduces A2 exactly;
     * see bench_ablation_counter_width). Overrides `automaton`.
     */
    unsigned counterBits = 0;
    /** Section 3.2 one-lookup optimization. */
    bool cachedPredictionBit = false;
    /**
     * Speculative history update: shift the *predicted* outcome into
     * the history register at prediction time and repair the register
     * (and squash younger in-flight speculations of the same branch)
     * if the prediction turns out wrong. With immediate updates this
     * is behaviourally identical to the paper's model; it pays off
     * when updates are delayed (deep pipelines — see
     * bench_ablation_delayed_update). Requires the predict()/update()
     * pairing discipline of the harness.
     */
    bool speculativeHistoryUpdate = false;
    /** HHRT index hash (ablation; paper-era default is low bits). */
    HashKind hhrtHash = HashKind::LowBits;
    /** Initialize history registers to all ones (paper default). */
    bool initHistoryOnes = true;
    /** Automaton initial state; -1 = the paper's taken-biased value. */
    std::int32_t automatonInitState = -1;
    /** Low branch-address bits dropped before HRT indexing. */
    unsigned addrShift = 2;
};

/** The Two-Level Adaptive Training predictor ("AT" in Table 2). */
class TwoLevelPredictor : public BranchPredictor
{
  public:
    explicit TwoLevelPredictor(const TwoLevelConfig &config);

    std::string name() const override;
    bool predict(const trace::BranchRecord &record) override;
    void update(const trace::BranchRecord &record) override;
    void reset() override;
    void collectMetrics(RunMetrics &metrics) const override;

    /**
     * Fused fast path: one HRT probe per branch (the Section 3.2
     * stored next-prediction bit makes the second probe of the
     * predict()/update() pair unnecessary), with the HRT flavour and
     * the automaton dispatched once per batch so lambda/delta and the
     * probe inline. Bit-identical to the predict()/update() loop —
     * same tables, same statistics, same checkpoint bytes
     * (tests/test_simulate_batch_fuzz holds it to that). Falls back
     * to the reference loop when predict/update state is mid-pair
     * (in-flight speculation or a live lookup memo).
     */
    void simulateBatch(std::span<const trace::BranchRecord> records,
                       AccuracyCounter &accuracy) override;

    /**
     * SoA fused fast path over a predecoded trace: the dense
     * branch-id lane turns the IHRT probe into a direct vector index
     * (one hash per unique PC per batch instead of one per branch),
     * the AHRT reads its set/tag pair and the HHRT its slot index
     * from per-geometry lanes computed once per (trace, geometry).
     * Outcomes stream from the packed bitvector. Same strict
     * bit-equivalence contract as the AoS overload, against the same
     * reference loop; falls back to the AoS twin (and through it to
     * the reference loop) whenever mid-pair memo state or in-flight
     * speculation makes the fused path unsafe.
     */
    void simulateBatch(const trace::PredecodedView &view,
                       AccuracyCounter &accuracy) override;

    /** HRT access statistics (hit ratio drives Figure 6's ordering). */
    const TableStats &hrtStats() const { return hrt_->stats(); }

    /**
     * Branch pcs currently holding in-flight speculation state. With
     * paired predict()/update() calls this returns to 0 after every
     * resolved branch — drained pcs are erased, not kept as empty
     * deques (regression guard for the unbounded-growth bug).
     */
    std::size_t inFlightBranches() const { return in_flight_.size(); }

    /** Mispredictions that squashed younger speculation. */
    std::uint64_t squashEvents() const { return squash_events_; }

    /** Younger in-flight speculations discarded by squashes. */
    std::uint64_t
    squashedSpeculations() const
    {
        return squashed_speculations_;
    }

    /** The global pattern table (tests and inspection). */
    const PatternTable &patternTable() const { return pattern_table_; }

    const TwoLevelConfig &config() const { return config_; }

    /**
     * Checkpointing: writes the predictor's full state (pattern
     * table, HRT contents, replacement state, statistics) in the
     * core/checkpoint.hh framing.
     *
     * Checkpoints are taken at branch boundaries; with
     * speculativeHistoryUpdate enabled there must be no in-flight
     * speculation (returns false otherwise). loadCheckpoint()
     * validates that the target predictor has the identical
     * configuration, parses the entire stream — end sentinel and
     * fully-consumed check included — into temporaries, and only
     * then commits: on any failure the predictor is untouched.
     */
    bool saveCheckpoint(std::ostream &os) const override;
    bool loadCheckpoint(std::istream &is) override;

  private:
    /** One HRT entry: the history register plus the cached
     *  prediction bit of Section 3.2. */
    struct HrtEntry
    {
        std::uint32_t history = 0;
        bool cachedPrediction = true;
    };

    HrtEntry &lookup(std::uint64_t pc);

    /**
     * Builds a fresh HRT of the configured flavour seeded with the
     * construction-time initial entry — shared by the constructor
     * and the atomic loadCheckpoint() temp-and-swap.
     */
    std::unique_ptr<HistoryTable<HrtEntry>> makeHrt() const;

    /** Fused loop body, monomorphized over (HRT type, automaton). */
    template <typename Table, AutomatonPolicy Ops>
    void fusedBatch(Table &table, const Ops &ops,
                    std::span<const trace::BranchRecord> records,
                    AccuracyCounter &accuracy);

    /** Second dispatch level: automaton/counter policy selection. */
    template <typename Table>
    void dispatchAutomaton(Table &table,
                           std::span<const trace::BranchRecord>
                               records,
                           AccuracyCounter &accuracy);

    /** SoA twin of fusedBatch, monomorphized over (prober, policy). */
    template <typename Prober, AutomatonPolicy Ops>
    void fusedBatchSoa(Prober &prober, const Ops &ops,
                       const trace::PredecodedView &view,
                       AccuracyCounter &accuracy);

    /** SoA twin of dispatchAutomaton. */
    template <typename Prober>
    void dispatchAutomatonSoa(Prober &prober,
                              const trace::PredecodedView &view,
                              AccuracyCounter &accuracy);

    /**
     * Vectorized twin of the IHRT fusedBatchSoa steady state
     * (util/simd.hh). Key observation: with no speculation and no
     * cached-bit, the history registers evolve independently of the
     * predictions, so every record's PT index is precomputable into a
     * dense lane before any automaton state is touched; the remaining
     * per-record program (gather state, compare lambda to the packed
     * outcome bit, store delta) is then a pure array kernel that
     * fusedPass() runs 8-wide, with intra-block PT read-modify-write
     * hazards detected per block and run scalar. Bit-identical to the
     * prober path: same accuracy, capture bytes, HRT statistics (one
     * real probe per unique pc in id order — the reference loop's
     * first-touch order — plus bulk repeat-hit accounting) and
     * checkpoint bytes. Returns false when ineligible (non-IHRT
     * callers must not call; speculative/cached modes, >4-bit
     * counters, undispatchable automata, or scalar-only hosts), in
     * which case the caller falls through to the prober path.
     */
    bool trySimdBatch(const trace::PredecodedView &view,
                      AccuracyCounter &accuracy);

    TwoLevelConfig config_;
    std::uint32_t history_mask_;
    PatternTable pattern_table_;
    /** Construction-time HRT entry seed (pure function of config). */
    HrtEntry initial_entry_;
    std::unique_ptr<HistoryTable<HrtEntry>> hrt_;

    /** In-flight speculation record (speculativeHistoryUpdate). */
    struct Speculation
    {
        std::uint32_t pattern;
        bool predicted;
    };

    std::unordered_map<std::uint64_t, std::deque<Speculation>>
        in_flight_;
    std::uint64_t squash_events_ = 0;
    std::uint64_t squashed_speculations_ = 0;

    // predict() immediately followed by update() on the same branch is
    // the common case; reuse the looked-up entry to model one logical
    // HRT access per branch.
    std::uint64_t last_pc_ = ~std::uint64_t{0};
    HrtEntry *last_entry_ = nullptr;
};

} // namespace tlat::core

#endif // TLAT_CORE_TWO_LEVEL_PREDICTOR_HH
