/**
 * @file
 * Run-level observability counters for a predictor.
 *
 * The paper's evaluation attributes mispredictions to *causes* — HRT
 * misses (Section 5.1.2), pattern interference from table aliasing,
 * warmup — rather than reporting a single accuracy number. RunMetrics
 * is the snapshot a predictor fills in after a measured run so the
 * harness and the CLI can report that attribution.
 *
 * Collection is pull-based: predictors keep their existing cheap
 * always-on counters and copy them into a RunMetrics when
 * BranchPredictor::collectMetrics() is called after the run. Nothing
 * on the predict/update hot path tests a "metrics enabled" flag, so
 * a run that never calls collectMetrics() pays nothing beyond the
 * counters the simulator always maintained.
 *
 * Determinism: every field is a pure function of the (scheme, trace)
 * pair — no timestamps, thread ids or allocation addresses — so
 * metrics collected under the parallel sweep engine are bit-identical
 * for every worker count.
 *
 * Attribution layering: RunMetrics holds the *predictor-internal*
 * causes (HRT misses, table state, speculation squashes). The
 * *per-static-branch* attribution — which sites miss, and the
 * systematic/transient/chaotic hard-to-predict taxonomy derived from
 * each site's local outcome history — lives one layer up in
 * harness::BranchProfile / harness::H2pReport (branch_profile.hh),
 * because it is a property of the (predictor, trace) interaction the
 * harness measures, not of predictor internals. Both surfaces share
 * the determinism contract above.
 */

#ifndef TLAT_CORE_RUN_METRICS_HH
#define TLAT_CORE_RUN_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tlat::core
{

/** Predictor-internal counters snapshotted after a measured run. */
struct RunMetrics
{
    // ---- Level 1: history register table --------------------------
    /** Lookups that found the branch resident. */
    std::uint64_t hrtHits = 0;
    /** Lookups that missed (first touch or capacity/conflict). */
    std::uint64_t hrtMisses = 0;
    /**
     * Misses that displaced a live entry (AHRT only): the victim's
     * history register is handed to a different static branch, the
     * paper's re-allocation interference.
     */
    std::uint64_t hrtEvictions = 0;
    /**
     * Accesses observing another branch's state in the same slot:
     * HHRT lookups whose slot was last touched by a different
     * address line (tag-less aliasing), plus AHRT re-allocations
     * observed through the inherited payload.
     */
    std::uint64_t hrtAliasedLookups = 0;

    // ---- Level 2: global pattern table ----------------------------
    /**
     * Occupancy histogram over automaton/counter states at snapshot
     * time: entry i counts pattern-table entries currently in state
     * i. Sums to the table size (2^k).
     */
    std::vector<std::uint64_t> ptStateHistogram;

    // ---- Speculative history update -------------------------------
    /** Mispredictions that squashed younger in-flight speculation. */
    std::uint64_t squashEvents = 0;
    /** Younger speculations discarded by those squashes. */
    std::uint64_t squashedSpeculations = 0;
    /**
     * Branch pcs still holding in-flight speculation state at
     * snapshot time. After a fully paired predict()/update() run this
     * must be 0 — the regression guard for the drained-deque leak.
     */
    std::uint64_t inFlightBranches = 0;

    // ---- Combining predictor chooser ------------------------------
    /**
     * True when the run's scheme was a combining (tournament)
     * predictor; the fields below are meaningful only then (the JSON
     * writer always emits the block so the v3 schema's key set stays
     * fixed, zeroed for non-combining schemes).
     */
    bool combPresent = false;
    /** Component scheme names, in chooser order (A wins at >= 2). */
    std::string combComponentA;
    std::string combComponentB;
    /** Updates where component A / B predicted correctly. */
    std::uint64_t combCorrectA = 0;
    std::uint64_t combCorrectB = 0;
    /** Updates where the two components disagreed. */
    std::uint64_t combDisagreements = 0;
    /** Disagreements the chooser resolved in favour of A / B. */
    std::uint64_t combOverridesA = 0;
    std::uint64_t combOverridesB = 0;
    /** Chooser updates that flipped an entry's selected component. */
    std::uint64_t combChooserFlips = 0;

    double
    hrtHitRatio() const
    {
        const std::uint64_t total = hrtHits + hrtMisses;
        return total == 0 ? 0.0
                          : static_cast<double>(hrtHits) /
                                static_cast<double>(total);
    }
};

} // namespace tlat::core

#endif // TLAT_CORE_RUN_METRICS_HH
