/**
 * @file
 * History register table (HRT) storage strategies (paper Section 3.1).
 *
 * The paper evaluates three ways of holding per-branch state:
 *
 *  - IHRT: the Ideal HRT — one entry per static branch, never misses.
 *  - AHRT: a set-associative cache with tags and LRU replacement
 *    (4-way in every paper configuration).
 *  - HHRT: a tagless hash table; different branches can collide and
 *    interfere, which is what costs it accuracy relative to the AHRT.
 *
 * The same storage is reused by Lee & Smith's Branch Target Buffer
 * designs (whose entries hold an automaton instead of a shift
 * register), so the tables are generic over the entry payload.
 *
 * Reallocation semantics follow the paper exactly: "During execution,
 * when an entry is re-allocated to a different static branch, the
 * history register is not re-initialized" — on an AHRT miss the
 * victim's payload is handed to the new branch as-is.
 */

#ifndef TLAT_CORE_HISTORY_TABLE_HH
#define TLAT_CORE_HISTORY_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <istream>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tlat::core
{

/** HRT storage flavours. */
enum class TableKind : std::uint8_t
{
    Ideal,       ///< IHRT
    Associative, ///< AHRT
    Hashed       ///< HHRT
};

/** Renders "IHRT" / "AHRT" / "HHRT". */
const char *tableKindName(TableKind kind);

/** Index hash for the tagless HHRT (ablation). */
enum class HashKind : std::uint8_t
{
    /** Low address bits — the paper-era default. */
    LowBits,
    /** SplitMix64-mixed bits. */
    Mixed
};

/** Access counters for hit-ratio reporting (paper Section 5.1.2). */
struct TableStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /**
     * Misses that displaced a live entry (AHRT): the victim's payload
     * is re-allocated to a different static branch without
     * re-initialization, so the new branch inherits foreign history.
     * Always 0 for the ideal table.
     */
    std::uint64_t evictions = 0;
    /**
     * Accesses that observed another branch's state in the shared
     * slot: HHRT lookups whose slot was last used by a different
     * address line, and AHRT re-allocations (which hand the evicted
     * payload to the new branch). Always 0 for the ideal table.
     */
    std::uint64_t aliasedLookups = 0;

    double
    hitRatio() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * Abstract per-branch storage: maps a branch address to an Entry,
 * allocating (by the strategy's rules) when the branch is not present.
 */
template <typename Entry>
class HistoryTable
{
  public:
    virtual ~HistoryTable() = default;

    /**
     * Finds or allocates the entry for @p pc and returns a reference
     * valid until the next lookup.
     *
     * Each concrete table also exposes the same operation as a
     * non-virtual lookupDirect() with identical behaviour (including
     * statistics); the fused batch simulation loop dispatches once on
     * the table kind and then calls lookupDirect() so the per-branch
     * probe inlines.
     */
    virtual Entry &lookup(std::uint64_t pc) = 0;

    virtual TableKind kind() const = 0;

    const TableStats &stats() const { return stats_; }

    /** Drops all state, restoring initial entry values. */
    virtual void reset() = 0;

    /** Serializes one entry payload / restores it. */
    using EntrySaver =
        std::function<void(std::ostream &, const Entry &)>;
    using EntryLoader = std::function<bool(std::istream &, Entry &)>;

    /**
     * Writes the table's full state (entries plus replacement and
     * statistics state) for checkpointing.
     */
    virtual void saveState(std::ostream &os,
                           const EntrySaver &save_entry) const = 0;

    /**
     * Restores a state written by saveState on a table with the same
     * geometry. Returns false on malformed input.
     */
    virtual bool loadState(std::istream &is,
                           const EntryLoader &load_entry) = 0;

  protected:
    template <typename T>
    static void
    putScalar(std::ostream &os, T value)
    {
        os.write(reinterpret_cast<const char *>(&value),
                 sizeof(value));
    }

    template <typename T>
    static bool
    getScalar(std::istream &is, T &value)
    {
        is.read(reinterpret_cast<char *>(&value), sizeof(value));
        return static_cast<bool>(is);
    }

    void
    saveStats(std::ostream &os) const
    {
        putScalar(os, stats_.hits);
        putScalar(os, stats_.misses);
        putScalar(os, stats_.evictions);
        putScalar(os, stats_.aliasedLookups);
    }

    bool
    loadStats(std::istream &is)
    {
        return getScalar(is, stats_.hits) &&
               getScalar(is, stats_.misses) &&
               getScalar(is, stats_.evictions) &&
               getScalar(is, stats_.aliasedLookups);
    }

    TableStats stats_;
};

/** IHRT: unbounded, one entry per static branch. */
template <typename Entry>
class IdealTable : public HistoryTable<Entry>
{
  public:
    /** @param initial Value new entries start from. */
    explicit IdealTable(Entry initial) : initial_(initial) {}

    Entry &
    lookup(std::uint64_t pc) override
    {
        return lookupDirect(pc);
    }

    /** Non-virtual lookup for the devirtualized batch loop. */
    Entry &
    lookupDirect(std::uint64_t pc)
    {
        auto [it, inserted] = entries_.try_emplace(pc, initial_);
        if (inserted)
            ++this->stats_.misses;
        else
            ++this->stats_.hits;
        return it->second;
    }

    /**
     * Statistics-only accounting for the SoA fast path: once a
     * branch-id slot caches the entry reference (node handles are
     * stable across rehashing), repeat probes skip the hash lookup
     * entirely but must still count as hits so the table statistics
     * stay bit-identical to the reference loop's.
     */
    void noteRepeatHit() { ++this->stats_.hits; }

    /** Bulk form of noteRepeatHit() for the SIMD lane path, which
     *  resolves each unique pc exactly once up front and knows the
     *  remaining probes are all repeat hits. */
    void noteRepeatHits(std::uint64_t count)
    {
        this->stats_.hits += count;
    }

    TableKind kind() const override { return TableKind::Ideal; }

    void
    reset() override
    {
        entries_.clear();
        this->stats_ = TableStats{};
    }

    /** Number of static branches seen (IHRT size is demand-grown). */
    std::size_t size() const { return entries_.size(); }

    void
    saveState(std::ostream &os, const typename HistoryTable<
                                    Entry>::EntrySaver &save_entry)
        const override
    {
        this->saveStats(os);
        this->putScalar(
            os, static_cast<std::uint64_t>(entries_.size()));
        // Ordered projection: the map is hash-ordered, but checkpoint
        // bytes must not depend on insertion history — emit by pc so
        // identical table contents always serialize identically.
        std::vector<const typename decltype(entries_)::value_type *>
            ordered;
        ordered.reserve(entries_.size());
        for (const auto &item : entries_)
            ordered.push_back(&item);
        std::sort(ordered.begin(), ordered.end(),
                  [](const auto *a, const auto *b) {
                      return a->first < b->first;
                  });
        for (const auto *item : ordered) {
            this->putScalar(os, item->first);
            save_entry(os, item->second);
        }
    }

    bool
    loadState(std::istream &is,
              const typename HistoryTable<Entry>::EntryLoader
                  &load_entry) override
    {
        entries_.clear();
        if (!this->loadStats(is))
            return false;
        std::uint64_t count;
        if (!this->getScalar(is, count) || count > (1ull << 32))
            return false;
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t pc;
            Entry entry = initial_;
            if (!this->getScalar(is, pc) || !load_entry(is, entry))
                return false;
            entries_.emplace(pc, entry);
        }
        return true;
    }

  private:
    Entry initial_;
    std::unordered_map<std::uint64_t, Entry> entries_;
};

/**
 * AHRT: set-associative with tags and LRU.
 *
 * Branch addresses are instruction-aligned, so the low
 * @p addr_shift bits (2 for micro88's 4-byte instructions) are dropped
 * before indexing and tagging.
 */
template <typename Entry>
class AssociativeTable : public HistoryTable<Entry>
{
  public:
    /**
     * @param entries Total entry count (power of two).
     * @param ways Associativity (paper: 4).
     * @param initial Initial payload of every entry.
     * @param addr_shift Low address bits dropped before indexing.
     */
    AssociativeTable(std::size_t entries, unsigned ways, Entry initial,
                     unsigned addr_shift = 2)
        : ways_(ways), addr_shift_(addr_shift), initial_(initial)
    {
        tlat_assert(ways >= 1, "associativity must be >= 1");
        tlat_assert(entries % ways == 0,
                    "entries not divisible by ways");
        num_sets_ = entries / ways;
        tlat_assert(isPowerOfTwo(num_sets_),
                    "set count must be a power of two, got ",
                    num_sets_);
        reset();
    }

    Entry &
    lookup(std::uint64_t pc) override
    {
        return lookupDirect(pc);
    }

    /** Non-virtual lookup for the devirtualized batch loop. */
    Entry &
    lookupDirect(std::uint64_t pc)
    {
        const std::uint64_t line = pc >> addr_shift_;
        return lookupWithSetTag(line & (num_sets_ - 1),
                                line / num_sets_);
    }

    /**
     * Probe with the set/tag pair already derived — the SoA fast path
     * reads both from a per-geometry index lane
     * (trace::PredecodedTrace::ahrtLane) computed once per unique PC
     * instead of once per dynamic branch. Behaviour and statistics
     * are identical to lookupDirect (which now delegates here).
     */
    Entry &
    lookupWithSetTag(std::size_t set, std::uint64_t tag)
    {
        Way *ways = &ways_store_[set * ways_];

        ++tick_;
        Way *victim = &ways[0];
        for (unsigned w = 0; w < ways_; ++w) {
            if (ways[w].valid && ways[w].tag == tag) {
                ++this->stats_.hits;
                ways[w].lastUse = tick_;
                return ways[w].entry;
            }
            if (ways[w].lastUse < victim->lastUse)
                victim = &ways[w];
        }

        // Miss: re-allocate the LRU way. Per the paper, the payload is
        // *not* re-initialized — when the victim was live, the new
        // branch inherits foreign history (eviction + aliasing).
        ++this->stats_.misses;
        if (victim->valid) {
            ++this->stats_.evictions;
            ++this->stats_.aliasedLookups;
        }
        victim->valid = true;
        victim->tag = tag;
        victim->lastUse = tick_;
        return victim->entry;
    }

    TableKind kind() const override { return TableKind::Associative; }

    void
    reset() override
    {
        ways_store_.assign(num_sets_ * ways_, Way{initial_, 0, 0, false});
        tick_ = 0;
        this->stats_ = TableStats{};
    }

    std::size_t numSets() const { return num_sets_; }
    unsigned associativity() const { return ways_; }
    unsigned addrShift() const { return addr_shift_; }

    void
    saveState(std::ostream &os, const typename HistoryTable<
                                    Entry>::EntrySaver &save_entry)
        const override
    {
        this->saveStats(os);
        this->putScalar(os, tick_);
        this->putScalar(
            os, static_cast<std::uint64_t>(ways_store_.size()));
        for (const Way &way : ways_store_) {
            this->putScalar(os, way.tag);
            this->putScalar(os, way.lastUse);
            this->putScalar(
                os, static_cast<std::uint8_t>(way.valid ? 1 : 0));
            save_entry(os, way.entry);
        }
    }

    bool
    loadState(std::istream &is,
              const typename HistoryTable<Entry>::EntryLoader
                  &load_entry) override
    {
        if (!this->loadStats(is) || !this->getScalar(is, tick_))
            return false;
        std::uint64_t count;
        if (!this->getScalar(is, count) ||
            count != ways_store_.size())
            return false;
        for (Way &way : ways_store_) {
            std::uint8_t valid;
            if (!this->getScalar(is, way.tag) ||
                !this->getScalar(is, way.lastUse) ||
                !this->getScalar(is, valid) || valid > 1 ||
                !load_entry(is, way.entry))
                return false;
            way.valid = valid != 0;
        }
        return true;
    }

  private:
    struct Way
    {
        Entry entry;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned ways_;
    unsigned addr_shift_;
    Entry initial_;
    std::size_t num_sets_ = 0;
    std::vector<Way> ways_store_;
    std::uint64_t tick_ = 0;
};

/**
 * HHRT: tagless, direct-indexed hash table. Collisions silently share
 * an entry (history interference) — cheaper than the AHRT (no tag
 * store) but less accurate, exactly the paper's trade-off.
 */
template <typename Entry>
class HashedTable : public HistoryTable<Entry>
{
  public:
    HashedTable(std::size_t entries, Entry initial,
                unsigned addr_shift = 2,
                HashKind hash = HashKind::LowBits)
        : addr_shift_(addr_shift), hash_(hash), initial_(initial)
    {
        tlat_assert(isPowerOfTwo(entries),
                    "HHRT size must be a power of two, got ", entries);
        size_ = entries;
        reset();
    }

    Entry &
    lookup(std::uint64_t pc) override
    {
        return lookupDirect(pc);
    }

    /**
     * Non-virtual lookup for the devirtualized batch loop. Scalar
     * fallback path: re-derives the slot index from the address on
     * every probe — under HashKind::Mixed that is one mix64 per
     * dynamic branch. The SoA fast path avoids the recomputation by
     * probing through lookupAtIndex() with a per-geometry index lane
     * hashed once per *unique* PC.
     */
    Entry &
    lookupDirect(std::uint64_t pc)
    {
        const std::uint64_t line = pc >> addr_shift_;
        return lookupAtIndex(indexOfLine(line), line);
    }

    /**
     * Probe with the slot index already derived (from
     * trace::PredecodedTrace::hashedLane); @p line must be the
     * address line the index was hashed from, because it feeds the
     * aliasing attribution. Behaviour and statistics — including the
     * touched_/lines_ interference tracking — are identical to
     * lookupDirect (which now delegates here).
     */
    Entry &
    lookupAtIndex(std::size_t index, std::uint64_t line)
    {
        // A tagless table cannot distinguish hit from miss; count the
        // first touch of a slot as a miss for reporting purposes. A
        // touched slot last used by a *different* line is collision
        // interference — the aliasing that costs the HHRT accuracy.
        if (touched_[index]) {
            ++this->stats_.hits;
            if (lines_[index] != line)
                ++this->stats_.aliasedLookups;
        } else {
            ++this->stats_.misses;
            touched_[index] = true;
        }
        lines_[index] = line;
        return entries_[index];
    }

    /** The slot an address line hashes to (lane-consistency tests). */
    std::size_t
    indexOfLine(std::uint64_t line) const
    {
        return (hash_ == HashKind::LowBits ? line : mix64(line)) &
               (size_ - 1);
    }

    TableKind kind() const override { return TableKind::Hashed; }

    void
    reset() override
    {
        entries_.assign(size_, initial_);
        touched_.assign(size_, false);
        lines_.assign(size_, 0);
        this->stats_ = TableStats{};
    }

    std::size_t size() const { return size_; }
    unsigned addrShift() const { return addr_shift_; }
    HashKind hashKind() const { return hash_; }

    void
    saveState(std::ostream &os, const typename HistoryTable<
                                    Entry>::EntrySaver &save_entry)
        const override
    {
        this->saveStats(os);
        this->putScalar(os, static_cast<std::uint64_t>(size_));
        for (std::size_t i = 0; i < size_; ++i) {
            this->putScalar(
                os, static_cast<std::uint8_t>(touched_[i] ? 1 : 0));
            this->putScalar(os, lines_[i]);
            save_entry(os, entries_[i]);
        }
    }

    bool
    loadState(std::istream &is,
              const typename HistoryTable<Entry>::EntryLoader
                  &load_entry) override
    {
        std::uint64_t count;
        if (!this->loadStats(is) || !this->getScalar(is, count) ||
            count != size_)
            return false;
        for (std::size_t i = 0; i < size_; ++i) {
            std::uint8_t touched;
            if (!this->getScalar(is, touched) || touched > 1 ||
                !this->getScalar(is, lines_[i]) ||
                !load_entry(is, entries_[i]))
                return false;
            touched_[i] = touched != 0;
        }
        return true;
    }

  private:
    unsigned addr_shift_;
    HashKind hash_;
    Entry initial_;
    std::size_t size_ = 0;
    std::vector<Entry> entries_;
    std::vector<bool> touched_;
    /** Last address line to use each slot (aliasing attribution). */
    std::vector<std::uint64_t> lines_;
};

} // namespace tlat::core

#endif // TLAT_CORE_HISTORY_TABLE_HH
