#include "history_table.hh"

namespace tlat::core
{

const char *
tableKindName(TableKind kind)
{
    switch (kind) {
      case TableKind::Ideal:
        return "IHRT";
      case TableKind::Associative:
        return "AHRT";
      case TableKind::Hashed:
        return "HHRT";
      default:
        return "?HRT";
    }
}

} // namespace tlat::core
