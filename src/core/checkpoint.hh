/**
 * @file
 * Shared framing for predictor checkpoints.
 *
 * Every checkpoint stream is: 4-byte magic "TLCP", a uint32 per-class
 * version, a uint64 configuration fingerprint (mix64 chain over the
 * geometry fields, salted per predictor class so an LS checkpoint can
 * never masquerade as an AT one), the class-specific payload, and the
 * uint32 end sentinel. Loaders must (a) parse into temporaries and
 * commit by swap only after the *entire* stream — sentinel included —
 * validated, so a truncated or corrupt stream leaves the predictor
 * untouched, and (b) verify the stream is fully consumed after the
 * sentinel, so trailing junk is rejected instead of silently
 * accepted. Sub-checkpoints (combining components) are embedded as
 * length-prefixed blobs and re-parsed from an isolated stream, which
 * makes the fully-consumed check compose.
 */

#ifndef TLAT_CORE_CHECKPOINT_HH
#define TLAT_CORE_CHECKPOINT_HH

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "util/bitops.hh"

namespace tlat::core::ckpt
{

inline constexpr char kMagic[4] = {'T', 'L', 'C', 'P'};
/** "TLCE" little-endian: closes every checkpoint stream. */
inline constexpr std::uint32_t kEndSentinel = 0x45434c54u;
/** Sanity cap for embedded blob sizes (far above any real state). */
inline constexpr std::uint64_t kMaxBlobBytes = 1ull << 32;

template <typename T>
void
putScalar(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
getScalar(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(is);
}

/** Writes magic, per-class version, and config fingerprint. */
inline void
writeHeader(std::ostream &os, std::uint32_t version,
            std::uint64_t fingerprint)
{
    os.write(kMagic, sizeof(kMagic));
    putScalar(os, version);
    putScalar(os, fingerprint);
}

/**
 * Reads and validates the header against the expected version and
 * fingerprint. False on short reads or any mismatch.
 */
inline bool
readHeader(std::istream &is, std::uint32_t version,
           std::uint64_t fingerprint)
{
    char magic[sizeof(kMagic)] = {};
    is.read(magic, sizeof(magic));
    if (!is || !std::equal(std::begin(magic), std::end(magic),
                           std::begin(kMagic)))
        return false;
    std::uint32_t got_version = 0;
    std::uint64_t got_fingerprint = 0;
    if (!getScalar(is, got_version) || got_version != version)
        return false;
    if (!getScalar(is, got_fingerprint) ||
        got_fingerprint != fingerprint)
        return false;
    return true;
}

/** Appends the end sentinel that closes a checkpoint stream. */
inline void
writeEnd(std::ostream &os)
{
    putScalar(os, kEndSentinel);
}

/**
 * Consumes the end sentinel and verifies the stream holds nothing
 * after it: a checkpoint with trailing junk is as corrupt as a
 * truncated one (the extra bytes mean the reader and writer disagree
 * about the framing).
 */
inline bool
readEnd(std::istream &is)
{
    std::uint32_t sentinel = 0;
    if (!getScalar(is, sentinel) || sentinel != kEndSentinel)
        return false;
    return is.peek() == std::istream::traits_type::eof();
}

/** Writes a length-prefixed byte blob (embedded sub-checkpoint). */
inline void
writeBlob(std::ostream &os, const std::string &bytes)
{
    putScalar(os, static_cast<std::uint64_t>(bytes.size()));
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

/** Reads a length-prefixed byte blob; false on short or oversized. */
inline bool
readBlob(std::istream &is, std::string &bytes)
{
    std::uint64_t size = 0;
    if (!getScalar(is, size) || size > kMaxBlobBytes)
        return false;
    bytes.resize(static_cast<std::size_t>(size));
    is.read(bytes.data(), static_cast<std::streamsize>(size));
    return static_cast<bool>(is);
}

/**
 * Folds a string (e.g. a component scheme name) into a fingerprint
 * chain, so a combining checkpoint binds to its components' identity.
 */
inline std::uint64_t
mixString(std::uint64_t hash, const std::string &text)
{
    hash = mix64(hash ^ text.size());
    for (const char c : text)
        hash = mix64(hash ^ static_cast<unsigned char>(c));
    return hash;
}

} // namespace tlat::core::ckpt

#endif // TLAT_CORE_CHECKPOINT_HH
