/**
 * @file
 * Hardware storage cost model for the predictor configurations.
 *
 * The paper compares schemes "on the basis of similar costs"
 * (Section 5.4) and notes the AHRT's extra tag store and Static
 * Training's simpler pattern entries; this model makes those costs
 * explicit, in bits, so accuracy-per-bit comparisons (and
 * bench_cost_accuracy) are possible.
 *
 * Accounting, per structure:
 *  - history register table entry: k history bits, plus a tag and
 *    LRU state in the associative flavour, plus the Section 3.2
 *    cached prediction bit if enabled;
 *  - pattern table entry: 2 bits for the four-state automata, 1 bit
 *    for Last-Time, 1 bit for Static Training's preset bit;
 *  - Lee-Smith entry: the automaton bits in place of a register.
 *
 * The ideal table is costed as unbounded (bits() reports the demand
 * size for a given static branch count).
 */

#ifndef TLAT_CORE_COST_MODEL_HH
#define TLAT_CORE_COST_MODEL_HH

#include <cstdint>

#include "scheme_config.hh"

namespace tlat::core
{

/** Bit-level cost breakdown of one predictor configuration. */
struct StorageCost
{
    std::uint64_t historyBits = 0; ///< history/automaton payloads
    std::uint64_t tagBits = 0;     ///< AHRT tag store
    std::uint64_t lruBits = 0;     ///< AHRT replacement state
    std::uint64_t patternBits = 0; ///< pattern table

    std::uint64_t
    total() const
    {
        return historyBits + tagBits + lruBits + patternBits;
    }
};

/**
 * Cost of a parsed scheme configuration.
 *
 * @param config The scheme.
 * @param staticBranches Demand size for ideal tables (one entry per
 *        static branch); ignored for bounded tables.
 * @param addressBits Branch-address width used for tag sizing.
 * @param cachedPredictionBit Include the Section 3.2 bit per HRT
 *        entry.
 */
StorageCost storageCost(const SchemeConfig &config,
                        std::uint64_t staticBranches = 1024,
                        unsigned addressBits = 30,
                        bool cachedPredictionBit = false);

/** Bits in one pattern-table entry for an automaton kind. */
unsigned automatonStateBits(AutomatonKind kind);

} // namespace tlat::core

#endif // TLAT_CORE_COST_MODEL_HH
