#include "scheme_config.hh"

#include "util/bitops.hh"
#include "util/string_utils.hh"

namespace tlat::core
{

namespace
{

/** Extracts "Head(inner)" -> (Head, inner); nullopt if no parens. */
std::optional<std::pair<std::string, std::string>>
splitCall(const std::string &text)
{
    const std::size_t open = text.find('(');
    if (open == std::string::npos || text.back() != ')')
        return std::nullopt;
    return std::make_pair(trim(text.substr(0, open)),
                          text.substr(open + 1,
                                      text.size() - open - 2));
}

std::optional<TableKind>
tableKindFromName(const std::string &name)
{
    if (name == "IHRT")
        return TableKind::Ideal;
    if (name == "AHRT")
        return TableKind::Associative;
    if (name == "HHRT")
        return TableKind::Hashed;
    return std::nullopt;
}

/** Parses "12SR" -> 12. */
std::optional<unsigned>
parseShiftRegister(const std::string &text)
{
    if (!endsWith(text, "SR"))
        return std::nullopt;
    const auto bits = parseSize(text.substr(0, text.size() - 2));
    if (!bits || *bits == 0 || *bits > 24)
        return std::nullopt;
    return static_cast<unsigned>(*bits);
}

/** Parses the History(Size,Content) clause shared by AT/ST/LS. */
bool
parseHistoryClause(const std::string &clause, SchemeConfig &config,
                   bool entry_is_automaton)
{
    const auto call = splitCall(clause);
    if (!call)
        return false;
    const auto kind = tableKindFromName(call->first);
    if (!kind)
        return false;
    config.hrtKind = *kind;

    const auto fields = splitTopLevel(call->second, ',');
    if (fields.size() != 2)
        return false;

    const std::string size_text = trim(fields[0]);
    if (config.hrtKind == TableKind::Ideal) {
        // Table 2 writes IHRT(,12SR): the size slot is empty (or the
        // infinity glyph, which we accept as "inf").
        if (!size_text.empty() && size_text != "inf")
            return false;
        config.hrtEntries = 0;
    } else {
        const auto entries = parseSize(size_text);
        if (!entries || *entries == 0)
            return false;
        config.hrtEntries = *entries;
    }

    const std::string content = trim(fields[1]);
    if (entry_is_automaton) {
        const auto automaton = automatonFromName(content);
        if (!automaton)
            return false;
        config.automaton = *automaton;
    } else {
        const auto bits = parseShiftRegister(content);
        if (!bits)
            return false;
        config.historyBits = *bits;
    }
    return true;
}

/** Parses the Pattern(Size,Content) clause for AT/ST. */
bool
parsePatternClause(const std::string &clause, SchemeConfig &config,
                   bool preset_bits)
{
    const auto call = splitCall(clause);
    if (!call || call->first != "PT")
        return false;
    const auto fields = splitTopLevel(call->second, ',');
    if (fields.size() != 2)
        return false;

    const auto entries = parseSize(trim(fields[0]));
    if (!entries || *entries != (std::uint64_t{1} << config.historyBits))
        return false; // PT size must be 2^historyBits

    const std::string content = trim(fields[1]);
    if (preset_bits)
        return content == "PB";
    const auto automaton = automatonFromName(content);
    if (!automaton)
        return false;
    config.automaton = *automaton;
    return true;
}

} // namespace

std::string
SchemeConfig::text() const
{
    const auto history_clause = [this](const std::string &content) {
        if (hrtKind == TableKind::Ideal)
            return format("IHRT(,%s)", content.c_str());
        return format("%s(%zu,%s)", tableKindName(hrtKind), hrtEntries,
                      content.c_str());
    };

    switch (scheme) {
      case Scheme::TwoLevelAdaptive:
        return format(
            "AT(%s,PT(2^%u,%s),)",
            history_clause(format("%uSR", historyBits)).c_str(),
            historyBits, automatonName(automaton));
      case Scheme::StaticTraining:
        return format(
            "ST(%s,PT(2^%u,PB),%s)",
            history_clause(format("%uSR", historyBits)).c_str(),
            historyBits, data == DataMode::Diff ? "Diff" : "Same");
      case Scheme::LeeSmithBtb:
        return format("LS(%s,,)",
                      history_clause(automatonName(automaton)).c_str());
      case Scheme::AlwaysTaken:
        return "AlwaysTaken";
      case Scheme::AlwaysNotTaken:
        return "AlwaysNotTaken";
      case Scheme::Btfn:
        return "BTFN";
      case Scheme::Profile:
        return "Profile";
      case Scheme::Gshare:
        return format("GSH(%u,%s)", historyBits,
                      automatonName(automaton));
      case Scheme::Combining:
        return "CMB(" + components[0].text() + "," +
               components[1].text() +
               format(",CT(2^%u))", chooserBits);
    }
    return "?";
}

std::optional<SchemeConfig>
SchemeConfig::parse(const std::string &name)
{
    const std::string text = trim(name);

    SchemeConfig config;
    if (text == "AlwaysTaken") {
        config.scheme = Scheme::AlwaysTaken;
        return config;
    }
    if (text == "AlwaysNotTaken") {
        config.scheme = Scheme::AlwaysNotTaken;
        return config;
    }
    if (text == "BTFN") {
        config.scheme = Scheme::Btfn;
        return config;
    }
    if (text == "Profile") {
        config.scheme = Scheme::Profile;
        config.data = DataMode::Same;
        return config;
    }

    const auto call = splitCall(text);
    if (!call)
        return std::nullopt;
    const auto clauses = splitTopLevel(call->second, ',');

    // GSH(12,A2) has two fields, not the three-clause Table 2 shape.
    if (call->first == "GSH") {
        if (clauses.size() != 2)
            return std::nullopt;
        const auto bits = parseSize(trim(clauses[0]));
        if (!bits || *bits == 0 || *bits > 24)
            return std::nullopt;
        const auto automaton = automatonFromName(trim(clauses[1]));
        if (!automaton)
            return std::nullopt;
        config.scheme = Scheme::Gshare;
        config.historyBits = static_cast<unsigned>(*bits);
        config.automaton = *automaton;
        return config;
    }

    if (clauses.size() != 3)
        return std::nullopt;
    const std::string history = trim(clauses[0]);
    const std::string pattern = trim(clauses[1]);
    const std::string data = trim(clauses[2]);

    if (call->first == "AT") {
        config.scheme = Scheme::TwoLevelAdaptive;
        config.data = DataMode::None;
        if (!data.empty())
            return std::nullopt;
        if (!parseHistoryClause(history, config, false))
            return std::nullopt;
        if (!parsePatternClause(pattern, config, false))
            return std::nullopt;
        return config;
    }
    if (call->first == "ST") {
        config.scheme = Scheme::StaticTraining;
        if (data == "Same")
            config.data = DataMode::Same;
        else if (data == "Diff")
            config.data = DataMode::Diff;
        else
            return std::nullopt;
        if (!parseHistoryClause(history, config, false))
            return std::nullopt;
        if (!parsePatternClause(pattern, config, true))
            return std::nullopt;
        return config;
    }
    if (call->first == "LS") {
        config.scheme = Scheme::LeeSmithBtb;
        config.data = DataMode::None;
        if (!pattern.empty() || !data.empty())
            return std::nullopt;
        if (!parseHistoryClause(history, config, true))
            return std::nullopt;
        return config;
    }
    if (call->first == "CMB") {
        // CMB(A,B,CT(2^k)): the first two clauses are full scheme
        // names in their own right (splitTopLevel is depth-aware, so
        // their internal commas stay put), recursively parsed.
        const auto component_a = parse(history);
        const auto component_b = parse(pattern);
        if (!component_a || !component_b)
            return std::nullopt;
        const auto chooser = splitCall(data);
        if (!chooser || chooser->first != "CT")
            return std::nullopt;
        const auto entries = parseSize(trim(chooser->second));
        if (!entries || !isPowerOfTwo(*entries) || *entries < 2 ||
            *entries > (std::uint64_t{1} << 24))
            return std::nullopt;
        config.scheme = Scheme::Combining;
        config.components = {*component_a, *component_b};
        config.chooserBits = floorLog2(*entries);
        return config;
    }
    return std::nullopt;
}

} // namespace tlat::core
