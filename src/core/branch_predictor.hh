/**
 * @file
 * The predictor interface shared by the Two-Level Adaptive Training
 * predictor and every comparison scheme in the study.
 *
 * Contract: for each conditional branch in trace order the harness
 * calls predict() and then update() with the same record. predict()
 * must not read record.taken — it is present because the record type
 * is shared with the trace layer. Schemes that require a profiling
 * pass (Static Training, the profiling scheme) return true from
 * needsTraining() and receive the training trace via train() before
 * the measured run.
 */

#ifndef TLAT_CORE_BRANCH_PREDICTOR_HH
#define TLAT_CORE_BRANCH_PREDICTOR_HH

#include <iosfwd>
#include <span>
#include <string>

#include "run_metrics.hh"
#include "trace/trace_buffer.hh"
#include "util/stats.hh"

namespace tlat::core
{

/** Abstract direction predictor for conditional branches. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Scheme name in the paper's Table 2 notation where possible. */
    virtual std::string name() const = 0;

    /** Predicts the direction of the branch about to execute. */
    virtual bool predict(const trace::BranchRecord &record) = 0;

    /** Informs the predictor of the resolved outcome. */
    virtual void update(const trace::BranchRecord &record) = 0;

    /**
     * Batch simulation: measures the whole trace span in one virtual
     * call, tallying into @p accuracy. Non-conditional records are
     * skipped, exactly like the harness loop always did, but callers
     * should pass a conditional-only span
     * (trace::TraceBuffer::conditionalView()) so the hot loop never
     * touches them.
     *
     * The contract is strict bit-equivalence: for any record
     * sequence, simulateBatch must leave the predictor in exactly the
     * state — accuracy counts, internal tables, statistics counters,
     * checkpoint bytes, collectMetrics() output — that the reference
     * predict()/record()/update() loop would. The default
     * implementation *is* that reference loop; predictors with a
     * fused fast path (TwoLevelPredictor, GeneralizedTwoLevel,
     * LeeSmith) override it and are held to the contract by the
     * randomized equivalence suite (tests/test_simulate_batch_fuzz).
     */
    virtual void
    simulateBatch(std::span<const trace::BranchRecord> records,
                  AccuracyCounter &accuracy)
    {
        for (const trace::BranchRecord &record : records) {
            if (record.cls != trace::BranchClass::Conditional)
                continue;
            const bool predicted = predict(record);
            accuracy.record(predicted == record.taken);
            update(record);
        }
    }

    /**
     * Batch simulation over a predecoded trace
     * (trace::TraceBuffer::predecodedView()): the SoA lanes plus the
     * AoS conditional span they mirror. The default unwraps to the
     * span overload above, so every predictor accepts a predecoded
     * view and only the schemes with a dedicated SoA fast path
     * (TwoLevelPredictor, GeneralizedTwoLevel, LeeSmith) do anything
     * different with it. The equivalence contract is the same strict
     * bit-identity as the span overload, against the same reference
     * loop — an override may never let the two inputs diverge.
     */
    virtual void
    simulateBatch(const trace::PredecodedView &view,
                  AccuracyCounter &accuracy)
    {
        simulateBatch(view.records(), accuracy);
    }

    /** Restores the initial state (fresh tables). */
    virtual void reset() = 0;

    /** True if the scheme needs a profiling pass before measuring. */
    virtual bool needsTraining() const { return false; }

    /**
     * Profiling pass over a training trace. Only called when
     * needsTraining() is true, and always before the measured run.
     */
    virtual void train(const trace::TraceBuffer &trace)
    {
        (void)trace;
    }

    /**
     * Snapshots the predictor's internal observability counters into
     * @p metrics (run_metrics.hh). Called by the harness *after* a
     * measured run — never on the predict/update hot path, so schemes
     * pay nothing when the caller does not ask. The default leaves
     * the metrics zeroed for schemes with no internal tables.
     */
    virtual void collectMetrics(RunMetrics &metrics) const
    {
        (void)metrics;
    }

    /**
     * Serializes the complete dynamic state to @p os so a fresh
     * predictor of the same configuration can resume bit-identically
     * via loadCheckpoint(). Returns false when the scheme does not
     * support checkpoints (the default) or cannot checkpoint right
     * now (e.g. speculation in flight). The framing contract is in
     * core/checkpoint.hh: magic + version + config fingerprint, the
     * payload, then an end sentinel; loads are atomic (the predictor
     * is untouched unless the whole stream parses, matches the
     * configuration, and is fully consumed).
     */
    virtual bool saveCheckpoint(std::ostream &os) const
    {
        (void)os;
        return false;
    }

    /** Restores state written by saveCheckpoint(); see above. */
    virtual bool loadCheckpoint(std::istream &is)
    {
        (void)is;
        return false;
    }
};

} // namespace tlat::core

#endif // TLAT_CORE_BRANCH_PREDICTOR_HH
