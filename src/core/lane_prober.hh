/**
 * @file
 * SoA index-lane probers: the glue between a predecoded trace
 * (trace/predecode.hh) and the history-table storage flavours.
 *
 * Each prober wraps one concrete table and answers probe(id) — "the
 * entry for static branch @p id" — using whatever the predecode layer
 * precomputed for that table's geometry:
 *
 *  - IdealLaneProber: a per-id pointer lane. The first probe of an id
 *    pays the one unordered_map lookup (which also books the
 *    reference loop's hit-or-miss for that first touch, warm tables
 *    included); every repeat is a direct vector index plus a
 *    noteRepeatHit() — no hashing on the steady-state path at all.
 *  - AssociativeLaneProber: reads the precomputed (set, tag) pair
 *    from the trace's AHRT lane and probes via lookupWithSetTag().
 *  - HashedLaneProber: reads the precomputed slot index (the mix64 is
 *    paid once per unique PC per geometry, not once per branch) from
 *    the trace's HHRT lane and probes via lookupAtIndex().
 *
 * All three produce bit-identical table state and statistics to a
 * lookupDirect(pc)-per-branch loop; tests/test_simulate_batch_fuzz
 * and tests/test_history_table hold them to it.
 */

#ifndef TLAT_CORE_LANE_PROBER_HH
#define TLAT_CORE_LANE_PROBER_HH

#include <span>
#include <vector>

#include "history_table.hh"
#include "trace/predecode.hh"

namespace tlat::core
{

/** IHRT prober: hash each unique PC once, then index a pointer lane. */
template <typename Entry>
class IdealLaneProber
{
  public:
    IdealLaneProber(IdealTable<Entry> &table,
                    std::span<const std::uint64_t> unique_pcs)
        : table_(table), unique_pcs_(unique_pcs),
          slots_(unique_pcs.size(), nullptr)
    {
    }

    Entry &
    probe(trace::BranchId id)
    {
        Entry *&slot = slots_[id];
        if (slot == nullptr) {
            // First touch in this batch: the real lookup books the
            // hit (warm table) or miss (fresh allocation) exactly as
            // the reference loop would. unordered_map references are
            // node-stable, so the cached pointer survives growth.
            slot = &table_.lookupDirect(unique_pcs_[id]);
        } else {
            table_.noteRepeatHit();
        }
        return *slot;
    }

  private:
    IdealTable<Entry> &table_;
    std::span<const std::uint64_t> unique_pcs_;
    std::vector<Entry *> slots_;
};

/** AHRT prober: set/tag from the per-geometry lane, LRU probe here. */
template <typename Entry>
class AssociativeLaneProber
{
  public:
    AssociativeLaneProber(AssociativeTable<Entry> &table,
                          const trace::PredecodedTrace &soa)
        : table_(table),
          lane_(soa.ahrtLane(table.addrShift(), table.numSets()))
    {
    }

    Entry &
    probe(trace::BranchId id)
    {
        return table_.lookupWithSetTag(lane_.sets[id],
                                       lane_.tags[id]);
    }

  private:
    AssociativeTable<Entry> &table_;
    const trace::AhrtLane &lane_;
};

/** HHRT prober: slot index from the per-geometry lane (no re-hash). */
template <typename Entry>
class HashedLaneProber
{
  public:
    HashedLaneProber(HashedTable<Entry> &table,
                     const trace::PredecodedTrace &soa)
        : table_(table),
          lane_(soa.hashedLane(table.addrShift(), table.size(),
                               table.hashKind() == HashKind::Mixed))
    {
    }

    Entry &
    probe(trace::BranchId id)
    {
        return table_.lookupAtIndex(lane_.indices[id],
                                    lane_.lines[id]);
    }

  private:
    HashedTable<Entry> &table_;
    const trace::HashedLane &lane_;
};

} // namespace tlat::core

#endif // TLAT_CORE_LANE_PROBER_HH
