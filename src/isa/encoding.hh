/**
 * @file
 * Binary encoding of micro88 instructions into 32-bit words.
 *
 * Layout (bit 31 is the MSB):
 *
 *   op[31:26] | fields
 *
 *   R       op rd[25:21] rs1[20:16] rs2[15:11]
 *   R2      op rd[25:21] rs1[20:16]
 *   RI      op rd[25:21] rs1[20:16] imm16[15:0]
 *   RdImm   op rd[25:21]            imm16[15:0]
 *   Store   op rs1[25:21] rs2[20:16] imm16[15:0]
 *   Branch  op rs1[25:21] rs2[20:16] imm16[15:0]
 *   Jump    op imm26[25:0]
 *   JumpReg op            rs1[20:16]
 *   None    op
 *
 * Immediates are signed (two's complement). Branch/Jump immediates are
 * pc-relative distances measured in instructions.
 */

#ifndef TLAT_ISA_ENCODING_HH
#define TLAT_ISA_ENCODING_HH

#include <cstdint>
#include <optional>

#include "instruction.hh"

namespace tlat::isa
{

/** Range of a signed 16-bit immediate. */
constexpr std::int32_t kImm16Min = -(1 << 15);
constexpr std::int32_t kImm16Max = (1 << 15) - 1;

/** Range of a signed 26-bit immediate. */
constexpr std::int32_t kImm26Min = -(1 << 25);
constexpr std::int32_t kImm26Max = (1 << 25) - 1;

/**
 * Encodes a decoded instruction into its 32-bit word.
 * Panics if a field is out of range for the opcode's format.
 */
std::uint32_t encode(const Instruction &instruction);

/**
 * Decodes a 32-bit word. Returns nullopt if the opcode field does not
 * name a valid opcode.
 */
std::optional<Instruction> decode(std::uint32_t word);

/** True if @p instruction round-trips losslessly through encode(). */
bool isEncodable(const Instruction &instruction);

} // namespace tlat::isa

#endif // TLAT_ISA_ENCODING_HH
