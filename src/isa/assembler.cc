#include "assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "encoding.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace tlat::isa
{

namespace
{

/** One source line reduced to its meaningful parts. */
struct SourceLine
{
    int number = 0;
    std::vector<std::string> labels;
    std::string statement; // instruction or directive, possibly empty
};

std::string
stripComment(const std::string &line)
{
    const std::size_t pos = line.find_first_of("#;");
    return pos == std::string::npos ? line : line.substr(0, pos);
}

bool
isIdentifier(const std::string &text)
{
    if (text.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(text[0])) &&
        text[0] != '_' && text[0] != '.')
        return false;
    for (char c : text) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.')
            return false;
    }
    return true;
}

std::optional<std::int64_t>
parseInteger(const std::string &text)
{
    std::string t = trim(text);
    if (t.empty())
        return std::nullopt;
    bool negative = false;
    std::size_t i = 0;
    if (t[0] == '-' || t[0] == '+') {
        negative = t[0] == '-';
        i = 1;
    }
    if (i >= t.size())
        return std::nullopt;

    std::int64_t value = 0;
    if (t.size() > i + 2 && t[i] == '0' &&
        (t[i + 1] == 'x' || t[i + 1] == 'X')) {
        for (i += 2; i < t.size(); ++i) {
            const char c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(t[i])));
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else
                return std::nullopt;
            value = value * 16 + digit;
        }
    } else {
        for (; i < t.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t[i])))
                return std::nullopt;
            value = value * 10 + (t[i] - '0');
        }
    }
    return negative ? -value : value;
}

std::optional<unsigned>
parseRegister(const std::string &text)
{
    const std::string t = trim(text);
    if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R'))
        return std::nullopt;
    const auto number = parseInteger(t.substr(1));
    if (!number || *number < 0 ||
        *number >= static_cast<std::int64_t>(kNumRegisters))
        return std::nullopt;
    return static_cast<unsigned>(*number);
}

/** Splits "imm(rN)" memory-operand syntax. */
std::optional<std::pair<std::int64_t, unsigned>>
parseMemOperand(const std::string &text)
{
    const std::string t = trim(text);
    const std::size_t open = t.find('(');
    if (open == std::string::npos || t.back() != ')')
        return std::nullopt;
    const std::string imm_text = t.substr(0, open);
    const std::string reg_text =
        t.substr(open + 1, t.size() - open - 2);
    const auto imm = imm_text.empty()
                         ? std::optional<std::int64_t>{0}
                         : parseInteger(imm_text);
    const auto base = parseRegister(reg_text);
    if (!imm || !base)
        return std::nullopt;
    return std::make_pair(*imm, *base);
}

class Assembler
{
  public:
    Assembler(const std::string &source, const std::string &name)
        : source_(source), name_(name)
    {
    }

    AssemblyResult
    run()
    {
        if (!scan())
            return *error_;
        if (!resolve())
            return *error_;

        Program program;
        program.name = name_;
        program.code = std::move(code_);
        program.initialData = std::move(data_);
        program.dataWords = program.initialData.size() + bss_words_;
        program.symbols = std::move(labels_);
        return program;
    }

  private:
    bool
    fail(int line, const std::string &message)
    {
        error_ = AssemblyError{line, message};
        return false;
    }

    /** Pass 1: parse statements, record label pcs, leave branch fixups. */
    bool
    scan()
    {
        int line_number = 0;
        for (const std::string &raw : split(source_, '\n')) {
            ++line_number;
            std::string text = trim(stripComment(raw));

            // Peel off any number of leading "label:" prefixes.
            for (;;) {
                const std::size_t colon = text.find(':');
                if (colon == std::string::npos)
                    break;
                const std::string candidate =
                    trim(text.substr(0, colon));
                if (!isIdentifier(candidate))
                    break;
                if (labels_.count(candidate)) {
                    return fail(line_number,
                                "duplicate label '" + candidate + "'");
                }
                labels_[candidate] = code_.size();
                text = trim(text.substr(colon + 1));
            }

            if (text.empty())
                continue;
            if (!parseStatement(line_number, text))
                return false;
        }
        return true;
    }

    bool
    parseStatement(int line, const std::string &text)
    {
        std::size_t space = text.find_first_of(" \t");
        const std::string head =
            space == std::string::npos ? text : text.substr(0, space);
        const std::string rest =
            space == std::string::npos ? "" : trim(text.substr(space));

        if (head == ".word")
            return parseWordDirective(line, rest);
        if (head == ".double")
            return parseDoubleDirective(line, rest);
        if (head == ".space")
            return parseSpaceDirective(line, rest);

        const Opcode opcode = opcodeFromName(toLower(head));
        if (opcode == Opcode::NumOpcodes)
            return fail(line, "unknown mnemonic '" + head + "'");

        std::vector<std::string> operands;
        if (!rest.empty()) {
            for (const std::string &field : split(rest, ','))
                operands.push_back(trim(field));
        }
        return parseInstruction(line, opcode, operands);
    }

    bool
    parseWordDirective(int line, const std::string &rest)
    {
        for (const std::string &field : split(rest, ',')) {
            const auto value = parseInteger(trim(field));
            if (!value)
                return fail(line, "bad .word operand '" + field + "'");
            data_.push_back(static_cast<std::uint64_t>(*value));
        }
        return true;
    }

    bool
    parseDoubleDirective(int line, const std::string &rest)
    {
        for (const std::string &field : split(rest, ',')) {
            char *end = nullptr;
            const std::string t = trim(field);
            const double value = std::strtod(t.c_str(), &end);
            if (end == t.c_str() || *end != '\0')
                return fail(line,
                            "bad .double operand '" + field + "'");
            std::uint64_t pattern;
            static_assert(sizeof(pattern) == sizeof(value));
            __builtin_memcpy(&pattern, &value, sizeof(pattern));
            data_.push_back(pattern);
        }
        return true;
    }

    bool
    parseSpaceDirective(int line, const std::string &rest)
    {
        const auto words = parseInteger(rest);
        if (!words || *words < 0)
            return fail(line, "bad .space operand");
        bss_words_ += static_cast<std::uint64_t>(*words);
        return true;
    }

    bool
    expectOperands(int line, const std::vector<std::string> &operands,
                   std::size_t expected)
    {
        if (operands.size() == expected)
            return true;
        return fail(line, "expected " + std::to_string(expected) +
                              " operands, got " +
                              std::to_string(operands.size()));
    }

    bool
    needRegister(int line, const std::string &text, unsigned &out)
    {
        const auto reg = parseRegister(text);
        if (!reg)
            return fail(line, "bad register '" + text + "'");
        out = *reg;
        return true;
    }

    bool
    needImmediate(int line, const std::string &text, std::int64_t &out)
    {
        const auto value = parseInteger(text);
        if (!value)
            return fail(line, "bad immediate '" + text + "'");
        out = *value;
        return true;
    }

    bool
    parseInstruction(int line, Opcode opcode,
                     const std::vector<std::string> &operands)
    {
        Instruction instruction;
        instruction.opcode = opcode;
        unsigned reg_a = 0;
        unsigned reg_b = 0;
        unsigned reg_c = 0;
        std::int64_t imm = 0;

        switch (opcodeFormat(opcode)) {
          case Format::R:
            if (!expectOperands(line, operands, 3) ||
                !needRegister(line, operands[0], reg_a) ||
                !needRegister(line, operands[1], reg_b) ||
                !needRegister(line, operands[2], reg_c))
                return false;
            instruction.rd = static_cast<std::uint8_t>(reg_a);
            instruction.rs1 = static_cast<std::uint8_t>(reg_b);
            instruction.rs2 = static_cast<std::uint8_t>(reg_c);
            break;

          case Format::R2:
            if (!expectOperands(line, operands, 2) ||
                !needRegister(line, operands[0], reg_a) ||
                !needRegister(line, operands[1], reg_b))
                return false;
            instruction.rd = static_cast<std::uint8_t>(reg_a);
            instruction.rs1 = static_cast<std::uint8_t>(reg_b);
            break;

          case Format::RI:
            if (opcode == Opcode::Ld) {
                if (!expectOperands(line, operands, 2) ||
                    !needRegister(line, operands[0], reg_a))
                    return false;
                const auto mem = parseMemOperand(operands[1]);
                if (!mem)
                    return fail(line, "bad memory operand '" +
                                          operands[1] + "'");
                instruction.rd = static_cast<std::uint8_t>(reg_a);
                instruction.rs1 =
                    static_cast<std::uint8_t>(mem->second);
                instruction.imm =
                    static_cast<std::int32_t>(mem->first);
            } else {
                if (!expectOperands(line, operands, 3) ||
                    !needRegister(line, operands[0], reg_a) ||
                    !needRegister(line, operands[1], reg_b) ||
                    !needImmediate(line, operands[2], imm))
                    return false;
                instruction.rd = static_cast<std::uint8_t>(reg_a);
                instruction.rs1 = static_cast<std::uint8_t>(reg_b);
                instruction.imm = static_cast<std::int32_t>(imm);
            }
            break;

          case Format::RdImm:
            if (!expectOperands(line, operands, 2) ||
                !needRegister(line, operands[0], reg_a) ||
                !needImmediate(line, operands[1], imm))
                return false;
            instruction.rd = static_cast<std::uint8_t>(reg_a);
            instruction.imm = static_cast<std::int32_t>(imm);
            break;

          case Format::Store: {
            if (!expectOperands(line, operands, 2) ||
                !needRegister(line, operands[0], reg_a))
                return false;
            const auto mem = parseMemOperand(operands[1]);
            if (!mem)
                return fail(line,
                            "bad memory operand '" + operands[1] + "'");
            instruction.rs2 = static_cast<std::uint8_t>(reg_a);
            instruction.rs1 = static_cast<std::uint8_t>(mem->second);
            instruction.imm = static_cast<std::int32_t>(mem->first);
            break;
          }

          case Format::Branch:
            if (!expectOperands(line, operands, 3) ||
                !needRegister(line, operands[0], reg_a) ||
                !needRegister(line, operands[1], reg_b))
                return false;
            instruction.rs1 = static_cast<std::uint8_t>(reg_a);
            instruction.rs2 = static_cast<std::uint8_t>(reg_b);
            pending_targets_.push_back(
                PendingTarget{code_.size(), line, operands[2]});
            break;

          case Format::Jump:
            if (!expectOperands(line, operands, 1))
                return false;
            pending_targets_.push_back(
                PendingTarget{code_.size(), line, operands[0]});
            break;

          case Format::JumpReg:
            if (!expectOperands(line, operands, 1) ||
                !needRegister(line, operands[0], reg_a))
                return false;
            instruction.rs1 = static_cast<std::uint8_t>(reg_a);
            break;

          case Format::None:
            if (!expectOperands(line, operands, 0))
                return false;
            break;
        }

        code_.push_back(instruction);
        return true;
    }

    /** Pass 2: resolve branch/jump targets (labels or absolute pcs). */
    bool
    resolve()
    {
        for (const PendingTarget &pending : pending_targets_) {
            std::int64_t target_pc;
            const auto label = labels_.find(pending.text);
            if (label != labels_.end()) {
                target_pc = static_cast<std::int64_t>(label->second);
            } else {
                const auto absolute = parseInteger(pending.text);
                if (!absolute)
                    return fail(pending.line, "unknown label '" +
                                                  pending.text + "'");
                target_pc = *absolute;
            }
            Instruction &instruction = code_[pending.pc];
            instruction.imm = static_cast<std::int32_t>(
                target_pc - static_cast<std::int64_t>(pending.pc));
            if (!isEncodable(instruction)) {
                return fail(pending.line,
                            "branch target out of encodable range");
            }
        }
        return true;
    }

    struct PendingTarget
    {
        std::uint64_t pc;
        int line;
        std::string text;
    };

    const std::string &source_;
    std::string name_;
    std::vector<Instruction> code_;
    std::vector<std::uint64_t> data_;
    std::uint64_t bss_words_ = 0;
    std::map<std::string, std::uint64_t> labels_;
    std::vector<PendingTarget> pending_targets_;
    std::optional<AssemblyError> error_;
};

} // namespace

AssemblyResult
assemble(const std::string &source, const std::string &name)
{
    return Assembler(source, name).run();
}

Program
assembleOrDie(const std::string &source, const std::string &name)
{
    AssemblyResult result = assemble(source, name);
    if (auto *error = std::get_if<AssemblyError>(&result)) {
        tlat_fatal("assembly of '", name, "' failed at line ",
                   error->line, ": ", error->message);
    }
    return std::get<Program>(std::move(result));
}

} // namespace tlat::isa
