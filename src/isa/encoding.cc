#include "encoding.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tlat::isa
{

namespace
{

constexpr unsigned kOpcodeShift = 26;
constexpr unsigned kRdShift = 21;
constexpr unsigned kRs1Shift = 16;
constexpr unsigned kRs2Shift = 11;

void
checkRegister(unsigned reg)
{
    tlat_assert(reg < kNumRegisters, "register out of range: ", reg);
}

void
checkImm16(std::int32_t imm)
{
    tlat_assert(imm >= kImm16Min && imm <= kImm16Max,
                "imm16 out of range: ", imm);
}

void
checkImm26(std::int32_t imm)
{
    tlat_assert(imm >= kImm26Min && imm <= kImm26Max,
                "imm26 out of range: ", imm);
}

} // namespace

std::uint32_t
encode(const Instruction &instruction)
{
    const Opcode op = instruction.opcode;
    std::uint32_t word = static_cast<std::uint32_t>(op) << kOpcodeShift;

    switch (opcodeFormat(op)) {
      case Format::R:
        checkRegister(instruction.rd);
        checkRegister(instruction.rs1);
        checkRegister(instruction.rs2);
        word |= static_cast<std::uint32_t>(instruction.rd) << kRdShift;
        word |= static_cast<std::uint32_t>(instruction.rs1) << kRs1Shift;
        word |= static_cast<std::uint32_t>(instruction.rs2) << kRs2Shift;
        break;
      case Format::R2:
        checkRegister(instruction.rd);
        checkRegister(instruction.rs1);
        word |= static_cast<std::uint32_t>(instruction.rd) << kRdShift;
        word |= static_cast<std::uint32_t>(instruction.rs1) << kRs1Shift;
        break;
      case Format::RI:
        checkRegister(instruction.rd);
        checkRegister(instruction.rs1);
        checkImm16(instruction.imm);
        word |= static_cast<std::uint32_t>(instruction.rd) << kRdShift;
        word |= static_cast<std::uint32_t>(instruction.rs1) << kRs1Shift;
        word |= static_cast<std::uint32_t>(instruction.imm) & 0xffffu;
        break;
      case Format::RdImm:
        checkRegister(instruction.rd);
        checkImm16(instruction.imm);
        word |= static_cast<std::uint32_t>(instruction.rd) << kRdShift;
        word |= static_cast<std::uint32_t>(instruction.imm) & 0xffffu;
        break;
      case Format::Store:
      case Format::Branch:
        checkRegister(instruction.rs1);
        checkRegister(instruction.rs2);
        checkImm16(instruction.imm);
        word |= static_cast<std::uint32_t>(instruction.rs1) << kRdShift;
        word |= static_cast<std::uint32_t>(instruction.rs2) << kRs1Shift;
        word |= static_cast<std::uint32_t>(instruction.imm) & 0xffffu;
        break;
      case Format::Jump:
        checkImm26(instruction.imm);
        word |= static_cast<std::uint32_t>(instruction.imm) & 0x03ffffffu;
        break;
      case Format::JumpReg:
        checkRegister(instruction.rs1);
        word |= static_cast<std::uint32_t>(instruction.rs1) << kRs1Shift;
        break;
      case Format::None:
        break;
    }
    return word;
}

std::optional<Instruction>
decode(std::uint32_t word)
{
    const std::uint32_t op_field = word >> kOpcodeShift;
    if (op_field >= static_cast<std::uint32_t>(Opcode::NumOpcodes))
        return std::nullopt;

    Instruction instruction;
    instruction.opcode = static_cast<Opcode>(op_field);

    const auto field = [word](unsigned shift) {
        return static_cast<std::uint8_t>((word >> shift) & 0x1f);
    };
    const auto imm16 = [word]() {
        return static_cast<std::int32_t>(
            signExtend(word & 0xffffu, 16));
    };

    switch (opcodeFormat(instruction.opcode)) {
      case Format::R:
        instruction.rd = field(kRdShift);
        instruction.rs1 = field(kRs1Shift);
        instruction.rs2 = field(kRs2Shift);
        break;
      case Format::R2:
        instruction.rd = field(kRdShift);
        instruction.rs1 = field(kRs1Shift);
        break;
      case Format::RI:
        instruction.rd = field(kRdShift);
        instruction.rs1 = field(kRs1Shift);
        instruction.imm = imm16();
        break;
      case Format::RdImm:
        instruction.rd = field(kRdShift);
        instruction.imm = imm16();
        break;
      case Format::Store:
      case Format::Branch:
        instruction.rs1 = field(kRdShift);
        instruction.rs2 = field(kRs1Shift);
        instruction.imm = imm16();
        break;
      case Format::Jump:
        instruction.imm = static_cast<std::int32_t>(
            signExtend(word & 0x03ffffffu, 26));
        break;
      case Format::JumpReg:
        instruction.rs1 = field(kRs1Shift);
        break;
      case Format::None:
        break;
    }
    return instruction;
}

bool
isEncodable(const Instruction &instruction)
{
    const Opcode op = instruction.opcode;
    if (op >= Opcode::NumOpcodes)
        return false;

    const auto reg_ok = [](unsigned reg) { return reg < kNumRegisters; };
    const auto imm16_ok = [](std::int32_t imm) {
        return imm >= kImm16Min && imm <= kImm16Max;
    };

    switch (opcodeFormat(op)) {
      case Format::R:
        return reg_ok(instruction.rd) && reg_ok(instruction.rs1) &&
               reg_ok(instruction.rs2);
      case Format::R2:
        return reg_ok(instruction.rd) && reg_ok(instruction.rs1);
      case Format::RI:
        return reg_ok(instruction.rd) && reg_ok(instruction.rs1) &&
               imm16_ok(instruction.imm);
      case Format::RdImm:
        return reg_ok(instruction.rd) && imm16_ok(instruction.imm);
      case Format::Store:
      case Format::Branch:
        return reg_ok(instruction.rs1) && reg_ok(instruction.rs2) &&
               imm16_ok(instruction.imm);
      case Format::Jump:
        return instruction.imm >= kImm26Min &&
               instruction.imm <= kImm26Max;
      case Format::JumpReg:
        return reg_ok(instruction.rs1);
      case Format::None:
        return true;
    }
    return false;
}

} // namespace tlat::isa
