#include "program.hh"

#include <cstring>
#include <set>

#include "encoding.hh"
#include "util/logging.hh"

namespace tlat::isa
{

std::uint64_t
Program::staticConditionalBranches() const
{
    std::uint64_t count = 0;
    for (const Instruction &instruction : code) {
        if (isConditionalBranch(instruction.opcode))
            ++count;
    }
    return count;
}

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name))
{
}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    label_pcs_.push_back(kUnbound);
    label_names_.emplace_back();
    return Label{static_cast<int>(label_pcs_.size()) - 1};
}

ProgramBuilder::Label
ProgramBuilder::newLabel(const std::string &symbol)
{
    Label label = newLabel();
    label_names_[static_cast<std::size_t>(label.id)] = symbol;
    return label;
}

void
ProgramBuilder::bind(Label label)
{
    tlat_assert(label.id >= 0 &&
                    label.id < static_cast<int>(label_pcs_.size()),
                "bind of unknown label");
    auto &pc = label_pcs_[static_cast<std::size_t>(label.id)];
    tlat_assert(pc == kUnbound, "label bound twice");
    pc = static_cast<std::int64_t>(code_.size());
    const auto &symbol =
        label_names_[static_cast<std::size_t>(label.id)];
    if (!symbol.empty())
        symbols_[symbol] = code_.size();
}

void
ProgramBuilder::emit(const Instruction &instruction)
{
    tlat_assert(!built_, "builder reused after build()");
    code_.push_back(instruction);
}

namespace
{

Instruction
makeR(Opcode op, unsigned rd, unsigned rs1, unsigned rs2)
{
    Instruction instruction;
    instruction.opcode = op;
    instruction.rd = static_cast<std::uint8_t>(rd);
    instruction.rs1 = static_cast<std::uint8_t>(rs1);
    instruction.rs2 = static_cast<std::uint8_t>(rs2);
    return instruction;
}

Instruction
makeI(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm)
{
    Instruction instruction;
    instruction.opcode = op;
    instruction.rd = static_cast<std::uint8_t>(rd);
    instruction.rs1 = static_cast<std::uint8_t>(rs1);
    instruction.imm = imm;
    return instruction;
}

} // namespace

#define TLAT_DEFINE_R(method, opcode)                                      \
    void ProgramBuilder::method(unsigned rd, unsigned rs1, unsigned rs2)   \
    {                                                                       \
        emit(makeR(Opcode::opcode, rd, rs1, rs2));                          \
    }

TLAT_DEFINE_R(add, Add)
TLAT_DEFINE_R(sub, Sub)
TLAT_DEFINE_R(mul, Mul)
TLAT_DEFINE_R(div, Div)
TLAT_DEFINE_R(rem, Rem)
TLAT_DEFINE_R(and_, And)
TLAT_DEFINE_R(or_, Or)
TLAT_DEFINE_R(xor_, Xor)
TLAT_DEFINE_R(sll, Sll)
TLAT_DEFINE_R(srl, Srl)
TLAT_DEFINE_R(sra, Sra)
TLAT_DEFINE_R(slt, Slt)
TLAT_DEFINE_R(sltu, Sltu)
TLAT_DEFINE_R(fadd, Fadd)
TLAT_DEFINE_R(fsub, Fsub)
TLAT_DEFINE_R(fmul, Fmul)
TLAT_DEFINE_R(fdiv, Fdiv)
TLAT_DEFINE_R(flt, Flt)
TLAT_DEFINE_R(fle, Fle)
TLAT_DEFINE_R(feq, Feq)

#undef TLAT_DEFINE_R

#define TLAT_DEFINE_RI(method, opcode)                                     \
    void ProgramBuilder::method(unsigned rd, unsigned rs1,                  \
                                std::int32_t imm)                           \
    {                                                                       \
        emit(makeI(Opcode::opcode, rd, rs1, imm));                          \
    }

TLAT_DEFINE_RI(addi, Addi)
TLAT_DEFINE_RI(andi, Andi)
TLAT_DEFINE_RI(ori, Ori)
TLAT_DEFINE_RI(xori, Xori)
TLAT_DEFINE_RI(slli, Slli)
TLAT_DEFINE_RI(srli, Srli)
TLAT_DEFINE_RI(srai, Srai)
TLAT_DEFINE_RI(slti, Slti)
TLAT_DEFINE_RI(ld, Ld)

#undef TLAT_DEFINE_RI

#define TLAT_DEFINE_R2(method, opcode)                                     \
    void ProgramBuilder::method(unsigned rd, unsigned rs1)                  \
    {                                                                       \
        emit(makeR(Opcode::opcode, rd, rs1, 0));                            \
    }

TLAT_DEFINE_R2(fneg, Fneg)
TLAT_DEFINE_R2(fabs_, Fabs)
TLAT_DEFINE_R2(fsqrt, Fsqrt)
TLAT_DEFINE_R2(fcvt, Fcvt)
TLAT_DEFINE_R2(ftoi, Ftoi)

#undef TLAT_DEFINE_R2

void
ProgramBuilder::li(unsigned rd, std::int32_t imm)
{
    emit(makeI(Opcode::Li, rd, 0, imm));
}

void
ProgramBuilder::st(unsigned base, unsigned value, std::int32_t imm)
{
    Instruction instruction;
    instruction.opcode = Opcode::St;
    instruction.rs1 = static_cast<std::uint8_t>(base);
    instruction.rs2 = static_cast<std::uint8_t>(value);
    instruction.imm = imm;
    emit(instruction);
}

void
ProgramBuilder::emitBranch(Opcode opcode, unsigned rs1, unsigned rs2,
                           Label target)
{
    Instruction instruction;
    instruction.opcode = opcode;
    instruction.rs1 = static_cast<std::uint8_t>(rs1);
    instruction.rs2 = static_cast<std::uint8_t>(rs2);
    instruction.imm = 0;
    fixups_.push_back(Fixup{code_.size(), target.id});
    emit(instruction);
}

void
ProgramBuilder::emitJump(Opcode opcode, Label target)
{
    Instruction instruction;
    instruction.opcode = opcode;
    instruction.imm = 0;
    fixups_.push_back(Fixup{code_.size(), target.id});
    emit(instruction);
}

void
ProgramBuilder::beq(unsigned rs1, unsigned rs2, Label target)
{
    emitBranch(Opcode::Beq, rs1, rs2, target);
}

void
ProgramBuilder::bne(unsigned rs1, unsigned rs2, Label target)
{
    emitBranch(Opcode::Bne, rs1, rs2, target);
}

void
ProgramBuilder::blt(unsigned rs1, unsigned rs2, Label target)
{
    emitBranch(Opcode::Blt, rs1, rs2, target);
}

void
ProgramBuilder::bge(unsigned rs1, unsigned rs2, Label target)
{
    emitBranch(Opcode::Bge, rs1, rs2, target);
}

void
ProgramBuilder::bltu(unsigned rs1, unsigned rs2, Label target)
{
    emitBranch(Opcode::Bltu, rs1, rs2, target);
}

void
ProgramBuilder::bgeu(unsigned rs1, unsigned rs2, Label target)
{
    emitBranch(Opcode::Bgeu, rs1, rs2, target);
}

void
ProgramBuilder::jmp(Label target)
{
    emitJump(Opcode::Jmp, target);
}

void
ProgramBuilder::call(Label target)
{
    emitJump(Opcode::Call, target);
}

void
ProgramBuilder::jr(unsigned rs1)
{
    Instruction instruction;
    instruction.opcode = Opcode::Jr;
    instruction.rs1 = static_cast<std::uint8_t>(rs1);
    emit(instruction);
}

void
ProgramBuilder::ret()
{
    Instruction instruction;
    instruction.opcode = Opcode::Ret;
    emit(instruction);
}

void
ProgramBuilder::nop()
{
    emit(Instruction{});
}

void
ProgramBuilder::halt()
{
    Instruction instruction;
    instruction.opcode = Opcode::Halt;
    emit(instruction);
}

void
ProgramBuilder::mov(unsigned rd, unsigned rs)
{
    addi(rd, rs, 0);
}

void
ProgramBuilder::loadImm(unsigned rd, std::int64_t value)
{
    if (value >= kImm16Min && value <= kImm16Max) {
        li(rd, static_cast<std::int32_t>(value));
        return;
    }

    // Find the highest 16-bit chunk that is non-redundant under sign
    // extension, emit it with li (sign-extending), then shift/or in the
    // remaining chunks (ori zero-extends).
    int top = 3;
    while (top > 0) {
        const std::int64_t shifted = value >> (16 * top);
        if (shifted != 0 && shifted != -1)
            break;
        // The chunk below must have the right sign bit for li's sign
        // extension to reproduce `shifted`.
        const std::int64_t below = value >> (16 * (top - 1));
        const bool sign_matches =
            (shifted == 0 && (below & 0x8000) == 0) ||
            (shifted == -1 && (below & 0x8000) != 0);
        if (!sign_matches)
            break;
        --top;
    }

    li(rd, static_cast<std::int32_t>(
               static_cast<std::int16_t>(value >> (16 * top))));
    for (int chunk = top - 1; chunk >= 0; --chunk) {
        slli(rd, rd, 16);
        const auto bits16 = static_cast<std::int32_t>(
            (value >> (16 * chunk)) & 0xffff);
        if (bits16 != 0)
            ori(rd, rd, bits16);
    }
}

void
ProgramBuilder::la(unsigned rd, Label target)
{
    Instruction instruction;
    instruction.opcode = Opcode::Li;
    instruction.rd = static_cast<std::uint8_t>(rd);
    instruction.imm = 0;
    fixups_.push_back(Fixup{code_.size(), target.id, true});
    emit(instruction);
    slli(rd, rd, 2);
}

void
ProgramBuilder::loadDouble(unsigned rd, double value)
{
    std::int64_t pattern;
    std::memcpy(&pattern, &value, sizeof(pattern));
    loadImm(rd, pattern);
}

std::uint64_t
ProgramBuilder::data(const std::vector<std::uint64_t> &words)
{
    // data() and bss() share one allocation cursor, so initialized
    // and reserved chunks can be interleaved freely. Reserved holes
    // before this chunk are zero-filled in the image.
    const std::uint64_t address = data_cursor_ * 8;
    data_.resize(data_cursor_, 0);
    data_.insert(data_.end(), words.begin(), words.end());
    data_cursor_ += words.size();
    return address;
}

std::uint64_t
ProgramBuilder::dataDoubles(const std::vector<double> &values)
{
    std::vector<std::uint64_t> words;
    words.reserve(values.size());
    for (double v : values) {
        std::uint64_t pattern;
        std::memcpy(&pattern, &v, sizeof(pattern));
        words.push_back(pattern);
    }
    return data(words);
}

std::uint64_t
ProgramBuilder::bss(std::uint64_t words)
{
    const std::uint64_t address = data_cursor_ * 8;
    data_cursor_ += words;
    return address;
}

void
ProgramBuilder::defineDataSymbol(const std::string &name,
                                 std::uint64_t address)
{
    data_symbols_[name] = address;
}

Program
ProgramBuilder::build()
{
    tlat_assert(!built_, "build() called twice");
    built_ = true;

    for (const Fixup &fixup : fixups_) {
        tlat_assert(fixup.label_id >= 0 &&
                        fixup.label_id <
                            static_cast<int>(label_pcs_.size()),
                    "fixup references unknown label");
        const std::int64_t target =
            label_pcs_[static_cast<std::size_t>(fixup.label_id)];
        if (target == kUnbound) {
            tlat_fatal("program '", name_, "': label ",
                       fixup.label_id, " referenced at pc ", fixup.pc,
                       " was never bound");
        }
        Instruction &instruction = code_[fixup.pc];
        if (fixup.absolute) {
            instruction.imm = static_cast<std::int32_t>(target);
            tlat_assert(isEncodable(instruction),
                        "la target pc out of imm16 range: ", target);
        } else {
            const std::int64_t offset =
                target - static_cast<std::int64_t>(fixup.pc);
            instruction.imm = static_cast<std::int32_t>(offset);
            tlat_assert(isEncodable(instruction),
                        "branch offset out of encodable range: ",
                        offset);
        }
    }

    Program program;
    program.name = name_;
    program.code = std::move(code_);
    program.initialData = std::move(data_);
    program.dataWords = data_cursor_;
    program.symbols = std::move(symbols_);
    program.dataSymbols = std::move(data_symbols_);
    return program;
}

} // namespace tlat::isa
