/**
 * @file
 * The micro88 instruction set.
 *
 * micro88 is a small load/store RISC ISA standing in for the Motorola
 * 88100 the paper traced (see DESIGN.md, substitution table). It was
 * designed to exercise exactly the branch taxonomy of Section 4 of the
 * paper:
 *
 *  - conditional branches      (Beq, Bne, Blt, Bge, Bltu, Bgeu)
 *  - subroutine returns        (Ret)
 *  - immediate unconditionals  (Jmp, Call)
 *  - register unconditionals   (Jr)
 *
 * plus enough integer/FP/memory operations to write realistic programs.
 * Registers are 64-bit; FP operations bit-cast register contents to
 * IEEE double. r0 reads as zero and ignores writes; r31 is the link
 * register written by Call and read by Ret.
 */

#ifndef TLAT_ISA_INSTRUCTION_HH
#define TLAT_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

namespace tlat::isa
{

/** Number of general-purpose registers. */
constexpr unsigned kNumRegisters = 32;

/** Register index of the hardwired zero register. */
constexpr unsigned kZeroReg = 0;

/** Register index of the link register written by Call. */
constexpr unsigned kLinkReg = 31;

/** Each instruction occupies four bytes of the simulated address space. */
constexpr std::uint64_t kInstructionBytes = 4;

/** micro88 opcodes. */
enum class Opcode : std::uint8_t
{
    // Integer register-register ALU.
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor,
    Sll, Srl, Sra,
    Slt, Sltu,

    // Integer register-immediate ALU.
    Addi, Andi, Ori, Xori,
    Slli, Srli, Srai,
    Slti,
    Li,     ///< rd = sign-extended 16-bit immediate.

    // Floating point (operands bit-cast to double).
    Fadd, Fsub, Fmul, Fdiv,
    Fneg, Fabs, Fsqrt,
    Fcvt,   ///< rd = double(int64(rs1))
    Ftoi,   ///< rd = int64(trunc(double(rs1)))
    Flt, Fle, Feq,   ///< rd = compare(rs1, rs2) ? 1 : 0

    // Memory (64-bit words; effective address = rs1 + imm).
    Ld, St,

    // Conditional branches (compare rs1, rs2; pc-relative target).
    Beq, Bne, Blt, Bge, Bltu, Bgeu,

    // Unconditional control flow.
    Jmp,    ///< pc-relative immediate jump.
    Call,   ///< pc-relative immediate call; r31 = return address.
    Jr,     ///< jump to the address in rs1.
    Ret,    ///< return to the address in r31.

    // Misc.
    Nop,
    Halt,

    NumOpcodes
};

/** Broad operand-format classes used by the encoder and assembler. */
enum class Format : std::uint8_t
{
    R,      ///< rd, rs1, rs2
    RI,     ///< rd, rs1, imm16
    RdImm,  ///< rd, imm16 (Li)
    R2,     ///< rd, rs1 (unary: Fneg, Fabs, Fsqrt, Fcvt, Ftoi)
    Store,  ///< rs1 (base), rs2 (value), imm16
    Branch, ///< rs1, rs2, imm16 (pc-relative, in instructions)
    Jump,   ///< imm26 (pc-relative, in instructions)
    JumpReg,///< rs1
    None    ///< no operands (Ret, Nop, Halt)
};

/** Coarse semantic groups, used for trace statistics (paper Fig. 3). */
enum class InstrGroup : std::uint8_t
{
    IntAlu,
    FpAlu,
    Memory,
    ControlFlow,
    Other
};

/** A decoded micro88 instruction. */
struct Instruction
{
    Opcode opcode = Opcode::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;

    bool
    operator==(const Instruction &other) const
    {
        return opcode == other.opcode && rd == other.rd &&
               rs1 == other.rs1 && rs2 == other.rs2 &&
               imm == other.imm;
    }
};

/** Mnemonic for an opcode (lowercase, e.g. "addi"). */
const char *opcodeName(Opcode opcode);

/** Looks up an opcode by mnemonic; NumOpcodes if unknown. */
Opcode opcodeFromName(const std::string &name);

/** Operand format of an opcode. */
Format opcodeFormat(Opcode opcode);

/** Semantic group of an opcode. */
InstrGroup opcodeGroup(Opcode opcode);

/** True for the six conditional branch opcodes. */
bool isConditionalBranch(Opcode opcode);

/** True for any opcode that can redirect the pc. */
bool isControlFlow(Opcode opcode);

} // namespace tlat::isa

#endif // TLAT_ISA_INSTRUCTION_HH
