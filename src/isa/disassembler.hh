/**
 * @file
 * Textual rendering of micro88 instructions and programs.
 */

#ifndef TLAT_ISA_DISASSEMBLER_HH
#define TLAT_ISA_DISASSEMBLER_HH

#include <cstdint>
#include <string>

#include "instruction.hh"
#include "program.hh"

namespace tlat::isa
{

/**
 * Disassembles one instruction. If @p pc is provided, branch/jump
 * targets are rendered as absolute pcs; otherwise as relative offsets.
 */
std::string disassemble(const Instruction &instruction,
                        std::int64_t pc = -1);

/** Disassembles an entire program, one "pc: text" line per instruction. */
std::string disassemble(const Program &program);

} // namespace tlat::isa

#endif // TLAT_ISA_DISASSEMBLER_HH
