#include "disassembler.hh"

#include <sstream>

#include "util/string_utils.hh"

namespace tlat::isa
{

namespace
{

// format() instead of `const char * + std::string`: the
// concatenation form trips gcc 12's -Wrestrict false positive
// (PR105651) at -O3 under -Werror.
std::string
reg(unsigned index)
{
    return format("r%u", index);
}

std::string
targetText(std::int32_t offset, std::int64_t pc)
{
    if (pc < 0) {
        return format("%s%d", offset >= 0 ? "+" : "", offset);
    }
    return std::to_string(pc + offset);
}

} // namespace

std::string
disassemble(const Instruction &instruction, std::int64_t pc)
{
    const Opcode op = instruction.opcode;
    std::ostringstream oss;
    oss << opcodeName(op);

    switch (opcodeFormat(op)) {
      case Format::R:
        oss << ' ' << reg(instruction.rd) << ", "
            << reg(instruction.rs1) << ", " << reg(instruction.rs2);
        break;
      case Format::R2:
        oss << ' ' << reg(instruction.rd) << ", "
            << reg(instruction.rs1);
        break;
      case Format::RI:
        if (op == Opcode::Ld) {
            oss << ' ' << reg(instruction.rd) << ", "
                << instruction.imm << '(' << reg(instruction.rs1)
                << ')';
        } else {
            oss << ' ' << reg(instruction.rd) << ", "
                << reg(instruction.rs1) << ", " << instruction.imm;
        }
        break;
      case Format::RdImm:
        oss << ' ' << reg(instruction.rd) << ", " << instruction.imm;
        break;
      case Format::Store:
        oss << ' ' << reg(instruction.rs2) << ", " << instruction.imm
            << '(' << reg(instruction.rs1) << ')';
        break;
      case Format::Branch:
        oss << ' ' << reg(instruction.rs1) << ", "
            << reg(instruction.rs2) << ", "
            << targetText(instruction.imm, pc);
        break;
      case Format::Jump:
        oss << ' ' << targetText(instruction.imm, pc);
        break;
      case Format::JumpReg:
        oss << ' ' << reg(instruction.rs1);
        break;
      case Format::None:
        break;
    }
    return oss.str();
}

std::string
disassemble(const Program &program)
{
    // Invert the symbol table so labels print above their pc.
    std::ostringstream oss;
    for (std::uint64_t pc = 0; pc < program.code.size(); ++pc) {
        for (const auto &[symbol, symbol_pc] : program.symbols) {
            if (symbol_pc == pc)
                oss << symbol << ":\n";
        }
        oss << format("%6llu:  ",
                      static_cast<unsigned long long>(pc))
            << disassemble(program.code[pc],
                           static_cast<std::int64_t>(pc))
            << '\n';
    }
    return oss.str();
}

} // namespace tlat::isa
