#include "instruction.hh"

#include "util/logging.hh"

namespace tlat::isa
{

namespace
{

struct OpcodeInfo
{
    const char *name;
    Format format;
    InstrGroup group;
};

// Indexed by Opcode value; order must match the enum.
constexpr OpcodeInfo kOpcodeTable[] = {
    {"add",   Format::R,       InstrGroup::IntAlu},
    {"sub",   Format::R,       InstrGroup::IntAlu},
    {"mul",   Format::R,       InstrGroup::IntAlu},
    {"div",   Format::R,       InstrGroup::IntAlu},
    {"rem",   Format::R,       InstrGroup::IntAlu},
    {"and",   Format::R,       InstrGroup::IntAlu},
    {"or",    Format::R,       InstrGroup::IntAlu},
    {"xor",   Format::R,       InstrGroup::IntAlu},
    {"sll",   Format::R,       InstrGroup::IntAlu},
    {"srl",   Format::R,       InstrGroup::IntAlu},
    {"sra",   Format::R,       InstrGroup::IntAlu},
    {"slt",   Format::R,       InstrGroup::IntAlu},
    {"sltu",  Format::R,       InstrGroup::IntAlu},
    {"addi",  Format::RI,      InstrGroup::IntAlu},
    {"andi",  Format::RI,      InstrGroup::IntAlu},
    {"ori",   Format::RI,      InstrGroup::IntAlu},
    {"xori",  Format::RI,      InstrGroup::IntAlu},
    {"slli",  Format::RI,      InstrGroup::IntAlu},
    {"srli",  Format::RI,      InstrGroup::IntAlu},
    {"srai",  Format::RI,      InstrGroup::IntAlu},
    {"slti",  Format::RI,      InstrGroup::IntAlu},
    {"li",    Format::RdImm,   InstrGroup::IntAlu},
    {"fadd",  Format::R,       InstrGroup::FpAlu},
    {"fsub",  Format::R,       InstrGroup::FpAlu},
    {"fmul",  Format::R,       InstrGroup::FpAlu},
    {"fdiv",  Format::R,       InstrGroup::FpAlu},
    {"fneg",  Format::R2,      InstrGroup::FpAlu},
    {"fabs",  Format::R2,      InstrGroup::FpAlu},
    {"fsqrt", Format::R2,      InstrGroup::FpAlu},
    {"fcvt",  Format::R2,      InstrGroup::FpAlu},
    {"ftoi",  Format::R2,      InstrGroup::FpAlu},
    {"flt",   Format::R,       InstrGroup::FpAlu},
    {"fle",   Format::R,       InstrGroup::FpAlu},
    {"feq",   Format::R,       InstrGroup::FpAlu},
    {"ld",    Format::RI,      InstrGroup::Memory},
    {"st",    Format::Store,   InstrGroup::Memory},
    {"beq",   Format::Branch,  InstrGroup::ControlFlow},
    {"bne",   Format::Branch,  InstrGroup::ControlFlow},
    {"blt",   Format::Branch,  InstrGroup::ControlFlow},
    {"bge",   Format::Branch,  InstrGroup::ControlFlow},
    {"bltu",  Format::Branch,  InstrGroup::ControlFlow},
    {"bgeu",  Format::Branch,  InstrGroup::ControlFlow},
    {"jmp",   Format::Jump,    InstrGroup::ControlFlow},
    {"call",  Format::Jump,    InstrGroup::ControlFlow},
    {"jr",    Format::JumpReg, InstrGroup::ControlFlow},
    {"ret",   Format::None,    InstrGroup::ControlFlow},
    {"nop",   Format::None,    InstrGroup::Other},
    {"halt",  Format::None,    InstrGroup::Other},
};

constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

static_assert(sizeof(kOpcodeTable) / sizeof(kOpcodeTable[0]) ==
                  kNumOpcodes,
              "opcode table out of sync with Opcode enum");

const OpcodeInfo &
info(Opcode opcode)
{
    const auto index = static_cast<std::size_t>(opcode);
    tlat_assert(index < kNumOpcodes, "bad opcode ", index);
    return kOpcodeTable[index];
}

} // namespace

const char *
opcodeName(Opcode opcode)
{
    return info(opcode).name;
}

Opcode
opcodeFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
        if (name == kOpcodeTable[i].name)
            return static_cast<Opcode>(i);
    }
    return Opcode::NumOpcodes;
}

Format
opcodeFormat(Opcode opcode)
{
    return info(opcode).format;
}

InstrGroup
opcodeGroup(Opcode opcode)
{
    return info(opcode).group;
}

bool
isConditionalBranch(Opcode opcode)
{
    switch (opcode) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
        return true;
      default:
        return false;
    }
}

bool
isControlFlow(Opcode opcode)
{
    return opcodeGroup(opcode) == InstrGroup::ControlFlow;
}

} // namespace tlat::isa
