/**
 * @file
 * micro88 program container and the builder API used to write programs
 * from C++ (the nine SPEC-mirror workloads are authored this way).
 *
 * A Program is a code image (decoded instructions; pc is an instruction
 * index, the simulated byte address is pc * kInstructionBytes) plus an
 * initial data image of 64-bit words (byte address = word index * 8).
 *
 * Immediate semantics: Addi/Slti/Li sign-extend their 16-bit immediate;
 * Andi/Ori/Xori zero-extend it (as in MIPS), which makes the
 * loadImm() pseudo-instruction expansion straightforward.
 */

#ifndef TLAT_ISA_PROGRAM_HH
#define TLAT_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "instruction.hh"

namespace tlat::isa
{

/** A complete micro88 program: code, initial data, entry point. */
struct Program
{
    std::string name;
    std::vector<Instruction> code;
    /** Initial data image; element i lives at byte address i * 8. */
    std::vector<std::uint64_t> initialData;
    /** Total data words the program may touch (>= initialData.size()). */
    std::uint64_t dataWords = 0;
    /** Entry pc (instruction index). */
    std::uint64_t entry = 0;
    /** Optional label -> pc map (kept for disassembly and tests). */
    std::map<std::string, std::uint64_t> symbols;
    /** Named data addresses (byte addresses), for tests and tools. */
    std::map<std::string, std::uint64_t> dataSymbols;

    std::uint64_t size() const { return code.size(); }

    /** Number of distinct conditional-branch pcs in the code image. */
    std::uint64_t staticConditionalBranches() const;
};

/**
 * Incrementally builds a Program with forward-reference label fixups.
 *
 * Typical use:
 * @code
 *   ProgramBuilder b("demo");
 *   auto loop = b.newLabel();
 *   b.li(1, 10);
 *   b.bind(loop);
 *   b.addi(1, 1, -1);
 *   b.bne(1, 0, loop);
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    /** Opaque label handle. */
    struct Label
    {
        int id = -1;
    };

    explicit ProgramBuilder(std::string name);

    // ---- labels -------------------------------------------------------

    /** Creates an unbound label. */
    Label newLabel();

    /** Creates an unbound label and records it in the symbol table. */
    Label newLabel(const std::string &symbol);

    /** Binds @p label to the current pc. */
    void bind(Label label);

    /** Current pc (index of the next emitted instruction). */
    std::uint64_t here() const { return code_.size(); }

    // ---- integer ALU ---------------------------------------------------

    void add(unsigned rd, unsigned rs1, unsigned rs2);
    void sub(unsigned rd, unsigned rs1, unsigned rs2);
    void mul(unsigned rd, unsigned rs1, unsigned rs2);
    void div(unsigned rd, unsigned rs1, unsigned rs2);
    void rem(unsigned rd, unsigned rs1, unsigned rs2);
    void and_(unsigned rd, unsigned rs1, unsigned rs2);
    void or_(unsigned rd, unsigned rs1, unsigned rs2);
    void xor_(unsigned rd, unsigned rs1, unsigned rs2);
    void sll(unsigned rd, unsigned rs1, unsigned rs2);
    void srl(unsigned rd, unsigned rs1, unsigned rs2);
    void sra(unsigned rd, unsigned rs1, unsigned rs2);
    void slt(unsigned rd, unsigned rs1, unsigned rs2);
    void sltu(unsigned rd, unsigned rs1, unsigned rs2);

    void addi(unsigned rd, unsigned rs1, std::int32_t imm);
    void andi(unsigned rd, unsigned rs1, std::int32_t imm);
    void ori(unsigned rd, unsigned rs1, std::int32_t imm);
    void xori(unsigned rd, unsigned rs1, std::int32_t imm);
    void slli(unsigned rd, unsigned rs1, std::int32_t imm);
    void srli(unsigned rd, unsigned rs1, std::int32_t imm);
    void srai(unsigned rd, unsigned rs1, std::int32_t imm);
    void slti(unsigned rd, unsigned rs1, std::int32_t imm);
    void li(unsigned rd, std::int32_t imm);

    // ---- floating point -------------------------------------------------

    void fadd(unsigned rd, unsigned rs1, unsigned rs2);
    void fsub(unsigned rd, unsigned rs1, unsigned rs2);
    void fmul(unsigned rd, unsigned rs1, unsigned rs2);
    void fdiv(unsigned rd, unsigned rs1, unsigned rs2);
    void fneg(unsigned rd, unsigned rs1);
    void fabs_(unsigned rd, unsigned rs1);
    void fsqrt(unsigned rd, unsigned rs1);
    void fcvt(unsigned rd, unsigned rs1);
    void ftoi(unsigned rd, unsigned rs1);
    void flt(unsigned rd, unsigned rs1, unsigned rs2);
    void fle(unsigned rd, unsigned rs1, unsigned rs2);
    void feq(unsigned rd, unsigned rs1, unsigned rs2);

    // ---- memory ----------------------------------------------------------

    /** rd = mem64[rs1 + imm] (byte address, must be 8-aligned). */
    void ld(unsigned rd, unsigned base, std::int32_t imm);
    /** mem64[base + imm] = value. */
    void st(unsigned base, unsigned value, std::int32_t imm);

    // ---- control flow ----------------------------------------------------

    void beq(unsigned rs1, unsigned rs2, Label target);
    void bne(unsigned rs1, unsigned rs2, Label target);
    void blt(unsigned rs1, unsigned rs2, Label target);
    void bge(unsigned rs1, unsigned rs2, Label target);
    void bltu(unsigned rs1, unsigned rs2, Label target);
    void bgeu(unsigned rs1, unsigned rs2, Label target);
    void jmp(Label target);
    void call(Label target);
    void jr(unsigned rs1);
    void ret();

    // ---- misc ------------------------------------------------------------

    void nop();
    void halt();

    // ---- pseudo-instructions ----------------------------------------------

    /** rd = rs (addi rd, rs, 0). */
    void mov(unsigned rd, unsigned rs);

    /** Loads an arbitrary 64-bit constant (expands to li/slli/ori). */
    void loadImm(unsigned rd, std::int64_t value);

    /** Loads the bit pattern of an IEEE double. */
    void loadDouble(unsigned rd, double value);

    /**
     * Loads the byte address of a label (li + slli; the label's
     * instruction index must fit in a signed 16-bit immediate).
     * Enables jump tables through jr.
     */
    void la(unsigned rd, Label target);

    // ---- data segment -------------------------------------------------------

    /**
     * Appends @p words to the initial data image; returns the byte
     * address of the first word.
     */
    std::uint64_t data(const std::vector<std::uint64_t> &words);

    /** Appends doubles (bit-cast); returns the byte address. */
    std::uint64_t dataDoubles(const std::vector<double> &values);

    /** Reserves @p words of zero-initialized space; returns address. */
    std::uint64_t bss(std::uint64_t words);

    /** Names a data byte address (exposed as Program::dataSymbols). */
    void defineDataSymbol(const std::string &name,
                          std::uint64_t address);

    // ---- finalization ---------------------------------------------------------

    /**
     * Resolves all label fixups and returns the program.
     * Fatal if any referenced label was never bound.
     */
    Program build();

  private:
    void emit(const Instruction &instruction);
    void emitBranch(Opcode opcode, unsigned rs1, unsigned rs2,
                    Label target);
    void emitJump(Opcode opcode, Label target);

    std::string name_;
    std::vector<Instruction> code_;
    std::vector<std::uint64_t> data_;
    /** Next free data word; data() and bss() allocate from it. */
    std::uint64_t data_cursor_ = 0;
    std::map<std::string, std::uint64_t> symbols_;
    std::map<std::string, std::uint64_t> data_symbols_;

    static constexpr std::int64_t kUnbound = -1;
    std::vector<std::int64_t> label_pcs_;
    std::vector<std::string> label_names_;

    struct Fixup
    {
        std::uint64_t pc;
        int label_id;
        /** Absolute fixups patch the label's pc; relative ones patch
         *  the pc-relative offset. */
        bool absolute = false;
    };

    std::vector<Fixup> fixups_;
    bool built_ = false;
};

} // namespace tlat::isa

#endif // TLAT_ISA_PROGRAM_HH
