/**
 * @file
 * A two-pass text assembler for micro88.
 *
 * The workloads are authored with the ProgramBuilder API, but the
 * assembler makes tests, examples and ad-hoc experiments much easier to
 * write. Syntax:
 *
 * @code
 *   # comment (also ';')
 *   loop:                 # label
 *       addi r1, r1, -1
 *       bne  r1, r0, loop # branch to label or absolute pc
 *       ld   r2, 8(r3)    # memory operand syntax
 *       halt
 *   .word 1, 2, 3         # appends to the data image
 *   .space 16             # reserves 16 zero words
 * @endcode
 */

#ifndef TLAT_ISA_ASSEMBLER_HH
#define TLAT_ISA_ASSEMBLER_HH

#include <string>
#include <variant>

#include "program.hh"

namespace tlat::isa
{

/** A parse failure with its 1-based source line. */
struct AssemblyError
{
    int line = 0;
    std::string message;
};

/** Either a program or the first error encountered. */
using AssemblyResult = std::variant<Program, AssemblyError>;

/**
 * Assembles micro88 source text.
 *
 * @param source Full program text.
 * @param name Name recorded in the resulting Program.
 */
AssemblyResult assemble(const std::string &source,
                        const std::string &name = "asm");

/** Convenience wrapper that calls tlat_fatal on assembly errors. */
Program assembleOrDie(const std::string &source,
                      const std::string &name = "asm");

} // namespace tlat::isa

#endif // TLAT_ISA_ASSEMBLER_HH
