#include "simd.hh"

#include <atomic>

#include "env.hh"

namespace tlat::util::simd
{

namespace
{

// -1 = no override active; otherwise the Level value pinned by the
// innermost live ScopedLevelOverride. A raw std::atomic is sanctioned
// here (tools/tlat_lint.py lock-discipline list): the latch is a
// single word with no invariant spanning other state, so a mutex
// would only add a capability the analysis has nothing to tie it to.
std::atomic<int> g_forced_level{-1};

bool
simdDisabledByEnv()
{
    // "0" and "OFF" read naturally as "do not disable"; anything
    // else (ON, 1, yes, ...) disables.
    return envFlag("TLAT_DISABLE_SIMD");
}

Level
bestSupportedLevel()
{
#if defined(TLAT_SIMD_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
#endif
#if defined(TLAT_SIMD_HAVE_NEON)
    return Level::Neon;
#endif
    return Level::Scalar;
}

Level
detectedLevel()
{
    // Probed once; the env knob is part of the cached decision so a
    // CI job exporting TLAT_DISABLE_SIMD pins the whole process.
    static const Level level =
        simdDisabledByEnv() ? Level::Scalar : bestSupportedLevel();
    return level;
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Scalar:
        return "scalar";
      case Level::Avx2:
        return "avx2";
      case Level::Neon:
        return "neon";
    }
    return "?";
}

bool
levelSupported(Level level)
{
    switch (level) {
      case Level::Scalar:
        return true;
      case Level::Avx2:
#if defined(TLAT_SIMD_HAVE_AVX2)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case Level::Neon:
#if defined(TLAT_SIMD_HAVE_NEON)
        return true;
#else
        return false;
#endif
    }
    return false;
}

Level
activeLevel()
{
    const int forced = g_forced_level.load(std::memory_order_relaxed);
    if (forced >= 0) {
        const Level level = static_cast<Level>(forced);
        return levelSupported(level) ? level : Level::Scalar;
    }
    return detectedLevel();
}

ScopedLevelOverride::ScopedLevelOverride(Level level)
    : previous_(g_forced_level.exchange(static_cast<int>(level),
                                        std::memory_order_relaxed))
{
}

ScopedLevelOverride::~ScopedLevelOverride()
{
    g_forced_level.store(previous_, std::memory_order_relaxed);
}

namespace detail
{

std::uint64_t
fusedPassScalar(const std::uint32_t *pt_index_lane,
                const std::uint64_t *outcome_words, std::size_t n,
                std::uint8_t *pattern_states, const FusedLuts &luts,
                std::uint8_t *capture)
{
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t index = pt_index_lane[i];
        const bool taken =
            ((outcome_words[i >> 6] >> (i & 63)) & 1u) != 0;
        const std::uint8_t state = pattern_states[index];
        const bool correct = (luts.predict[state] != 0) == taken;
        hits += correct ? 1 : 0;
        if (capture != nullptr)
            capture[i] = correct ? 1 : 0;
        pattern_states[index] = taken ? luts.nextTaken[state]
                                      : luts.nextNotTaken[state];
    }
    return hits;
}

} // namespace detail

std::uint64_t
fusedPass(const std::uint32_t *pt_index_lane,
          const std::uint64_t *outcome_words, std::size_t n,
          std::uint8_t *pattern_states, const FusedLuts &luts,
          std::uint8_t *capture)
{
    switch (activeLevel()) {
      case Level::Avx2:
#if defined(TLAT_SIMD_HAVE_AVX2)
        return detail::fusedPassAvx2(pt_index_lane, outcome_words, n,
                                     pattern_states, luts, capture);
#else
        break;
#endif
      case Level::Neon:
#if defined(TLAT_SIMD_HAVE_NEON)
        return detail::fusedPassNeon(pt_index_lane, outcome_words, n,
                                     pattern_states, luts, capture);
#else
        break;
#endif
      case Level::Scalar:
        break;
    }
    return detail::fusedPassScalar(pt_index_lane, outcome_words, n,
                                   pattern_states, luts, capture);
}

} // namespace tlat::util::simd
