#include "string_utils.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace tlat
{

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &text, char delimiter)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == delimiter) {
            fields.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

std::vector<std::string>
splitTopLevel(const std::string &text, char delimiter)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    int depth = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || (text[i] == delimiter && depth == 0)) {
            fields.push_back(text.substr(start, i - start));
            start = i + 1;
        } else if (text[i] == '(') {
            ++depth;
        } else if (text[i] == ')') {
            --depth;
        }
    }
    return fields;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::string
toUpper(const std::string &text)
{
    std::string result = text;
    for (char &c : result)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    return result;
}

std::string
toLower(const std::string &text)
{
    std::string result = text;
    for (char &c : result)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return result;
}

std::optional<std::uint64_t>
parseSize(const std::string &text)
{
    const std::string t = trim(text);
    if (t.empty())
        return std::nullopt;

    const std::size_t caret = t.find('^');
    if (caret != std::string::npos) {
        const auto base = parseSize(t.substr(0, caret));
        const auto exponent = parseSize(t.substr(caret + 1));
        if (!base || !exponent || *exponent >= 64)
            return std::nullopt;
        std::uint64_t result = 1;
        for (std::uint64_t i = 0; i < *exponent; ++i)
            result *= *base;
        return result;
    }

    std::uint64_t value = 0;
    for (char c : t) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

std::string
join(const std::vector<std::string> &items, const std::string &separator)
{
    std::string result;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            result += separator;
        result += items[i];
    }
    return result;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string result;
    if (needed > 0) {
        result.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(result.data(),
                       static_cast<std::size_t>(needed) + 1, fmt,
                       args_copy);
    }
    va_end(args_copy);
    return result;
}

} // namespace tlat
