#include "stats.hh"

#include <cmath>

#include "logging.hh"

namespace tlat
{

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        tlat_assert(v > 0.0, "geometric mean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

void
RunningStats::record(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
RunningStats::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
RunningStats::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
CategoryCounter::record(const std::string &category, std::uint64_t weight)
{
    int idx = indexOf(category);
    if (idx < 0) {
        order_.push_back(category);
        counts_.push_back(0);
        idx = static_cast<int>(order_.size()) - 1;
    }
    counts_[static_cast<std::size_t>(idx)] += weight;
    total_ += weight;
}

std::uint64_t
CategoryCounter::count(const std::string &category) const
{
    const int idx = indexOf(category);
    return idx < 0 ? 0 : counts_[static_cast<std::size_t>(idx)];
}

double
CategoryCounter::fraction(const std::string &category) const
{
    return total_ == 0
        ? 0.0
        : static_cast<double>(count(category)) /
              static_cast<double>(total_);
}

int
CategoryCounter::indexOf(const std::string &category) const
{
    for (std::size_t i = 0; i < order_.size(); ++i) {
        if (order_[i] == category)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace tlat
