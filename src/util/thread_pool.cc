#include "thread_pool.hh"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace tlat::util
{

namespace
{

/**
 * Names a worker thread "tlat-pool-N" so pool threads are
 * identifiable in /proc, top -H, and sanitizer reports. Best-effort:
 * the 15-char comm limit truncates large indices and non-Linux
 * platforms are a no-op — naming is observability, never behaviour.
 */
void
nameWorkerThread(std::thread &worker, unsigned index)
{
#if defined(__linux__)
    const std::string name =
        "tlat-pool-" + std::to_string(index);
    pthread_setname_np(worker.native_handle(),
                       name.substr(0, 15).c_str());
#else
    (void)worker;
    (void)index;
#endif
}

} // namespace

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
        nameWorkerThread(workers_.back(), i);
    }
}

ThreadPool::~ThreadPool()
{
    {
        const MutexLock lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notifyAll();
    for (std::thread &worker : workers_)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        const MutexLock lock(mutex_);
        queue_.push_back(std::move(packaged));
    }
    work_ready_.notifyOne();
    return future;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            const MutexLock lock(mutex_);
            // Explicit predicate loop: every read of the guarded
            // queue_/stopping_ state stays inside this annotated
            // scope (see util/mutex.hh on why not a wait-lambda).
            while (!stopping_ && queue_.empty())
                work_ready_.wait(mutex_);
            // Drain before honouring shutdown so every submitted
            // task's future becomes ready.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions land in the task's future
    }
}

void
parallelFor(ThreadPool &pool, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(pool.submit([&body, i] { body(i); }));
    // Wait for everything first so a throwing iteration cannot leave
    // later iterations running against destroyed caller state.
    for (std::future<void> &future : futures)
        future.wait();
    std::exception_ptr first_error;
    for (std::future<void> &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace tlat::util
