/**
 * @file
 * Small string helpers used by the assembler, the scheme-name parser and
 * the report printers.
 */

#ifndef TLAT_UTIL_STRING_UTILS_HH
#define TLAT_UTIL_STRING_UTILS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tlat
{

/** Removes leading and trailing whitespace. */
std::string trim(const std::string &text);

/** Splits on @p delimiter; empty fields are preserved. */
std::vector<std::string> split(const std::string &text, char delimiter);

/**
 * Splits on @p delimiter at the top level only: delimiters nested inside
 * parentheses are not split points. Used for "AT(AHRT(512,12SR),...)".
 */
std::vector<std::string> splitTopLevel(const std::string &text,
                                       char delimiter);

/** Case-sensitive prefix test. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Case-sensitive suffix test. */
bool endsWith(const std::string &text, const std::string &suffix);

/** ASCII upper-casing. */
std::string toUpper(const std::string &text);

/** ASCII lower-casing. */
std::string toLower(const std::string &text);

/**
 * Parses a non-negative integer, also accepting the "2^12" power
 * notation the paper's Table 2 uses. Returns nullopt on garbage.
 */
std::optional<std::uint64_t> parseSize(const std::string &text);

/** Joins items with @p separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &separator);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tlat

#endif // TLAT_UTIL_STRING_UTILS_HH
