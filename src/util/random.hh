/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload data-set generation must be bit-reproducible across runs and
 * platforms, so we avoid std::mt19937 seeding subtleties and use a
 * self-contained xoshiro256** generator seeded through SplitMix64.
 */

#ifndef TLAT_UTIL_RANDOM_HH
#define TLAT_UTIL_RANDOM_HH

#include <cstdint>

#include "bitops.hh"

namespace tlat
{

/** Deterministic xoshiro256** PRNG. */
class Rng
{
  public:
    /** Seeds the four state words via SplitMix64 from @p seed. */
    explicit Rng(std::uint64_t seed = 0x7461742d74776f6cULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_) {
            sm += 0x9e3779b97f4a7c15ULL;
            word = mix64(sm);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Multiply-shift rejection-free mapping is fine here: workload
        // bounds are tiny compared to 2^64, the bias is immeasurable.
        // __extension__: __int128 is a GCC/Clang extension, used
        // knowingly under -Wpedantic for the 64x64->128 high half.
        __extension__ using Uint128 = unsigned __int128;
        return static_cast<std::uint64_t>(
            (static_cast<Uint128>(next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    nextInRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool
    nextBool(double p = 0.5)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return next() < static_cast<std::uint64_t>(
            p * 18446744073709551615.0);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace tlat

#endif // TLAT_UTIL_RANDOM_HH
