#include "json_writer.hh"

#include "logging.hh"
#include "string_utils.hh"

namespace tlat
{

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
JsonWriter::newlineIndent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < scopes_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeValue(bool is_key)
{
    if (scopes_.empty()) {
        tlat_assert(!wrote_root_ && !is_key,
                    "only one root value allowed");
        return;
    }
    if (scopes_.back() == Scope::Object) {
        if (is_key) {
            tlat_assert(!pending_key_, "key after key");
            if (scope_has_items_.back())
                os_ << ',';
            scope_has_items_.back() = true;
            newlineIndent();
        } else {
            tlat_assert(pending_key_,
                        "object member value without a key");
            pending_key_ = false;
        }
        return;
    }
    tlat_assert(!is_key, "key inside array");
    if (scope_has_items_.back())
        os_ << ',';
    scope_has_items_.back() = true;
    newlineIndent();
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue(false);
    os_ << '{';
    scopes_.push_back(Scope::Object);
    scope_has_items_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    tlat_assert(!scopes_.empty() && scopes_.back() == Scope::Object &&
                    !pending_key_,
                "unbalanced endObject");
    const bool had_items = scope_has_items_.back();
    scopes_.pop_back();
    scope_has_items_.pop_back();
    if (had_items)
        newlineIndent();
    os_ << '}';
    if (scopes_.empty()) {
        wrote_root_ = true;
        os_ << '\n';
    }
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue(false);
    os_ << '[';
    scopes_.push_back(Scope::Array);
    scope_has_items_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    tlat_assert(!scopes_.empty() && scopes_.back() == Scope::Array,
                "unbalanced endArray");
    const bool had_items = scope_has_items_.back();
    scopes_.pop_back();
    scope_has_items_.pop_back();
    if (had_items)
        newlineIndent();
    os_ << ']';
    if (scopes_.empty()) {
        wrote_root_ = true;
        os_ << '\n';
    }
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    tlat_assert(!scopes_.empty() && scopes_.back() == Scope::Object,
                "key outside object");
    beforeValue(true);
    os_ << '"' << escape(name) << "\": ";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    beforeValue(false);
    os_ << '"' << escape(text) << '"';
    if (scopes_.empty())
        wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    beforeValue(false);
    // Fixed %.10g: enough digits for accuracy percentages to
    // round-trip, and identical text for identical doubles — the
    // property the byte-level determinism tests rely on.
    os_ << format("%.10g", number);
    if (scopes_.empty())
        wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    beforeValue(false);
    os_ << number;
    if (scopes_.empty())
        wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    beforeValue(false);
    os_ << number;
    if (scopes_.empty())
        wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

JsonWriter &
JsonWriter::value(unsigned number)
{
    return value(static_cast<std::uint64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    beforeValue(false);
    os_ << (flag ? "true" : "false");
    if (scopes_.empty())
        wrote_root_ = true;
    return *this;
}

} // namespace tlat
