/**
 * @file
 * Annotated mutex / scoped-lock / condition-variable wrappers.
 *
 * This is the project's only sanctioned spelling of a lock: a raw
 * std::mutex carries no thread-safety attributes, so clang's
 * -Wthread-safety analysis cannot connect it to the fields it guards.
 * util::Mutex is a zero-overhead std::mutex wrapper that does carry
 * them, util::MutexLock is the lock_guard-shaped scoped capability,
 * and util::ConditionVariable pairs a std::condition_variable with a
 * util::Mutex.
 *
 * Waiting convention: ConditionVariable::wait() takes the Mutex and
 * is annotated TLAT_REQUIRES(it), so call sites spell the predicate
 * as an explicit loop in the waiting function's own body —
 *
 *     MutexLock lock(mutex_);
 *     while (!condition_on_guarded_state())
 *         cv_.wait(mutex_);
 *
 * — which keeps every read of guarded state inside a scope the
 * analysis can see (a wait-with-predicate lambda would be analyzed as
 * an unannotated function and rejected).
 *
 * tools/tlat_lint.py (lock-discipline) confines raw std::mutex /
 * std::lock_guard / std::condition_variable / std::atomic spellings
 * to this file plus an explicit sanctioned list.
 */

#ifndef TLAT_UTIL_MUTEX_HH
#define TLAT_UTIL_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "thread_annotations.hh"

namespace tlat::util
{

/** Annotated exclusive lock; the only mutex type allowed in src/. */
class TLAT_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() TLAT_ACQUIRE() { mutex_.lock(); }
    void unlock() TLAT_RELEASE() { mutex_.unlock(); }

  private:
    friend class ConditionVariable;

    std::mutex mutex_;
};

/** RAII scoped lock over util::Mutex (lock_guard shape). */
class TLAT_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) TLAT_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() TLAT_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable bound to util::Mutex. wait() releases the mutex
 * while blocked and re-acquires it before returning, exactly like
 * std::condition_variable::wait — the TLAT_REQUIRES annotation states
 * the caller-visible contract (held on entry, held on return).
 */
class ConditionVariable
{
  public:
    ConditionVariable() = default;
    ConditionVariable(const ConditionVariable &) = delete;
    ConditionVariable &operator=(const ConditionVariable &) = delete;

    /**
     * Blocks until notified (spurious wakeups possible — callers loop
     * on their predicate). @p mutex must be the lock guarding the
     * predicate's state and must be held.
     */
    void
    wait(Mutex &mutex) TLAT_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> native(mutex.mutex_,
                                            std::adopt_lock);
        cv_.wait(native);
        // The unique_lock re-acquired the mutex; hand ownership back
        // to the caller's scoped capability instead of unlocking.
        native.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace tlat::util

#endif // TLAT_UTIL_MUTEX_HH
