/**
 * @file
 * The process-environment front door.
 *
 * Environment variables are process-global mutable state: a getenv()
 * scattered through the tree is invisible configuration that no
 * determinism audit can enumerate. Every environment read in src/,
 * bench/ and tools/ therefore goes through these helpers — the
 * env-read rule in tools/tlat_lint.py confines the raw getenv() call
 * to env.cc — so `grep envString` (and friends) lists the complete
 * configuration surface of the system.
 *
 * Semantics shared by all helpers: an unset variable and an empty
 * value are both "not configured" (the historical behaviour of every
 * knob here: TLAT_JOBS, TLAT_BRANCH_BUDGET, TLAT_CHUNK_RECORDS,
 * TLAT_TRACE_CACHE_DIR, TLAT_DISABLE_SIMD, TLAT_CSV_DIR,
 * TLAT_BENCH_JSON_DIR).
 */

#ifndef TLAT_UTIL_ENV_HH
#define TLAT_UTIL_ENV_HH

#include <cstdint>
#include <optional>
#include <string>

namespace tlat::util
{

/** The variable's value, or nullopt when unset or empty. */
std::optional<std::string> envString(const char *name);

/**
 * The variable parsed as a base-10 unsigned integer, or nullopt when
 * unset, empty, or not entirely numeric. Callers that want to treat a
 * malformed value as a hard error parse envString() themselves.
 */
std::optional<std::uint64_t> envUnsigned(const char *name);

/**
 * Boolean knob: false when unset, empty, "0" or "OFF"; true for any
 * other value (ON, 1, yes, ...).
 */
bool envFlag(const char *name);

} // namespace tlat::util

#endif // TLAT_UTIL_ENV_HH
