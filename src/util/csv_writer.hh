/**
 * @file
 * Minimal CSV emission for bench results, so figures can be re-plotted
 * outside the harness.
 */

#ifndef TLAT_UTIL_CSV_WRITER_HH
#define TLAT_UTIL_CSV_WRITER_HH

#include <ostream>
#include <string>
#include <vector>

namespace tlat
{

/** Writes RFC-4180-ish CSV rows (quotes fields containing , " or \n). */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Writes one row. */
    void writeRow(const std::vector<std::string> &fields);

    /** Escapes a single field. */
    static std::string escape(const std::string &field);

  private:
    std::ostream &os_;
};

} // namespace tlat

#endif // TLAT_UTIL_CSV_WRITER_HH
