/**
 * @file
 * NEON fused predict/update kernel. Scalar twin: fusedPassScalar
 * (simd.cc) — the vector blocks below are bit-identical to it by
 * construction, and any block it cannot prove safe (plus the
 * <8-record tail) runs the twin's per-record program in order. Raw
 * v*q_* intrinsics are sanctioned here and only here by the
 * tlat-lint `simd-twin` rule.
 *
 * Shape mirrors simd_avx2.cc: 8 records per block, but NEON has no
 * gather, so states are loaded/stored through scalar lanes while the
 * automaton step (table lookup + select by outcome bit) runs as one
 * 8-byte vector via vqtbl1 on the 16-entry nibble LUTs. The safety
 * rule also mirrors the AVX2 kernel: a block vectorizes when every
 * lane touching a duplicated PT index is a no-op update (successor
 * state equals gathered state) — then in-order execution sees the
 * gathered states at every step and the vector result is exact. The
 * pair scan runs scalar (28 compares) — it is off the critical path
 * relative to the per-lane loads.
 *
 * On 32-bit ARM (no vqtbl1 on 16-byte tables) the kernel degrades to
 * the scalar twin outright; dispatch stays correct, just not faster.
 */

#include "simd.hh"

#if defined(TLAT_SIMD_HAVE_NEON)

#include <arm_neon.h>
#include <cstring>

namespace tlat::util::simd::detail
{

namespace
{

/** In-order scalar program over [begin, end) with global outcome-bit
 *  indexing; semantically fusedPassScalar shifted to an offset. */
inline std::uint64_t
scalarSpan(const std::uint32_t *pt_index_lane,
           const std::uint64_t *outcome_words, std::size_t begin,
           std::size_t end, std::uint8_t *pattern_states,
           const FusedLuts &luts, std::uint8_t *capture)
{
    std::uint64_t hits = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t index = pt_index_lane[i];
        const bool taken =
            ((outcome_words[i >> 6] >> (i & 63)) & 1u) != 0;
        const std::uint8_t state = pattern_states[index];
        const bool correct = (luts.predict[state] != 0) == taken;
        hits += correct ? 1 : 0;
        if (capture != nullptr)
            capture[i] = correct ? 1 : 0;
        pattern_states[index] = taken ? luts.nextTaken[state]
                                      : luts.nextNotTaken[state];
    }
    return hits;
}

} // namespace

#if defined(__aarch64__)

std::uint64_t
fusedPassNeon(const std::uint32_t *pt_index_lane,
              const std::uint64_t *outcome_words, std::size_t n,
              std::uint8_t *pattern_states, const FusedLuts &luts,
              std::uint8_t *capture)
{
    const std::uint8_t *outcome_bytes =
        reinterpret_cast<const std::uint8_t *>(outcome_words);

    const uint8x16_t lut_pred = vld1q_u8(luts.predict);
    const uint8x16_t lut_next_t = vld1q_u8(luts.nextTaken);
    const uint8x16_t lut_next_n = vld1q_u8(luts.nextNotTaken);
    const uint8x8_t bit_select = {1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x8_t one8 = vdup_n_u8(1);

    std::uint64_t hits = 0;

    std::size_t i = 0;
    const std::size_t n8 = n & ~std::size_t{7};
    for (; i < n8; i += 8) {
        const std::uint32_t *idx = &pt_index_lane[i];
        std::uint8_t gathered[8];
        for (int lane = 0; lane < 8; ++lane)
            gathered[lane] = pattern_states[idx[lane]];
        const uint8x8_t states = vld1_u8(gathered);

        // Outcome bits i..i+7 are one byte of the packed bitvector
        // (i is 8-aligned here); vtst spreads it to a lane mask.
        const uint8x8_t taken_mask = vtst_u8(
            vdup_n_u8(outcome_bytes[i >> 3]), bit_select);
        const uint8x8_t taken01 = vand_u8(taken_mask, one8);

        const uint8x8_t pred = vqtbl1_u8(lut_pred, states);
        const uint8x8_t correct_mask = vceq_u8(pred, taken01);

        const uint8x8_t next =
            vbsl_u8(taken_mask, vqtbl1_u8(lut_next_t, states),
                    vqtbl1_u8(lut_next_n, states));
        std::uint8_t out[8];
        vst1_u8(out, next);

        // A duplicated slot is only safe when no lane moves it (see
        // the file comment); otherwise replay the block serially.
        bool bad = false;
        for (int a = 0; a < 8 && !bad; ++a)
            for (int b = a + 1; b < 8; ++b)
                if (idx[a] == idx[b] && (out[a] != gathered[a] ||
                                         out[b] != gathered[b])) {
                    bad = true;
                    break;
                }
        if (bad) {
            hits += scalarSpan(pt_index_lane, outcome_words, i, i + 8,
                               pattern_states, luts, capture);
            continue;
        }

        hits += vaddv_u8(vand_u8(correct_mask, one8));
        if (capture != nullptr)
            vst1_u8(capture + i, vand_u8(correct_mask, one8));

        for (int lane = 0; lane < 8; ++lane)
            pattern_states[idx[lane]] = out[lane];
    }

    hits += scalarSpan(pt_index_lane, outcome_words, i, n,
                       pattern_states, luts, capture);
    return hits;
}

#else // 32-bit ARM: no 16-entry table lookup; defer to the twin.

std::uint64_t
fusedPassNeon(const std::uint32_t *pt_index_lane,
              const std::uint64_t *outcome_words, std::size_t n,
              std::uint8_t *pattern_states, const FusedLuts &luts,
              std::uint8_t *capture)
{
    return fusedPassScalar(pt_index_lane, outcome_words, n,
                           pattern_states, luts, capture);
}

#endif

} // namespace tlat::util::simd::detail

#endif // TLAT_SIMD_HAVE_NEON
