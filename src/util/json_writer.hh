/**
 * @file
 * Minimal streaming JSON emitter for machine-readable run and bench
 * records (`tlat run --json`, BENCH_*.json).
 *
 * Design goals, in order:
 *  - schema stability: keys are emitted in call order, numbers with a
 *    fixed format, so two runs producing the same values produce
 *    byte-identical documents (the determinism tests diff raw text);
 *  - no dependencies: the toolchain image has no JSON library, and
 *    the emit-only subset is ~100 lines;
 *  - misuse resistance: unbalanced begin/end or a value without a key
 *    inside an object aborts via tlat_assert rather than emitting
 *    invalid JSON.
 *
 * Parsing is intentionally out of scope — consumers are jq/python.
 */

#ifndef TLAT_UTIL_JSON_WRITER_HH
#define TLAT_UTIL_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tlat
{

/** Streaming JSON writer with two-space indentation. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emits an object member key; the next call must be its value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(unsigned number);
    JsonWriter &value(bool flag);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    member(std::string_view name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** True once every opened scope has been closed. */
    bool complete() const { return scopes_.empty() && wrote_root_; }

    /** JSON string escaping (quotes not included). */
    static std::string escape(std::string_view text);

  private:
    enum class Scope : std::uint8_t
    {
        Object,
        Array
    };

    /** Comma/newline/indent bookkeeping before a value or key. */
    void beforeValue(bool is_key);
    void newlineIndent();

    std::ostream &os_;
    std::vector<Scope> scopes_;
    std::vector<bool> scope_has_items_;
    bool pending_key_ = false;
    bool wrote_root_ = false;
};

} // namespace tlat

#endif // TLAT_UTIL_JSON_WRITER_HH
