/**
 * @file
 * Runtime SIMD dispatch for the fused predict/update kernels.
 *
 * The steady-state Two-Level loop over a predecoded trace is, once
 * the PT-index lane is precomputed (core/two_level_predictor.cc), a
 * pure array program: gather pattern-table states by index, compare
 * the automaton's prediction against the packed outcome bit, store
 * the successor state. fusedPass() runs that program through the
 * widest kernel the host supports:
 *
 *  - AVX2 (x86-64): 8-wide dword blocks with a gather from the byte
 *    PT and shuffle-LUT automaton steps (simd_avx2.cc);
 *  - NEON (aarch64): 8-wide blocks from two q-registers with scalar
 *    gather/scatter (simd_neon.cc);
 *  - portable scalar: fusedPassScalar() in simd.cc, the semantic
 *    twin every vector kernel is defined against, also used for
 *    block tails and intra-block index conflicts.
 *
 * Dispatch is decided once per process (cached CPU probe), can be
 * disabled via the TLAT_DISABLE_SIMD environment variable (any value
 * except "0"/"OFF"), and can be pinned programmatically with
 * ScopedLevelOverride (bench_throughput measures the scalar twin
 * this way; the four-way fuzz pins both sides).
 *
 * Determinism contract: every kernel must produce bit-identical PT
 * state, hit counts and capture bytes to fusedPassScalar() for any
 * input — a block only vectorizes when every lane touching a
 * duplicated PT index is a no-op automaton update (checked per
 * block against the gathered states), so read-modify-write order
 * within a block cannot be observed. tests/test_simd_kernel and the
 * four-way tests/test_simulate_batch_fuzz hold the kernels to it.
 *
 * Raw vector intrinsics are confined to the simd_*.cc kernel files
 * by the tlat-lint `simd-twin` rule.
 */

#ifndef TLAT_UTIL_SIMD_HH
#define TLAT_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace tlat::util::simd
{

/** Kernel families, ordered scalar-first. */
enum class Level : std::uint8_t
{
    Scalar,
    Avx2,
    Neon
};

/** Renders "scalar" / "avx2" / "neon". */
const char *levelName(Level level);

/**
 * The kernel family fusedPass() dispatches to: the best supported
 * level, unless TLAT_DISABLE_SIMD is set in the environment (then
 * Scalar) or a ScopedLevelOverride is active (then the override,
 * clamped to what the host supports). The CPU probe runs once per
 * process.
 */
Level activeLevel();

/** True when the host CPU can run the given kernel family. */
bool levelSupported(Level level);

/**
 * RAII dispatch pin for benches and tests. Nesting restores the
 * previous override on destruction; an unsupported level degrades to
 * Scalar rather than faulting. Not thread-safe against concurrent
 * fusedPass() callers mid-flight — pin before spawning work.
 */
class ScopedLevelOverride
{
  public:
    explicit ScopedLevelOverride(Level level);
    ~ScopedLevelOverride();

    ScopedLevelOverride(const ScopedLevelOverride &) = delete;
    ScopedLevelOverride &operator=(const ScopedLevelOverride &) =
        delete;

  private:
    int previous_;
};

/**
 * Nibble lookup tables describing one <=16-state automaton/counter
 * policy (core/automaton.hh): lambda and delta flattened so a vector
 * kernel can apply them with byte shuffles. Entries beyond the
 * policy's state count are never indexed (PT states stay in range).
 */
struct FusedLuts
{
    std::uint8_t predict[16];
    std::uint8_t nextTaken[16];
    std::uint8_t nextNotTaken[16];
};

/** Extra readable entries required past pt_index_lane[n]. */
inline constexpr std::size_t kLaneSlack = 8;

/**
 * Extra readable bytes required past the last pattern-table state: a
 * 32-bit gather at the highest index reads three bytes of slack
 * (masked off). PatternTable pads its storage accordingly.
 */
inline constexpr std::size_t kGatherSlackBytes = 4;

/**
 * One fused predict/update pass: for record i in [0, n),
 *
 *   state   = pattern_states[pt_index_lane[i]]
 *   taken   = bit i of outcome_words (packed LSB-first, 64/word)
 *   correct = (luts.predict[state] != 0) == taken
 *   pattern_states[pt_index_lane[i]] =
 *       taken ? luts.nextTaken[state] : luts.nextNotTaken[state]
 *
 * in index order, returning the number of correct predictions. When
 * @p capture is non-null, capture[i] receives 1/0 for
 * correct/incorrect (the combining predictor's per-record replay
 * feed). Dispatches per activeLevel(); bit-identical across levels.
 *
 * Requirements: pt_index_lane has n + kLaneSlack readable entries;
 * pattern_states extends kGatherSlackBytes past the largest index;
 * outcome bit i lives at outcome_words[i/64] bit (i%64), i.e. the
 * lane starts at bit 0 of the word stream (kernels read outcome
 * *bytes*, so the pass must start on a record index that is 0 mod 8
 * of its own outcome bitvector — always true for a lane built from
 * index 0 of a PredecodedTrace).
 */
std::uint64_t fusedPass(const std::uint32_t *pt_index_lane,
                        const std::uint64_t *outcome_words,
                        std::size_t n, std::uint8_t *pattern_states,
                        const FusedLuts &luts, std::uint8_t *capture);

namespace detail
{

/** Portable scalar twin (simd.cc); the semantic reference. */
std::uint64_t fusedPassScalar(const std::uint32_t *pt_index_lane,
                              const std::uint64_t *outcome_words,
                              std::size_t n,
                              std::uint8_t *pattern_states,
                              const FusedLuts &luts,
                              std::uint8_t *capture);

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TLAT_SIMD_HAVE_AVX2 1
/** AVX2 kernel (simd_avx2.cc); scalar twin: fusedPassScalar. */
std::uint64_t fusedPassAvx2(const std::uint32_t *pt_index_lane,
                            const std::uint64_t *outcome_words,
                            std::size_t n,
                            std::uint8_t *pattern_states,
                            const FusedLuts &luts,
                            std::uint8_t *capture);
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define TLAT_SIMD_HAVE_NEON 1
/** NEON kernel (simd_neon.cc); scalar twin: fusedPassScalar. */
std::uint64_t fusedPassNeon(const std::uint32_t *pt_index_lane,
                            const std::uint64_t *outcome_words,
                            std::size_t n,
                            std::uint8_t *pattern_states,
                            const FusedLuts &luts,
                            std::uint8_t *capture);
#endif

} // namespace detail

} // namespace tlat::util::simd

#endif // TLAT_UTIL_SIMD_HH
