#include "table_printer.hh"

#include <algorithm>

#include "logging.hh"
#include "string_utils.hh"

namespace tlat
{

TablePrinter::TablePrinter(std::string title) : title_(std::move(title))
{
}

void
TablePrinter::setHeader(const std::vector<std::string> &header)
{
    header_ = header;
}

void
TablePrinter::addRow(const std::vector<std::string> &row)
{
    tlat_assert(header_.empty() || row.size() == header_.size(),
                "row width ", row.size(), " != header width ",
                header_.size());
    rows_.push_back(Row{false, row});
}

void
TablePrinter::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t i = 0; i < header_.size(); ++i)
        widths[i] = header_[i].size();
    for (const Row &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t i = 0; i < row.cells.size(); ++i) {
            if (i >= widths.size())
                widths.resize(i + 1, 0);
            widths[i] = std::max(widths[i], row.cells[i].size());
        }
    }

    const auto renderCells =
        [&](const std::vector<std::string> &cells) {
            std::string line;
            for (std::size_t i = 0; i < widths.size(); ++i) {
                const std::string &cell =
                    i < cells.size() ? cells[i] : std::string();
                line += i == 0 ? "| " : " | ";
                line += cell;
                line += std::string(widths[i] - cell.size(), ' ');
            }
            line += " |";
            return line;
        };

    std::size_t total = 1;
    for (std::size_t w : widths)
        total += w + 3;

    os << title_ << '\n'
       << std::string(title_.size(), '=') << '\n';
    if (!header_.empty()) {
        os << renderCells(header_) << '\n'
           << std::string(total, '-') << '\n';
    }
    for (const Row &row : rows_) {
        if (row.separator)
            os << std::string(total, '-') << '\n';
        else
            os << renderCells(row.cells) << '\n';
    }
    os << '\n';
}

std::string
TablePrinter::percentCell(double percent)
{
    return format("%6.2f", percent);
}

} // namespace tlat
