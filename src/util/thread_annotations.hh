/**
 * @file
 * Clang Thread Safety Analysis attribute macros.
 *
 * The determinism contract (bit-identical sweeps at any --jobs count,
 * byte-identical checkpoints at any chunk size) is carried by real
 * concurrency: the worker pool, the decode-ahead streamer, the lazily
 * built predecode lanes. ThreadSanitizer can only witness the races a
 * test happens to schedule; these annotations let clang *prove* lock
 * discipline at compile time instead (-Wthread-safety, enabled as an
 * error by the clang-thread-safety CMake preset and its CI job).
 *
 * Usage conventions (enforced by tools/tlat_lint.py lock-discipline):
 *  - every lock in src/ is a util::Mutex (mutex.hh), never a raw
 *    std::mutex — the wrapper carries the CAPABILITY attribute the
 *    analysis needs;
 *  - every field written by more than one thread is declared with
 *    TLAT_GUARDED_BY(its_mutex_);
 *  - every helper that assumes a lock is already held is declared
 *    with TLAT_REQUIRES(its_mutex_) instead of re-locking.
 *
 * Off clang every macro expands to nothing, so gcc builds (including
 * all sanitizer presets) are byte-for-byte unaffected.
 */

#ifndef TLAT_UTIL_THREAD_ANNOTATIONS_HH
#define TLAT_UTIL_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define TLAT_THREAD_ATTR(x) __attribute__((x))
#else
#define TLAT_THREAD_ATTR(x) // no-op off clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define TLAT_CAPABILITY(x) TLAT_THREAD_ATTR(capability(x))

/** Marks an RAII type that acquires in ctor / releases in dtor. */
#define TLAT_SCOPED_CAPABILITY TLAT_THREAD_ATTR(scoped_lockable)

/** Field access requires holding the named mutex. */
#define TLAT_GUARDED_BY(x) TLAT_THREAD_ATTR(guarded_by(x))

/** Pointee access requires holding the named mutex. */
#define TLAT_PT_GUARDED_BY(x) TLAT_THREAD_ATTR(pt_guarded_by(x))

/** Function may only be called with the named mutexes held. */
#define TLAT_REQUIRES(...) \
    TLAT_THREAD_ATTR(requires_capability(__VA_ARGS__))

/** Function acquires the named mutexes and does not release them. */
#define TLAT_ACQUIRE(...) \
    TLAT_THREAD_ATTR(acquire_capability(__VA_ARGS__))

/** Function releases the named mutexes. */
#define TLAT_RELEASE(...) \
    TLAT_THREAD_ATTR(release_capability(__VA_ARGS__))

/** Function may only be called with the named mutexes NOT held. */
#define TLAT_EXCLUDES(...) TLAT_THREAD_ATTR(locks_excluded(__VA_ARGS__))

/** Return value is a reference to a mutex-guarded object. */
#define TLAT_RETURN_CAPABILITY(x) TLAT_THREAD_ATTR(lock_returned(x))

/**
 * Escape hatch for functions the analysis cannot follow. The
 * clang-thread-safety acceptance bar is zero uses in src/; the macro
 * exists so a future exceptional case is greppable, not invisible.
 */
#define TLAT_NO_THREAD_SAFETY_ANALYSIS \
    TLAT_THREAD_ATTR(no_thread_safety_analysis)

#endif // TLAT_UTIL_THREAD_ANNOTATIONS_HH
