/**
 * @file
 * Error and status reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal invariant was violated (a tlat bug); aborts.
 * fatal()  - the user asked for something impossible (bad config,
 *            malformed trace, ...); exits with status 1.
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output.
 */

#ifndef TLAT_UTIL_LOGGING_HH
#define TLAT_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace tlat
{

namespace detail
{

/** Formats "<prefix>: <message> (<file>:<line>)" and writes to stderr. */
void emitMessage(const char *prefix, const std::string &message,
                 const char *file, int line);

/** Stream-collects the variadic arguments of the logging macros. */
template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicExit();
[[noreturn]] void fatalExit();

} // namespace detail

} // namespace tlat

/** Abort with a message; use for violated internal invariants. */
#define tlat_panic(...)                                                     \
    do {                                                                    \
        ::tlat::detail::emitMessage(                                        \
            "panic", ::tlat::detail::formatParts(__VA_ARGS__),              \
            __FILE__, __LINE__);                                            \
        ::tlat::detail::panicExit();                                        \
    } while (0)

/** Exit with a message; use for unusable user input or configuration. */
#define tlat_fatal(...)                                                     \
    do {                                                                    \
        ::tlat::detail::emitMessage(                                        \
            "fatal", ::tlat::detail::formatParts(__VA_ARGS__),              \
            __FILE__, __LINE__);                                            \
        ::tlat::detail::fatalExit();                                        \
    } while (0)

/** Non-fatal warning. */
#define tlat_warn(...)                                                      \
    ::tlat::detail::emitMessage(                                            \
        "warn", ::tlat::detail::formatParts(__VA_ARGS__), __FILE__,         \
        __LINE__)

/** Status message. */
#define tlat_inform(...)                                                    \
    ::tlat::detail::emitMessage(                                            \
        "info", ::tlat::detail::formatParts(__VA_ARGS__), __FILE__,         \
        __LINE__)

/** panic() unless the condition holds. */
#define tlat_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            tlat_panic("assertion '" #cond "' failed. ", ##__VA_ARGS__);    \
        }                                                                   \
    } while (0)

#endif // TLAT_UTIL_LOGGING_HH
