#include "logging.hh"

#include <cstdio>

namespace tlat
{

namespace detail
{

void
emitMessage(const char *prefix, const std::string &message,
            const char *file, int line)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, message.c_str(),
                 file, line);
}

void
panicExit()
{
    std::abort();
}

void
fatalExit()
{
    std::exit(1);
}

} // namespace detail

} // namespace tlat
