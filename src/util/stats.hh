/**
 * @file
 * Accumulators used by the harness to aggregate prediction accuracy the
 * way the paper reports it: per-benchmark accuracy plus integer / FP /
 * total geometric means.
 */

#ifndef TLAT_UTIL_STATS_HH
#define TLAT_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tlat
{

/** Running hit/miss tally with accuracy helpers. */
class AccuracyCounter
{
  public:
    void
    record(bool correct)
    {
        ++total_;
        if (correct)
            ++hits_;
        if (capture_ != nullptr)
            *capture_++ = correct ? 1 : 0;
    }

    /**
     * Optional per-record correctness capture: while set, every
     * record() additionally writes one byte (1 = correct) through the
     * cursor and advances it. The caller owns the buffer and must
     * size it for every record() it expects; pass nullptr to detach.
     * Combining predictors use this to replay each component's
     * per-branch outcomes through the chooser without re-simulating.
     */
    void captureInto(std::uint8_t *cursor) { capture_ = cursor; }

    /** Current capture cursor (nullptr when detached). */
    std::uint8_t *captureCursor() const { return capture_; }

    /**
     * Folds in @p total records of which @p hits were correct, as if
     * record() had been called that many times — used by batch paths
     * (the SIMD fused pass) that tally hits out-of-band. The caller
     * is responsible for having written the per-record capture bytes
     * itself when capture is attached; this only advances the cursor.
     */
    void
    recordBulk(std::uint64_t hits, std::uint64_t total)
    {
        hits_ += hits;
        total_ += total;
        if (capture_ != nullptr)
            capture_ += total;
    }

    void
    merge(const AccuracyCounter &other)
    {
        hits_ += other.hits_;
        total_ += other.total_;
    }

    void
    reset()
    {
        hits_ = 0;
        total_ = 0;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return total_ - hits_; }
    std::uint64_t total() const { return total_; }

    /** Fraction correct in [0, 1]; 0 when empty. */
    double
    accuracy() const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(hits_) / total_;
    }

    /** Accuracy in percent. */
    double accuracyPercent() const { return accuracy() * 100.0; }

    /** Miss rate in percent. */
    double
    missPercent() const
    {
        return total_ == 0 ? 0.0 : 100.0 - accuracyPercent();
    }

  private:
    std::uint64_t hits_ = 0;
    std::uint64_t total_ = 0;
    std::uint8_t *capture_ = nullptr;
};

/** Geometric mean of a set of values; 0 if the set is empty. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean; 0 if empty. */
double arithmeticMean(const std::vector<double> &values);

/** Streaming min/max/mean/variance accumulator (Welford). */
class RunningStats
{
  public:
    void record(double value);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Sample variance; 0 with fewer than two samples. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Counts occurrences of string-labelled categories, preserving order. */
class CategoryCounter
{
  public:
    void record(const std::string &category, std::uint64_t weight = 1);

    std::uint64_t count(const std::string &category) const;
    std::uint64_t total() const { return total_; }

    /** Fraction of the total for a category, in [0, 1]. */
    double fraction(const std::string &category) const;

    /** Categories in first-seen order. */
    const std::vector<std::string> &categories() const
    {
        return order_;
    }

  private:
    std::vector<std::string> order_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;

    int indexOf(const std::string &category) const;
};

} // namespace tlat

#endif // TLAT_UTIL_STATS_HH
