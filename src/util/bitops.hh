/**
 * @file
 * Small bit-manipulation helpers shared across the predictor and ISA
 * code. All are constexpr and operate on unsigned 64-bit values.
 */

#ifndef TLAT_UTIL_BITOPS_HH
#define TLAT_UTIL_BITOPS_HH

#include <cstdint>

namespace tlat
{

/** Returns a value with the low @p n bits set (n in [0, 64]). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extracts bits [lo, lo+len) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned len)
{
    return (value >> lo) & lowMask(len);
}

/** Inserts the low @p len bits of @p field at position @p lo of @p value. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned lo, unsigned len,
           std::uint64_t field)
{
    const std::uint64_t mask = lowMask(len) << lo;
    return (value & ~mask) | ((field << lo) & mask);
}

/** True if @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); value must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** ceil(log2(value)); value must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return isPowerOfTwo(value) ? floorLog2(value) : floorLog2(value) + 1;
}

/** Population count. */
constexpr unsigned
popCount(std::uint64_t value)
{
    unsigned count = 0;
    while (value) {
        value &= value - 1;
        ++count;
    }
    return count;
}

/**
 * Mixes the bits of a 64-bit value (SplitMix64 finalizer). Used as the
 * "good" hash in the HHRT hash ablation and by the deterministic RNG.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Sign-extends the low @p width bits of @p value to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned width)
{
    const std::uint64_t sign_bit = std::uint64_t{1} << (width - 1);
    const std::uint64_t masked = value & lowMask(width);
    return static_cast<std::int64_t>((masked ^ sign_bit) - sign_bit);
}

} // namespace tlat

#endif // TLAT_UTIL_BITOPS_HH
