/**
 * @file
 * Fixed-width ASCII table printing for the bench binaries. Every
 * figure/table reproduction prints its series through this class so the
 * output format is uniform and grep-able.
 */

#ifndef TLAT_UTIL_TABLE_PRINTER_HH
#define TLAT_UTIL_TABLE_PRINTER_HH

#include <ostream>
#include <string>
#include <vector>

namespace tlat
{

/** Builds a table row by row, then renders it with aligned columns. */
class TablePrinter
{
  public:
    /** @param title Printed above the table with an underline. */
    explicit TablePrinter(std::string title);

    /** Sets the column headers (defines the column count). */
    void setHeader(const std::vector<std::string> &header);

    /** Appends a data row; must match the header width. */
    void addRow(const std::vector<std::string> &row);

    /** Appends a horizontal separator row. */
    void addSeparator();

    /** Renders the table. */
    void print(std::ostream &os) const;

    /** Formats a percentage cell like "97.13". */
    static std::string percentCell(double percent);

  private:
    std::string title_;
    std::vector<std::string> header_;

    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<Row> rows_;
};

} // namespace tlat

#endif // TLAT_UTIL_TABLE_PRINTER_HH
