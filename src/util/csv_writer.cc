#include "csv_writer.hh"

namespace tlat
{

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(fields[i]);
    }
    os_ << '\n';
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace tlat
