#include "env.hh"

#include <cstdlib>

namespace tlat::util
{

// The tree's only raw environment read (env-read lint rule): every
// configuration knob resolves through this translation unit.
std::optional<std::string>
envString(const char *name)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return std::nullopt;
    return std::string(value);
}

std::optional<std::uint64_t>
envUnsigned(const char *name)
{
    const auto text = envString(name);
    if (!text)
        return std::nullopt;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text->c_str(), &end, 10);
    if (end == text->c_str() || *end != '\0')
        return std::nullopt;
    return static_cast<std::uint64_t>(value);
}

bool
envFlag(const char *name)
{
    const auto text = envString(name);
    if (!text)
        return false;
    return *text != "0" && *text != "OFF";
}

} // namespace tlat::util
