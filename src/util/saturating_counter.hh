/**
 * @file
 * Generic n-bit saturating up/down counter.
 *
 * The pattern-table automaton A2 is exactly a 2-bit instance of this
 * class; wider instances are used by extension experiments.
 */

#ifndef TLAT_UTIL_SATURATING_COUNTER_HH
#define TLAT_UTIL_SATURATING_COUNTER_HH

#include <cstdint>

#include "logging.hh"

namespace tlat
{

/** Saturating up/down counter over [0, 2^bits - 1]. */
class SaturatingCounter
{
  public:
    /**
     * @param bits Counter width in bits (1..16).
     * @param initial Initial (and reset) value; clamped to the range.
     */
    explicit SaturatingCounter(unsigned bits = 2, unsigned initial = 0)
        : max_((1u << bits) - 1)
    {
        tlat_assert(bits >= 1 && bits <= 16,
                    "counter width out of range: ", bits);
        initial_ = initial > max_ ? max_ : initial;
        value_ = initial_;
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Restores the initial value. */
    void reset() { value_ = initial_; }

    unsigned value() const { return value_; }
    unsigned max() const { return max_; }

    /** True when the value is in the upper half of the range. */
    bool upperHalf() const { return value_ > max_ / 2; }

    /** Forces a specific value (clamped). */
    void
    set(unsigned value)
    {
        value_ = value > max_ ? max_ : value;
    }

  private:
    unsigned max_;
    unsigned initial_;
    unsigned value_;
};

} // namespace tlat

#endif // TLAT_UTIL_SATURATING_COUNTER_HH
