/**
 * @file
 * Fixed-size worker pool for deterministic fan-out parallelism.
 *
 * Design constraints, in order:
 *  - determinism of the *callers*: the pool never reorders results —
 *    callers index into pre-sized output slots, so scheduling can
 *    never change what a sweep computes, only how fast;
 *  - exception transparency: a task that throws surfaces the
 *    exception at the submitter through the returned future (and
 *    parallelFor rethrows the lowest-index failure);
 *  - no work stealing and no task priorities — a plain FIFO queue is
 *    enough for coarse-grained sweep cells and keeps behaviour easy
 *    to reason about under ThreadSanitizer.
 *
 * Submitting from inside a task is allowed (the queue lock is only
 * held to push). Blocking on a nested future from inside a task is
 * not: with every worker waiting, nobody is left to run the nested
 * task. parallelFor never does this — it only waits on the thread
 * that called it.
 */

#ifndef TLAT_UTIL_THREAD_POOL_HH
#define TLAT_UTIL_THREAD_POOL_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "mutex.hh"
#include "thread_annotations.hh"

namespace tlat::util
{

/** FIFO thread pool; all queued tasks finish before destruction. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 means hardwareThreads().
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueues @p task. The future reports completion; if the task
     * throws, future.get() rethrows the exception at the caller.
     */
    std::future<void> submit(std::function<void()> task);

    /** std::thread::hardware_concurrency, clamped to at least 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    Mutex mutex_;
    ConditionVariable work_ready_;
    std::deque<std::packaged_task<void()>> queue_
        TLAT_GUARDED_BY(mutex_);
    bool stopping_ TLAT_GUARDED_BY(mutex_) = false;
};

/**
 * Runs body(0) .. body(count - 1) on the pool and waits for all of
 * them. Iterations may run in any order and concurrently; the call
 * returns only after every iteration finished. If iterations throw,
 * the exception of the lowest index is rethrown here (the rest are
 * swallowed), so error reporting does not depend on scheduling.
 */
void parallelFor(ThreadPool &pool, std::size_t count,
                 const std::function<void(std::size_t)> &body);

} // namespace tlat::util

#endif // TLAT_UTIL_THREAD_POOL_HH
