/**
 * @file
 * AVX2 fused predict/update kernel. Scalar twin: fusedPassScalar
 * (simd.cc) — every block this kernel cannot prove safe runs the
 * same per-record program the twin defines, and the vector blocks
 * are bit-identical to it by construction (see the conflict check
 * below). Raw _mm256_* intrinsics are sanctioned here and only here
 * by the tlat-lint `simd-twin` rule.
 *
 * Shape: 8 records per block. The PT indexes of a block are loaded
 * as one dword vector; the seven cyclic rotations compared against
 * the original mark every lane whose index appears in another lane.
 * A block vectorizes when every
 * lane touching a duplicated pattern-table slot is a no-op update
 * (its successor state equals its gathered state): then no write in
 * the block can change a slot another lane reads, every serial step
 * sees exactly the gathered states, and the result equals the
 * in-order scalar twin bit for bit. This matters on real traces —
 * hot branches with saturated histories repeat one PT index many
 * times per 8 records (pairwise-distinct blocks are <1% on the gcc
 * trace), but those slots sit at an automaton fixed point almost
 * always, so ~93% of blocks still take the vector path. Blocks where
 * a duplicated slot does change state, and the <8-record tail, fall
 * back to the scalar program, preserving order.
 *
 * The whole file compiles with the generic tree flags; only these
 * functions carry target("avx2"), and fusedPass() dispatches here
 * only after __builtin_cpu_supports("avx2") says yes.
 */

#include "simd.hh"

#if defined(TLAT_SIMD_HAVE_AVX2)

#include <cstring>
#include <immintrin.h>

namespace tlat::util::simd::detail
{

namespace
{

/** In-order scalar program over [begin, end) with global outcome-bit
 *  indexing; semantically fusedPassScalar shifted to an offset. */
inline std::uint64_t
scalarSpan(const std::uint32_t *pt_index_lane,
           const std::uint64_t *outcome_words, std::size_t begin,
           std::size_t end, std::uint8_t *pattern_states,
           const FusedLuts &luts, std::uint8_t *capture)
{
    std::uint64_t hits = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t index = pt_index_lane[i];
        const bool taken =
            ((outcome_words[i >> 6] >> (i & 63)) & 1u) != 0;
        const std::uint8_t state = pattern_states[index];
        const bool correct = (luts.predict[state] != 0) == taken;
        hits += correct ? 1 : 0;
        if (capture != nullptr)
            capture[i] = correct ? 1 : 0;
        pattern_states[index] = taken ? luts.nextTaken[state]
                                      : luts.nextNotTaken[state];
    }
    return hits;
}

__attribute__((target("avx2"))) inline __m256i
loadNibbleLut(const std::uint8_t (&table)[16])
{
    // The same 16-byte table in both 128-bit lanes: vpshufb shuffles
    // within lanes, and every state value is < 16 (bit 7 clear), so
    // each byte selects the right entry regardless of lane.
    return _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(&table[0])));
}

} // namespace

__attribute__((target("avx2"))) std::uint64_t
fusedPassAvx2(const std::uint32_t *pt_index_lane,
              const std::uint64_t *outcome_words, std::size_t n,
              std::uint8_t *pattern_states, const FusedLuts &luts,
              std::uint8_t *capture)
{
    const std::uint8_t *outcome_bytes =
        reinterpret_cast<const std::uint8_t *>(outcome_words);

    const __m256i lut_pred = loadNibbleLut(luts.predict);
    const __m256i lut_next_t = loadNibbleLut(luts.nextTaken);
    const __m256i lut_next_n = loadNibbleLut(luts.nextNotTaken);
    const __m256i byte_mask = _mm256_set1_epi32(0xFF);
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i bit_select =
        _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    const __m256i rot1 =
        _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
    const __m256i rot2 =
        _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
    const __m256i rot3 =
        _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
    const __m256i rot4 =
        _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
    const __m256i rot5 =
        _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
    const __m256i rot6 =
        _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
    const __m256i rot7 =
        _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);

    __m256i hits_acc = _mm256_setzero_si256();
    std::uint64_t hits = 0;

    std::size_t i = 0;
    const std::size_t n8 = n & ~std::size_t{7};
    for (; i < n8; i += 8) {
        const __m256i vh = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(&pt_index_lane[i]));

        // Duplicated-index lanes. cmp_k marks lane j when idx[j] ==
        // idx[j-k]; rotations 1..4 find every one of the 28 pairs but
        // tag only one side for distances 1..3, and the no-op test
        // below must veto each duplicated lane individually — so the
        // distance-1..3 masks are rotated back to mark the partner
        // lane too (cheaper than three more compares against
        // rotations 5..7; distance-4 pairs mark both sides already).
        const __m256i cmp1 = _mm256_cmpeq_epi32(
            vh, _mm256_permutevar8x32_epi32(vh, rot1));
        const __m256i cmp2 = _mm256_cmpeq_epi32(
            vh, _mm256_permutevar8x32_epi32(vh, rot2));
        const __m256i cmp3 = _mm256_cmpeq_epi32(
            vh, _mm256_permutevar8x32_epi32(vh, rot3));
        const __m256i cmp4 = _mm256_cmpeq_epi32(
            vh, _mm256_permutevar8x32_epi32(vh, rot4));
        const __m256i conflict = _mm256_or_si256(
            _mm256_or_si256(
                _mm256_or_si256(cmp1, _mm256_permutevar8x32_epi32(
                                          cmp1, rot7)),
                _mm256_or_si256(cmp2, _mm256_permutevar8x32_epi32(
                                          cmp2, rot6))),
            _mm256_or_si256(
                _mm256_or_si256(cmp3, _mm256_permutevar8x32_epi32(
                                          cmp3, rot5)),
                cmp4));

        // Gather the eight states. Scale-1 dword gathers read three
        // bytes past each state; PatternTable's kGatherSlackBytes
        // padding keeps the highest index in bounds.
        const __m256i states = _mm256_and_si256(
            _mm256_i32gather_epi32(
                reinterpret_cast<const int *>(pattern_states), vh, 1),
            byte_mask);

        // Outcome bits i..i+7 are exactly one byte of the packed
        // bitvector (i is 8-aligned here).
        const __m256i taken_mask = _mm256_cmpeq_epi32(
            _mm256_and_si256(
                _mm256_set1_epi32(outcome_bytes[i >> 3]), bit_select),
            bit_select);
        const __m256i taken01 = _mm256_and_si256(taken_mask, one);

        const __m256i pred = _mm256_and_si256(
            _mm256_shuffle_epi8(lut_pred, states), byte_mask);
        const __m256i correct_mask =
            _mm256_cmpeq_epi32(pred, taken01);

        const __m256i next = _mm256_and_si256(
            _mm256_blendv_epi8(_mm256_shuffle_epi8(lut_next_n, states),
                               _mm256_shuffle_epi8(lut_next_t, states),
                               taken_mask),
            byte_mask);

        // A duplicated slot is only safe when no lane moves it: if
        // the gathered states make every conflicted lane's update a
        // no-op, an in-order run would see those same states at each
        // step (no write changes them), so predictions, capture bits
        // and final PT state all match the scalar twin. Otherwise
        // replay the block serially.
        const __m256i bad = _mm256_andnot_si256(
            _mm256_cmpeq_epi32(next, states), conflict);
        if (!_mm256_testz_si256(bad, bad)) {
            hits += scalarSpan(pt_index_lane, outcome_words, i, i + 8,
                               pattern_states, luts, capture);
            continue;
        }
        hits_acc = _mm256_add_epi32(
            hits_acc, _mm256_and_si256(correct_mask, one));
        if (capture != nullptr) {
            // Expand the 8 correctness bits to 8 0/1 bytes.
            const std::uint64_t mask = static_cast<std::uint32_t>(
                _mm256_movemask_ps(_mm256_castsi256_ps(correct_mask)));
            std::uint64_t bytes =
                (mask * 0x0101010101010101ULL) & 0x8040201008040201ULL;
            bytes |= bytes >> 1;
            bytes |= bytes >> 2;
            bytes |= bytes >> 4;
            bytes &= 0x0101010101010101ULL;
            std::memcpy(capture + i, &bytes, sizeof(bytes));
        }

        // Scatter: successor indexes come straight from the lane
        // (already L1-hot) rather than a round-trip of vh through the
        // stack, which would stall on store-to-load forwarding.
        alignas(32) std::uint32_t out[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(out), next);
        const std::uint32_t *idx = &pt_index_lane[i];
        pattern_states[idx[0]] = static_cast<std::uint8_t>(out[0]);
        pattern_states[idx[1]] = static_cast<std::uint8_t>(out[1]);
        pattern_states[idx[2]] = static_cast<std::uint8_t>(out[2]);
        pattern_states[idx[3]] = static_cast<std::uint8_t>(out[3]);
        pattern_states[idx[4]] = static_cast<std::uint8_t>(out[4]);
        pattern_states[idx[5]] = static_cast<std::uint8_t>(out[5]);
        pattern_states[idx[6]] = static_cast<std::uint8_t>(out[6]);
        pattern_states[idx[7]] = static_cast<std::uint8_t>(out[7]);
    }

    alignas(32) std::uint32_t acc[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc), hits_acc);
    for (int lane = 0; lane < 8; ++lane)
        hits += acc[lane];

    hits += scalarSpan(pt_index_lane, outcome_words, i, n,
                       pattern_states, luts, capture);
    return hits;
}

} // namespace tlat::util::simd::detail

#endif // TLAT_SIMD_HAVE_AVX2
