/**
 * @file
 * Return address stack, as described in the paper's Section 4: "A
 * return address is pushed onto the stack when a subroutine is called
 * and is popped as the prediction for the branch target address when a
 * return instruction is detected. The return address prediction may
 * miss when the return address stack overflows."
 *
 * On overflow the oldest entry is dropped (circular buffer), matching
 * hardware RAS behaviour; the corresponding deep return will then
 * mispredict.
 */

#ifndef TLAT_SIM_RETURN_ADDRESS_STACK_HH
#define TLAT_SIM_RETURN_ADDRESS_STACK_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace tlat::sim
{

/** Fixed-depth circular return address stack. */
class ReturnAddressStack
{
  public:
    /** @param depth Number of entries (must be non-zero). */
    explicit ReturnAddressStack(std::size_t depth = 16)
        : entries_(depth, 0)
    {
        tlat_assert(depth > 0, "RAS depth must be non-zero");
    }

    /** Pushes a return address; silently overwrites on overflow. */
    void
    push(std::uint64_t return_address)
    {
        top_ = (top_ + 1) % entries_.size();
        entries_[top_] = return_address;
        if (live_ < entries_.size())
            ++live_;
        else
            ++overflows_;
    }

    /**
     * Pops the predicted return address. Returns 0 when the stack is
     * empty (an empty-stack prediction always misses).
     */
    std::uint64_t
    pop()
    {
        if (live_ == 0) {
            ++underflows_;
            return 0;
        }
        const std::uint64_t address = entries_[top_];
        top_ = (top_ + entries_.size() - 1) % entries_.size();
        --live_;
        return address;
    }

    std::size_t depth() const { return entries_.size(); }
    std::size_t liveEntries() const { return live_; }
    std::uint64_t overflows() const { return overflows_; }
    std::uint64_t underflows() const { return underflows_; }

    void
    clear()
    {
        live_ = 0;
        top_ = 0;
        overflows_ = 0;
        underflows_ = 0;
    }

  private:
    std::vector<std::uint64_t> entries_;
    std::size_t top_ = 0;
    std::size_t live_ = 0;
    std::uint64_t overflows_ = 0;
    std::uint64_t underflows_ = 0;
};

} // namespace tlat::sim

#endif // TLAT_SIM_RETURN_ADDRESS_STACK_HH
