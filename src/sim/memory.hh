/**
 * @file
 * Flat 64-bit-word data memory for the micro88 simulator.
 *
 * The simulated machine is a Harvard design: code lives in the Program
 * and is immutable; this class models only the data space. Addresses
 * are byte addresses and must be 8-aligned — the workloads index data
 * as 64-bit words exclusively.
 */

#ifndef TLAT_SIM_MEMORY_HH
#define TLAT_SIM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/logging.hh"

namespace tlat::sim
{

/** Word-granular flat data memory. */
class Memory
{
  public:
    /** @param words Size of the data space in 64-bit words. */
    explicit Memory(std::uint64_t words) : words_(words, 0) {}

    /** Initializes the first words from an image. */
    void
    initialize(const std::vector<std::uint64_t> &image)
    {
        tlat_assert(image.size() <= words_.size(),
                    "data image larger than memory");
        std::copy(image.begin(), image.end(), words_.begin());
    }

    std::uint64_t
    load(std::uint64_t byte_address) const
    {
        return words_[wordIndex(byte_address)];
    }

    void
    store(std::uint64_t byte_address, std::uint64_t value)
    {
        words_[wordIndex(byte_address)] = value;
    }

    double
    loadDouble(std::uint64_t byte_address) const
    {
        double value;
        const std::uint64_t word = load(byte_address);
        std::memcpy(&value, &word, sizeof(value));
        return value;
    }

    void
    storeDouble(std::uint64_t byte_address, double value)
    {
        std::uint64_t word;
        std::memcpy(&word, &value, sizeof(word));
        store(byte_address, word);
    }

    std::uint64_t sizeWords() const { return words_.size(); }
    std::uint64_t sizeBytes() const { return words_.size() * 8; }

  private:
    std::uint64_t
    wordIndex(std::uint64_t byte_address) const
    {
        if (byte_address % 8 != 0) {
            tlat_fatal("unaligned data access at address ",
                       byte_address);
        }
        const std::uint64_t index = byte_address / 8;
        if (index >= words_.size()) {
            tlat_fatal("data access out of bounds: address ",
                       byte_address, ", memory is ", sizeBytes(),
                       " bytes");
        }
        return index;
    }

    std::vector<std::uint64_t> words_;
};

} // namespace tlat::sim

#endif // TLAT_SIM_MEMORY_HH
