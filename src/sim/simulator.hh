/**
 * @file
 * The micro88 instruction-level simulator — the trace generator of this
 * study, standing in for the Motorola 88100 ISIM of the paper's
 * methodology section.
 *
 * The simulator executes a Program to completion (Halt) or until an
 * instruction budget or the trace sink stops it, reporting every
 * executed branch to the sink and accumulating the dynamic instruction
 * mix.
 */

#ifndef TLAT_SIM_SIMULATOR_HH
#define TLAT_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <limits>

#include "isa/program.hh"
#include "memory.hh"
#include "trace/trace_buffer.hh"

namespace tlat::sim
{

/** Why a simulation run ended. */
enum class StopReason : std::uint8_t
{
    Halted,          ///< the program executed Halt
    InstructionCap,  ///< the instruction budget was exhausted
    SinkRequest      ///< the trace sink asked to stop
};

/** Summary of one simulation run. */
struct SimResult
{
    StopReason stopReason = StopReason::Halted;
    std::uint64_t instructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t conditionalBranches = 0;
    trace::InstructionMix mix;
};

/**
 * Receives executed-branch callbacks during simulation.
 * Returning false stops the run after the current instruction.
 */
using BranchSink = std::function<bool(const trace::BranchRecord &)>;

/** Configuration for a simulation run. */
struct SimOptions
{
    /** Hard cap on executed instructions. */
    std::uint64_t maxInstructions =
        std::numeric_limits<std::uint64_t>::max();

    /**
     * Restart the program when it halts instead of stopping. This is
     * how short workloads are extended to an arbitrary branch budget:
     * registers and the pc are reset; *data memory is preserved*, so
     * successive iterations see the data the previous iteration
     * mutated.
     */
    bool restartOnHalt = false;
};

/** Executes micro88 programs. */
class Simulator
{
  public:
    /** Builds a simulator with a fresh memory sized for @p program. */
    explicit Simulator(const isa::Program &program);

    /**
     * Runs until Halt, the instruction cap, or the sink stops it.
     * May be called only once per Simulator instance.
     */
    SimResult run(const BranchSink &sink,
                  const SimOptions &options = SimOptions{});

    /** Read a register (for tests). */
    std::uint64_t reg(unsigned index) const { return regs_[index]; }

    /** The data memory (for tests and post-run inspection). */
    Memory &memory() { return memory_; }
    const Memory &memory() const { return memory_; }

  private:
    void resetCpu();

    const isa::Program &program_;
    Memory memory_;
    std::uint64_t regs_[isa::kNumRegisters] = {};
    std::uint64_t pc_ = 0;
    bool ran_ = false;
};

/**
 * Convenience helper: runs @p program collecting conditional branches
 * until @p conditionalBudget of them executed (restarting on halt), and
 * returns the trace. A budget of 0 means "run to natural completion
 * once".
 */
trace::TraceBuffer collectTrace(const isa::Program &program,
                                std::uint64_t conditionalBudget,
                                std::uint64_t maxInstructions =
                                    std::numeric_limits<
                                        std::uint64_t>::max());

} // namespace tlat::sim

#endif // TLAT_SIM_SIMULATOR_HH
