#include "simulator.hh"

#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace tlat::sim
{

namespace
{

double
asDouble(std::uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::uint64_t
asBits(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

} // namespace

Simulator::Simulator(const isa::Program &program)
    : program_(program),
      memory_(program.dataWords ? program.dataWords : 1)
{
    memory_.initialize(program.initialData);
    resetCpu();
}

void
Simulator::resetCpu()
{
    std::memset(regs_, 0, sizeof(regs_));
    pc_ = program_.entry;
}

SimResult
Simulator::run(const BranchSink &sink, const SimOptions &options)
{
    tlat_assert(!ran_, "Simulator::run() called twice");
    ran_ = true;
    tlat_assert(!program_.code.empty(), "empty program");

    using isa::Opcode;
    SimResult result;
    trace::InstructionMix &mix = result.mix;

    const std::uint64_t code_size = program_.code.size();
    bool stop = false;

    while (!stop) {
        if (result.instructions >= options.maxInstructions) {
            result.stopReason = StopReason::InstructionCap;
            break;
        }
        if (pc_ >= code_size) {
            tlat_fatal("pc ", pc_, " ran off the end of program '",
                       program_.name, "' (", code_size,
                       " instructions)");
        }

        const isa::Instruction &in = program_.code[pc_];
        ++result.instructions;

        const auto rd = in.rd;
        const std::uint64_t a = regs_[in.rs1];
        const std::uint64_t b = regs_[in.rs2];
        const auto sa = static_cast<std::int64_t>(a);
        const auto sb = static_cast<std::int64_t>(b);
        const std::int32_t imm = in.imm;
        std::uint64_t next_pc = pc_ + 1;

        // Writes go through this lambda so r0 stays hardwired to zero.
        const auto write = [this](unsigned reg, std::uint64_t value) {
            if (reg != isa::kZeroReg)
                regs_[reg] = value;
        };

        // Reports a branch to the sink; sets `stop` on sink request.
        const auto report = [&](trace::BranchClass cls,
                                std::uint64_t target_pc, bool taken,
                                bool is_call = false) {
            ++result.branches;
            if (cls == trace::BranchClass::Conditional)
                ++result.conditionalBranches;
            trace::BranchRecord record;
            record.pc = pc_ * isa::kInstructionBytes;
            record.target = target_pc * isa::kInstructionBytes;
            record.cls = cls;
            record.taken = taken;
            record.isCall = is_call;
            if (sink && !sink(record)) {
                result.stopReason = StopReason::SinkRequest;
                stop = true;
            }
        };

        const auto condBranch = [&](bool taken) {
            const std::uint64_t target =
                pc_ + static_cast<std::int64_t>(imm);
            report(trace::BranchClass::Conditional, target, taken);
            if (taken)
                next_pc = target;
        };

        switch (in.opcode) {
          case Opcode::Add: write(rd, a + b); break;
          case Opcode::Sub: write(rd, a - b); break;
          case Opcode::Mul: write(rd, a * b); break;
          case Opcode::Div:
            // Division by zero is defined (not trapped) so workload
            // bugs surface as wrong data, not simulator crashes.
            write(rd, sb == 0
                          ? 0
                          : static_cast<std::uint64_t>(sa / sb));
            break;
          case Opcode::Rem:
            write(rd, sb == 0
                          ? a
                          : static_cast<std::uint64_t>(sa % sb));
            break;
          case Opcode::And: write(rd, a & b); break;
          case Opcode::Or: write(rd, a | b); break;
          case Opcode::Xor: write(rd, a ^ b); break;
          case Opcode::Sll: write(rd, a << (b & 63)); break;
          case Opcode::Srl: write(rd, a >> (b & 63)); break;
          case Opcode::Sra:
            write(rd, static_cast<std::uint64_t>(sa >> (b & 63)));
            break;
          case Opcode::Slt: write(rd, sa < sb ? 1 : 0); break;
          case Opcode::Sltu: write(rd, a < b ? 1 : 0); break;

          case Opcode::Addi:
            write(rd, a + static_cast<std::int64_t>(imm));
            break;
          case Opcode::Andi:
            write(rd, a & static_cast<std::uint32_t>(imm & 0xffff));
            break;
          case Opcode::Ori:
            write(rd, a | static_cast<std::uint32_t>(imm & 0xffff));
            break;
          case Opcode::Xori:
            write(rd, a ^ static_cast<std::uint32_t>(imm & 0xffff));
            break;
          case Opcode::Slli: write(rd, a << (imm & 63)); break;
          case Opcode::Srli: write(rd, a >> (imm & 63)); break;
          case Opcode::Srai:
            write(rd, static_cast<std::uint64_t>(sa >> (imm & 63)));
            break;
          case Opcode::Slti:
            write(rd, sa < static_cast<std::int64_t>(imm) ? 1 : 0);
            break;
          case Opcode::Li:
            write(rd, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(imm)));
            break;

          case Opcode::Fadd:
            write(rd, asBits(asDouble(a) + asDouble(b)));
            break;
          case Opcode::Fsub:
            write(rd, asBits(asDouble(a) - asDouble(b)));
            break;
          case Opcode::Fmul:
            write(rd, asBits(asDouble(a) * asDouble(b)));
            break;
          case Opcode::Fdiv:
            write(rd, asBits(asDouble(a) / asDouble(b)));
            break;
          case Opcode::Fneg: write(rd, asBits(-asDouble(a))); break;
          case Opcode::Fabs:
            write(rd, asBits(std::fabs(asDouble(a))));
            break;
          case Opcode::Fsqrt:
            write(rd, asBits(std::sqrt(asDouble(a))));
            break;
          case Opcode::Fcvt:
            write(rd, asBits(static_cast<double>(sa)));
            break;
          case Opcode::Ftoi:
            write(rd, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(asDouble(a))));
            break;
          case Opcode::Flt:
            write(rd, asDouble(a) < asDouble(b) ? 1 : 0);
            break;
          case Opcode::Fle:
            write(rd, asDouble(a) <= asDouble(b) ? 1 : 0);
            break;
          case Opcode::Feq:
            write(rd, asDouble(a) == asDouble(b) ? 1 : 0);
            break;

          case Opcode::Ld:
            write(rd,
                  memory_.load(a + static_cast<std::int64_t>(imm)));
            break;
          case Opcode::St:
            memory_.store(a + static_cast<std::int64_t>(imm), b);
            break;

          case Opcode::Beq: condBranch(a == b); break;
          case Opcode::Bne: condBranch(a != b); break;
          case Opcode::Blt: condBranch(sa < sb); break;
          case Opcode::Bge: condBranch(sa >= sb); break;
          case Opcode::Bltu: condBranch(a < b); break;
          case Opcode::Bgeu: condBranch(a >= b); break;

          case Opcode::Jmp: {
            const std::uint64_t target =
                pc_ + static_cast<std::int64_t>(imm);
            report(trace::BranchClass::ImmediateUnconditional, target,
                   true);
            next_pc = target;
            break;
          }
          case Opcode::Call: {
            const std::uint64_t target =
                pc_ + static_cast<std::int64_t>(imm);
            write(isa::kLinkReg,
                  (pc_ + 1) * isa::kInstructionBytes);
            report(trace::BranchClass::ImmediateUnconditional, target,
                   true, /*is_call=*/true);
            next_pc = target;
            break;
          }
          case Opcode::Jr: {
            const std::uint64_t target = a / isa::kInstructionBytes;
            report(trace::BranchClass::RegisterUnconditional, target,
                   true);
            next_pc = target;
            break;
          }
          case Opcode::Ret: {
            const std::uint64_t target =
                regs_[isa::kLinkReg] / isa::kInstructionBytes;
            report(trace::BranchClass::Return, target, true);
            next_pc = target;
            break;
          }

          case Opcode::Nop:
            break;
          case Opcode::Halt:
            if (options.restartOnHalt && !stop) {
                resetCpu();
                next_pc = pc_; // resetCpu set pc_; keep it
                // Fall through to the mix accounting below, then the
                // loop continues from the entry point.
                mix.other += 1;
                continue;
            }
            result.stopReason = StopReason::Halted;
            stop = true;
            break;

          default:
            tlat_panic("unhandled opcode in simulator");
        }

        switch (isa::opcodeGroup(in.opcode)) {
          case isa::InstrGroup::IntAlu: ++mix.intAlu; break;
          case isa::InstrGroup::FpAlu: ++mix.fpAlu; break;
          case isa::InstrGroup::Memory: ++mix.memory; break;
          case isa::InstrGroup::ControlFlow: ++mix.controlFlow; break;
          case isa::InstrGroup::Other: ++mix.other; break;
        }

        if (!stop)
            pc_ = next_pc;
    }

    return result;
}

trace::TraceBuffer
collectTrace(const isa::Program &program,
             std::uint64_t conditionalBudget,
             std::uint64_t maxInstructions)
{
    Simulator simulator(program);
    trace::TraceBuffer buffer(program.name);

    std::uint64_t conditional_seen = 0;
    const BranchSink sink = [&](const trace::BranchRecord &record) {
        buffer.append(record);
        if (record.cls == trace::BranchClass::Conditional) {
            ++conditional_seen;
            if (conditionalBudget != 0 &&
                conditional_seen >= conditionalBudget)
                return false;
        }
        return true;
    };

    SimOptions options;
    options.maxInstructions = maxInstructions;
    options.restartOnHalt = conditionalBudget != 0;

    const SimResult result = simulator.run(sink, options);
    buffer.mix() = result.mix;
    return buffer;
}

} // namespace tlat::sim
