/**
 * @file
 * First-order deep-pipeline timing model — the performance lens of
 * the paper's introduction ("When the number of cycles taken to
 * resolve a branch is large, the performance loss due to the pipeline
 * stalls is considerable").
 *
 * The model replays a branch trace through a fetch engine built from
 * three predictors, one per branch-class problem of Section 4:
 *
 *  - a direction predictor (any core::BranchPredictor) for
 *    conditional branches — a wrong direction costs a full pipeline
 *    flush (resolveLatency cycles);
 *  - a branch target buffer (set-associative, tagged) supplying
 *    taken-branch and register-indirect targets at fetch — a miss
 *    costs a fetch bubble (decodeBubble cycles for targets computable
 *    at decode: conditional/immediate; registerResolveLatency for
 *    register-indirect targets, which wait for the register value);
 *  - a return address stack for subroutine returns — a wrong pop is
 *    a register-indirect-class stall.
 *
 * Cycle accounting is trace-level: base cycles are dynamic
 * instructions divided by fetch width (the trace header's instruction
 * mix), and every penalty event adds its bubble. This is a
 * first-order model (no overlap between penalties, no cache effects);
 * it is exactly the "flushing of the speculative execution already in
 * progress" arithmetic of the abstract, with the fetch-redirect
 * machinery simulated rather than assumed.
 */

#ifndef TLAT_PIPELINE_PIPELINE_MODEL_HH
#define TLAT_PIPELINE_PIPELINE_MODEL_HH

#include <cstdint>
#include <memory>

#include "core/branch_predictor.hh"
#include "core/history_table.hh"
#include "sim/return_address_stack.hh"
#include "trace/trace_buffer.hh"

namespace tlat::pipeline
{

/** Machine parameters of the timing model. */
struct PipelineConfig
{
    /** Instructions fetched per cycle. */
    unsigned fetchWidth = 1;
    /** Cycles from fetch to conditional-branch resolution — the
     *  full flush cost of a wrong direction. */
    unsigned resolveLatency = 8;
    /** Fetch bubble when a taken branch's target is not in the BTB
     *  but is computable at decode (conditional and immediate
     *  branches). */
    unsigned decodeBubble = 2;
    /** Stall for register-indirect targets (jr, mispredicted
     *  returns): the register value is an execute-stage result. */
    unsigned registerResolveLatency = 6;
    /** Branch target buffer geometry (entries, 4-way, tagged). */
    std::size_t btbEntries = 512;
    unsigned btbAssociativity = 4;
    /** Return address stack depth. */
    std::size_t rasDepth = 16;
};

/** Cycle and event accounting of one replay. */
struct PipelineResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    std::uint64_t directionFlushes = 0;   ///< wrong direction
    std::uint64_t btbBubbles = 0;         ///< taken target not in BTB
    std::uint64_t indirectStalls = 0;     ///< jr target waits
    std::uint64_t returnMispredicts = 0;  ///< RAS popped wrong

    double
    cpi() const
    {
        return instructions == 0
            ? 0.0
            : static_cast<double>(cycles) /
                  static_cast<double>(instructions);
    }

    double ipc() const { return cpi() == 0.0 ? 0.0 : 1.0 / cpi(); }
};

/** Replays traces against a direction predictor with timing. */
class PipelineModel
{
  public:
    explicit PipelineModel(const PipelineConfig &config);

    /**
     * Replays @p trace using @p direction_predictor for conditional
     * branches. The predictor is *not* reset (callers may pre-train);
     * the model's own BTB and RAS start cold.
     */
    PipelineResult run(const trace::TraceBuffer &trace,
                       core::BranchPredictor &direction_predictor);

    const PipelineConfig &config() const { return config_; }

  private:
    PipelineConfig config_;
};

} // namespace tlat::pipeline

#endif // TLAT_PIPELINE_PIPELINE_MODEL_HH
