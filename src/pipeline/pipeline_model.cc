#include "pipeline_model.hh"

namespace tlat::pipeline
{

namespace
{

/** BTB payload: the last observed target of the branch. */
struct BtbEntry
{
    std::uint64_t target = 0;
    bool valid = false;
};

} // namespace

PipelineModel::PipelineModel(const PipelineConfig &config)
    : config_(config)
{
}

PipelineResult
PipelineModel::run(const trace::TraceBuffer &trace,
                   core::BranchPredictor &direction_predictor)
{
    core::AssociativeTable<BtbEntry> btb(config_.btbEntries,
                                         config_.btbAssociativity,
                                         BtbEntry{});
    sim::ReturnAddressStack ras(config_.rasDepth);

    PipelineResult result;
    result.instructions = trace.mix().total();

    // Base cycles: the front end streams instructions at fetchWidth
    // per cycle when nothing redirects.
    std::uint64_t penalty_cycles = 0;

    for (const trace::BranchRecord &record : trace.records()) {
        switch (record.cls) {
          case trace::BranchClass::Conditional: {
            const bool predicted =
                direction_predictor.predict(record);
            direction_predictor.update(record);
            if (predicted != record.taken) {
                ++result.directionFlushes;
                penalty_cycles += config_.resolveLatency;
                // The flush refetches from the resolved target; the
                // BTB learns it below either way.
            } else if (record.taken) {
                // Right direction; the target must still come from
                // somewhere this cycle.
                BtbEntry &entry = btb.lookup(record.pc);
                if (!entry.valid || entry.target != record.target) {
                    ++result.btbBubbles;
                    penalty_cycles += config_.decodeBubble;
                }
            }
            if (record.taken) {
                BtbEntry &entry = btb.lookup(record.pc);
                entry.valid = true;
                entry.target = record.target;
            }
            break;
          }

          case trace::BranchClass::ImmediateUnconditional: {
            // Target computable at decode: a BTB hit removes even
            // that bubble.
            BtbEntry &entry = btb.lookup(record.pc);
            if (!entry.valid || entry.target != record.target) {
                ++result.btbBubbles;
                penalty_cycles += config_.decodeBubble;
            }
            entry.valid = true;
            entry.target = record.target;
            if (record.isCall) {
                ras.push(record.pc + 4);
            }
            break;
          }

          case trace::BranchClass::RegisterUnconditional: {
            // The target is a register value; without a BTB hit the
            // fetch waits for execute.
            BtbEntry &entry = btb.lookup(record.pc);
            if (!entry.valid || entry.target != record.target) {
                ++result.indirectStalls;
                penalty_cycles += config_.registerResolveLatency;
            }
            entry.valid = true;
            entry.target = record.target;
            break;
          }

          case trace::BranchClass::Return: {
            const std::uint64_t predicted_target = ras.pop();
            if (predicted_target != record.target) {
                ++result.returnMispredicts;
                penalty_cycles += config_.registerResolveLatency;
            }
            break;
          }

          default:
            break;
        }
    }

    const std::uint64_t base_cycles =
        (result.instructions + config_.fetchWidth - 1) /
        config_.fetchWidth;
    result.cycles = base_cycles + penalty_cycles;
    return result;
}

} // namespace tlat::pipeline
