/**
 * @file
 * Serialization of branch traces.
 *
 * Two formats are supported:
 *  - a binary format ("TLTR"), compact and fast, used to cache
 *    generated workload traces between bench runs;
 *  - a text format, one record per line, for debugging and for feeding
 *    externally generated traces into the harness.
 *
 * Binary layout (all integers little-endian):
 *   magic            4 bytes  "TLTR"
 *   version          u32      currently 2
 *   name length      u32
 *   name bytes       ...
 *   instruction mix  5 x u64  (intAlu, fpAlu, memory, controlFlow, other)
 *   record count     u64
 *   records          count x { pc u64, target u64, cls u8, flags u8 }
 * where flags bit 0 is the taken outcome and bit 1 the call bit.
 * Records are staged through a flat buffer and hit the stream as a
 * few large read()/write() calls, not one per field — this is the
 * fast preload path for every sweep run (see TLAT_TRACE_CACHE_DIR in
 * harness::Suite).
 *
 * Text format, after an optional "# name: ..." header line:
 *   <pc-hex> <target-hex> <class-letter> <T|N>
 * where C=conditional, R=return, U=immediate unconditional,
 * G=register unconditional. The branch class and the call bit are
 * encoded independently: a subroutine call is written as the
 * *lowercase* class letter (u = immediate-unconditional call,
 * g = register-unconditional call), so every class/flag combination
 * round-trips. The legacy letter J (an immediate-unconditional call)
 * is still accepted on input. Record lines must have exactly four
 * fields; trailing junk is rejected with the offending line number.
 */

#ifndef TLAT_TRACE_TRACE_IO_HH
#define TLAT_TRACE_TRACE_IO_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "trace_buffer.hh"

namespace tlat::trace
{

/**
 * TLTR binary format version. The single authoritative definition —
 * tlat-lint's schema-once rule holds the tree to exactly one — bumped
 * whenever the wire layout above changes incompatibly.
 */
inline constexpr std::uint32_t kTltrFormatVersion = 2;

/**
 * On-wire record stride: pc u64 + target u64 + cls u8 + flags u8.
 * Pinned by core/contracts.hh so a field added to the packed record
 * is a compile error until this constant (and the version) move with
 * it.
 */
inline constexpr std::size_t kTltrWireRecordSize = 18;

/** Writes the binary format. Returns false on stream failure. */
bool writeBinary(const TraceBuffer &trace, std::ostream &os);

/** Reads the binary format; nullopt on malformed input. */
std::optional<TraceBuffer> readBinary(std::istream &is);

/**
 * Streamed-access face of the binary format, shared by the
 * whole-buffer reader/writer above, `tlat trace convert`'s streamed
 * path, and trace::MmapChunkStream — one wire-layout implementation,
 * three consumers.
 */

/** The TLTR header fields, plus where the record array starts. */
struct TltrHeader
{
    std::string name;
    InstructionMix mix;
    std::uint64_t recordCount = 0;
    /** Byte offset of the first packed record. */
    std::size_t recordsOffset = 0;
};

/**
 * Parses a TLTR header from an in-memory byte range (e.g. an mmap'd
 * file). Validates magic, version, and that the range is large
 * enough to hold recordCount packed records after the header;
 * nullopt otherwise. Trailing bytes past the records are tolerated,
 * matching readBinary().
 */
std::optional<TltrHeader> parseBinaryHeader(const char *data,
                                            std::size_t size);

/** Packs one record into kTltrWireRecordSize bytes at @p out. */
void packWireRecord(const BranchRecord &record, char *out);

/**
 * Unpacks one packed record; false when the class or flag bits are
 * out of range (corrupt input).
 */
bool unpackWireRecord(const char *in, BranchRecord &record);

/**
 * Writes everything up to the record array for a stream that will
 * carry @p record_count records. Pair with writeBinaryRecords()
 * calls totalling exactly that count to produce a stream
 * byte-identical to writeBinary() of the equivalent TraceBuffer.
 */
bool writeBinaryHeader(std::ostream &os, const std::string &name,
                       const InstructionMix &mix,
                       std::uint64_t record_count);

/** Packs and appends records to a stream opened by
 *  writeBinaryHeader(). Returns false on stream failure. */
bool writeBinaryRecords(std::ostream &os,
                        std::span<const BranchRecord> records);

/** Writes the text format. Returns false on stream failure. */
bool writeText(const TraceBuffer &trace, std::ostream &os);

/** Where and why text parsing failed (1-based line number). */
struct TextReadError
{
    std::size_t line = 0;
    std::string message;
};

/**
 * Reads the text format; nullopt on malformed input, with the
 * offending line reported through @p error when non-null.
 */
std::optional<TraceBuffer> readText(std::istream &is,
                                    TextReadError *error = nullptr);

/** Saves to a file, picking the format from the extension (.tltr/.txt). */
bool saveToFile(const TraceBuffer &trace, const std::string &path);

/**
 * Loads from a file, picking the format from the extension. On
 * failure @p error (when non-null) receives a human-readable reason,
 * including the line number for text-format parse errors.
 */
std::optional<TraceBuffer> loadFromFile(const std::string &path,
                                        std::string *error = nullptr);

} // namespace tlat::trace

#endif // TLAT_TRACE_TRACE_IO_HH
