#include "trace_io.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

// Include-what-you-pin: re-evaluates the TLTR wire-layout contracts
// in the TU that implements the format. The trace-local header keeps
// the layer DAG acyclic (trace must not include core; layer-order
// lint rule).
#include "wire_contracts.hh"
#include "util/string_utils.hh"

namespace tlat::trace
{

namespace
{

constexpr char kMagic[4] = {'T', 'L', 'T', 'R'};

template <typename T>
void
writeScalar(std::ostream &os, T value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
readScalar(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(is);
}

char
classLetter(BranchClass cls)
{
    switch (cls) {
      case BranchClass::Conditional:
        return 'C';
      case BranchClass::Return:
        return 'R';
      case BranchClass::ImmediateUnconditional:
        return 'U';
      case BranchClass::RegisterUnconditional:
        return 'G';
      default:
        return '?';
    }
}

std::optional<BranchClass>
classFromLetter(char letter)
{
    switch (letter) {
      case 'C':
        return BranchClass::Conditional;
      case 'R':
        return BranchClass::Return;
      case 'U':
        return BranchClass::ImmediateUnconditional;
      case 'G':
        return BranchClass::RegisterUnconditional;
      default:
        return std::nullopt;
    }
}

void
setError(TextReadError *error, std::size_t line,
         std::string message)
{
    if (!error)
        return;
    error->line = line;
    error->message = std::move(message);
}

/** On-wire record stride: pc u64 + target u64 + cls u8 + flags u8. */
constexpr std::size_t kWireRecordSize = kTltrWireRecordSize;

/** Records staged per bulk read/write (bounds buffer memory and keeps
 *  a corrupt count field from triggering a giant allocation). */
constexpr std::size_t kRecordChunk = 1u << 16;

} // namespace

void
packWireRecord(const BranchRecord &record, char *out)
{
    std::memcpy(out, &record.pc, sizeof(record.pc));
    std::memcpy(out + 8, &record.target, sizeof(record.target));
    out[16] = static_cast<char>(record.cls);
    out[17] = static_cast<char>(
        static_cast<std::uint8_t>(record.taken ? 1 : 0) |
        static_cast<std::uint8_t>(record.isCall ? 2 : 0));
}

bool
unpackWireRecord(const char *in, BranchRecord &record)
{
    std::memcpy(&record.pc, in, sizeof(record.pc));
    std::memcpy(&record.target, in + 8, sizeof(record.target));
    const auto cls = static_cast<std::uint8_t>(in[16]);
    const auto flags = static_cast<std::uint8_t>(in[17]);
    if (cls >= static_cast<std::uint8_t>(BranchClass::NumClasses) ||
        flags > 3)
        return false;
    record.cls = static_cast<BranchClass>(cls);
    record.taken = (flags & 1) != 0;
    record.isCall = (flags & 2) != 0;
    return true;
}

bool
writeBinaryHeader(std::ostream &os, const std::string &name,
                  const InstructionMix &mix,
                  std::uint64_t record_count)
{
    os.write(kMagic, sizeof(kMagic));
    writeScalar(os, kTltrFormatVersion);
    writeScalar(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(),
             static_cast<std::streamsize>(name.size()));
    writeScalar(os, mix.intAlu);
    writeScalar(os, mix.fpAlu);
    writeScalar(os, mix.memory);
    writeScalar(os, mix.controlFlow);
    writeScalar(os, mix.other);
    writeScalar(os, record_count);
    return static_cast<bool>(os);
}

bool
writeBinaryRecords(std::ostream &os,
                   std::span<const BranchRecord> records)
{
    std::vector<char> buffer;
    for (std::size_t base = 0; base < records.size();
         base += kRecordChunk) {
        const std::size_t n =
            std::min(kRecordChunk, records.size() - base);
        buffer.resize(n * kWireRecordSize);
        for (std::size_t i = 0; i < n; ++i)
            packWireRecord(records[base + i],
                           buffer.data() + i * kWireRecordSize);
        os.write(buffer.data(),
                 static_cast<std::streamsize>(buffer.size()));
    }
    return static_cast<bool>(os);
}

std::optional<TltrHeader>
parseBinaryHeader(const char *data, std::size_t size)
{
    TltrHeader header;
    std::size_t off = 0;
    const auto have = [&](std::size_t n) { return size - off >= n; };
    if (!have(12) || std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;
    std::uint32_t version = 0;
    std::memcpy(&version, data + 4, sizeof(version));
    if (version != kTltrFormatVersion)
        return std::nullopt;
    std::uint32_t name_length = 0;
    std::memcpy(&name_length, data + 8, sizeof(name_length));
    if (name_length > (1u << 20))
        return std::nullopt;
    off = 12;
    if (!have(name_length))
        return std::nullopt;
    header.name.assign(data + off, name_length);
    off += name_length;
    if (!have(6 * sizeof(std::uint64_t)))
        return std::nullopt;
    const auto readU64 = [&] {
        std::uint64_t value = 0;
        std::memcpy(&value, data + off, sizeof(value));
        off += sizeof(value);
        return value;
    };
    header.mix.intAlu = readU64();
    header.mix.fpAlu = readU64();
    header.mix.memory = readU64();
    header.mix.controlFlow = readU64();
    header.mix.other = readU64();
    header.recordCount = readU64();
    header.recordsOffset = off;
    if (header.recordCount > (size - off) / kWireRecordSize)
        return std::nullopt;
    return header;
}

bool
writeBinary(const TraceBuffer &trace, std::ostream &os)
{
    return writeBinaryHeader(os, trace.name(), trace.mix(),
                             trace.size()) &&
           writeBinaryRecords(os, trace.records());
}

std::optional<TraceBuffer>
readBinary(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;

    std::uint32_t version = 0;
    if (!readScalar(is, version) || version != kTltrFormatVersion)
        return std::nullopt;

    std::uint32_t name_length = 0;
    if (!readScalar(is, name_length) || name_length > (1u << 20))
        return std::nullopt;
    std::string name(name_length, '\0');
    is.read(name.data(), name_length);
    if (!is)
        return std::nullopt;

    TraceBuffer trace(name);
    InstructionMix &mix = trace.mix();
    if (!readScalar(is, mix.intAlu) || !readScalar(is, mix.fpAlu) ||
        !readScalar(is, mix.memory) ||
        !readScalar(is, mix.controlFlow) || !readScalar(is, mix.other))
        return std::nullopt;

    std::uint64_t count = 0;
    if (!readScalar(is, count))
        return std::nullopt;
    trace.reserve(count);
    std::vector<char> buffer;
    for (std::uint64_t base = 0; base < count; base += kRecordChunk) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(kRecordChunk, count - base));
        buffer.resize(n * kWireRecordSize);
        is.read(buffer.data(),
                static_cast<std::streamsize>(buffer.size()));
        if (!is)
            return std::nullopt;
        for (std::size_t i = 0; i < n; ++i) {
            BranchRecord record;
            if (!unpackWireRecord(buffer.data() + i * kWireRecordSize,
                                  record))
                return std::nullopt;
            trace.append(record);
        }
    }
    return trace;
}

bool
writeText(const TraceBuffer &trace, std::ostream &os)
{
    os << "# name: " << trace.name() << '\n';
    const InstructionMix &mix = trace.mix();
    os << "# mix: " << mix.intAlu << ' ' << mix.fpAlu << ' '
       << mix.memory << ' ' << mix.controlFlow << ' ' << mix.other
       << '\n';
    for (const BranchRecord &record : trace.records()) {
        // Class and call bit are independent: calls print as the
        // lowercase class letter ('u' = immediate call, 'g' =
        // register-indirect call), so every combination round-trips.
        const char upper = classLetter(record.cls);
        const char cls_letter = record.isCall
            ? static_cast<char>(
                  std::tolower(static_cast<unsigned char>(upper)))
            : upper;
        os << std::hex << record.pc << ' ' << record.target << std::dec
           << ' ' << cls_letter << ' ' << (record.taken ? 'T' : 'N')
           << '\n';
    }
    return static_cast<bool>(os);
}

std::optional<TraceBuffer>
readText(std::istream &is, TextReadError *error)
{
    TraceBuffer trace;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(is, line)) {
        ++line_number;
        const std::string text = trim(line);
        if (text.empty())
            continue;
        if (text[0] == '#') {
            if (startsWith(text, "# name:")) {
                trace.setName(trim(text.substr(7)));
            } else if (startsWith(text, "# mix:")) {
                std::istringstream mix_in(text.substr(6));
                InstructionMix &mix = trace.mix();
                mix_in >> mix.intAlu >> mix.fpAlu >> mix.memory >>
                    mix.controlFlow >> mix.other;
                if (!mix_in) {
                    setError(error, line_number,
                             "malformed '# mix:' header");
                    return std::nullopt;
                }
            }
            continue;
        }

        std::istringstream record_in(text);
        BranchRecord record;
        std::string cls_text;
        std::string taken_text;
        record_in >> std::hex >> record.pc >> record.target >>
            cls_text >> taken_text;
        if (!record_in || cls_text.size() != 1 ||
            taken_text.size() != 1) {
            setError(error, line_number,
                     "expected '<pc> <target> <class> <T|N>'");
            return std::nullopt;
        }
        std::string junk;
        if (record_in >> junk) {
            setError(error, line_number,
                     "trailing junk after record fields: '" + junk +
                         "'");
            return std::nullopt;
        }

        char letter = cls_text[0];
        if (letter == 'J') {
            // Legacy encoding: 'J' (jsr) was an immediate call.
            letter = 'u';
        }
        record.isCall =
            std::islower(static_cast<unsigned char>(letter)) != 0;
        const auto cls = classFromLetter(static_cast<char>(
            std::toupper(static_cast<unsigned char>(letter))));
        if (!cls) {
            setError(error, line_number,
                     std::string("unknown branch class letter '") +
                         cls_text[0] + "'");
            return std::nullopt;
        }
        if (taken_text[0] != 'T' && taken_text[0] != 'N') {
            setError(error, line_number,
                     std::string("bad outcome letter '") +
                         taken_text[0] + "' (want T or N)");
            return std::nullopt;
        }
        record.cls = *cls;
        record.taken = taken_text[0] == 'T';
        trace.append(record);
    }
    return trace;
}

bool
saveToFile(const TraceBuffer &trace, const std::string &path)
{
    if (endsWith(path, ".txt")) {
        std::ofstream os(path);
        return os && writeText(trace, os);
    }
    std::ofstream os(path, std::ios::binary);
    return os && writeBinary(trace, os);
}

std::optional<TraceBuffer>
loadFromFile(const std::string &path, std::string *error)
{
    if (endsWith(path, ".txt")) {
        std::ifstream is(path);
        if (!is) {
            if (error)
                *error = "cannot open file";
            return std::nullopt;
        }
        TextReadError text_error;
        auto loaded = readText(is, &text_error);
        if (!loaded && error) {
            *error = "line " + std::to_string(text_error.line) +
                     ": " + text_error.message;
        }
        return loaded;
    }
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open file";
        return std::nullopt;
    }
    auto loaded = readBinary(is);
    if (!loaded && error)
        *error = "malformed or truncated binary trace";
    return loaded;
}

} // namespace tlat::trace
