#include "trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/string_utils.hh"

namespace tlat::trace
{

namespace
{

constexpr char kMagic[4] = {'T', 'L', 'T', 'R'};
constexpr std::uint32_t kVersion = 2;

template <typename T>
void
writeScalar(std::ostream &os, T value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
readScalar(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(is);
}

char
classLetter(BranchClass cls)
{
    switch (cls) {
      case BranchClass::Conditional:
        return 'C';
      case BranchClass::Return:
        return 'R';
      case BranchClass::ImmediateUnconditional:
        return 'U';
      case BranchClass::RegisterUnconditional:
        return 'G';
      default:
        return '?';
    }
}

std::optional<BranchClass>
classFromLetter(char letter)
{
    switch (letter) {
      case 'C':
        return BranchClass::Conditional;
      case 'R':
        return BranchClass::Return;
      case 'U':
        return BranchClass::ImmediateUnconditional;
      case 'G':
        return BranchClass::RegisterUnconditional;
      default:
        return std::nullopt;
    }
}

} // namespace

bool
writeBinary(const TraceBuffer &trace, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    writeScalar(os, kVersion);

    const auto name_length =
        static_cast<std::uint32_t>(trace.name().size());
    writeScalar(os, name_length);
    os.write(trace.name().data(), name_length);

    const InstructionMix &mix = trace.mix();
    writeScalar(os, mix.intAlu);
    writeScalar(os, mix.fpAlu);
    writeScalar(os, mix.memory);
    writeScalar(os, mix.controlFlow);
    writeScalar(os, mix.other);

    writeScalar(os, static_cast<std::uint64_t>(trace.size()));
    for (const BranchRecord &record : trace.records()) {
        writeScalar(os, record.pc);
        writeScalar(os, record.target);
        writeScalar(os, static_cast<std::uint8_t>(record.cls));
        const std::uint8_t flags =
            static_cast<std::uint8_t>(record.taken ? 1 : 0) |
            static_cast<std::uint8_t>(record.isCall ? 2 : 0);
        writeScalar(os, flags);
    }
    return static_cast<bool>(os);
}

std::optional<TraceBuffer>
readBinary(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;

    std::uint32_t version;
    if (!readScalar(is, version) || version != kVersion)
        return std::nullopt;

    std::uint32_t name_length;
    if (!readScalar(is, name_length) || name_length > (1u << 20))
        return std::nullopt;
    std::string name(name_length, '\0');
    is.read(name.data(), name_length);
    if (!is)
        return std::nullopt;

    TraceBuffer trace(name);
    InstructionMix &mix = trace.mix();
    if (!readScalar(is, mix.intAlu) || !readScalar(is, mix.fpAlu) ||
        !readScalar(is, mix.memory) ||
        !readScalar(is, mix.controlFlow) || !readScalar(is, mix.other))
        return std::nullopt;

    std::uint64_t count;
    if (!readScalar(is, count))
        return std::nullopt;
    for (std::uint64_t i = 0; i < count; ++i) {
        BranchRecord record;
        std::uint8_t cls;
        std::uint8_t flags;
        if (!readScalar(is, record.pc) ||
            !readScalar(is, record.target) || !readScalar(is, cls) ||
            !readScalar(is, flags))
            return std::nullopt;
        if (cls >= static_cast<std::uint8_t>(BranchClass::NumClasses) ||
            flags > 3)
            return std::nullopt;
        record.cls = static_cast<BranchClass>(cls);
        record.taken = (flags & 1) != 0;
        record.isCall = (flags & 2) != 0;
        trace.append(record);
    }
    return trace;
}

bool
writeText(const TraceBuffer &trace, std::ostream &os)
{
    os << "# name: " << trace.name() << '\n';
    const InstructionMix &mix = trace.mix();
    os << "# mix: " << mix.intAlu << ' ' << mix.fpAlu << ' '
       << mix.memory << ' ' << mix.controlFlow << ' ' << mix.other
       << '\n';
    for (const BranchRecord &record : trace.records()) {
        // Calls print as 'J' (jsr), other immediate unconditionals
        // as 'U'.
        const char cls_letter =
            record.isCall ? 'J' : classLetter(record.cls);
        os << std::hex << record.pc << ' ' << record.target << std::dec
           << ' ' << cls_letter << ' ' << (record.taken ? 'T' : 'N')
           << '\n';
    }
    return static_cast<bool>(os);
}

std::optional<TraceBuffer>
readText(std::istream &is)
{
    TraceBuffer trace;
    std::string line;
    while (std::getline(is, line)) {
        const std::string text = trim(line);
        if (text.empty())
            continue;
        if (text[0] == '#') {
            if (startsWith(text, "# name:")) {
                trace.setName(trim(text.substr(7)));
            } else if (startsWith(text, "# mix:")) {
                std::istringstream mix_in(text.substr(6));
                InstructionMix &mix = trace.mix();
                mix_in >> mix.intAlu >> mix.fpAlu >> mix.memory >>
                    mix.controlFlow >> mix.other;
                if (!mix_in)
                    return std::nullopt;
            }
            continue;
        }

        std::istringstream record_in(text);
        BranchRecord record;
        std::string cls_text;
        std::string taken_text;
        record_in >> std::hex >> record.pc >> record.target >>
            cls_text >> taken_text;
        if (!record_in || cls_text.size() != 1 ||
            taken_text.size() != 1)
            return std::nullopt;
        auto cls = classFromLetter(cls_text[0]);
        if (cls_text[0] == 'J') {
            cls = BranchClass::ImmediateUnconditional;
            record.isCall = true;
        }
        if (!cls || (taken_text[0] != 'T' && taken_text[0] != 'N'))
            return std::nullopt;
        record.cls = *cls;
        record.taken = taken_text[0] == 'T';
        trace.append(record);
    }
    return trace;
}

bool
saveToFile(const TraceBuffer &trace, const std::string &path)
{
    if (endsWith(path, ".txt")) {
        std::ofstream os(path);
        return os && writeText(trace, os);
    }
    std::ofstream os(path, std::ios::binary);
    return os && writeBinary(trace, os);
}

std::optional<TraceBuffer>
loadFromFile(const std::string &path)
{
    if (endsWith(path, ".txt")) {
        std::ifstream is(path);
        if (!is)
            return std::nullopt;
        return readText(is);
    }
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    return readBinary(is);
}

} // namespace tlat::trace
