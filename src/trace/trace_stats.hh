/**
 * @file
 * Trace-level statistics backing the paper's workload-characterization
 * results: Figure 3 (dynamic instruction mix), Figure 4 (dynamic
 * branch-class mix) and Table 1 (static conditional branch census).
 */

#ifndef TLAT_TRACE_TRACE_STATS_HH
#define TLAT_TRACE_TRACE_STATS_HH

#include <cstdint>

#include "trace_buffer.hh"

namespace tlat::trace
{

/** Aggregated statistics for one trace. */
struct TraceStats
{
    /** Dynamic instruction mix (copied from the trace header). */
    InstructionMix mix;

    /** Dynamic branch counts by class (Figure 4). */
    std::uint64_t classCounts[static_cast<std::size_t>(
        BranchClass::NumClasses)] = {};

    /** Distinct conditional-branch pcs (Table 1). */
    std::uint64_t staticConditionalBranches = 0;

    /** Distinct branch pcs of any class. */
    std::uint64_t staticBranches = 0;

    /** Dynamic conditional branches. */
    std::uint64_t dynamicConditionalBranches = 0;

    /** Dynamic conditional branches that were taken. */
    std::uint64_t takenConditionalBranches = 0;

    std::uint64_t
    dynamicBranches() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t c : classCounts)
            total += c;
        return total;
    }

    /** Fraction of dynamic branches in @p cls. */
    double classFraction(BranchClass cls) const;

    /** Fraction of dynamic conditional branches that were taken
     *  (the paper reports ~60%). */
    double takenFraction() const;
};

/** Computes the statistics of a trace in one pass. */
TraceStats computeStats(const TraceBuffer &trace);

} // namespace tlat::trace

#endif // TLAT_TRACE_TRACE_STATS_HH
