/**
 * @file
 * Chunked trace delivery: iterate a branch trace as a sequence of
 * bounded-size chunks instead of one resident buffer, so simulation
 * memory stays O(chunk) no matter how long the trace is.
 *
 * Each TraceChunk carries both faces a measuring loop needs:
 *  - the full class-mix record span of the chunk (metrics loops walk
 *    every record to attribute windows and profiles);
 *  - a PredecodedView of the chunk's conditional records (the fused
 *    simulateBatch fast path consumes SoA lanes).
 *
 * Determinism contract: for any chunk size and any worker count, the
 * concatenation of chunk records equals the whole trace in order, so
 * replaying a predictor chunk-by-chunk is bit-identical to one
 * simulateBatch over the whole buffer — predictor state is carried in
 * the predictor itself, never in the stream. Per-chunk predecode
 * rebuilds the dense-id dictionary from scratch each chunk; that only
 * changes which probes are first-touch *within a chunk*, and the
 * IHRT fused path counts repeat probes identically either way (see
 * TwoLevelPredictor::trySimdBatch).
 *
 * Two implementations:
 *  - BufferChunkStream slices an in-memory TraceBuffer (chunk size 0
 *    degenerates to the whole buffer, re-sharing its cached predecode
 *    artifact — the legacy path, at zero extra cost);
 *  - MmapChunkStream maps a TLTR v2 file read-only and decodes chunk
 *    N+1 on a single ThreadPool worker while the caller simulates
 *    chunk N, releasing consumed pages with madvise(MADV_DONTNEED) so
 *    resident memory is bounded by two chunks regardless of file
 *    size.
 */

#ifndef TLAT_TRACE_CHUNK_STREAM_HH
#define TLAT_TRACE_CHUNK_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "predecode.hh"
#include "record.hh"
#include "trace_buffer.hh"
#include "trace_io.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"
#include "util/thread_pool.hh"

namespace tlat::trace
{

/** One delivered chunk: full record span + predecoded conditionals. */
struct TraceChunk
{
    TraceChunk(std::span<const BranchRecord> all,
               PredecodedView conditional_view)
        : records(all), view(std::move(conditional_view))
    {
    }

    /** Every record of the chunk, all branch classes, trace order. */
    std::span<const BranchRecord> records;
    /** The chunk's conditional records, predecoded. */
    PredecodedView view;
};

/**
 * Pull-iterator over a trace's chunks. Single-consumer: next() and
 * rewind() must not race each other. The chunk returned by next()
 * (and everything it references) stays valid until the next call to
 * next() or rewind().
 */
class ChunkStream
{
  public:
    virtual ~ChunkStream() = default;

    /** Trace name (TLTR header / TraceBuffer name). */
    virtual const std::string &name() const = 0;

    /** Dynamic instruction mix of the whole trace. */
    virtual const InstructionMix &mix() const = 0;

    /** Total records in the whole trace, all classes. */
    virtual std::uint64_t recordCount() const = 0;

    /**
     * The next chunk, or nullptr at end of trace or on error
     * (distinguish with error()). Never returns an empty chunk for a
     * non-empty trace.
     */
    virtual const TraceChunk *next() = 0;

    /** Restarts iteration from the first chunk (clears any error). */
    virtual void rewind() = 0;

    /** Non-empty after a failed next() (corrupt record, I/O). */
    virtual const std::string &error() const = 0;
};

/**
 * Chunks an in-memory TraceBuffer. chunk_records == 0 means "one
 * chunk: the whole buffer", which re-shares the buffer's cached
 * predecode artifact instead of copying anything — byte-for-byte and
 * allocation-for-allocation the legacy whole-buffer path.
 */
class BufferChunkStream final : public ChunkStream
{
  public:
    /** @p trace must outlive the stream. */
    BufferChunkStream(const TraceBuffer &trace,
                      std::size_t chunk_records);

    const std::string &name() const override;
    const InstructionMix &mix() const override;
    std::uint64_t recordCount() const override;
    const TraceChunk *next() override;
    void rewind() override;
    const std::string &error() const override;

  private:
    const TraceBuffer &trace_;
    std::size_t chunk_records_;
    /** Next record index to deliver; == size() when drained. */
    std::size_t next_base_ = 0;
    bool whole_buffer_done_ = false;
    /** Per-chunk conditional mirror (chunked mode only). */
    std::vector<BranchRecord> conditionals_;
    std::optional<TraceChunk> current_;
    std::string error_;
};

/**
 * Streams a TLTR v2 file through an mmap window with one decode-ahead
 * worker: while the caller simulates chunk N, chunk N+1 is unpacked
 * and predecoded on an internal ThreadPool(1). Consumed chunk byte
 * ranges are released with madvise(MADV_DONTNEED), so peak resident
 * memory is two decoded chunks plus two chunks of mapped file pages
 * — constant in the trace length.
 */
class MmapChunkStream final : public ChunkStream
{
  public:
    /**
     * Maps @p path and validates its TLTR header.
     * @param chunk_records Records per chunk; 0 means the whole file
     *        as one chunk (still O(file) decoded memory — callers
     *        wanting constant memory pass a bound).
     * @param error Receives a reason on failure (when non-null).
     * @return The stream, or nullptr on open/mmap/header failure.
     */
    static std::unique_ptr<MmapChunkStream>
    open(const std::string &path, std::size_t chunk_records,
         std::string *error = nullptr);

    ~MmapChunkStream() override;

    MmapChunkStream(const MmapChunkStream &) = delete;
    MmapChunkStream &operator=(const MmapChunkStream &) = delete;

    const std::string &name() const override;
    const InstructionMix &mix() const override;
    std::uint64_t recordCount() const override;
    const TraceChunk *next() override;
    void rewind() override;
    const std::string &error() const override;

  private:
    /** Decoded form of one chunk, double-buffered across next(). */
    struct Slot
    {
        std::vector<BranchRecord> records;
        std::vector<BranchRecord> conditionals;
        std::shared_ptr<const PredecodedTrace> soa;
        /** First record index of the chunk. */
        std::uint64_t base = 0;
        /** False when a packed record failed to unpack. */
        bool ok = true;
        /** Record index of the first corrupt record when !ok. */
        std::uint64_t badRecord = 0;
    };

    MmapChunkStream(const char *data, std::size_t map_size, int fd,
                    TltrHeader header, std::size_t chunk_records);

    /** Unpacks records [base, base+count) into slots_[target]. */
    void decodeInto(int target, std::uint64_t base, std::size_t count)
        TLAT_REQUIRES(slots_mutex_);
    /** Queues the decode of the chunk starting at next_base_. */
    void scheduleNextDecode();
    /** Waits for the in-flight decode, if any. */
    void drainPending();
    /** Releases the mapped pages of records [begin, end). */
    void releaseRecords(std::uint64_t begin, std::uint64_t end);

    const char *data_;
    std::size_t map_size_;
    int fd_;
    TltrHeader header_;
    std::size_t chunk_records_;

    // Slots are declared before the pool: members destruct in reverse
    // order, so the pool (and any decode task touching a slot) drains
    // before the slots go away. The mutex carries the cross-thread
    // handoff contract for -Wthread-safety: the decode worker fills a
    // slot under the lock, the consumer drains pending_ (the real
    // ordering edge) and then reads the slot under the same lock, so
    // every slot access is provably serialized. Strict slot
    // alternation keeps the delivered chunk's slot untouched while
    // the next one decodes.
    util::Mutex slots_mutex_;
    Slot slots_[2] TLAT_GUARDED_BY(slots_mutex_);
    /** Slot index the in-flight/ready decode targets; -1 = none. */
    int pending_slot_ = -1;
    /** Slot the next scheduled decode will fill (strict alternation
     *  keeps the delivered chunk's slot untouched). */
    int next_decode_slot_ = 0;
    std::future<void> pending_;
    /** First record index not yet scheduled for decode. */
    std::uint64_t next_base_ = 0;
    /** Start of the previously delivered chunk (page release). */
    std::uint64_t released_below_ = 0;
    std::optional<TraceChunk> current_;
    std::string error_;
    util::ThreadPool pool_{1};
};

/**
 * Chunk size, in records, that streaming call sites should use when
 * the caller gave no explicit bound: the TLAT_CHUNK_RECORDS
 * environment variable when set to a positive integer, else 0 (the
 * legacy whole-buffer behaviour).
 */
std::size_t defaultChunkRecords();

} // namespace tlat::trace

#endif // TLAT_TRACE_CHUNK_STREAM_HH
