/**
 * @file
 * Trace-layer layout contracts: the in-memory BranchRecord the hot
 * loop streams, the packed TLTR wire record, and the predecoded SoA
 * lane element types, each pinned with a static_assert.
 *
 * These pins used to live in core/contracts.hh, but the TU that
 * *implements* the wire format (trace_io.cc) must re-evaluate them,
 * and trace/ sits below core/ in the layer DAG (util → isa/trace →
 * core/sim → predictors/workloads/pipeline → harness → bench/tools,
 * enforced by tools/tlat_lint.py layer-order) — so the trace-owned
 * contracts live here, in the layer that owns the types, and
 * core/contracts.hh includes this header to keep the whole battery
 * visible in one place. Defines no runtime symbols; free to include.
 */

#ifndef TLAT_TRACE_WIRE_CONTRACTS_HH
#define TLAT_TRACE_WIRE_CONTRACTS_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "predecode.hh"
#include "record.hh"
#include "trace_io.hh"

namespace tlat::trace
{

// ---------------------------------------------------------------------
// Wire/layout contracts: the 24-byte in-memory record and the 18-byte
// packed TLTR v2 record. BranchRecord additionally carries its own
// static_assert at the definition (record.hh); repeating the pin here
// keeps every contract the trace hot path depends on in one battery.
// ---------------------------------------------------------------------

static_assert(sizeof(BranchRecord) == 24 &&
                  alignof(BranchRecord) == 8,
              "BranchRecord layout drifted from the 24-byte/8-align "
              "contract the trace hot path is sized for");
static_assert(kTltrWireRecordSize ==
                  2 * sizeof(std::uint64_t) + 2 * sizeof(std::uint8_t),
              "TLTR wire record must stay pc u64 + target u64 + "
              "cls u8 + flags u8 = 18 bytes; bump kTltrFormatVersion "
              "if the wire layout changes");
static_assert(kTltrFormatVersion == 2,
              "TLTR format version changed: update the wire-layout "
              "contracts here and the format notes in "
              "trace/trace_io.hh together");

// The branch classes fit the 2-bit-exclusive flags byte encoding
// (taken = bit 0, call = bit 1, class in its own byte below
// NumClasses).
static_assert(static_cast<unsigned>(BranchClass::NumClasses) <= 255,
              "BranchClass must fit the one-byte TLTR class field");

// ---------------------------------------------------------------------
// Predecoded SoA lane contracts (predecode.hh): the fused SoA loops
// and the per-geometry index-lane probers are sized around these
// exact element types — a u32 branch id (2^32-1 unique static
// branches, asserted at build time), u64 packed-outcome words, u32
// set/slot indices and u64 tags/lines. Widening any of them silently
// doubles hot-lane memory traffic, which is the very thing the
// predecode layer exists to remove.
// ---------------------------------------------------------------------

static_assert(std::is_same_v<BranchId, std::uint32_t>,
              "the dense branch-id lane is sized for u32 ids");
static_assert(PredecodedTrace::kOutcomeWordBits == 64,
              "the packed outcome bitvector uses u64 words");
static_assert(
    std::is_same_v<decltype(AhrtLane::sets),
                   std::vector<std::uint32_t>> &&
        std::is_same_v<decltype(AhrtLane::tags),
                       std::vector<std::uint64_t>>,
    "AHRT index lane drifted from the u32-set/u64-tag layout");
static_assert(
    std::is_same_v<decltype(HashedLane::indices),
                   std::vector<std::uint32_t>> &&
        std::is_same_v<decltype(HashedLane::lines),
                       std::vector<std::uint64_t>>,
    "HHRT index lane drifted from the u32-index/u64-line layout");

} // namespace tlat::trace

#endif // TLAT_TRACE_WIRE_CONTRACTS_HH
