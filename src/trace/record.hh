/**
 * @file
 * Branch trace records — the interface between the instruction-level
 * simulator and every branch predictor in the repository.
 *
 * Following the paper's methodology (Section 4), branches are divided
 * into four classes: conditional branches, subroutine returns,
 * immediate unconditional branches and register-indirect unconditional
 * branches. Predictor accuracy experiments consume only the
 * conditional records; the other classes feed the branch-mix statistics
 * (Figure 4) and the return-address-stack model.
 */

#ifndef TLAT_TRACE_RECORD_HH
#define TLAT_TRACE_RECORD_HH

#include <cstdint>

namespace tlat::trace
{

/** Branch classes of the paper's Section 4. */
enum class BranchClass : std::uint8_t
{
    Conditional,
    Return,
    ImmediateUnconditional,
    RegisterUnconditional,
    NumClasses
};

/** Human-readable class name. */
const char *branchClassName(BranchClass cls);

/**
 * One executed branch instruction.
 *
 * Layout note: the simulation hot path streams millions of these, so
 * the size is pinned. The two 8-byte addresses come first, then the
 * three 1-byte fields share one tail word: 16 + 3 = 19 bytes, padded
 * to 24 by the 8-byte alignment of `pc`. Any field addition that
 * spills past the 5 free tail bytes doubles the stride of every trace
 * scan — the static_assert below makes that growth a compile error
 * instead of a silent throughput regression.
 */
struct BranchRecord
{
    /** Byte address of the branch instruction. */
    std::uint64_t pc = 0;
    /** Byte address control transfers to when the branch is taken. */
    std::uint64_t target = 0;
    BranchClass cls = BranchClass::Conditional;
    /** Outcome; always true for unconditional classes. */
    bool taken = false;
    /**
     * True for subroutine calls (a subset of the immediate
     * unconditional class); drives the return-address-stack model of
     * the paper's Section 4.
     */
    bool isCall = false;

    bool
    operator==(const BranchRecord &other) const
    {
        return pc == other.pc && target == other.target &&
               cls == other.cls && taken == other.taken &&
               isCall == other.isCall;
    }
};

static_assert(sizeof(BranchRecord) == 24 &&
                  alignof(BranchRecord) == 8,
              "BranchRecord grew past 24 bytes — the trace hot path "
              "streams these; keep new fields in the tail padding or "
              "justify the stride increase here");

/**
 * Dynamic instruction counts by semantic group, kept as summary
 * counters rather than per-instruction records (Figure 3 needs only
 * the distribution).
 */
struct InstructionMix
{
    std::uint64_t intAlu = 0;
    std::uint64_t fpAlu = 0;
    std::uint64_t memory = 0;
    std::uint64_t controlFlow = 0;
    std::uint64_t other = 0;

    std::uint64_t
    total() const
    {
        return intAlu + fpAlu + memory + controlFlow + other;
    }

    /** Fraction of dynamic instructions that are branches. */
    double
    branchFraction() const
    {
        const std::uint64_t t = total();
        return t == 0 ? 0.0
                      : static_cast<double>(controlFlow) /
                            static_cast<double>(t);
    }

    void
    merge(const InstructionMix &other_mix)
    {
        intAlu += other_mix.intAlu;
        fpAlu += other_mix.fpAlu;
        memory += other_mix.memory;
        controlFlow += other_mix.controlFlow;
        other += other_mix.other;
    }
};

} // namespace tlat::trace

#endif // TLAT_TRACE_RECORD_HH
