#include "predecode.hh"

#include <limits>
#include <unordered_map>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tlat::trace
{

PredecodedTrace::PredecodedTrace(
    std::span<const BranchRecord> conditionals)
{
    ids_.reserve(conditionals.size());
    outcome_words_.assign(
        (conditionals.size() + kOutcomeWordBits - 1) /
            kOutcomeWordBits,
        0);

    // First-appearance dictionary: ids are assigned in trace order, so
    // the mapping (and with it every lane) is a pure function of the
    // conditional stream — independent of who builds it and when.
    std::unordered_map<std::uint64_t, BranchId> dictionary;
    std::size_t position = 0;
    for (const BranchRecord &record : conditionals) {
        tlat_assert(record.cls == BranchClass::Conditional,
                    "predecode input must be conditional-only");
        const auto next_id = static_cast<BranchId>(pcs_.size());
        auto [it, inserted] =
            dictionary.try_emplace(record.pc, next_id);
        if (inserted) {
            tlat_assert(
                pcs_.size() <
                    std::numeric_limits<BranchId>::max(),
                "trace exceeds the 2^32-1 unique-branch-id space");
            pcs_.push_back(record.pc);
        }
        ids_.push_back(it->second);
        if (record.taken) {
            outcome_words_[position / kOutcomeWordBits] |=
                std::uint64_t{1} << (position % kOutcomeWordBits);
        }
        ++position;
    }
}

const AhrtLane &
PredecodedTrace::ahrtLane(unsigned addr_shift,
                          std::size_t num_sets) const
{
    tlat_assert(isPowerOfTwo(num_sets),
                "AHRT set count must be a power of two, got ",
                num_sets);
    const util::MutexLock lock(lanes_mutex_);
    auto &slot = ahrt_lanes_[AhrtKey{addr_shift, num_sets}];
    if (!slot) {
        auto lane = std::make_unique<AhrtLane>();
        lane->sets.reserve(pcs_.size());
        lane->tags.reserve(pcs_.size());
        for (const std::uint64_t pc : pcs_) {
            // Must match AssociativeTable::lookupDirect bit-for-bit
            // (pinned by tests/test_predecode).
            const std::uint64_t line = pc >> addr_shift;
            lane->sets.push_back(static_cast<std::uint32_t>(
                line & (num_sets - 1)));
            lane->tags.push_back(line / num_sets);
        }
        slot = std::move(lane);
    }
    return *slot;
}

const HashedLane &
PredecodedTrace::hashedLane(unsigned addr_shift,
                            std::size_t table_size, bool mixed) const
{
    tlat_assert(isPowerOfTwo(table_size),
                "HHRT size must be a power of two, got ", table_size);
    const util::MutexLock lock(lanes_mutex_);
    auto &slot =
        hashed_lanes_[HashedKey{addr_shift, table_size, mixed}];
    if (!slot) {
        auto lane = std::make_unique<HashedLane>();
        lane->indices.reserve(pcs_.size());
        lane->lines.reserve(pcs_.size());
        for (const std::uint64_t pc : pcs_) {
            // Must match HashedTable::lookupDirect bit-for-bit: this
            // is where the per-probe mix64 recomputation goes to die —
            // one hash per unique PC per geometry, ever.
            const std::uint64_t line = pc >> addr_shift;
            lane->indices.push_back(static_cast<std::uint32_t>(
                (mixed ? mix64(line) : line) & (table_size - 1)));
            lane->lines.push_back(line);
        }
        slot = std::move(lane);
    }
    return *slot;
}

} // namespace tlat::trace
