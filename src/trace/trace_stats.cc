#include "trace_stats.hh"

#include <unordered_set>

namespace tlat::trace
{

double
TraceStats::classFraction(BranchClass cls) const
{
    const std::uint64_t total = dynamicBranches();
    return total == 0
        ? 0.0
        : static_cast<double>(
              classCounts[static_cast<std::size_t>(cls)]) /
              static_cast<double>(total);
}

double
TraceStats::takenFraction() const
{
    return dynamicConditionalBranches == 0
        ? 0.0
        : static_cast<double>(takenConditionalBranches) /
              static_cast<double>(dynamicConditionalBranches);
}

TraceStats
computeStats(const TraceBuffer &trace)
{
    TraceStats stats;
    stats.mix = trace.mix();

    std::unordered_set<std::uint64_t> conditional_pcs;
    std::unordered_set<std::uint64_t> branch_pcs;
    for (const BranchRecord &record : trace.records()) {
        ++stats.classCounts[static_cast<std::size_t>(record.cls)];
        branch_pcs.insert(record.pc);
        if (record.cls == BranchClass::Conditional) {
            conditional_pcs.insert(record.pc);
            ++stats.dynamicConditionalBranches;
            if (record.taken)
                ++stats.takenConditionalBranches;
        }
    }
    stats.staticConditionalBranches = conditional_pcs.size();
    stats.staticBranches = branch_pcs.size();
    return stats;
}

} // namespace tlat::trace
