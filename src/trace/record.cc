#include "record.hh"

namespace tlat::trace
{

const char *
branchClassName(BranchClass cls)
{
    switch (cls) {
      case BranchClass::Conditional:
        return "conditional";
      case BranchClass::Return:
        return "return";
      case BranchClass::ImmediateUnconditional:
        return "immediate-unconditional";
      case BranchClass::RegisterUnconditional:
        return "register-unconditional";
      default:
        return "invalid";
    }
}

} // namespace tlat::trace
