/**
 * @file
 * In-memory branch trace: the branch records of one program run plus
 * its dynamic instruction mix.
 */

#ifndef TLAT_TRACE_TRACE_BUFFER_HH
#define TLAT_TRACE_TRACE_BUFFER_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "predecode.hh"
#include "record.hh"

namespace tlat::trace
{

/** A complete branch trace held in memory. */
class TraceBuffer
{
  public:
    TraceBuffer() = default;
    explicit TraceBuffer(std::string name) : name_(std::move(name)) {}

    // Copies get a fresh predecode slot (a diverging copy must never
    // poison the original's cached artifact); moves carry the slot
    // with the records it mirrors.
    TraceBuffer(const TraceBuffer &other)
        : name_(other.name_), records_(other.records_),
          conditional_(other.conditional_), mix_(other.mix_)
    {
    }

    TraceBuffer &
    operator=(const TraceBuffer &other)
    {
        if (this != &other) {
            name_ = other.name_;
            records_ = other.records_;
            conditional_ = other.conditional_;
            mix_ = other.mix_;
            predecode_ = std::make_shared<PredecodeCache>();
        }
        return *this;
    }

    TraceBuffer(TraceBuffer &&) = default;
    TraceBuffer &operator=(TraceBuffer &&) = default;

    void append(const BranchRecord &record)
    {
        records_.push_back(record);
        if (record.cls == BranchClass::Conditional)
            conditional_.push_back(record);
    }

    /**
     * Pre-sizes the record storage (bulk loaders). Both the full
     * record vector and the conditional-only mirror are reserved to
     * @p count — every record may be conditional, and one exact
     * allocation beats the doubling-growth copies a multi-million
     * record load would otherwise pay on each vector.
     */
    void
    reserve(std::size_t count)
    {
        records_.reserve(count);
        conditional_.reserve(count);
    }

    /** Allocated record capacity (reserve() regression tests). */
    std::size_t recordCapacity() const { return records_.capacity(); }

    /** Allocated conditional-mirror capacity (reserve() tests). */
    std::size_t
    conditionalCapacity() const
    {
        return conditional_.capacity();
    }

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    const std::vector<BranchRecord> &records() const
    {
        return records_;
    }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    const BranchRecord &operator[](std::size_t index) const
    {
        return records_[index];
    }

    InstructionMix &mix() { return mix_; }
    const InstructionMix &mix() const { return mix_; }

    /** Number of conditional-branch records. */
    std::uint64_t conditionalCount() const;

    /**
     * Dense conditional-only view of the trace, in trace order.
     *
     * The view is maintained incrementally by append() — it costs one
     * record copy at trace-construction (preload) time and nothing
     * afterwards — so the batch simulation hot path
     * (BranchPredictor::simulateBatch) streams a contiguous array of
     * conditional records instead of re-filtering the full class mix
     * on every measurement. Because it is built with the buffer and
     * only ever read afterwards, sharing a preloaded TraceBuffer
     * read-only across sweep workers stays race-free.
     */
    std::span<const BranchRecord>
    conditionalView() const
    {
        return conditional_;
    }

    /**
     * The predecoded (SoA) form of the conditional stream, compiled
     * on first request and cached for the buffer's lifetime (see
     * predecode.hh). Thread-safe on a const buffer: concurrent sweep
     * cells build it once and share it read-only; preload() calls it
     * eagerly so cells never pay the build. Appending more
     * conditional records invalidates the cache (detected by length)
     * and the next request recompiles.
     */
    std::shared_ptr<const PredecodedTrace>
    predecoded() const
    {
        return cacheSlot().get(conditional_);
    }

    /** The predecoded lanes paired with their AoS fallback span. */
    PredecodedView
    predecodedView() const
    {
        return PredecodedView(conditional_, predecoded());
    }

    void
    clear()
    {
        records_.clear();
        conditional_.clear();
        mix_ = InstructionMix{};
        if (predecode_)
            predecode_->invalidate();
    }

  private:
    PredecodeCache &
    cacheSlot() const
    {
        // Only a moved-from buffer has a null slot; re-arming it is
        // not thread-safe, but moved-from buffers are by definition
        // not shared yet.
        if (!predecode_)
            predecode_ = std::make_shared<PredecodeCache>();
        return *predecode_;
    }

    std::string name_;
    std::vector<BranchRecord> records_;
    /** Conditional records only, contiguous (conditionalView()). */
    std::vector<BranchRecord> conditional_;
    InstructionMix mix_;
    /** Build-once predecode artifact (shared_ptr keeps us movable). */
    mutable std::shared_ptr<PredecodeCache> predecode_ =
        std::make_shared<PredecodeCache>();
};

} // namespace tlat::trace

#endif // TLAT_TRACE_TRACE_BUFFER_HH
