/**
 * @file
 * In-memory branch trace: the branch records of one program run plus
 * its dynamic instruction mix.
 */

#ifndef TLAT_TRACE_TRACE_BUFFER_HH
#define TLAT_TRACE_TRACE_BUFFER_HH

#include <string>
#include <vector>

#include "record.hh"

namespace tlat::trace
{

/** A complete branch trace held in memory. */
class TraceBuffer
{
  public:
    TraceBuffer() = default;
    explicit TraceBuffer(std::string name) : name_(std::move(name)) {}

    void append(const BranchRecord &record)
    {
        records_.push_back(record);
    }

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    const std::vector<BranchRecord> &records() const
    {
        return records_;
    }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    const BranchRecord &operator[](std::size_t index) const
    {
        return records_[index];
    }

    InstructionMix &mix() { return mix_; }
    const InstructionMix &mix() const { return mix_; }

    /** Number of conditional-branch records. */
    std::uint64_t conditionalCount() const;

    void
    clear()
    {
        records_.clear();
        mix_ = InstructionMix{};
    }

  private:
    std::string name_;
    std::vector<BranchRecord> records_;
    InstructionMix mix_;
};

} // namespace tlat::trace

#endif // TLAT_TRACE_TRACE_BUFFER_HH
