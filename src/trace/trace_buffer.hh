/**
 * @file
 * In-memory branch trace: the branch records of one program run plus
 * its dynamic instruction mix.
 */

#ifndef TLAT_TRACE_TRACE_BUFFER_HH
#define TLAT_TRACE_TRACE_BUFFER_HH

#include <span>
#include <string>
#include <vector>

#include "record.hh"

namespace tlat::trace
{

/** A complete branch trace held in memory. */
class TraceBuffer
{
  public:
    TraceBuffer() = default;
    explicit TraceBuffer(std::string name) : name_(std::move(name)) {}

    void append(const BranchRecord &record)
    {
        records_.push_back(record);
        if (record.cls == BranchClass::Conditional)
            conditional_.push_back(record);
    }

    /** Pre-sizes the record storage (bulk loaders). */
    void reserve(std::size_t count) { records_.reserve(count); }

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    const std::vector<BranchRecord> &records() const
    {
        return records_;
    }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    const BranchRecord &operator[](std::size_t index) const
    {
        return records_[index];
    }

    InstructionMix &mix() { return mix_; }
    const InstructionMix &mix() const { return mix_; }

    /** Number of conditional-branch records. */
    std::uint64_t conditionalCount() const;

    /**
     * Dense conditional-only view of the trace, in trace order.
     *
     * The view is maintained incrementally by append() — it costs one
     * record copy at trace-construction (preload) time and nothing
     * afterwards — so the batch simulation hot path
     * (BranchPredictor::simulateBatch) streams a contiguous array of
     * conditional records instead of re-filtering the full class mix
     * on every measurement. Because it is built with the buffer and
     * only ever read afterwards, sharing a preloaded TraceBuffer
     * read-only across sweep workers stays race-free.
     */
    std::span<const BranchRecord>
    conditionalView() const
    {
        return conditional_;
    }

    void
    clear()
    {
        records_.clear();
        conditional_.clear();
        mix_ = InstructionMix{};
    }

  private:
    std::string name_;
    std::vector<BranchRecord> records_;
    /** Conditional records only, contiguous (conditionalView()). */
    std::vector<BranchRecord> conditional_;
    InstructionMix mix_;
};

} // namespace tlat::trace

#endif // TLAT_TRACE_TRACE_BUFFER_HH
