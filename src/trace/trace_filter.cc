#include "trace_filter.hh"

#include <algorithm>

namespace tlat::trace
{

TraceBuffer
filterRecords(const TraceBuffer &trace,
              const std::function<bool(const BranchRecord &)> &keep)
{
    TraceBuffer result(trace.name());
    result.mix() = trace.mix();
    for (const BranchRecord &record : trace.records()) {
        if (keep(record))
            result.append(record);
    }
    return result;
}

TraceBuffer
filterByClass(const TraceBuffer &trace, BranchClass cls)
{
    return filterRecords(trace, [cls](const BranchRecord &record) {
        return record.cls == cls;
    });
}

TraceBuffer
filterByPcRange(const TraceBuffer &trace, std::uint64_t lo,
                std::uint64_t hi)
{
    return filterRecords(trace, [lo, hi](const BranchRecord &record) {
        return record.pc >= lo && record.pc < hi;
    });
}

TraceBuffer
prefix(const TraceBuffer &trace, std::size_t count)
{
    TraceBuffer result(trace.name());
    result.mix() = trace.mix();
    const std::size_t limit = std::min(count, trace.size());
    for (std::size_t i = 0; i < limit; ++i)
        result.append(trace[i]);
    return result;
}

TraceBuffer
suffix(const TraceBuffer &trace, std::size_t start)
{
    TraceBuffer result(trace.name());
    result.mix() = trace.mix();
    for (std::size_t i = start; i < trace.size(); ++i)
        result.append(trace[i]);
    return result;
}

TraceBuffer
subsample(const TraceBuffer &trace, std::size_t stride,
          std::size_t phase)
{
    TraceBuffer result(trace.name());
    result.mix() = trace.mix();
    if (stride == 0)
        return result;
    for (std::size_t i = phase; i < trace.size(); i += stride)
        result.append(trace[i]);
    return result;
}

std::pair<TraceBuffer, TraceBuffer>
splitTrainTest(const TraceBuffer &trace, double fraction)
{
    const double clamped = std::clamp(fraction, 0.0, 1.0);
    const auto cut = static_cast<std::size_t>(
        clamped * static_cast<double>(trace.size()));
    return {prefix(trace, cut), suffix(trace, cut)};
}

} // namespace tlat::trace
