/**
 * @file
 * Trace predecode: immutable structure-of-arrays "hot lanes" compiled
 * once per trace and shared read-only by every simulation that replays
 * it.
 *
 * The sweep engine replays the same immutable trace through dozens of
 * predictor configurations (the paper's Figures 5-10 all reuse one
 * trace per benchmark), yet the AoS fused loop from the batch API
 * still re-derives everything from the 24-byte BranchRecord once per
 * branch per cell: the IHRT hashes the pc into an unordered_map, the
 * AHRT re-computes set/tag, the HHRT re-runs mix64. Predecoding hoists
 * all of that per-PC work out of the per-cell loops:
 *
 *  - a dense static-branch-id lane: each unique conditional PC is
 *    mapped once, at first appearance, to a small integer through a
 *    per-trace dictionary, so per-branch state can live in plain
 *    vectors indexed by id (no hashing on the hot path at all);
 *  - a packed outcome bitvector (one bit per conditional, 64 per
 *    word) replacing the one-byte-per-record taken flag;
 *  - lazily built per-geometry index lanes: the AHRT set/tag pair and
 *    the HHRT hashed slot index of every *unique* PC, computed once
 *    per (trace, geometry) instead of once per branch per cell.
 *
 * Everything here is a pure function of the conditional record stream
 * (and, for index lanes, the table geometry), so a predecoded trace
 * built by any thread is bit-identical to one built by any other —
 * sharing it across sweep shards cannot perturb results at any --jobs
 * count. The dense lanes are immutable after construction; the lane
 * cache is guarded by a mutex so concurrent cells that need the same
 * geometry build it once and share the result.
 */

#ifndef TLAT_TRACE_PREDECODE_HH
#define TLAT_TRACE_PREDECODE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "record.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace tlat::trace
{

/** Dense per-trace identifier of a unique conditional-branch PC. */
using BranchId = std::uint32_t;

/**
 * Per-geometry AHRT index lane: the set index and tag of each unique
 * PC, in branch-id order. Derivation matches
 * core::AssociativeTable::lookupDirect exactly (line = pc >> shift,
 * set = line & (sets-1), tag = line / sets) — pinned by
 * tests/test_predecode.
 */
struct AhrtLane
{
    std::vector<std::uint32_t> sets;
    std::vector<std::uint64_t> tags;
};

/**
 * Per-geometry HHRT index lane: the hashed slot index and the address
 * line (the HHRT's aliasing-attribution key) of each unique PC, in
 * branch-id order. Derivation matches core::HashedTable::lookupDirect
 * (index = (mixed ? mix64(line) : line) & (size-1)).
 */
struct HashedLane
{
    std::vector<std::uint32_t> indices;
    std::vector<std::uint64_t> lines;
};

/** The predecoded (SoA) form of one trace's conditional stream. */
class PredecodedTrace
{
  public:
    /** Bits per packed-outcome word (layout pinned in contracts.hh). */
    static constexpr unsigned kOutcomeWordBits = 64;

    /**
     * Compiles @p conditionals (a conditional-only span, trace order)
     * into the dense lanes. Non-conditional records are not allowed
     * here — callers pass TraceBuffer::conditionalView().
     */
    explicit PredecodedTrace(std::span<const BranchRecord> conditionals);

    /** Number of conditional branches (dense-lane length). */
    std::size_t size() const { return ids_.size(); }

    /** Static-branch id of each conditional, in trace order. */
    std::span<const BranchId> branchIds() const { return ids_; }

    /** Outcome of conditional @p i (packed bitvector read). */
    bool
    taken(std::size_t i) const
    {
        return ((outcome_words_[i / kOutcomeWordBits] >>
                 (i % kOutcomeWordBits)) &
                1u) != 0;
    }

    /** The packed outcome words (tests; size() bits are valid). */
    std::span<const std::uint64_t>
    outcomeWords() const
    {
        return outcome_words_;
    }

    /** Unique conditional PCs indexed by BranchId (dictionary). */
    std::span<const std::uint64_t> uniquePcs() const { return pcs_; }

    /** Number of unique conditional PCs in the trace. */
    std::size_t uniquePcCount() const { return pcs_.size(); }

    /**
     * The AHRT index lane for one table geometry, built on first
     * request and cached for the trace's lifetime. Thread-safe: sweep
     * cells that share a geometry share one lane.
     */
    const AhrtLane &ahrtLane(unsigned addr_shift,
                             std::size_t num_sets) const;

    /** The HHRT index lane for one table geometry (see ahrtLane). */
    const HashedLane &hashedLane(unsigned addr_shift,
                                 std::size_t table_size,
                                 bool mixed) const;

  private:
    std::vector<BranchId> ids_;
    std::vector<std::uint64_t> outcome_words_;
    std::vector<std::uint64_t> pcs_;

    // Geometry-keyed lane caches. std::map: iteration order is never
    // observable (lookup only), and the deterministic comparator
    // avoids hash-order questions outright. unique_ptr keeps lane
    // references stable across cache growth.
    using AhrtKey = std::pair<unsigned, std::size_t>;
    using HashedKey = std::tuple<unsigned, std::size_t, bool>;
    mutable util::Mutex lanes_mutex_;
    mutable std::map<AhrtKey, std::unique_ptr<const AhrtLane>>
        ahrt_lanes_ TLAT_GUARDED_BY(lanes_mutex_);
    mutable std::map<HashedKey, std::unique_ptr<const HashedLane>>
        hashed_lanes_ TLAT_GUARDED_BY(lanes_mutex_);
};

/**
 * What a predictor receives for a batch run over a predecoded trace:
 * the SoA lanes plus the AoS conditional span the lanes were compiled
 * from, so any predictor (or any mode whose fast path is unsafe —
 * delayed updates, mid-pair memo state) can fall back to the existing
 * reference twin via records().
 */
class PredecodedView
{
  public:
    PredecodedView(std::span<const BranchRecord> conditionals,
                   std::shared_ptr<const PredecodedTrace> soa)
        : conditionals_(conditionals), soa_(std::move(soa))
    {
    }

    /** The AoS conditional records the lanes mirror (fallback path). */
    std::span<const BranchRecord> records() const
    {
        return conditionals_;
    }

    /** The shared SoA lanes. */
    const PredecodedTrace &soa() const { return *soa_; }

    /** The owning handle (plumbing that re-shares the artifact). */
    const std::shared_ptr<const PredecodedTrace> &shared() const
    {
        return soa_;
    }

  private:
    std::span<const BranchRecord> conditionals_;
    std::shared_ptr<const PredecodedTrace> soa_;
};

/**
 * Build-once cache slot embedded (via shared_ptr, to keep TraceBuffer
 * movable) in each TraceBuffer. get() compiles the predecoded form on
 * first use and re-shares it afterwards; a grown conditional stream
 * (trace still being recorded) is detected by length and recompiled.
 */
class PredecodeCache
{
  public:
    std::shared_ptr<const PredecodedTrace>
    get(std::span<const BranchRecord> conditionals)
    {
        const util::MutexLock lock(mutex_);
        if (!trace_ || trace_->size() != conditionals.size()) {
            trace_ =
                std::make_shared<const PredecodedTrace>(conditionals);
        }
        return trace_;
    }

    void
    invalidate()
    {
        const util::MutexLock lock(mutex_);
        trace_.reset();
    }

  private:
    util::Mutex mutex_;
    std::shared_ptr<const PredecodedTrace> trace_
        TLAT_GUARDED_BY(mutex_);
};

} // namespace tlat::trace

#endif // TLAT_TRACE_PREDECODE_HH
