/**
 * @file
 * Trace transformation utilities: class filtering, pc-range slicing,
 * prefix/suffix splitting and systematic subsampling. Used to build
 * custom experiments from captured traces (e.g. isolating one
 * function's branches, or making train/test splits from a single
 * run).
 */

#ifndef TLAT_TRACE_TRACE_FILTER_HH
#define TLAT_TRACE_TRACE_FILTER_HH

#include <cstdint>
#include <functional>

#include "trace_buffer.hh"

namespace tlat::trace
{

/** Records for which the callback returns true, in order. */
TraceBuffer filterRecords(
    const TraceBuffer &trace,
    const std::function<bool(const BranchRecord &)> &keep);

/** Only the records of one branch class. */
TraceBuffer filterByClass(const TraceBuffer &trace, BranchClass cls);

/** Only records with pc in [lo, hi). */
TraceBuffer filterByPcRange(const TraceBuffer &trace,
                            std::uint64_t lo, std::uint64_t hi);

/** The first @p count records. */
TraceBuffer prefix(const TraceBuffer &trace, std::size_t count);

/** Everything from record @p start on. */
TraceBuffer suffix(const TraceBuffer &trace, std::size_t start);

/**
 * Every @p stride-th record starting at @p phase. Systematic
 * sampling preserves per-branch outcome ratios but NOT history
 * patterns; use it for profile-style statistics only.
 */
TraceBuffer subsample(const TraceBuffer &trace, std::size_t stride,
                      std::size_t phase = 0);

/**
 * Splits a trace at @p fraction (0..1) of its records into a
 * (training, testing) pair — a quick Same-program/Diff-phase split.
 */
std::pair<TraceBuffer, TraceBuffer>
splitTrainTest(const TraceBuffer &trace, double fraction);

} // namespace tlat::trace

#endif // TLAT_TRACE_TRACE_FILTER_HH
