#include "trace_buffer.hh"

namespace tlat::trace
{

std::uint64_t
TraceBuffer::conditionalCount() const
{
    return conditional_.size();
}

} // namespace tlat::trace
