#include "trace_buffer.hh"

namespace tlat::trace
{

std::uint64_t
TraceBuffer::conditionalCount() const
{
    std::uint64_t count = 0;
    for (const BranchRecord &record : records_) {
        if (record.cls == BranchClass::Conditional)
            ++count;
    }
    return count;
}

} // namespace tlat::trace
