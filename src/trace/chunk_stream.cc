#include "chunk_stream.hh"

#include <algorithm>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/env.hh"

namespace tlat::trace
{

namespace
{

/** Empty-string singleton for error() on never-failing streams. */
const std::string &
emptyString()
{
    static const std::string empty;
    return empty;
}

} // namespace

// ---- BufferChunkStream --------------------------------------------

BufferChunkStream::BufferChunkStream(const TraceBuffer &trace,
                                     std::size_t chunk_records)
    : trace_(trace), chunk_records_(chunk_records)
{
}

const std::string &
BufferChunkStream::name() const
{
    return trace_.name();
}

const InstructionMix &
BufferChunkStream::mix() const
{
    return trace_.mix();
}

std::uint64_t
BufferChunkStream::recordCount() const
{
    return trace_.size();
}

const TraceChunk *
BufferChunkStream::next()
{
    if (trace_.empty()) {
        current_.reset();
        return nullptr;
    }
    if (chunk_records_ == 0) {
        // Whole-buffer degenerate chunk: re-shares the buffer's
        // cached predecode artifact, so this path allocates nothing
        // beyond the legacy measure() call it replaces.
        if (whole_buffer_done_) {
            current_.reset();
            return nullptr;
        }
        whole_buffer_done_ = true;
        current_.emplace(trace_.records(), trace_.predecodedView());
        return &*current_;
    }
    if (next_base_ >= trace_.size()) {
        current_.reset();
        return nullptr;
    }
    const std::size_t base = next_base_;
    const std::size_t n =
        std::min(chunk_records_, trace_.size() - base);
    next_base_ = base + n;
    const std::span<const BranchRecord> all(
        trace_.records().data() + base, n);
    conditionals_.clear();
    for (const BranchRecord &record : all) {
        if (record.cls == BranchClass::Conditional)
            conditionals_.push_back(record);
    }
    auto soa = std::make_shared<PredecodedTrace>(conditionals_);
    current_.emplace(all,
                     PredecodedView(conditionals_, std::move(soa)));
    return &*current_;
}

void
BufferChunkStream::rewind()
{
    next_base_ = 0;
    whole_buffer_done_ = false;
    current_.reset();
}

const std::string &
BufferChunkStream::error() const
{
    return emptyString();
}

// ---- MmapChunkStream ----------------------------------------------

std::unique_ptr<MmapChunkStream>
MmapChunkStream::open(const std::string &path,
                      std::size_t chunk_records, std::string *error)
{
    const auto fail = [&](const std::string &why)
        -> std::unique_ptr<MmapChunkStream> {
        if (error)
            *error = why;
        return nullptr;
    };
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail("cannot open file");
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return fail("cannot stat file (or it is empty)");
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
        ::close(fd);
        return fail("mmap failed");
    }
    const auto *data = static_cast<const char *>(map);
    auto header = parseBinaryHeader(data, size);
    if (!header) {
        ::munmap(map, size);
        ::close(fd);
        return fail("malformed or truncated TLTR header");
    }
    // The access pattern is one forward pass per iteration; tell the
    // kernel so read-ahead stays aggressive and eviction cheap.
    ::madvise(map, size, MADV_SEQUENTIAL);
    return std::unique_ptr<MmapChunkStream>(new MmapChunkStream(
        data, size, fd, *std::move(header), chunk_records));
}

MmapChunkStream::MmapChunkStream(const char *data,
                                 std::size_t map_size, int fd,
                                 TltrHeader header,
                                 std::size_t chunk_records)
    : data_(data), map_size_(map_size), fd_(fd),
      header_(std::move(header)), chunk_records_(chunk_records)
{
}

MmapChunkStream::~MmapChunkStream()
{
    drainPending();
    if (data_ != nullptr)
        ::munmap(const_cast<char *>(data_), map_size_);
    if (fd_ >= 0)
        ::close(fd_);
}

const std::string &
MmapChunkStream::name() const
{
    return header_.name;
}

const InstructionMix &
MmapChunkStream::mix() const
{
    return header_.mix;
}

std::uint64_t
MmapChunkStream::recordCount() const
{
    return header_.recordCount;
}

void
MmapChunkStream::decodeInto(int target, std::uint64_t base,
                            std::size_t count)
{
    Slot &slot = slots_[target];
    slot.base = base;
    slot.ok = true;
    slot.records.clear();
    slot.records.reserve(count);
    slot.conditionals.clear();
    slot.soa.reset();
    const char *in = data_ + header_.recordsOffset +
                     static_cast<std::size_t>(base) *
                         kTltrWireRecordSize;
    for (std::size_t i = 0; i < count;
         ++i, in += kTltrWireRecordSize) {
        BranchRecord record;
        if (!unpackWireRecord(in, record)) {
            slot.ok = false;
            slot.badRecord = base + i;
            return;
        }
        slot.records.push_back(record);
        if (record.cls == BranchClass::Conditional)
            slot.conditionals.push_back(record);
    }
    slot.soa = std::make_shared<PredecodedTrace>(slot.conditionals);
}

void
MmapChunkStream::scheduleNextDecode()
{
    const int target = next_decode_slot_;
    pending_slot_ = target;
    next_decode_slot_ ^= 1;
    const std::uint64_t base = next_base_;
    const std::uint64_t stride = chunk_records_ == 0
        ? header_.recordCount
        : chunk_records_;
    const auto count = static_cast<std::size_t>(
        std::min<std::uint64_t>(stride,
                                header_.recordCount - base));
    next_base_ = base + count;
    pending_ = pool_.submit([this, target, base, count] {
        const util::MutexLock lock(slots_mutex_);
        decodeInto(target, base, count);
    });
}

void
MmapChunkStream::drainPending()
{
    if (pending_.valid()) {
        try {
            pending_.get();
        } catch (...) {
            // Swallowed on teardown/rewind paths only; next() uses
            // get() directly and lets decode exceptions propagate.
        }
    }
}

void
MmapChunkStream::releaseRecords(std::uint64_t begin,
                                std::uint64_t end)
{
    if (begin >= end)
        return;
    static const auto page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t lo = header_.recordsOffset +
                           static_cast<std::size_t>(begin) *
                               kTltrWireRecordSize;
    const std::size_t hi = header_.recordsOffset +
                           static_cast<std::size_t>(end) *
                               kTltrWireRecordSize;
    // Only whole pages strictly inside [lo, hi) are safe to drop: the
    // straddling edge pages still back the neighbouring chunks.
    const std::size_t lo_page = (lo + page - 1) / page * page;
    const std::size_t hi_page = hi / page * page;
    if (lo_page >= hi_page)
        return;
    ::madvise(const_cast<char *>(data_) + lo_page, hi_page - lo_page,
              MADV_DONTNEED);
}

const TraceChunk *
MmapChunkStream::next()
{
    if (!error_.empty())
        return nullptr;
    if (pending_slot_ < 0) {
        if (next_base_ >= header_.recordCount) {
            current_.reset();
            return nullptr;
        }
        scheduleNextDecode();
    }
    pending_.get();
    const int ready = pending_slot_;
    pending_slot_ = -1;
    {
        // pending_.get() is the ordering edge; the lock makes the
        // slot read provable to the thread-safety analysis (and
        // serializes it against the next decode scheduled below).
        const util::MutexLock lock(slots_mutex_);
        Slot &slot = slots_[ready];
        if (!slot.ok) {
            error_ = "corrupt record at index " +
                     std::to_string(slot.badRecord);
            current_.reset();
            return nullptr;
        }
        // Everything before this chunk has been decoded and
        // consumed; drop its file pages so residency stays bounded.
        releaseRecords(released_below_, slot.base);
        released_below_ = slot.base;
        current_.emplace(std::span<const BranchRecord>(slot.records),
                         PredecodedView(slot.conditionals, slot.soa));
    }
    // Overlap: decode the following chunk (strictly the other slot)
    // while the caller simulates this one.
    if (next_base_ < header_.recordCount)
        scheduleNextDecode();
    return &*current_;
}

void
MmapChunkStream::rewind()
{
    drainPending();
    pending_slot_ = -1;
    next_decode_slot_ = 0;
    next_base_ = 0;
    released_below_ = 0;
    current_.reset();
    error_.clear();
}

const std::string &
MmapChunkStream::error() const
{
    return error_;
}

// ---- Environment knob ---------------------------------------------

std::size_t
defaultChunkRecords()
{
    // A malformed value degrades to 0 (whole-buffer) by design: the
    // knob is a perf hint, never a correctness switch.
    return static_cast<std::size_t>(
        util::envUnsigned("TLAT_CHUNK_RECORDS").value_or(0));
}

} // namespace tlat::trace
