/**
 * @file
 * Experiment driver: runs a predictor over a branch trace the way the
 * paper's branch prediction simulator does — for every conditional
 * branch, predict, verify against the recorded outcome, update.
 *
 * Schemes that need a profiling pass (Static Training, Profile) are
 * trained first on the supplied training trace: the test trace itself
 * for Same-data configurations, a different data set's trace for Diff.
 */

#ifndef TLAT_HARNESS_EXPERIMENT_HH
#define TLAT_HARNESS_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "branch_profile.hh"
#include "core/branch_predictor.hh"
#include "core/run_metrics.hh"
#include "core/scheme_config.hh"
#include "trace/chunk_stream.hh"
#include "trace/trace_buffer.hh"
#include "util/stats.hh"

namespace tlat::harness
{

/** Outcome of measuring one scheme on one benchmark trace. */
struct ExperimentResult
{
    std::string scheme;
    std::string benchmark;
    AccuracyCounter accuracy;
};

/**
 * Measures @p predictor on the conditional branches of @p test.
 * The predictor is *not* reset first (callers may pre-train).
 *
 * Routed through BranchPredictor::simulateBatch() over the trace's
 * predecoded view (SoA lanes + the prefiltered conditional span) —
 * predictors with a fused fast path run it here; the result is
 * defined to be bit-identical to measureReference().
 */
AccuracyCounter measure(core::BranchPredictor &predictor,
                        const trace::TraceBuffer &test);

/**
 * Measures @p predictor over a chunk stream: one simulateBatch() call
 * per chunk, predictor state carried across chunks. Bit-identical to
 * measure() over the equivalent whole buffer for every chunk size —
 * history, pattern tables and the capture feed all live in the
 * predictor, never in the stream. The caller owns error handling:
 * check stream.error() after the call (a failed stream simply ends
 * early).
 *
 * This is the O(chunk)-memory path: paired with MmapChunkStream it
 * simulates traces far larger than RAM. measure() itself routes
 * through a BufferChunkStream when TLAT_CHUNK_RECORDS is set, so the
 * whole sweep engine inherits chunked execution from one knob.
 */
AccuracyCounter measureStream(core::BranchPredictor &predictor,
                              trace::ChunkStream &stream);

/**
 * The reference measuring loop: per-record virtual
 * predict()/update() over the full trace. Kept as the semantic
 * ground truth that the fuzz tests and bench_throughput compare the
 * fused path against; not used by the figure benches.
 */
AccuracyCounter measureReference(core::BranchPredictor &predictor,
                                 const trace::TraceBuffer &test);

/**
 * Full protocol: reset, train if the scheme requires it, measure.
 *
 * @param test The measured trace.
 * @param train Training trace for schemes that need one; when null,
 *        the test trace is used (the paper's Same-data protocol).
 */
ExperimentResult runExperiment(core::BranchPredictor &predictor,
                               const trace::TraceBuffer &test,
                               const trace::TraceBuffer *train =
                                   nullptr);

// ---- Observability layer ------------------------------------------
//
// The metrics path is a *separate* measuring loop: the plain
// measure()/runExperiment() used by the figure benches is untouched,
// which is what keeps metrics collection zero-cost when not asked
// for. Everything below is a pure function of (scheme, trace), so
// reports collected under the parallel sweep engine are bit-identical
// for every worker count.

/** One point of the warmup curve (window of conditional branches). */
struct WarmupPoint
{
    /** Conditional branches measured up to and including this window. */
    std::uint64_t branches = 0;
    /** Accuracy within this window alone, percent. */
    double windowAccuracyPercent = 0.0;
    /** Accuracy from the start of the run, percent. */
    double cumulativeAccuracyPercent = 0.0;
};

/** Knobs of the metrics-collecting measurement loop. */
struct MetricsOptions
{
    /** Conditional branches per warmup-curve window (>= 1). */
    std::uint64_t warmupWindow = 10000;
    /** Entries in the per-branch top-offender list. */
    std::size_t topOffenders = 10;
    /** Entries in the h2p section's per-site list. */
    std::size_t h2pSites = 10;
    /** H2P classification thresholds (see branch_profile.hh). */
    TaxonomyThresholds h2pThresholds;
};

/** One classified hard-to-predict site of the h2p section. */
struct H2pSite
{
    BranchSite site;
    SiteClass cls = SiteClass::Stable;
};

/**
 * Per-run hard-to-predict-branch taxonomy: every static site
 * classified against the thresholds, the H2P set (everything not
 * Stable) summarized, and the heaviest H2P sites listed in the
 * profile's canonical order (misprediction count descending, pc
 * ascending). Integer tallies plus floating point derived from them
 * in fixed order — byte-identical across sweep worker counts.
 */
struct H2pReport
{
    TaxonomyThresholds thresholds;
    /** All static conditional sites of the run. */
    std::uint64_t staticSites = 0;
    /** Sites classified as anything but Stable. */
    std::uint64_t h2pSiteCount = 0;
    /** Executions and misses concentrated in the H2P set. */
    std::uint64_t h2pExecutions = 0;
    std::uint64_t h2pMispredictions = 0;
    /** Run totals for reference (all sites, Stable included). */
    std::uint64_t totalExecutions = 0;
    std::uint64_t totalMispredictions = 0;
    /** Taxonomy split of every miss of the run. */
    std::uint64_t systematicMisses = 0;
    std::uint64_t transientMisses = 0;
    /** Heaviest H2P sites, canonical order, capped at h2pSites. */
    std::vector<H2pSite> sites;
};

/** Everything observed about one measured (scheme, benchmark) run. */
struct RunMetricsReport
{
    std::string scheme;
    std::string benchmark;
    AccuracyCounter accuracy;
    /** Predictor-internal counters (zeroed for stateless schemes). */
    core::RunMetrics predictor;
    MetricsOptions options;
    /** Accuracy over consecutive windows — the warmup transient. */
    std::vector<WarmupPoint> warmupCurve;
    /** Heaviest mispredicting static branches, worst first. */
    std::vector<BranchSite> topOffenders;
    /** Hard-to-predict-branch taxonomy of the run. */
    H2pReport h2p;
};

/**
 * Derives the h2p section from a collected profile: classifies every
 * site, totals the taxonomy and keeps the heaviest non-Stable sites.
 * Exposed so tests can build the section from hand-made profiles.
 */
H2pReport buildH2pReport(const BranchProfile &profile,
                         const MetricsOptions &options);

/**
 * Like measure(), but also collects the warmup curve, the per-branch
 * misprediction attribution and the predictor's internal counters.
 * Prediction/update behaviour is identical to measure() — the
 * accuracy field always matches a plain measure() run bit-for-bit.
 */
RunMetricsReport measureWithMetrics(core::BranchPredictor &predictor,
                                    const trace::TraceBuffer &test,
                                    const MetricsOptions &options =
                                        {});

/**
 * The metrics loop over a chunk stream: walks every record of every
 * chunk exactly as measureWithMetrics() walks the whole buffer, so
 * the report (accuracy, warmup curve, offenders, h2p) is
 * byte-identical for every chunk size. Check stream.error() after
 * the call.
 */
RunMetricsReport
measureStreamWithMetrics(core::BranchPredictor &predictor,
                         trace::ChunkStream &stream,
                         const MetricsOptions &options = {});

/**
 * Full protocol with metrics: reset, train if needed, measure with
 * collection. The metrics counterpart of runExperiment().
 */
RunMetricsReport runProfiledExperiment(core::BranchPredictor &predictor,
                                       const trace::TraceBuffer &test,
                                       const trace::TraceBuffer *train =
                                           nullptr,
                                       const MetricsOptions &options =
                                           {});

} // namespace tlat::harness

#endif // TLAT_HARNESS_EXPERIMENT_HH
