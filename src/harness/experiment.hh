/**
 * @file
 * Experiment driver: runs a predictor over a branch trace the way the
 * paper's branch prediction simulator does — for every conditional
 * branch, predict, verify against the recorded outcome, update.
 *
 * Schemes that need a profiling pass (Static Training, Profile) are
 * trained first on the supplied training trace: the test trace itself
 * for Same-data configurations, a different data set's trace for Diff.
 */

#ifndef TLAT_HARNESS_EXPERIMENT_HH
#define TLAT_HARNESS_EXPERIMENT_HH

#include <memory>
#include <string>

#include "core/branch_predictor.hh"
#include "core/scheme_config.hh"
#include "trace/trace_buffer.hh"
#include "util/stats.hh"

namespace tlat::harness
{

/** Outcome of measuring one scheme on one benchmark trace. */
struct ExperimentResult
{
    std::string scheme;
    std::string benchmark;
    AccuracyCounter accuracy;
};

/**
 * Measures @p predictor on the conditional branches of @p test.
 * The predictor is *not* reset first (callers may pre-train).
 */
AccuracyCounter measure(core::BranchPredictor &predictor,
                        const trace::TraceBuffer &test);

/**
 * Full protocol: reset, train if the scheme requires it, measure.
 *
 * @param test The measured trace.
 * @param train Training trace for schemes that need one; when null,
 *        the test trace is used (the paper's Same-data protocol).
 */
ExperimentResult runExperiment(core::BranchPredictor &predictor,
                               const trace::TraceBuffer &test,
                               const trace::TraceBuffer *train =
                                   nullptr);

} // namespace tlat::harness

#endif // TLAT_HARNESS_EXPERIMENT_HH
