/**
 * @file
 * Experiment driver: runs a predictor over a branch trace the way the
 * paper's branch prediction simulator does — for every conditional
 * branch, predict, verify against the recorded outcome, update.
 *
 * Schemes that need a profiling pass (Static Training, Profile) are
 * trained first on the supplied training trace: the test trace itself
 * for Same-data configurations, a different data set's trace for Diff.
 */

#ifndef TLAT_HARNESS_EXPERIMENT_HH
#define TLAT_HARNESS_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "branch_profile.hh"
#include "core/branch_predictor.hh"
#include "core/run_metrics.hh"
#include "core/scheme_config.hh"
#include "trace/trace_buffer.hh"
#include "util/stats.hh"

namespace tlat::harness
{

/** Outcome of measuring one scheme on one benchmark trace. */
struct ExperimentResult
{
    std::string scheme;
    std::string benchmark;
    AccuracyCounter accuracy;
};

/**
 * Measures @p predictor on the conditional branches of @p test.
 * The predictor is *not* reset first (callers may pre-train).
 *
 * Routed through BranchPredictor::simulateBatch() over the trace's
 * predecoded view (SoA lanes + the prefiltered conditional span) —
 * predictors with a fused fast path run it here; the result is
 * defined to be bit-identical to measureReference().
 */
AccuracyCounter measure(core::BranchPredictor &predictor,
                        const trace::TraceBuffer &test);

/**
 * The reference measuring loop: per-record virtual
 * predict()/update() over the full trace. Kept as the semantic
 * ground truth that the fuzz tests and bench_throughput compare the
 * fused path against; not used by the figure benches.
 */
AccuracyCounter measureReference(core::BranchPredictor &predictor,
                                 const trace::TraceBuffer &test);

/**
 * Full protocol: reset, train if the scheme requires it, measure.
 *
 * @param test The measured trace.
 * @param train Training trace for schemes that need one; when null,
 *        the test trace is used (the paper's Same-data protocol).
 */
ExperimentResult runExperiment(core::BranchPredictor &predictor,
                               const trace::TraceBuffer &test,
                               const trace::TraceBuffer *train =
                                   nullptr);

// ---- Observability layer ------------------------------------------
//
// The metrics path is a *separate* measuring loop: the plain
// measure()/runExperiment() used by the figure benches is untouched,
// which is what keeps metrics collection zero-cost when not asked
// for. Everything below is a pure function of (scheme, trace), so
// reports collected under the parallel sweep engine are bit-identical
// for every worker count.

/** One point of the warmup curve (window of conditional branches). */
struct WarmupPoint
{
    /** Conditional branches measured up to and including this window. */
    std::uint64_t branches = 0;
    /** Accuracy within this window alone, percent. */
    double windowAccuracyPercent = 0.0;
    /** Accuracy from the start of the run, percent. */
    double cumulativeAccuracyPercent = 0.0;
};

/** Knobs of the metrics-collecting measurement loop. */
struct MetricsOptions
{
    /** Conditional branches per warmup-curve window (>= 1). */
    std::uint64_t warmupWindow = 10000;
    /** Entries in the per-branch top-offender list. */
    std::size_t topOffenders = 10;
};

/** Everything observed about one measured (scheme, benchmark) run. */
struct RunMetricsReport
{
    std::string scheme;
    std::string benchmark;
    AccuracyCounter accuracy;
    /** Predictor-internal counters (zeroed for stateless schemes). */
    core::RunMetrics predictor;
    MetricsOptions options;
    /** Accuracy over consecutive windows — the warmup transient. */
    std::vector<WarmupPoint> warmupCurve;
    /** Heaviest mispredicting static branches, worst first. */
    std::vector<BranchSite> topOffenders;
};

/**
 * Like measure(), but also collects the warmup curve, the per-branch
 * misprediction attribution and the predictor's internal counters.
 * Prediction/update behaviour is identical to measure() — the
 * accuracy field always matches a plain measure() run bit-for-bit.
 */
RunMetricsReport measureWithMetrics(core::BranchPredictor &predictor,
                                    const trace::TraceBuffer &test,
                                    const MetricsOptions &options =
                                        {});

/**
 * Full protocol with metrics: reset, train if needed, measure with
 * collection. The metrics counterpart of runExperiment().
 */
RunMetricsReport runProfiledExperiment(core::BranchPredictor &predictor,
                                       const trace::TraceBuffer &test,
                                       const trace::TraceBuffer *train =
                                           nullptr,
                                       const MetricsOptions &options =
                                           {});

} // namespace tlat::harness

#endif // TLAT_HARNESS_EXPERIMENT_HH
