#include "metrics_json.hh"

#include <sstream>

#include "util/json_writer.hh"
#include "util/string_utils.hh"

namespace tlat::harness
{

void
writeRunMetricsJson(
    const RunMetricsReport &report, std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &context)
{
    JsonWriter json(os);
    json.beginObject();
    json.member("schema", kRunMetricsSchema);
    json.member("scheme", report.scheme);
    json.member("benchmark", report.benchmark);

    if (!context.empty()) {
        json.key("context").beginObject();
        for (const auto &[name, text] : context)
            json.member(name, text);
        json.endObject();
    }

    json.key("accuracy").beginObject();
    json.member("conditional_branches", report.accuracy.total());
    json.member("hits", report.accuracy.hits());
    json.member("misses", report.accuracy.misses());
    json.member("accuracy_percent", report.accuracy.accuracyPercent());
    json.member("miss_percent", report.accuracy.missPercent());
    json.endObject();

    const core::RunMetrics &m = report.predictor;
    json.key("predictor").beginObject();
    json.key("hrt").beginObject();
    json.member("hits", m.hrtHits);
    json.member("misses", m.hrtMisses);
    json.member("hit_ratio", m.hrtHitRatio());
    json.member("evictions", m.hrtEvictions);
    json.member("aliased_lookups", m.hrtAliasedLookups);
    json.endObject();
    json.key("pattern_table").beginObject();
    json.key("state_histogram").beginArray();
    for (const std::uint64_t count : m.ptStateHistogram)
        json.value(count);
    json.endArray();
    json.endObject();
    json.key("speculation").beginObject();
    json.member("squash_events", m.squashEvents);
    json.member("squashed_speculations", m.squashedSpeculations);
    json.member("in_flight_branches", m.inFlightBranches);
    json.endObject();
    // v3: the tournament chooser block. Always emitted (zeroed for
    // non-combining schemes) so the schema's key set is fixed.
    json.key("combining").beginObject();
    json.member("present", m.combPresent);
    json.member("component_a", m.combComponentA);
    json.member("component_b", m.combComponentB);
    json.member("correct_a", m.combCorrectA);
    json.member("correct_b", m.combCorrectB);
    json.member("disagreements", m.combDisagreements);
    json.member("overrides_a", m.combOverridesA);
    json.member("overrides_b", m.combOverridesB);
    json.member("chooser_flips", m.combChooserFlips);
    json.endObject();
    json.endObject();

    json.key("warmup").beginObject();
    json.member("window", report.options.warmupWindow);
    json.key("points").beginArray();
    for (const WarmupPoint &point : report.warmupCurve) {
        json.beginObject();
        json.member("branches", point.branches);
        json.member("window_accuracy_percent",
                    point.windowAccuracyPercent);
        json.member("cumulative_accuracy_percent",
                    point.cumulativeAccuracyPercent);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    json.key("top_offenders").beginArray();
    for (const BranchSite &site : report.topOffenders) {
        json.beginObject();
        json.member("pc", format("0x%llx",
                                 static_cast<unsigned long long>(
                                     site.pc)));
        json.member("executions", site.executions);
        json.member("mispredictions", site.mispredictions);
        json.member("accuracy_percent", site.accuracy() * 100.0);
        json.member("taken_percent", site.takenRate() * 100.0);
        json.endObject();
    }
    json.endArray();

    const H2pReport &h2p = report.h2p;
    json.key("h2p").beginObject();
    json.member("history_bits",
                static_cast<std::uint64_t>(kTaxonomyHistoryBits));
    json.key("thresholds").beginObject();
    json.member("execution_floor", h2p.thresholds.executionFloor);
    json.member("accuracy_ceiling_percent",
                h2p.thresholds.accuracyCeilingPercent);
    json.member("chaotic_entropy_bits",
                h2p.thresholds.chaoticEntropyBits);
    json.endObject();
    json.member("static_sites", h2p.staticSites);
    json.member("h2p_sites", h2p.h2pSiteCount);
    json.member("h2p_executions", h2p.h2pExecutions);
    json.member("h2p_mispredictions", h2p.h2pMispredictions);
    json.member("total_executions", h2p.totalExecutions);
    json.member("total_mispredictions", h2p.totalMispredictions);
    json.member("systematic_misses", h2p.systematicMisses);
    json.member("transient_misses", h2p.transientMisses);
    json.key("sites").beginArray();
    for (const H2pSite &entry : h2p.sites) {
        const BranchSite &site = entry.site;
        json.beginObject();
        json.member("pc", format("0x%llx",
                                 static_cast<unsigned long long>(
                                     site.pc)));
        json.member("class", siteClassName(entry.cls));
        json.member("executions", site.executions);
        json.member("mispredictions", site.mispredictions);
        json.member("accuracy_percent", site.accuracy() * 100.0);
        json.member("taken_percent", site.takenRate() * 100.0);
        json.member("transition_percent",
                    site.transitionRate() * 100.0);
        json.member("history_entropy_bits",
                    site.historyEntropyBits());
        json.member("systematic_misses", site.systematicMisses);
        json.member("transient_misses", site.transientMisses);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.endObject();
}

std::string
runMetricsJsonString(const RunMetricsReport &report)
{
    std::ostringstream os;
    writeRunMetricsJson(report, os);
    return os.str();
}

} // namespace tlat::harness
