#include "suite.hh"

#include <cstdlib>

#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"

namespace tlat::harness
{

std::uint64_t
branchBudgetFromEnv()
{
    const char *text = std::getenv("TLAT_BRANCH_BUDGET");
    if (!text)
        return kDefaultBranchBudget;
    const auto value = parseSize(text);
    if (!value || *value == 0) {
        tlat_fatal("bad TLAT_BRANCH_BUDGET value '", text, "'");
    }
    return *value;
}

BenchmarkSuite::BenchmarkSuite(std::uint64_t budget) : budget_(budget)
{
}

std::vector<std::string>
BenchmarkSuite::benchmarks() const
{
    return workloads::workloadNames();
}

const trace::TraceBuffer &
BenchmarkSuite::traceFor(const std::string &benchmark,
                         const std::string &dataSet)
{
    const std::string key = benchmark + "/" + dataSet;
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    const auto workload = workloads::makeWorkload(benchmark);
    const isa::Program program = workload->build(dataSet);
    trace::TraceBuffer buffer =
        sim::collectTrace(program, budget_);
    buffer.setName(benchmark);
    auto [inserted, ok] = cache_.emplace(key, std::move(buffer));
    tlat_assert(ok, "duplicate trace cache entry");
    return inserted->second;
}

const trace::TraceBuffer &
BenchmarkSuite::testTrace(const std::string &benchmark)
{
    const auto workload = workloads::makeWorkload(benchmark);
    return traceFor(benchmark, workload->testSet());
}

void
BenchmarkSuite::preload(util::ThreadPool &pool, bool include_training)
{
    struct Pending
    {
        std::string key;
        std::string benchmark;
        std::string dataSet;
        trace::TraceBuffer buffer;
    };
    std::vector<Pending> pending;
    for (const std::string &benchmark : benchmarks()) {
        const auto workload = workloads::makeWorkload(benchmark);
        std::vector<std::string> sets{workload->testSet()};
        if (include_training) {
            if (const auto train = workload->trainSet())
                sets.push_back(*train);
        }
        for (const std::string &set : sets) {
            const std::string key = benchmark + "/" + set;
            if (!cache_.count(key))
                pending.push_back({key, benchmark, set, {}});
        }
    }

    util::parallelFor(pool, pending.size(), [&](std::size_t i) {
        Pending &job = pending[i];
        const auto workload = workloads::makeWorkload(job.benchmark);
        job.buffer =
            sim::collectTrace(workload->build(job.dataSet), budget_);
        job.buffer.setName(job.benchmark);
    });

    for (Pending &job : pending)
        cache_.emplace(job.key, std::move(job.buffer));
}

const trace::TraceBuffer *
BenchmarkSuite::trainTrace(const std::string &benchmark)
{
    const auto workload = workloads::makeWorkload(benchmark);
    const auto train = workload->trainSet();
    if (!train)
        return nullptr;
    return &traceFor(benchmark, *train);
}

bool
BenchmarkSuite::isFloatingPoint(const std::string &benchmark) const
{
    return workloads::makeWorkload(benchmark)->isFloatingPoint();
}

} // namespace tlat::harness
