#include "suite.hh"

#include <filesystem>
#include <optional>

#include <unistd.h>

#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"

namespace tlat::harness
{

namespace
{

/** Trace cache directory, or nullopt when caching is off. */
std::optional<std::string>
traceCacheDir()
{
    return util::envString("TLAT_TRACE_CACHE_DIR");
}

} // namespace

std::uint64_t
branchBudgetFromEnv()
{
    const auto text = util::envString("TLAT_BRANCH_BUDGET");
    if (!text)
        return kDefaultBranchBudget;
    const auto value = parseSize(*text);
    if (!value || *value == 0) {
        tlat_fatal("bad TLAT_BRANCH_BUDGET value '", *text, "'");
    }
    return *value;
}

BenchmarkSuite::BenchmarkSuite(std::uint64_t budget) : budget_(budget)
{
}

std::vector<std::string>
BenchmarkSuite::benchmarks() const
{
    return workloads::workloadNames();
}

namespace
{

/**
 * Loads the trace from the TLAT_TRACE_CACHE_DIR binary cache or
 * generates (and caches) it. Free function of exactly
 * (budget, benchmark, dataSet) so preload() workers can run it while
 * capturing only the budget value — no shared suite state reaches
 * the pool (guarded-state lint rule).
 */
trace::TraceBuffer
generateTraceToBudget(std::uint64_t budget,
                      const std::string &benchmark,
                      const std::string &dataSet)
{
    const auto dir = traceCacheDir();
    std::string path;
    if (dir) {
        path = *dir + "/" + benchmark + "-" + dataSet + "-" +
               std::to_string(budget) + ".tltr";
        if (auto cached = trace::loadFromFile(path)) {
            // The name check guards against a foreign file landing on
            // the cache key; a stale or corrupt file just regenerates.
            if (cached->name() == benchmark)
                return std::move(*cached);
        }
    }

    const auto workload = workloads::makeWorkload(benchmark);
    trace::TraceBuffer buffer =
        sim::collectTrace(workload->build(dataSet), budget);
    buffer.setName(benchmark);

    if (dir) {
        // Best-effort save; write-then-rename keeps a concurrent
        // process from ever observing a half-written cache file.
        std::error_code ec;
        std::filesystem::create_directories(*dir, ec);
        const std::string tmp =
            path + ".tmp." + std::to_string(::getpid());
        if (trace::saveToFile(buffer, tmp)) {
            std::filesystem::rename(tmp, path, ec);
            if (ec)
                std::filesystem::remove(tmp, ec);
        } else {
            std::filesystem::remove(tmp, ec);
        }
    }
    return buffer;
}

} // namespace

trace::TraceBuffer
BenchmarkSuite::generateTrace(const std::string &benchmark,
                              const std::string &dataSet) const
{
    return generateTraceToBudget(budget_, benchmark, dataSet);
}

const trace::TraceBuffer &
BenchmarkSuite::traceFor(const std::string &benchmark,
                         const std::string &dataSet)
{
    const std::string key = benchmark + "/" + dataSet;
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    auto [inserted, ok] =
        cache_.emplace(key, generateTrace(benchmark, dataSet));
    tlat_assert(ok, "duplicate trace cache entry");
    return inserted->second;
}

const trace::TraceBuffer &
BenchmarkSuite::testTrace(const std::string &benchmark)
{
    const auto workload = workloads::makeWorkload(benchmark);
    return traceFor(benchmark, workload->testSet());
}

void
BenchmarkSuite::preload(util::ThreadPool &pool, bool include_training)
{
    struct Pending
    {
        std::string key;
        std::string benchmark;
        std::string dataSet;
        trace::TraceBuffer buffer;
    };
    std::vector<Pending> pending;
    for (const std::string &benchmark : benchmarks()) {
        const auto workload = workloads::makeWorkload(benchmark);
        std::vector<std::string> sets{workload->testSet()};
        if (include_training) {
            if (const auto train = workload->trainSet())
                sets.push_back(*train);
        }
        for (const std::string &set : sets) {
            const std::string key = benchmark + "/" + set;
            if (!cache_.count(key))
                pending.push_back({key, benchmark, set, {}});
        }
    }

    // Workers capture only the pending slots and the budget value:
    // generation is a pure function of (budget, benchmark, data set),
    // and the cache_ commit below happens serially after the join.
    util::parallelFor(pool, pending.size(), [&pending,
                                             budget = budget_](
                                                std::size_t i) {
        Pending &job = pending[i];
        job.buffer = generateTraceToBudget(budget, job.benchmark,
                                           job.dataSet);
        // Compile the SoA predecode while we are still parallel: the
        // artifact is cached inside the buffer and re-shared by every
        // sweep cell, so no cell pays the dictionary build.
        job.buffer.predecoded();
    });

    for (Pending &job : pending)
        cache_.emplace(job.key, std::move(job.buffer));
}

const trace::TraceBuffer *
BenchmarkSuite::trainTrace(const std::string &benchmark)
{
    const auto workload = workloads::makeWorkload(benchmark);
    const auto train = workload->trainSet();
    if (!train)
        return nullptr;
    return &traceFor(benchmark, *train);
}

bool
BenchmarkSuite::isFloatingPoint(const std::string &benchmark) const
{
    return workloads::makeWorkload(benchmark)->isFloatingPoint();
}

} // namespace tlat::harness
