/**
 * @file
 * Return-address-stack experiment (paper Section 4): "A return
 * address is pushed onto the stack when a subroutine is called and is
 * popped as the prediction for the branch target address when a
 * return instruction is detected. The return address prediction may
 * miss when the return address stack overflows."
 *
 * The experiment replays a trace through a ReturnAddressStack of a
 * given depth: each call pushes its fall-through address, each return
 * pops a predicted target and compares it with the actual one.
 */

#ifndef TLAT_HARNESS_RAS_EXPERIMENT_HH
#define TLAT_HARNESS_RAS_EXPERIMENT_HH

#include <cstdint>

#include "trace/trace_buffer.hh"

namespace tlat::harness
{

/** Outcome of one RAS replay. */
struct RasResult
{
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;
    std::uint64_t correctReturns = 0;
    std::uint64_t overflows = 0;
    std::uint64_t underflows = 0;

    /** Fraction of returns whose target was predicted exactly. */
    double
    hitRate() const
    {
        return returns == 0
            ? 0.0
            : static_cast<double>(correctReturns) /
                  static_cast<double>(returns);
    }
};

/**
 * Replays @p trace through a stack of @p depth entries.
 *
 * Call fall-through addresses are pc + 4 (micro88's instruction
 * size), which is what the link register holds.
 */
RasResult runRasExperiment(const trace::TraceBuffer &trace,
                           std::size_t depth);

} // namespace tlat::harness

#endif // TLAT_HARNESS_RAS_EXPERIMENT_HH
