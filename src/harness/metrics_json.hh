/**
 * @file
 * JSON serialization of RunMetricsReport — the machine-readable
 * surface behind `tlat run --json` / `tlat profile --json`.
 *
 * The document is schema-stable: fixed key set, fixed key order,
 * fixed number formatting (json_writer.hh). Identical reports
 * serialize to byte-identical text, which is how the sweep
 * determinism tests compare metrics across worker counts.
 */

#ifndef TLAT_HARNESS_METRICS_JSON_HH
#define TLAT_HARNESS_METRICS_JSON_HH

#include <ostream>
#include <string>

#include "experiment.hh"

namespace tlat::harness
{

/**
 * Schema identifier stamped into every run-metrics document.
 *
 * v2 extended v1 purely additively with the trailing "h2p" taxonomy
 * section; v3 extends v2 the same way with the predictor "combining"
 * block (tournament chooser counters, zeroed for non-combining
 * schemes) — every earlier key keeps its name, position and
 * formatting, so consumers that ignore unknown keys keep working
 * unchanged.
 */
inline constexpr const char *kRunMetricsSchema = "tlat-run-metrics-v3";

/**
 * Writes the full report as one JSON document (trailing newline).
 * @param writer_context Optional "context" object members the caller
 *        wants stamped in (budget, train source, ...), pre-rendered
 *        as alternating key/value pairs; empty means no context
 *        object.
 */
void writeRunMetricsJson(
    const RunMetricsReport &report, std::ostream &os,
    const std::vector<std::pair<std::string, std::string>>
        &context = {});

/** Serializes to a string (the determinism tests diff these). */
std::string runMetricsJsonString(const RunMetricsReport &report);

} // namespace tlat::harness

#endif // TLAT_HARNESS_METRICS_JSON_HH
