#include "figure_runner.hh"

#include "core/scheme_config.hh"
#include "experiment.hh"
#include "predictors/scheme_factory.hh"
#include "util/logging.hh"
#include "workloads/workload.hh"

namespace tlat::harness
{

AccuracyReport
runSchemes(BenchmarkSuite &suite, const std::string &title,
           const std::vector<std::string> &scheme_names,
           const std::vector<std::string> &column_labels)
{
    tlat_assert(column_labels.empty() ||
                    column_labels.size() == scheme_names.size(),
                "label list does not match scheme list");

    AccuracyReport report(title, workloads::workloadNames(),
                          workloads::floatingPointWorkloadNames());

    for (std::size_t s = 0; s < scheme_names.size(); ++s) {
        const auto config =
            core::SchemeConfig::parse(scheme_names[s]);
        if (!config)
            tlat_fatal("bad scheme name '", scheme_names[s], "'");
        const std::string label =
            column_labels.empty() ? scheme_names[s]
                                  : column_labels[s];

        const auto predictor = predictors::makePredictor(*config);
        for (const std::string &benchmark : suite.benchmarks()) {
            const trace::TraceBuffer *train = nullptr;
            if (config->data == core::DataMode::Diff) {
                train = suite.trainTrace(benchmark);
                if (!train)
                    continue; // no training set: leave the cell empty
            }
            const ExperimentResult result = runExperiment(
                *predictor, suite.testTrace(benchmark), train);
            report.add(benchmark, label,
                       result.accuracy.accuracyPercent());
        }
    }
    return report;
}

} // namespace tlat::harness
