#include "figure_runner.hh"

#include "parallel_sweep.hh"

namespace tlat::harness
{

AccuracyReport
runSchemes(BenchmarkSuite &suite, const std::string &title,
           const std::vector<std::string> &scheme_names,
           const std::vector<std::string> &column_labels,
           unsigned jobs)
{
    return runSweep(suite, title, scheme_names, column_labels, jobs);
}

} // namespace tlat::harness
