#include "design_space.hh"

#include <algorithm>

#include "figure_runner.hh"
#include "util/string_utils.hh"

namespace tlat::harness
{

std::string
DesignPoint::schemeName() const
{
    if (hrtKind == core::TableKind::Ideal) {
        return format("AT(IHRT(,%uSR),PT(2^%u,A2),)", historyBits,
                      historyBits);
    }
    return format("AT(%s(%zu,%uSR),PT(2^%u,A2),)",
                  core::tableKindName(hrtKind), hrtEntries,
                  historyBits, historyBits);
}

std::string
DesignPoint::label() const
{
    switch (hrtKind) {
      case core::TableKind::Ideal:
        return format("k%u/I", historyBits);
      case core::TableKind::Associative:
        return format("k%u/A%zu", historyBits, hrtEntries);
      case core::TableKind::Hashed:
      default:
        return format("k%u/H%zu", historyBits, hrtEntries);
    }
}

core::SchemeConfig
DesignPoint::toSchemeConfig() const
{
    core::SchemeConfig config;
    config.scheme = core::Scheme::TwoLevelAdaptive;
    config.hrtKind = hrtKind;
    config.hrtEntries =
        hrtKind == core::TableKind::Ideal ? 0 : hrtEntries;
    config.historyBits = historyBits;
    config.automaton = core::AutomatonKind::A2;
    return config;
}

std::uint64_t
DesignPoint::storageBits(std::uint64_t staticBranches) const
{
    return core::storageCost(toSchemeConfig(), staticBranches)
        .total();
}

std::vector<DesignPoint>
gridPoints(const std::vector<unsigned> &history_bits,
           const std::vector<core::TableKind> &kinds,
           const std::vector<std::size_t> &entry_counts)
{
    std::vector<DesignPoint> points;
    for (unsigned bits : history_bits) {
        for (core::TableKind kind : kinds) {
            if (kind == core::TableKind::Ideal) {
                points.push_back(DesignPoint{bits, kind, 0});
                continue;
            }
            for (std::size_t entries : entry_counts)
                points.push_back(DesignPoint{bits, kind, entries});
        }
    }
    return points;
}

AccuracyReport
sweepDesignSpace(BenchmarkSuite &suite,
                 const std::vector<DesignPoint> &points, unsigned jobs)
{
    std::vector<std::string> schemes;
    std::vector<std::string> labels;
    for (const DesignPoint &point : points) {
        schemes.push_back(point.schemeName());
        labels.push_back(point.label());
    }
    return runSchemes(suite, "design-space sweep", schemes, labels,
                      jobs);
}

std::vector<FrontierEntry>
measureFrontier(const std::vector<DesignPoint> &points,
                const AccuracyReport &report,
                std::uint64_t staticBranches)
{
    std::vector<FrontierEntry> entries;
    for (const DesignPoint &point : points) {
        const double mean = report.totalMean(point.label());
        if (mean < 0)
            continue;
        entries.push_back(FrontierEntry{
            point, point.storageBits(staticBranches), mean});
    }
    return entries;
}

std::optional<FrontierEntry>
bestUnderBudget(const std::vector<FrontierEntry> &entries,
                std::uint64_t budget_bits)
{
    std::optional<FrontierEntry> best;
    for (const FrontierEntry &entry : entries) {
        if (entry.storageBits > budget_bits)
            continue;
        if (!best ||
            entry.totalMeanAccuracy > best->totalMeanAccuracy ||
            (entry.totalMeanAccuracy == best->totalMeanAccuracy &&
             entry.storageBits < best->storageBits)) {
            best = entry;
        }
    }
    return best;
}

std::vector<FrontierEntry>
paretoFrontier(std::vector<FrontierEntry> entries)
{
    std::sort(entries.begin(), entries.end(),
              [](const FrontierEntry &a, const FrontierEntry &b) {
                  if (a.storageBits != b.storageBits)
                      return a.storageBits < b.storageBits;
                  return a.totalMeanAccuracy > b.totalMeanAccuracy;
              });
    std::vector<FrontierEntry> frontier;
    double best_accuracy = -1.0;
    for (const FrontierEntry &entry : entries) {
        if (entry.totalMeanAccuracy > best_accuracy) {
            frontier.push_back(entry);
            best_accuracy = entry.totalMeanAccuracy;
        }
    }
    return frontier;
}

} // namespace tlat::harness
