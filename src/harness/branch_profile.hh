/**
 * @file
 * Per-static-branch accuracy profiling: which branches a predictor
 * misses, how often they execute and which way they lean. The
 * analysis tool behind the "where do the 3% of misses live?"
 * question, and the basis of the branch_autopsy example.
 */

#ifndef TLAT_HARNESS_BRANCH_PROFILE_HH
#define TLAT_HARNESS_BRANCH_PROFILE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/branch_predictor.hh"
#include "trace/trace_buffer.hh"

namespace tlat::harness
{

/** Accuracy tallies for one static conditional branch. */
struct BranchSite
{
    std::uint64_t pc = 0;
    std::uint64_t executions = 0;
    std::uint64_t mispredictions = 0;
    std::uint64_t takenCount = 0;

    double
    accuracy() const
    {
        return executions == 0
            ? 0.0
            : 1.0 - static_cast<double>(mispredictions) /
                        static_cast<double>(executions);
    }

    double
    takenRate() const
    {
        return executions == 0
            ? 0.0
            : static_cast<double>(takenCount) /
                  static_cast<double>(executions);
    }
};

/** Per-branch accuracy breakdown of one measured run. */
class BranchProfile
{
  public:
    /** Records one executed conditional branch. */
    void record(std::uint64_t pc, bool correct, bool taken);

    /** Sites ordered by misprediction count, heaviest first. */
    std::vector<BranchSite> worstSites(std::size_t limit = 10) const;

    /** Site lookup; a zeroed site if the pc was never seen. */
    BranchSite site(std::uint64_t pc) const;

    std::uint64_t totalExecutions() const { return executions_; }
    std::uint64_t totalMispredictions() const
    {
        return mispredictions_;
    }
    std::size_t staticBranches() const { return sites_.size(); }

    /**
     * Fraction of all mispredictions concentrated in the heaviest
     * @p site_count sites — the locality of the miss mass.
     */
    double missConcentration(std::size_t site_count) const;

  private:
    std::unordered_map<std::uint64_t, BranchSite> sites_;
    std::uint64_t executions_ = 0;
    std::uint64_t mispredictions_ = 0;
};

/**
 * Measures @p predictor over the conditional branches of @p trace,
 * collecting the per-branch breakdown. The predictor is not reset.
 */
BranchProfile profileBranches(core::BranchPredictor &predictor,
                              const trace::TraceBuffer &trace);

} // namespace tlat::harness

#endif // TLAT_HARNESS_BRANCH_PROFILE_HH
