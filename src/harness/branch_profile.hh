/**
 * @file
 * Per-static-branch accuracy profiling: which branches a predictor
 * misses, how often they execute and which way they lean. The
 * analysis tool behind the "where do the 3% of misses live?"
 * question, and the basis of the branch_autopsy example.
 *
 * Beyond raw tallies, each site carries a misprediction *taxonomy* in
 * the spirit of Lin & Tarsa's "Branch Prediction Is Not a Solved
 * Problem" (see PAPERS.md): misses are split into *transient* (the
 * first miss observed under a given short local-history pattern —
 * warmup, cold tables) and *systematic* (repeat misses under a
 * pattern the predictor has already been wrong about — structural
 * mismatch between branch behaviour and predictor), and the
 * conditional entropy of the outcome given the local history
 * separates history-predictable branches from data-dependent
 * (chaotic) ones. classifySite() turns those statistics into the
 * hard-to-predict (H2P) classification surfaced by `tlat profile
 * --json`.
 */

#ifndef TLAT_HARNESS_BRANCH_PROFILE_HH
#define TLAT_HARNESS_BRANCH_PROFILE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/branch_predictor.hh"
#include "trace/trace_buffer.hh"

namespace tlat::harness
{

/**
 * Local-history bits the per-site taxonomy conditions on. Four bits
 * is deliberately *shorter* than the predictors' history registers:
 * the taxonomy asks "is this branch predictable from a little local
 * context at all?", not "did this particular predictor capture it".
 */
inline constexpr unsigned kTaxonomyHistoryBits = 4;

/** Number of distinct local-history patterns the taxonomy tracks. */
inline constexpr std::size_t kTaxonomyPatterns =
    std::size_t{1} << kTaxonomyHistoryBits;

/** Accuracy tallies for one static conditional branch. */
struct BranchSite
{
    std::uint64_t pc = 0;
    std::uint64_t executions = 0;
    std::uint64_t mispredictions = 0;
    std::uint64_t takenCount = 0;

    // ---- misprediction taxonomy -----------------------------------
    /** Outcome changes between consecutive executions of this site. */
    std::uint64_t transitions = 0;
    /**
     * Misses under a local-history pattern that had already produced
     * a miss at this site — the predictor keeps being wrong in a
     * recurring context.
     */
    std::uint64_t systematicMisses = 0;
    /** First miss observed under each local-history pattern. */
    std::uint64_t transientMisses = 0;
    /** Executions observed under each local-history pattern. */
    std::array<std::uint64_t, kTaxonomyPatterns> patternVisits{};
    /** Taken outcomes observed under each local-history pattern. */
    std::array<std::uint64_t, kTaxonomyPatterns> patternTaken{};
    /** Misses observed under each local-history pattern. */
    std::array<std::uint64_t, kTaxonomyPatterns> patternMisses{};

    // ---- per-site tracking state (BranchProfile::record only) -----
    std::uint8_t localHistory = 0;
    bool havePrevOutcome = false;
    bool prevOutcome = false;

    double
    accuracy() const
    {
        return executions == 0
            ? 0.0
            : 1.0 - static_cast<double>(mispredictions) /
                        static_cast<double>(executions);
    }

    double
    takenRate() const
    {
        return executions == 0
            ? 0.0
            : static_cast<double>(takenCount) /
                  static_cast<double>(executions);
    }

    double
    transitionRate() const
    {
        return executions == 0
            ? 0.0
            : static_cast<double>(transitions) /
                  static_cast<double>(executions);
    }

    /**
     * Conditional entropy H(outcome | last kTaxonomyHistoryBits
     * outcomes) in bits: 0 for a branch whose outcome is a function
     * of its recent local history (periodic patterns), 1 for a fair
     * coin no history window explains. Pure function of the integer
     * pattern tallies, accumulated in fixed pattern order.
     */
    double historyEntropyBits() const;
};

/**
 * Classification of one site, Lin & Tarsa-style. Stable sites predict
 * fine (or execute too rarely to matter); everything else is a
 * hard-to-predict (H2P) branch, subdivided by *why* it is hard.
 */
enum class SiteClass : std::uint8_t
{
    /** Accurate enough, or below the execution floor. */
    Stable,
    /** Misses dominated by first-time pattern misses (warmup). */
    Transient,
    /** Repeat misses in recurring contexts (structural mismatch). */
    Systematic,
    /** High outcome entropy — data-dependent, near-random. */
    Chaotic,
};

/** Stable lower-case name of a SiteClass ("stable", "chaotic", ...). */
const char *siteClassName(SiteClass cls);

/** Thresholds of the H2P classification (all explicit, all stable). */
struct TaxonomyThresholds
{
    /** Sites executing fewer times than this are Stable (noise). */
    std::uint64_t executionFloor = 100;
    /** Sites at or above this accuracy are Stable. */
    double accuracyCeilingPercent = 99.0;
    /** Entropy at or above this marks a site Chaotic. */
    double chaoticEntropyBits = 0.9;
};

/**
 * Classifies one site against the thresholds. Deterministic: integer
 * tallies plus fixed-order floating point derived from them.
 */
SiteClass classifySite(const BranchSite &site,
                       const TaxonomyThresholds &thresholds);

/** Per-branch accuracy breakdown of one measured run. */
class BranchProfile
{
  public:
    /**
     * Records one executed conditional branch. Call in trace order:
     * the taxonomy tallies (local history, transitions) depend on the
     * per-site outcome sequence.
     */
    void record(std::uint64_t pc, bool correct, bool taken);

    /**
     * The heaviest-missing sites under the profile's canonical total
     * order: misprediction count descending, then pc ascending. The
     * pc tie-break makes the order — and therefore which of several
     * equally-missing sites survive the @p limit cut — a pure
     * function of the tallies, independent of the unordered_map's
     * iteration order and of insertion order. Ties at the cutoff keep
     * the lowest pcs. limit >= size returns every site, sorted.
     */
    std::vector<BranchSite> worstSites(std::size_t limit = 10) const;

    /** Every site in the canonical order (worstSites without a cut). */
    std::vector<BranchSite> allSites() const;

    /** Site lookup; a zeroed site if the pc was never seen. */
    BranchSite site(std::uint64_t pc) const;

    std::uint64_t totalExecutions() const { return executions_; }
    std::uint64_t totalMispredictions() const
    {
        return mispredictions_;
    }
    std::size_t staticBranches() const { return sites_.size(); }

    /**
     * Fraction of all mispredictions concentrated in the heaviest
     * @p site_count sites — the locality of the miss mass.
     */
    double missConcentration(std::size_t site_count) const;

    /**
     * The canonical site order shared by worstSites() and the h2p
     * JSON section: misprediction count descending, pc ascending.
     */
    static bool siteOrder(const BranchSite &a, const BranchSite &b);

  private:
    std::unordered_map<std::uint64_t, BranchSite> sites_;
    std::uint64_t executions_ = 0;
    std::uint64_t mispredictions_ = 0;
};

/**
 * Measures @p predictor over the conditional branches of @p trace,
 * collecting the per-branch breakdown. The predictor is not reset.
 */
BranchProfile profileBranches(core::BranchPredictor &predictor,
                              const trace::TraceBuffer &trace);

} // namespace tlat::harness

#endif // TLAT_HARNESS_BRANCH_PROFILE_HH
