/**
 * @file
 * Accuracy reporting in the layout of the paper's Figures 5-10: one
 * row per benchmark plus "Int G Mean", "FP G Mean" and "Tot G Mean"
 * geometric-mean rows, one column per scheme.
 */

#ifndef TLAT_HARNESS_REPORT_HH
#define TLAT_HARNESS_REPORT_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace tlat::harness
{

/** Benchmark x scheme accuracy matrix with paper-style means. */
class AccuracyReport
{
  public:
    /**
     * @param title Figure/table caption.
     * @param benchmarks Row order (paper order).
     * @param fpBenchmarks Which rows belong to the FP mean.
     */
    AccuracyReport(std::string title,
                   std::vector<std::string> benchmarks,
                   std::vector<std::string> fpBenchmarks);

    /** Adds one column. Column order is first-add order. */
    void add(const std::string &benchmark, const std::string &scheme,
             double accuracyPercent);

    /** Renders the table; missing cells print as "-". */
    void print(std::ostream &os) const;

    /** Writes the same matrix as CSV. */
    void printCsv(std::ostream &os) const;

    /** Geometric mean of a scheme over all/int/fp benchmarks;
     *  negative when any cell is missing. */
    double totalMean(const std::string &scheme) const;
    double intMean(const std::string &scheme) const;
    double fpMean(const std::string &scheme) const;

    /** Accuracy of one cell; negative if missing. */
    double cell(const std::string &benchmark,
                const std::string &scheme) const;

    const std::vector<std::string> &schemes() const
    {
        return scheme_order_;
    }

    /** Row order, as passed to the constructor. */
    const std::vector<std::string> &benchmarks() const
    {
        return benchmarks_;
    }

  private:
    double meanOver(const std::string &scheme,
                    const std::vector<std::string> &rows) const;

    std::string title_;
    std::vector<std::string> benchmarks_;
    std::vector<std::string> fp_benchmarks_;
    std::vector<std::string> scheme_order_;
    std::map<std::pair<std::string, std::string>, double> cells_;
};

} // namespace tlat::harness

#endif // TLAT_HARNESS_REPORT_HH
