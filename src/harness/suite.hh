/**
 * @file
 * Benchmark suite: generates and caches the branch traces of the nine
 * SPEC-mirror workloads.
 *
 * Traces are produced by running the micro88 simulator to a
 * conditional-branch budget (the paper simulated twenty million
 * conditional branches per benchmark; the default here is smaller so
 * the whole figure set regenerates in seconds — override with the
 * TLAT_BRANCH_BUDGET environment variable, accuracy converges long
 * before the paper's budget on these workloads).
 *
 * When TLAT_TRACE_CACHE_DIR names a directory, generated traces are
 * persisted there in the TLTR binary format, keyed
 * "<benchmark>-<dataset>-<budget>.tltr", and loaded back on the next
 * run instead of re-simulating — this removes the per-run preload
 * cost of every sweep/figure invocation. Cache files are validated on
 * load (format version, trace name) and silently regenerated when
 * stale; saves go through write-then-rename so concurrent runs never
 * observe partial files.
 */

#ifndef TLAT_HARNESS_SUITE_HH
#define TLAT_HARNESS_SUITE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace_buffer.hh"
#include "workloads/workload.hh"

namespace tlat::util
{
class ThreadPool;
}

namespace tlat::harness
{

/** Default conditional-branch budget per benchmark trace. */
constexpr std::uint64_t kDefaultBranchBudget = 300000;

/** Reads TLAT_BRANCH_BUDGET, falling back to the default. */
std::uint64_t branchBudgetFromEnv();

/** Lazily generated, cached traces for the nine benchmarks. */
class BenchmarkSuite
{
  public:
    /** @param budget Conditional branches per generated trace. */
    explicit BenchmarkSuite(std::uint64_t budget =
                                branchBudgetFromEnv());

    /** Benchmark names in paper order. */
    std::vector<std::string> benchmarks() const;

    /** The testing-data-set trace of a benchmark (cached). */
    const trace::TraceBuffer &testTrace(const std::string &benchmark);

    /**
     * The training-data-set trace, or nullptr when the benchmark has
     * no usable distinct training set (paper Table 3: eqntott,
     * matrix300, fpppp, tomcatv).
     */
    const trace::TraceBuffer *
    trainTrace(const std::string &benchmark);

    /**
     * Generates every not-yet-cached trace on @p pool and caches it.
     * Trace content depends only on (benchmark, data set, budget), so
     * the cache ends up bit-identical to demand generation no matter
     * how many workers run. After this, testTrace()/trainTrace() only
     * read the cache, which is what makes the parallel sweep's
     * read-only sharing of traces safe.
     *
     * @param include_training Also generate the training-set traces.
     */
    void preload(util::ThreadPool &pool, bool include_training);

    /** True for the floating point benchmarks. */
    bool isFloatingPoint(const std::string &benchmark) const;

    std::uint64_t budget() const { return budget_; }

  private:
    const trace::TraceBuffer &
    traceFor(const std::string &benchmark,
             const std::string &dataSet);

    /**
     * Loads the trace from the TLAT_TRACE_CACHE_DIR binary cache or
     * generates (and caches) it. Pure function of
     * (benchmark, dataSet, budget) — safe to call from preload()
     * workers concurrently.
     */
    trace::TraceBuffer generateTrace(const std::string &benchmark,
                                     const std::string &dataSet) const;

    std::uint64_t budget_;
    std::map<std::string, trace::TraceBuffer> cache_;
};

} // namespace tlat::harness

#endif // TLAT_HARNESS_SUITE_HH
