/**
 * @file
 * One-call figure reproduction: measure a list of Table 2 scheme names
 * over the whole benchmark suite and return the paper-style accuracy
 * report.
 */

#ifndef TLAT_HARNESS_FIGURE_RUNNER_HH
#define TLAT_HARNESS_FIGURE_RUNNER_HH

#include <string>
#include <vector>

#include "report.hh"
#include "suite.hh"

namespace tlat::harness
{

/**
 * Runs every scheme on every benchmark.
 *
 * A thin wrapper over the deterministic parallel sweep engine
 * (parallel_sweep.hh): cells shard over worker threads, each one
 * measures a freshly constructed predictor, and the report is merged
 * in a fixed order — reported accuracies never depend on @p jobs.
 *
 * Diff-data Static Training configurations are only measured on the
 * benchmarks that have a training data set (paper Table 3 lists "NA"
 * for four of the nine); the report prints "-" for the others, as the
 * paper leaves these curves un-averaged ("the data ... is not
 * complete, the average accuracy for the schemes is not graphed").
 *
 * @param column_labels Optional short column labels, parallel to
 *        @p scheme_names (the full Table 2 names are long); empty
 *        means use the scheme names themselves.
 * @param jobs Worker threads; 0 means defaultJobs() (TLAT_JOBS or the
 *        hardware thread count).
 */
AccuracyReport
runSchemes(BenchmarkSuite &suite, const std::string &title,
           const std::vector<std::string> &scheme_names,
           const std::vector<std::string> &column_labels = {},
           unsigned jobs = 0);

} // namespace tlat::harness

#endif // TLAT_HARNESS_FIGURE_RUNNER_HH
