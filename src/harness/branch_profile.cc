#include "branch_profile.hh"

#include <algorithm>
#include <cmath>

namespace tlat::harness
{

double
BranchSite::historyEntropyBits() const
{
    if (executions == 0)
        return 0.0;
    // Visit-weighted binary entropy of the outcome per pattern,
    // accumulated in fixed pattern order (sum of patternVisits equals
    // executions: every record lands in exactly one pattern).
    double entropy = 0.0;
    for (std::size_t pattern = 0; pattern < kTaxonomyPatterns;
         ++pattern) {
        const std::uint64_t visits = patternVisits[pattern];
        if (visits == 0)
            continue;
        const double p = static_cast<double>(patternTaken[pattern]) /
                         static_cast<double>(visits);
        if (p <= 0.0 || p >= 1.0)
            continue; // deterministic pattern: zero entropy
        const double weight = static_cast<double>(visits) /
                              static_cast<double>(executions);
        entropy -= weight *
                   (p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
    }
    return entropy;
}

const char *
siteClassName(SiteClass cls)
{
    switch (cls) {
    case SiteClass::Stable:
        return "stable";
    case SiteClass::Transient:
        return "transient";
    case SiteClass::Systematic:
        return "systematic";
    case SiteClass::Chaotic:
        return "chaotic";
    }
    return "stable";
}

SiteClass
classifySite(const BranchSite &site,
             const TaxonomyThresholds &thresholds)
{
    if (site.executions < thresholds.executionFloor ||
        site.accuracy() * 100.0 >= thresholds.accuracyCeilingPercent)
        return SiteClass::Stable;
    if (site.historyEntropyBits() >= thresholds.chaoticEntropyBits)
        return SiteClass::Chaotic;
    return site.systematicMisses >= site.transientMisses
        ? SiteClass::Systematic
        : SiteClass::Transient;
}

void
BranchProfile::record(std::uint64_t pc, bool correct, bool taken)
{
    BranchSite &site = sites_[pc];
    site.pc = pc;
    ++site.executions;
    ++executions_;

    const std::size_t pattern = site.localHistory;
    ++site.patternVisits[pattern];
    if (taken)
        ++site.patternTaken[pattern];
    if (!correct) {
        ++site.mispredictions;
        ++mispredictions_;
        if (site.patternMisses[pattern] > 0)
            ++site.systematicMisses;
        else
            ++site.transientMisses;
        ++site.patternMisses[pattern];
    }
    if (taken)
        ++site.takenCount;
    if (site.havePrevOutcome && taken != site.prevOutcome)
        ++site.transitions;
    site.havePrevOutcome = true;
    site.prevOutcome = taken;
    site.localHistory = static_cast<std::uint8_t>(
        ((site.localHistory << 1) | (taken ? 1u : 0u)) &
        (kTaxonomyPatterns - 1));
}

bool
BranchProfile::siteOrder(const BranchSite &a, const BranchSite &b)
{
    if (a.mispredictions != b.mispredictions)
        return a.mispredictions > b.mispredictions;
    return a.pc < b.pc;
}

std::vector<BranchSite>
BranchProfile::allSites() const
{
    std::vector<BranchSite> sites;
    sites.reserve(sites_.size());
    for (const auto &[pc, site] : sites_)
        sites.push_back(site);
    std::sort(sites.begin(), sites.end(), siteOrder);
    return sites;
}

std::vector<BranchSite>
BranchProfile::worstSites(std::size_t limit) const
{
    std::vector<BranchSite> sites = allSites();
    if (sites.size() > limit)
        sites.resize(limit);
    return sites;
}

BranchSite
BranchProfile::site(std::uint64_t pc) const
{
    const auto it = sites_.find(pc);
    return it == sites_.end() ? BranchSite{} : it->second;
}

double
BranchProfile::missConcentration(std::size_t site_count) const
{
    if (mispredictions_ == 0)
        return 0.0;
    std::uint64_t concentrated = 0;
    for (const BranchSite &site : worstSites(site_count))
        concentrated += site.mispredictions;
    return static_cast<double>(concentrated) /
           static_cast<double>(mispredictions_);
}

BranchProfile
profileBranches(core::BranchPredictor &predictor,
                const trace::TraceBuffer &trace)
{
    BranchProfile profile;
    for (const trace::BranchRecord &record : trace.records()) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        const bool predicted = predictor.predict(record);
        profile.record(record.pc, predicted == record.taken,
                       record.taken);
        predictor.update(record);
    }
    return profile;
}

} // namespace tlat::harness
