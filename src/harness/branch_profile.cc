#include "branch_profile.hh"

#include <algorithm>

namespace tlat::harness
{

void
BranchProfile::record(std::uint64_t pc, bool correct, bool taken)
{
    BranchSite &site = sites_[pc];
    site.pc = pc;
    ++site.executions;
    ++executions_;
    if (!correct) {
        ++site.mispredictions;
        ++mispredictions_;
    }
    if (taken)
        ++site.takenCount;
}

std::vector<BranchSite>
BranchProfile::worstSites(std::size_t limit) const
{
    std::vector<BranchSite> sites;
    sites.reserve(sites_.size());
    for (const auto &[pc, site] : sites_)
        sites.push_back(site);
    std::sort(sites.begin(), sites.end(),
              [](const BranchSite &a, const BranchSite &b) {
                  if (a.mispredictions != b.mispredictions)
                      return a.mispredictions > b.mispredictions;
                  return a.pc < b.pc;
              });
    if (sites.size() > limit)
        sites.resize(limit);
    return sites;
}

BranchSite
BranchProfile::site(std::uint64_t pc) const
{
    const auto it = sites_.find(pc);
    return it == sites_.end() ? BranchSite{} : it->second;
}

double
BranchProfile::missConcentration(std::size_t site_count) const
{
    if (mispredictions_ == 0)
        return 0.0;
    std::uint64_t concentrated = 0;
    for (const BranchSite &site : worstSites(site_count))
        concentrated += site.mispredictions;
    return static_cast<double>(concentrated) /
           static_cast<double>(mispredictions_);
}

BranchProfile
profileBranches(core::BranchPredictor &predictor,
                const trace::TraceBuffer &trace)
{
    BranchProfile profile;
    for (const trace::BranchRecord &record : trace.records()) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        const bool predicted = predictor.predict(record);
        profile.record(record.pc, predicted == record.taken,
                       record.taken);
        predictor.update(record);
    }
    return profile;
}

} // namespace tlat::harness
