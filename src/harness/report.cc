#include "report.hh"

#include <algorithm>

#include "util/csv_writer.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/string_utils.hh"
#include "util/table_printer.hh"

namespace tlat::harness
{

AccuracyReport::AccuracyReport(std::string title,
                               std::vector<std::string> benchmarks,
                               std::vector<std::string> fpBenchmarks)
    : title_(std::move(title)), benchmarks_(std::move(benchmarks)),
      fp_benchmarks_(std::move(fpBenchmarks))
{
}

void
AccuracyReport::add(const std::string &benchmark,
                    const std::string &scheme, double accuracyPercent)
{
    if (std::find(scheme_order_.begin(), scheme_order_.end(),
                  scheme) == scheme_order_.end())
        scheme_order_.push_back(scheme);
    cells_[{benchmark, scheme}] = accuracyPercent;
}

double
AccuracyReport::cell(const std::string &benchmark,
                     const std::string &scheme) const
{
    const auto it = cells_.find({benchmark, scheme});
    return it == cells_.end() ? -1.0 : it->second;
}

double
AccuracyReport::meanOver(const std::string &scheme,
                         const std::vector<std::string> &rows) const
{
    std::vector<double> values;
    for (const std::string &benchmark : rows) {
        const double value = cell(benchmark, scheme);
        if (value < 0)
            return -1.0;
        values.push_back(value);
    }
    return geometricMean(values);
}

double
AccuracyReport::totalMean(const std::string &scheme) const
{
    return meanOver(scheme, benchmarks_);
}

double
AccuracyReport::fpMean(const std::string &scheme) const
{
    return meanOver(scheme, fp_benchmarks_);
}

double
AccuracyReport::intMean(const std::string &scheme) const
{
    std::vector<std::string> int_rows;
    for (const std::string &benchmark : benchmarks_) {
        if (std::find(fp_benchmarks_.begin(), fp_benchmarks_.end(),
                      benchmark) == fp_benchmarks_.end())
            int_rows.push_back(benchmark);
    }
    return meanOver(scheme, int_rows);
}

namespace
{

std::string
cellText(double value)
{
    return value < 0 ? std::string("-")
                     : TablePrinter::percentCell(value);
}

} // namespace

void
AccuracyReport::print(std::ostream &os) const
{
    TablePrinter printer(title_);
    std::vector<std::string> header = {"benchmark"};
    for (const std::string &scheme : scheme_order_)
        header.push_back(scheme);
    printer.setHeader(header);

    for (const std::string &benchmark : benchmarks_) {
        std::vector<std::string> row = {benchmark};
        for (const std::string &scheme : scheme_order_)
            row.push_back(cellText(cell(benchmark, scheme)));
        printer.addRow(row);
    }

    printer.addSeparator();
    const struct
    {
        const char *label;
        double (AccuracyReport::*mean)(const std::string &) const;
    } mean_rows[] = {
        {"Int G Mean", &AccuracyReport::intMean},
        {"FP G Mean", &AccuracyReport::fpMean},
        {"Tot G Mean", &AccuracyReport::totalMean},
    };
    for (const auto &mean_row : mean_rows) {
        std::vector<std::string> row = {mean_row.label};
        for (const std::string &scheme : scheme_order_)
            row.push_back(cellText((this->*mean_row.mean)(scheme)));
        printer.addRow(row);
    }

    printer.print(os);
}

void
AccuracyReport::printCsv(std::ostream &os) const
{
    CsvWriter csv(os);
    std::vector<std::string> header = {"benchmark"};
    for (const std::string &scheme : scheme_order_)
        header.push_back(scheme);
    csv.writeRow(header);
    for (const std::string &benchmark : benchmarks_) {
        std::vector<std::string> row = {benchmark};
        for (const std::string &scheme : scheme_order_) {
            const double value = cell(benchmark, scheme);
            row.push_back(value < 0 ? ""
                                    : format("%.4f", value));
        }
        csv.writeRow(row);
    }
}

} // namespace tlat::harness
