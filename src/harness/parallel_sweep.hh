/**
 * @file
 * Deterministic parallel sweep engine for figure and design-space
 * grids.
 *
 * A sweep is a (scheme x benchmark) grid of completely independent
 * cells. Each cell gets its own freshly constructed predictor and
 * reads only immutable, pre-generated traces, so cells can run on any
 * worker in any order without ever influencing each other. The merge
 * into the AccuracyReport happens single-threaded in a fixed
 * (scheme-major, paper benchmark order) sequence after every cell
 * finished, so column order, cell values and the derived geometric
 * means are bit-identical for every jobs count — `jobs=64` must
 * reproduce `jobs=1` exactly, and tests/test_parallel_sweep.cc holds
 * the engine to that.
 *
 * Determinism rules a cell must obey (enforced by convention and by
 * the serial-equivalence test):
 *  - no shared mutable state: predictor, counters and any scratch are
 *    cell-local; traces are shared read-only;
 *  - any randomness must come from an Rng seeded with
 *    cellSeed(scheme, benchmark) — never from time, thread id or a
 *    shared generator, all of which would tie results to scheduling.
 */

#ifndef TLAT_HARNESS_PARALLEL_SWEEP_HH
#define TLAT_HARNESS_PARALLEL_SWEEP_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "experiment.hh"
#include "report.hh"
#include "suite.hh"

namespace tlat::harness
{

/**
 * Worker count used when the caller passes jobs = 0: the TLAT_JOBS
 * environment variable when set (>= 1), else the hardware thread
 * count.
 */
unsigned defaultJobs();

/**
 * The per-cell RNG seed: a deterministic function of the scheme name
 * and benchmark name only (FNV-1a over both, finalized with a 64-bit
 * mix). Identical on every platform, for every thread count, in every
 * run — a stochastic predictor variant seeded from this stays
 * bit-reproducible under the parallel engine.
 */
std::uint64_t cellSeed(std::string_view scheme,
                       std::string_view benchmark);

/**
 * Measures every scheme on every benchmark, sharding the grid over
 * @p jobs worker threads (0 = defaultJobs()).
 *
 * Each cell constructs its own predictor from the parsed scheme name,
 * so no cell ever observes another cell's warmed state. Diff-data
 * Static Training cells without a training trace are skipped and
 * print as "-", exactly like the serial runner always did.
 *
 * @param column_labels Optional short labels, parallel to
 *        @p scheme_names; empty means use the scheme names.
 * @param metrics_out When non-null, every cell is measured through
 *        the metrics-collecting loop (runProfiledExperiment) and the
 *        per-cell reports are appended in the same fixed scheme-major
 *        cell order as the report merge — so the collected metrics,
 *        like the accuracies, are bit-identical for every jobs count.
 *        Null (the default) keeps the plain zero-overhead loop.
 */
AccuracyReport runSweep(BenchmarkSuite &suite, const std::string &title,
                        const std::vector<std::string> &scheme_names,
                        const std::vector<std::string> &column_labels = {},
                        unsigned jobs = 0,
                        std::vector<RunMetricsReport> *metrics_out =
                            nullptr);

} // namespace tlat::harness

#endif // TLAT_HARNESS_PARALLEL_SWEEP_HH
