#include "ras_experiment.hh"

#include "isa/instruction.hh"
#include "sim/return_address_stack.hh"

namespace tlat::harness
{

RasResult
runRasExperiment(const trace::TraceBuffer &trace, std::size_t depth)
{
    sim::ReturnAddressStack ras(depth);
    RasResult result;
    for (const trace::BranchRecord &record : trace.records()) {
        if (record.isCall) {
            ++result.calls;
            ras.push(record.pc + isa::kInstructionBytes);
        } else if (record.cls == trace::BranchClass::Return) {
            ++result.returns;
            if (ras.pop() == record.target)
                ++result.correctReturns;
        }
    }
    result.overflows = ras.overflows();
    result.underflows = ras.underflows();
    return result;
}

} // namespace tlat::harness
