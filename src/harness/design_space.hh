/**
 * @file
 * Design-space exploration: sweep Two-Level Adaptive Training
 * configurations over a (history length x table geometry) grid and
 * answer the question hardware designers actually ask of the paper —
 * "what is the best configuration I can afford?"
 *
 * Combines the accuracy harness with the storage cost model, turning
 * Figures 6 and 7 into a single frontier: for each storage budget,
 * the accuracy-maximal configuration among the grid points that fit.
 */

#ifndef TLAT_HARNESS_DESIGN_SPACE_HH
#define TLAT_HARNESS_DESIGN_SPACE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/cost_model.hh"
#include "core/scheme_config.hh"
#include "report.hh"
#include "suite.hh"

namespace tlat::harness
{

/** One AT configuration in the sweep grid. */
struct DesignPoint
{
    unsigned historyBits = 12;
    core::TableKind hrtKind = core::TableKind::Associative;
    std::size_t hrtEntries = 512;

    /** Table 2 scheme name of this point. */
    std::string schemeName() const;

    /** Short column label, e.g. "k12/A512". */
    std::string label() const;

    /** The equivalent parsed scheme configuration. */
    core::SchemeConfig toSchemeConfig() const;

    /** Storage bits of this point (IHRT costed at
     *  @p staticBranches demand entries). */
    std::uint64_t storageBits(
        std::uint64_t staticBranches = 1024) const;

    bool operator==(const DesignPoint &other) const = default;
};

/**
 * Builds the cartesian grid of history lengths and (kind, entries)
 * geometries. Ideal-table points ignore the entry counts and appear
 * once per history length.
 */
std::vector<DesignPoint>
gridPoints(const std::vector<unsigned> &history_bits,
           const std::vector<core::TableKind> &kinds,
           const std::vector<std::size_t> &entry_counts);

/**
 * Measures every point over the suite; columns use label(). Runs on
 * the deterministic parallel sweep engine: @p jobs worker threads
 * (0 = defaultJobs()), identical output for every jobs value.
 */
AccuracyReport sweepDesignSpace(BenchmarkSuite &suite,
                                const std::vector<DesignPoint> &points,
                                unsigned jobs = 0);

/** A measured point: geometry, cost and total-mean accuracy. */
struct FrontierEntry
{
    DesignPoint point;
    std::uint64_t storageBits = 0;
    double totalMeanAccuracy = 0.0;
};

/**
 * Collects (cost, accuracy) for every point from a sweep report.
 * Points missing from the report are skipped.
 */
std::vector<FrontierEntry>
measureFrontier(const std::vector<DesignPoint> &points,
                const AccuracyReport &report,
                std::uint64_t staticBranches = 1024);

/**
 * The accuracy-maximal point whose storage fits @p budget_bits;
 * nullopt when nothing fits. Ties break toward fewer bits.
 */
std::optional<FrontierEntry>
bestUnderBudget(const std::vector<FrontierEntry> &entries,
                std::uint64_t budget_bits);

/**
 * The Pareto frontier: entries not dominated by any cheaper-or-equal
 * entry with higher-or-equal accuracy, sorted by cost.
 */
std::vector<FrontierEntry>
paretoFrontier(std::vector<FrontierEntry> entries);

} // namespace tlat::harness

#endif // TLAT_HARNESS_DESIGN_SPACE_HH
