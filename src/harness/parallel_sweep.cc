#include "parallel_sweep.hh"

#include <optional>

#include "core/scheme_config.hh"
#include "experiment.hh"
#include "predictors/scheme_factory.hh"
#include "util/bitops.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"
#include "workloads/workload.hh"

namespace tlat::harness
{

unsigned
defaultJobs()
{
    const auto text = util::envString("TLAT_JOBS");
    if (!text)
        return util::ThreadPool::hardwareThreads();
    const auto value = parseSize(*text);
    if (!value || *value == 0)
        tlat_fatal("bad TLAT_JOBS value '", *text, "'");
    return static_cast<unsigned>(*value);
}

std::uint64_t
cellSeed(std::string_view scheme, std::string_view benchmark)
{
    // FNV-1a over "scheme\0benchmark", then a SplitMix64 finalizer so
    // near-identical names land far apart in seed space.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const auto absorb = [&hash](std::string_view text) {
        for (const char c : text) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 0x100000001b3ULL;
        }
    };
    absorb(scheme);
    hash *= 0x100000001b3ULL; // NUL separator: "ab","c" != "a","bc"
    absorb(benchmark);
    return mix64(hash);
}

AccuracyReport
runSweep(BenchmarkSuite &suite, const std::string &title,
         const std::vector<std::string> &scheme_names,
         const std::vector<std::string> &column_labels, unsigned jobs,
         std::vector<RunMetricsReport> *metrics_out)
{
    tlat_assert(column_labels.empty() ||
                    column_labels.size() == scheme_names.size(),
                "label list does not match scheme list");
    if (jobs == 0)
        jobs = defaultJobs();

    std::vector<core::SchemeConfig> configs;
    configs.reserve(scheme_names.size());
    bool any_diff = false;
    for (const std::string &name : scheme_names) {
        const auto config = core::SchemeConfig::parse(name);
        if (!config)
            tlat_fatal("bad scheme name '", name, "'");
        any_diff |= config->data == core::DataMode::Diff;
        configs.push_back(*config);
    }

    util::ThreadPool pool(jobs);

    // Phase 1: make sure every trace exists. Generation itself is
    // parallel, but cache content is a pure function of (benchmark,
    // data set, budget) — independent of worker count.
    suite.preload(pool, any_diff);

    // Phase 2: build the cell list single-threaded, in the fixed
    // scheme-major order the report will be merged in.
    struct Cell
    {
        std::size_t scheme;
        std::size_t benchmark;
        const trace::TraceBuffer *test;
        const trace::TraceBuffer *train; // null: Same-data protocol
    };
    const std::vector<std::string> benchmarks = suite.benchmarks();
    std::vector<Cell> cells;
    cells.reserve(scheme_names.size() * benchmarks.size());
    for (std::size_t s = 0; s < scheme_names.size(); ++s) {
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            const trace::TraceBuffer *train = nullptr;
            if (configs[s].data == core::DataMode::Diff) {
                train = suite.trainTrace(benchmarks[b]);
                if (!train)
                    continue; // no training set: leave the cell empty
            }
            cells.push_back(Cell{s, b,
                                 &suite.testTrace(benchmarks[b]),
                                 train});
        }
    }

    // Phase 3: run the cells. One cold predictor per cell — never
    // shared, never reused — writing into a preassigned result slot.
    // The metrics-collecting loop only runs when the caller asked for
    // it; the default path is the plain measure() loop.
    std::vector<std::optional<ExperimentResult>> results(cells.size());
    std::vector<RunMetricsReport> cell_metrics(
        metrics_out ? cells.size() : 0);
    // Explicit capture list (guarded-state lint rule): workers read
    // the shared cell/config tables and write only their preassigned
    // slot of results/cell_metrics — no default capture can smuggle
    // new shared state in unreviewed.
    util::parallelFor(pool, cells.size(), [&cells, &configs,
                                           metrics_out, &cell_metrics,
                                           &results](std::size_t i) {
        const Cell &cell = cells[i];
        const auto predictor =
            predictors::makePredictor(configs[cell.scheme]);
        if (metrics_out) {
            cell_metrics[i] = runProfiledExperiment(
                *predictor, *cell.test, cell.train);
            ExperimentResult result;
            result.scheme = cell_metrics[i].scheme;
            result.benchmark = cell_metrics[i].benchmark;
            result.accuracy = cell_metrics[i].accuracy;
            results[i] = result;
        } else {
            results[i] =
                runExperiment(*predictor, *cell.test, cell.train);
        }
    });

    // Phase 4: merge in cell-list order, which is scheme-major; the
    // report's column order, every cell and the appended metrics are
    // therefore independent of how the pool scheduled phase 3.
    AccuracyReport report(title, workloads::workloadNames(),
                          workloads::floatingPointWorkloadNames());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        const std::string &label =
            column_labels.empty() ? scheme_names[cell.scheme]
                                  : column_labels[cell.scheme];
        report.add(benchmarks[cell.benchmark], label,
                   results[i]->accuracy.accuracyPercent());
        if (metrics_out)
            metrics_out->push_back(std::move(cell_metrics[i]));
    }
    return report;
}

} // namespace tlat::harness
