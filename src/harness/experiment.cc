#include "experiment.hh"

namespace tlat::harness
{

AccuracyCounter
measure(core::BranchPredictor &predictor,
        const trace::TraceBuffer &test)
{
    AccuracyCounter accuracy;
    for (const trace::BranchRecord &record : test.records()) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        const bool predicted = predictor.predict(record);
        accuracy.record(predicted == record.taken);
        predictor.update(record);
    }
    return accuracy;
}

ExperimentResult
runExperiment(core::BranchPredictor &predictor,
              const trace::TraceBuffer &test,
              const trace::TraceBuffer *train)
{
    predictor.reset();
    if (predictor.needsTraining())
        predictor.train(train ? *train : test);

    ExperimentResult result;
    result.scheme = predictor.name();
    result.benchmark = test.name();
    result.accuracy = measure(predictor, test);
    return result;
}

} // namespace tlat::harness
