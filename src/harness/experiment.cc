#include "experiment.hh"

#include <algorithm>

namespace tlat::harness
{

AccuracyCounter
measure(core::BranchPredictor &predictor,
        const trace::TraceBuffer &test)
{
    // Routed through the chunk iterator: with TLAT_CHUNK_RECORDS
    // unset the stream degenerates to one whole-buffer chunk that
    // re-shares the trace's cached predecode artifact (compiled once
    // per trace and shared read-only by every cell that replays it),
    // so the legacy cost model is unchanged; when set, the whole
    // sweep engine runs chunked with bit-identical results.
    trace::BufferChunkStream stream(test,
                                    trace::defaultChunkRecords());
    return measureStream(predictor, stream);
}

AccuracyCounter
measureStream(core::BranchPredictor &predictor,
              trace::ChunkStream &stream)
{
    AccuracyCounter accuracy;
    while (const trace::TraceChunk *chunk = stream.next())
        predictor.simulateBatch(chunk->view, accuracy);
    return accuracy;
}

AccuracyCounter
measureReference(core::BranchPredictor &predictor,
                 const trace::TraceBuffer &test)
{
    AccuracyCounter accuracy;
    for (const trace::BranchRecord &record : test.records()) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        const bool predicted = predictor.predict(record);
        accuracy.record(predicted == record.taken);
        predictor.update(record);
    }
    return accuracy;
}

ExperimentResult
runExperiment(core::BranchPredictor &predictor,
              const trace::TraceBuffer &test,
              const trace::TraceBuffer *train)
{
    predictor.reset();
    if (predictor.needsTraining())
        predictor.train(train ? *train : test);

    ExperimentResult result;
    result.scheme = predictor.name();
    result.benchmark = test.name();
    result.accuracy = measure(predictor, test);
    return result;
}

H2pReport
buildH2pReport(const BranchProfile &profile,
               const MetricsOptions &options)
{
    H2pReport report;
    report.thresholds = options.h2pThresholds;
    report.totalExecutions = profile.totalExecutions();
    report.totalMispredictions = profile.totalMispredictions();
    // allSites() is the canonical deterministic order; classifying in
    // that order makes the capped site list a pure function of the
    // tallies.
    for (const BranchSite &site : profile.allSites()) {
        ++report.staticSites;
        report.systematicMisses += site.systematicMisses;
        report.transientMisses += site.transientMisses;
        const SiteClass cls = classifySite(site, report.thresholds);
        if (cls == SiteClass::Stable)
            continue;
        ++report.h2pSiteCount;
        report.h2pExecutions += site.executions;
        report.h2pMispredictions += site.mispredictions;
        if (report.sites.size() < options.h2pSites)
            report.sites.push_back(H2pSite{site, cls});
    }
    return report;
}

RunMetricsReport
measureWithMetrics(core::BranchPredictor &predictor,
                   const trace::TraceBuffer &test,
                   const MetricsOptions &options)
{
    // One loop implementation for both faces: the whole-buffer call
    // is the stream loop over a degenerate single chunk (zero-copy),
    // so chunked and unchunked metrics cannot drift apart.
    trace::BufferChunkStream stream(test,
                                    trace::defaultChunkRecords());
    return measureStreamWithMetrics(predictor, stream, options);
}

RunMetricsReport
measureStreamWithMetrics(core::BranchPredictor &predictor,
                         trace::ChunkStream &stream,
                         const MetricsOptions &options)
{
    RunMetricsReport report;
    report.scheme = predictor.name();
    report.benchmark = stream.name();
    report.options = options;
    report.options.warmupWindow =
        std::max<std::uint64_t>(1, options.warmupWindow);

    BranchProfile profile;
    std::uint64_t window_branches = 0;
    std::uint64_t window_hits = 0;
    const auto closeWindow = [&]() {
        WarmupPoint point;
        point.branches = report.accuracy.total();
        point.windowAccuracyPercent =
            100.0 * static_cast<double>(window_hits) /
            static_cast<double>(window_branches);
        point.cumulativeAccuracyPercent =
            report.accuracy.accuracyPercent();
        report.warmupCurve.push_back(point);
        window_branches = 0;
        window_hits = 0;
    };

    // Window and profile state live outside the chunk loop, so chunk
    // boundaries are invisible to every derived metric: the record
    // walk is the concatenation of the chunks, which the stream
    // contract defines to equal the whole trace in order.
    while (const trace::TraceChunk *chunk = stream.next()) {
        for (const trace::BranchRecord &record : chunk->records) {
            if (record.cls != trace::BranchClass::Conditional)
                continue;
            const bool predicted = predictor.predict(record);
            const bool correct = predicted == record.taken;
            report.accuracy.record(correct);
            profile.record(record.pc, correct, record.taken);
            ++window_branches;
            if (correct)
                ++window_hits;
            if (window_branches == report.options.warmupWindow)
                closeWindow();
            predictor.update(record);
        }
    }
    if (window_branches > 0)
        closeWindow(); // final partial window

    predictor.collectMetrics(report.predictor);
    report.topOffenders = profile.worstSites(options.topOffenders);
    report.h2p = buildH2pReport(profile, report.options);
    return report;
}

RunMetricsReport
runProfiledExperiment(core::BranchPredictor &predictor,
                      const trace::TraceBuffer &test,
                      const trace::TraceBuffer *train,
                      const MetricsOptions &options)
{
    predictor.reset();
    if (predictor.needsTraining())
        predictor.train(train ? *train : test);
    return measureWithMetrics(predictor, test, options);
}

} // namespace tlat::harness
