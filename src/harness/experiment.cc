#include "experiment.hh"

#include <algorithm>

namespace tlat::harness
{

AccuracyCounter
measure(core::BranchPredictor &predictor,
        const trace::TraceBuffer &test)
{
    AccuracyCounter accuracy;
    // The predecoded artifact is compiled once per trace (preload
    // builds it eagerly; otherwise the first measurement does) and
    // shared read-only by every cell that replays the trace.
    predictor.simulateBatch(test.predecodedView(), accuracy);
    return accuracy;
}

AccuracyCounter
measureReference(core::BranchPredictor &predictor,
                 const trace::TraceBuffer &test)
{
    AccuracyCounter accuracy;
    for (const trace::BranchRecord &record : test.records()) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        const bool predicted = predictor.predict(record);
        accuracy.record(predicted == record.taken);
        predictor.update(record);
    }
    return accuracy;
}

ExperimentResult
runExperiment(core::BranchPredictor &predictor,
              const trace::TraceBuffer &test,
              const trace::TraceBuffer *train)
{
    predictor.reset();
    if (predictor.needsTraining())
        predictor.train(train ? *train : test);

    ExperimentResult result;
    result.scheme = predictor.name();
    result.benchmark = test.name();
    result.accuracy = measure(predictor, test);
    return result;
}

H2pReport
buildH2pReport(const BranchProfile &profile,
               const MetricsOptions &options)
{
    H2pReport report;
    report.thresholds = options.h2pThresholds;
    report.totalExecutions = profile.totalExecutions();
    report.totalMispredictions = profile.totalMispredictions();
    // allSites() is the canonical deterministic order; classifying in
    // that order makes the capped site list a pure function of the
    // tallies.
    for (const BranchSite &site : profile.allSites()) {
        ++report.staticSites;
        report.systematicMisses += site.systematicMisses;
        report.transientMisses += site.transientMisses;
        const SiteClass cls = classifySite(site, report.thresholds);
        if (cls == SiteClass::Stable)
            continue;
        ++report.h2pSiteCount;
        report.h2pExecutions += site.executions;
        report.h2pMispredictions += site.mispredictions;
        if (report.sites.size() < options.h2pSites)
            report.sites.push_back(H2pSite{site, cls});
    }
    return report;
}

RunMetricsReport
measureWithMetrics(core::BranchPredictor &predictor,
                   const trace::TraceBuffer &test,
                   const MetricsOptions &options)
{
    RunMetricsReport report;
    report.scheme = predictor.name();
    report.benchmark = test.name();
    report.options = options;
    report.options.warmupWindow =
        std::max<std::uint64_t>(1, options.warmupWindow);

    BranchProfile profile;
    std::uint64_t window_branches = 0;
    std::uint64_t window_hits = 0;
    const auto closeWindow = [&]() {
        WarmupPoint point;
        point.branches = report.accuracy.total();
        point.windowAccuracyPercent =
            100.0 * static_cast<double>(window_hits) /
            static_cast<double>(window_branches);
        point.cumulativeAccuracyPercent =
            report.accuracy.accuracyPercent();
        report.warmupCurve.push_back(point);
        window_branches = 0;
        window_hits = 0;
    };

    for (const trace::BranchRecord &record : test.records()) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        const bool predicted = predictor.predict(record);
        const bool correct = predicted == record.taken;
        report.accuracy.record(correct);
        profile.record(record.pc, correct, record.taken);
        ++window_branches;
        if (correct)
            ++window_hits;
        if (window_branches == report.options.warmupWindow)
            closeWindow();
        predictor.update(record);
    }
    if (window_branches > 0)
        closeWindow(); // final partial window

    predictor.collectMetrics(report.predictor);
    report.topOffenders = profile.worstSites(options.topOffenders);
    report.h2p = buildH2pReport(profile, report.options);
    return report;
}

RunMetricsReport
runProfiledExperiment(core::BranchPredictor &predictor,
                      const trace::TraceBuffer &test,
                      const trace::TraceBuffer *train,
                      const MetricsOptions &options)
{
    predictor.reset();
    if (predictor.needsTraining())
        predictor.train(train ? *train : test);
    return measureWithMetrics(predictor, test, options);
}

} // namespace tlat::harness
