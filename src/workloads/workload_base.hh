/**
 * @file
 * Shared base class for the nine workload implementations.
 */

#ifndef TLAT_WORKLOADS_WORKLOAD_BASE_HH
#define TLAT_WORKLOADS_WORKLOAD_BASE_HH

#include <algorithm>

#include "util/logging.hh"
#include "workload.hh"

namespace tlat::workloads
{

/** Implements the data-set bookkeeping common to all workloads. */
class WorkloadBase : public Workload
{
  public:
    std::vector<std::string>
    dataSets() const override
    {
        std::vector<std::string> sets = {testSet()};
        if (auto train = trainSet())
            sets.push_back(*train);
        return sets;
    }

  protected:
    /** Fatal unless @p dataSet is one of dataSets(). */
    void
    checkDataSet(const std::string &dataSet) const
    {
        const auto sets = dataSets();
        if (std::find(sets.begin(), sets.end(), dataSet) ==
            sets.end()) {
            tlat_fatal("workload '", name(), "' has no data set '",
                       dataSet, "'");
        }
    }
};

// Factory functions, one per benchmark (defined in the per-benchmark
// source files).
std::unique_ptr<Workload> makeEqntott();
std::unique_ptr<Workload> makeEspresso();
std::unique_ptr<Workload> makeGcc();
std::unique_ptr<Workload> makeLi();
std::unique_ptr<Workload> makeDoduc();
std::unique_ptr<Workload> makeFpppp();
std::unique_ptr<Workload> makeMatrix300();
std::unique_ptr<Workload> makeSpice2g6();
std::unique_ptr<Workload> makeTomcatv();

} // namespace tlat::workloads

#endif // TLAT_WORKLOADS_WORKLOAD_BASE_HH
