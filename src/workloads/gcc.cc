/**
 * @file
 * gcc mirror: token-driven compilation phases.
 *
 * SPEC'89 gcc is by far the branchiest benchmark of the suite: the
 * most static conditional branches (paper Table 1: 6922 — 6x the next
 * program), an integer-typical ~24% dynamic branch fraction, and
 * irregular, data-driven control flow. It is the benchmark where
 * predictor quality separates most clearly (paper Figure 10).
 *
 * The mirror models a compiler's shape directly:
 *  - a lexer producing a token stream with source-code-like locality
 *    (runs of repeated token types, selected through a long compare
 *    chain over a skewed distribution);
 *  - a parse phase dispatching each token through a 48-entry jump
 *    table to generated handlers full of biased attribute tests and
 *    symbol-table probe loops;
 *  - a codegen phase re-dispatching the buffered tokens to a second
 *    handler family;
 *  - a peephole pass matching 64 two-slot patterns over the emitted
 *    buffer (many static branches, mostly not taken).
 *
 * Data sets (paper Table 3: cexp.i / dbxout.i): "cexp" (training) and
 * "dbxout" (testing) differ in LCG seed and run-length mask, both of
 * which live in the data image — the code is identical.
 */

#include "emit_helpers.hh"
#include "util/random.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

constexpr unsigned kNumTokenTypes = 48;
constexpr std::int64_t kTokensPerPass = 512;
constexpr unsigned kSymtabSlots = 64;

class Gcc : public WorkloadBase
{
  public:
    std::string name() const override { return "gcc"; }
    bool isFloatingPoint() const override { return false; }
    std::string testSet() const override { return "dbxout"; }
    std::optional<std::string> trainSet() const override
    {
        return "cexp";
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        const bool train = dataSet == "cexp";

        ProgramBuilder b(name());
        Rng gen(0x9cc001);

        // Data-set parameters: [lcg seed, run-length mask].
        LcgEmitter lcg(b, train ? 0x9cce1ULL : 0x9ccdbULL);
        const std::uint64_t param_addr =
            b.data({train ? std::uint64_t{7} : std::uint64_t{15}});

        // Pass counter: alternating "source file personalities" so
        // the attribute distributions drift between passes — the
        // nonstationarity that favours run-time adaptation over
        // preset profiling statistics.
        const std::uint64_t pass_addr = b.data({0});

        const std::uint64_t token_buf =
            b.bss(static_cast<std::uint64_t>(kTokensPerPass));
        const std::uint64_t out_buf =
            b.bss(static_cast<std::uint64_t>(kTokensPerPass) + 2);
        const std::uint64_t symtab = b.bss(kSymtabSlots);
        // Lexer state: [current type, run remaining].
        const std::uint64_t lex_state = b.data({0, 0});

        // Skewed type distribution over a 12-bit draw, fixed at
        // generation time (part of the "compiler", not the input).
        std::vector<std::uint32_t> cumulative(kNumTokenTypes);
        {
            double total = 0;
            std::vector<double> weight(kNumTokenTypes);
            for (unsigned t = 0; t < kNumTokenTypes; ++t) {
                weight[t] = 1.0 / static_cast<double>(t + 2);
                total += weight[t];
            }
            double acc = 0;
            for (unsigned t = 0; t < kNumTokenTypes; ++t) {
                acc += weight[t];
                cumulative[t] = static_cast<std::uint32_t>(
                    4096.0 * acc / total);
            }
            cumulative[kNumTokenTypes - 1] = 4096;
        }

        // r19 token_buf, r20 out_buf, r21 symtab, r24 lex state,
        // r25 param addr, r22 out index.
        b.loadImm(19, static_cast<std::int64_t>(token_buf));
        b.loadImm(20, static_cast<std::int64_t>(out_buf));
        b.loadImm(21, static_cast<std::int64_t>(symtab));
        b.loadImm(24, static_cast<std::int64_t>(lex_state));
        b.loadImm(25, static_cast<std::int64_t>(param_addr));
        b.li(22, 0);
        // r13 = personality phase (0/1), flipped every pass; r14 = the
        // attribute perturbation applied in that phase.
        b.loadImm(1, static_cast<std::int64_t>(pass_addr));
        b.ld(13, 1, 0);
        b.addi(2, 13, 1);
        b.st(1, 2, 0);
        b.andi(13, 13, 1);
        b.li(14, 256);
        b.mul(14, 14, 13);

        Label parse_table = b.newLabel();
        Label codegen_table = b.newLabel();
        std::vector<Label> parse_handlers(kNumTokenTypes);
        std::vector<Label> codegen_handlers(kNumTokenTypes);
        for (unsigned t = 0; t < kNumTokenTypes; ++t) {
            parse_handlers[t] = b.newLabel();
            codegen_handlers[t] = b.newLabel();
        }

        // emit_word(r10 = value): append to the output buffer; the
        // wrap is the rare case. Called from every parse handler —
        // gcc's obstack-style emit helper.
        emit_word_ = b.newLabel("emit_word");
        {
            Label over = b.newLabel();
            b.jmp(over);
            b.bind(emit_word_);
            Label wrap = b.newLabel();
            b.slli(1, 22, 3);
            b.add(1, 1, 20);
            b.st(1, 10, 0);
            b.addi(22, 22, 1);
            b.li(2, static_cast<std::int32_t>(kTokensPerPass - 1));
            b.bge(22, 2, wrap);
            b.ret();
            b.bind(wrap);
            b.li(22, 0);
            b.ret();
            b.bind(over);
        }

        // ================= phase A: lex + parse =================
        b.li(4, 0); // token index
        Label lex_loop = b.newLabel();
        b.bind(lex_loop);

        // -- lexer: refresh the run if exhausted.
        b.ld(6, 24, 0);  // current type
        b.ld(7, 24, 8);  // run remaining
        Label in_run = b.newLabel();
        b.bne(7, 0, in_run);
        // Draw a fresh type through the compare chain.
        lcg.emitNextBelowPow2(b, 8, 9, 4096);
        Label type_done = b.newLabel();
        for (unsigned t = 0; t < kNumTokenTypes; ++t) {
            Label next_check = b.newLabel();
            b.loadImm(9, static_cast<std::int64_t>(cumulative[t]));
            b.bge(8, 9, next_check);
            b.li(6, static_cast<std::int32_t>(t));
            b.jmp(type_done);
            b.bind(next_check);
        }
        b.li(6, 0); // unreachable fallback
        b.bind(type_done);
        // Draw the run length: 2 + (lcg & mask).
        lcg.emitNext(b, 8, 9);
        b.ld(9, 25, 0);
        b.and_(7, 8, 9);
        b.addi(7, 7, 2);
        b.st(24, 6, 0);
        b.bind(in_run);
        b.addi(7, 7, -1);
        b.st(24, 7, 8);

        // token = type | attribute << 8
        lcg.emitNextBelowPow2(b, 8, 9, 4096);
        b.slli(1, 8, 8);
        b.or_(10, 6, 1); // r10 = token word
        b.slli(1, 4, 3);
        b.add(1, 1, 19);
        b.st(1, 10, 0);

        // Line/column bookkeeping: two-sided forward branches with
        // deterministic short periods over the token index (lexers
        // are full of these; they defeat BTFN's direction heuristic
        // while being trivial for pattern history).
        Label col4 = b.newLabel();
        b.andi(2, 4, 3);
        b.bne(2, 0, col4); // taken 3/4
        b.addi(12, 12, 1);
        b.bind(col4);
        Label col3 = b.newLabel();
        b.li(2, 3);
        b.rem(2, 4, 2);
        b.bne(2, 0, col3); // taken 2/3
        b.addi(12, 12, 2);
        b.bind(col3);

        // -- dispatch to the parse handler.
        Label parse_next = b.newLabel();
        b.la(1, parse_table);
        b.slli(2, 6, 2);
        b.add(1, 1, 2);
        b.jr(1);
        b.bind(parse_table);
        for (unsigned t = 0; t < kNumTokenTypes; ++t)
            b.jmp(parse_handlers[t]);

        for (unsigned t = 0; t < kNumTokenTypes; ++t) {
            b.bind(parse_handlers[t]);
            emitParseHandler(b, gen, t, parse_next);
        }

        b.bind(parse_next);
        b.addi(4, 4, 1);
        b.li(1, static_cast<std::int32_t>(kTokensPerPass));
        b.blt(4, 1, lex_loop);

        // ================= phase B: codegen =================
        b.li(4, 0);
        Label cg_loop = b.newLabel();
        Label cg_next = b.newLabel();
        b.bind(cg_loop);
        b.slli(1, 4, 3);
        b.add(1, 1, 19);
        b.ld(10, 1, 0);   // token
        b.andi(6, 10, 63);
        b.srli(11, 10, 8); // attribute
        b.la(1, codegen_table);
        b.slli(2, 6, 2);
        b.add(1, 1, 2);
        b.jr(1);
        b.bind(codegen_table);
        for (unsigned t = 0; t < kNumTokenTypes; ++t)
            b.jmp(codegen_handlers[t]);

        for (unsigned t = 0; t < kNumTokenTypes; ++t) {
            b.bind(codegen_handlers[t]);
            emitCodegenHandler(b, gen, t, cg_next);
        }

        b.bind(cg_next);
        b.addi(4, 4, 1);
        b.li(1, static_cast<std::int32_t>(kTokensPerPass));
        b.blt(4, 1, cg_loop);

        // ================= phase C: peephole =================
        // A real peepholer dispatches on the first slot's opcode and
        // only tests the rules rooted at it: a third jump table, with
        // one small rule block per type (~3 second-slot tests each,
        // kNumPeepholeRules/kNumTokenTypes on average would be ~1,
        // so blocks carry 2-4 generated rules).
        Label peep_table = b.newLabel();
        Label peep_next = b.newLabel();
        Label clamp = b.newLabel();
        Label after_clamp = b.newLabel();
        std::vector<Label> peep_handlers(kNumTokenTypes);
        for (unsigned t = 0; t < kNumTokenTypes; ++t)
            peep_handlers[t] = b.newLabel();

        b.li(4, 0);
        Label peep_loop = b.newLabel();
        b.bind(peep_loop);
        b.slli(1, 4, 3);
        b.add(1, 1, 20);
        b.ld(9, 1, 0);   // out[i]
        b.ld(10, 1, 8);  // out[i+1]
        b.andi(9, 9, 63);
        b.andi(10, 10, 63);
        // Fused slots can exceed the table; clamp is the rare case.
        b.li(2, static_cast<std::int32_t>(kNumTokenTypes));
        b.bge(9, 2, clamp);
        b.bind(after_clamp);
        b.la(1, peep_table);
        b.slli(2, 9, 2);
        b.add(1, 1, 2);
        b.jr(1);
        b.bind(peep_table);
        for (unsigned t = 0; t < kNumTokenTypes; ++t)
            b.jmp(peep_handlers[t]);

        for (unsigned t = 0; t < kNumTokenTypes; ++t) {
            b.bind(peep_handlers[t]);
            // 2-4 rules rooted at this first-slot type; matches are
            // rare forward branches with the rewrites out of line.
            const unsigned rules =
                2 + static_cast<unsigned>(gen.nextBelow(3));
            std::vector<std::pair<Label, Label>> rule_paths;
            for (unsigned rule = 0; rule < rules; ++rule) {
                Label match = b.newLabel();
                Label next_rule = b.newLabel();
                b.li(2, static_cast<std::int32_t>(
                            gen.nextBelow(kNumTokenTypes)));
                b.beq(10, 2, match);
                b.bind(next_rule);
                rule_paths.emplace_back(match, next_rule);
            }
            b.jmp(peep_next);
            for (const auto &[match, next_rule] : rule_paths) {
                b.bind(match);
                b.slli(1, 4, 3); // rewrite: fuse the pair
                b.add(1, 1, 20);
                b.add(2, 9, 10);
                b.st(1, 2, 0);
                b.jmp(next_rule);
            }
        }

        b.bind(peep_next);
        b.addi(4, 4, 1);
        b.li(1, static_cast<std::int32_t>(kTokensPerPass - 1));
        b.blt(4, 1, peep_loop);
        Label peep_done = b.newLabel();
        b.jmp(peep_done);
        b.bind(clamp);
        b.li(9, 0);
        b.jmp(after_clamp);
        b.bind(peep_done);

        b.halt();
        return b.build();
    }

  private:
    /**
     * Parse-phase handler for one token type: biased attribute tests,
     * a symbol-table probe for identifier-like types, output emission.
     * Token in r10, type in r6, attribute available as r10 >> 8.
     */
    void
    emitParseHandler(ProgramBuilder &b, Rng &gen, unsigned type,
                     Label parse_next) const
    {
        b.srli(11, 10, 8); // attribute (12 bits)
        b.xor_(11, 11, 14); // phase perturbation (see build())

        // 2-4 biased attribute tests. The rare normalization paths
        // are laid out after the handler body, compiler-style, so the
        // tests are rarely-taken forward branches.
        struct RareFixup
        {
            Label rare;
            Label back;
            std::int32_t addend;
        };
        std::vector<RareFixup> rare_paths;
        const unsigned tests =
            2 + static_cast<unsigned>(gen.nextBelow(3));
        for (unsigned i = 0; i < tests; ++i) {
            const std::int32_t threshold =
                3000 + static_cast<std::int32_t>(gen.nextBelow(1000));
            RareFixup fixup{b.newLabel(), b.newLabel(),
                            static_cast<std::int32_t>(
                                gen.nextBelow(64))};
            b.li(2, threshold);
            b.bge(11, 2, fixup.rare); // taken ~5-25%
            b.bind(fixup.back);
            rare_paths.push_back(fixup);
        }

        // Identifier-ish types (every third) probe the symbol table.
        if (type % 3 == 0) {
            Label probe = b.newLabel();
            Label hit = b.newLabel();
            Label insert = b.newLabel();
            Label probe_done = b.newLabel();
            b.andi(5, 11, kSymtabSlots - 1); // slot
            b.li(3, 0);                      // probe budget
            b.bind(probe);
            b.slli(1, 5, 3);
            b.add(1, 1, 21);
            b.ld(2, 1, 0);
            b.beq(2, 0, insert);   // empty slot: insert
            b.beq(2, 11, hit);     // found
            b.addi(5, 5, 1);       // linear probe
            b.andi(5, 5, kSymtabSlots - 1);
            b.addi(3, 3, 1);
            b.li(2, 8);
            b.blt(3, 2, probe);    // give up after 8 probes
            b.jmp(probe_done);
            b.bind(insert);
            b.st(1, 11, 0);
            b.jmp(probe_done);
            b.bind(hit);
            b.bind(probe_done);
        }

        // Emit 1-2 output words through the shared helper.
        const unsigned emits =
            1 + static_cast<unsigned>(gen.nextBelow(2));
        for (unsigned i = 0; i < emits; ++i)
            b.call(emit_word_);
        b.jmp(parse_next);

        // -- cold paths of this handler.
        for (const RareFixup &fixup : rare_paths) {
            b.bind(fixup.rare);
            b.srli(11, 11, 1);
            b.addi(11, 11, fixup.addend);
            b.jmp(fixup.back);
        }
    }

    /**
     * Codegen-phase handler: instruction-selection-style nested tests
     * plus a short emit loop. Token in r10, type r6, attribute r11.
     */
    /** Shared emit helper entry (set during build()). */
    mutable Label emit_word_;

    void
    emitCodegenHandler(ProgramBuilder &b, Rng &gen, unsigned type,
                       Label cg_next) const
    {
        // Addressing-mode style nested decision: two levels.
        Label mode_b = b.newLabel();
        Label mode_done = b.newLabel();
        const std::int32_t split =
            1000 + static_cast<std::int32_t>(gen.nextBelow(2000));
        b.li(2, split);
        b.bge(11, 2, mode_b);
        b.andi(12, 11, 7);
        b.jmp(mode_done);
        b.bind(mode_b);
        b.srli(12, 11, 3);
        b.andi(12, 12, 7);
        b.bind(mode_done);

        // Emit loop: type-dependent fixed trip count 1..4 — short
        // loops with per-type period, bread and butter for pattern
        // history. The buffer wrap is the rare case, out of line.
        const std::int32_t trips =
            1 + static_cast<std::int32_t>(type % 4);
        Label wrap = b.newLabel();
        Label after_wrap = b.newLabel();
        Label spill = b.newLabel();
        Label after_spill = b.newLabel();
        b.li(5, 0);
        Label emit_loop = b.newLabel();
        b.bind(emit_loop);
        b.slli(1, 22, 3);
        b.add(1, 1, 20);
        b.add(2, 10, 5);
        b.st(1, 2, 0);
        b.addi(22, 22, 1);
        b.li(2, static_cast<std::int32_t>(kTokensPerPass - 1));
        b.bge(22, 2, wrap);
        b.bind(after_wrap);
        b.addi(5, 5, 1);
        b.li(2, trips);
        b.blt(5, 2, emit_loop);

        // Occasional spill-style test on the running index; the
        // spill itself is the rare case (1/8), out of line.
        if (type % 2 == 0) {
            b.andi(2, 12, 7);
            b.beq(2, 0, spill);
            b.bind(after_spill);
        }
        b.jmp(cg_next);

        // -- cold paths.
        b.bind(wrap);
        b.li(22, 0);
        b.jmp(after_wrap);
        if (type % 2 == 0) {
            b.bind(spill);
            b.addi(12, 12, 1);
            b.jmp(after_spill);
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeGcc()
{
    return std::make_unique<Gcc>();
}

} // namespace tlat::workloads
