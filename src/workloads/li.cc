/**
 * @file
 * li mirror: recursion-dominated interpreter workloads.
 *
 * SPEC'89 li is the xlisp interpreter; the paper trains it on a Tower
 * of Hanoi script and tests on Eight Queens (Table 3), making it the
 * benchmark where Static Training degrades most (~5%) when the
 * training input differs: the two scripts drive disjoint parts of the
 * interpreter.
 *
 * The mirror embeds both kernels in one program image — recursive
 * Hanoi and backtracking Eight Queens — selected by a data word, with
 * shared bookkeeping subroutines (move recording, board audit) so the
 * static branch sets of the two runs partially overlap, exactly the
 * situation that hurts cross-trained Static Training while leaving
 * Two-Level Adaptive Training unaffected.
 */

#include <vector>

#include "emit_helpers.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

constexpr std::int32_t kHanoiDepth = 12;

class Li : public WorkloadBase
{
  public:
    std::string name() const override { return "li"; }
    bool isFloatingPoint() const override { return false; }
    std::string testSet() const override { return "queens"; }
    std::optional<std::string> trainSet() const override
    {
        return "hanoi";
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        const std::uint64_t selector = dataSet == "queens" ? 1 : 0;

        ProgramBuilder b(name());
        const std::uint64_t sel_addr = b.data({selector});
        const std::uint64_t count_addr = b.data({0});
        const std::uint64_t board_base = b.bss(16);
        b.defineDataSymbol("selector", sel_addr);
        b.defineDataSymbol("counter", count_addr);
        b.defineDataSymbol("board", board_base);

        emitStackInit(b, 1 << 12);
        b.loadImm(20, static_cast<std::int64_t>(board_base));
        b.loadImm(21, static_cast<std::int64_t>(count_addr));
        b.li(22, 8);
        // Interpreter-style type tags: every "object" the scripts
        // touch carries tag 42; the tag checks below model xlisp's
        // ubiquitous type dispatch (always the same direction at a
        // given site, like real interpreter runs).
        b.li(17, 42);
        b.li(18, 42);

        Label hanoi = b.newLabel("hanoi");
        Label queens = b.newLabel("queens");
        Label safe = b.newLabel("safe");
        Label record_move = b.newLabel("record_move");
        Label audit = b.newLabel("audit");
        Label do_hanoi = b.newLabel();
        Label epilogue = b.newLabel();
        // Interpreter error exit (type errors; never reached). Bound
        // at the very end so the checks are forward, rarely-taken
        // branches, the layout a compiler gives cold error paths.
        Label error_exit = b.newLabel();

        // ---- driver: data word selects the script.
        b.loadImm(1, static_cast<std::int64_t>(sel_addr));
        b.ld(19, 1, 0);
        b.beq(19, 0, do_hanoi);
        b.li(11, 0); // queens(col = 0)
        b.call(queens);
        b.jmp(epilogue);
        b.bind(do_hanoi);
        b.li(11, kHanoiDepth);
        b.li(12, 0);
        b.li(13, 1);
        b.li(14, 2);
        b.call(hanoi);
        b.bind(epilogue);
        b.halt();

        // ---- hanoi(n r11, from r12, to r13, via r14).
        {
            b.bind(hanoi);
            Label recurse = b.newLabel();
            b.bne(11, 0, recurse);
            b.ret();
            b.bind(recurse);
            // Interpreter overhead: tag-check the arguments (always
            // passes) and walk the 3-element argument list.
            b.bne(17, 18, error_exit);
            b.li(9, 0);
            Label arg_scan = b.newLabel();
            b.bind(arg_scan);
            b.addi(9, 9, 1);
            b.li(10, 3);
            b.blt(9, 10, arg_scan);
            emitPush(b, 31);
            emitPush(b, 11);
            emitPush(b, 12);
            emitPush(b, 13);
            emitPush(b, 14);
            // hanoi(n-1, from, via, to)
            b.addi(11, 11, -1);
            b.mov(1, 13);
            b.mov(13, 14);
            b.mov(14, 1);
            b.call(hanoi);
            // Reload the saved frame: [via, to, from, n, ra].
            b.ld(14, kSp, 0);
            b.ld(13, kSp, 8);
            b.ld(12, kSp, 16);
            b.ld(11, kSp, 24);
            b.call(record_move);
            // hanoi(n-1, via, to, from)
            b.addi(11, 11, -1);
            b.mov(1, 12);
            b.mov(12, 14);
            b.mov(14, 1);
            b.call(hanoi);
            emitPop(b, 14);
            emitPop(b, 13);
            emitPop(b, 12);
            emitPop(b, 11);
            emitPop(b, 31);
            b.ret();
        }

        // ---- record_move(from r12, to r13): shared bookkeeping.
        {
            b.bind(record_move);
            b.ld(1, 21, 0);
            b.addi(1, 1, 1);
            b.st(21, 1, 0);
            b.slli(2, 12, 3);
            b.add(2, 2, 20);
            b.ld(3, 2, 0);
            b.addi(3, 3, -1);
            b.st(2, 3, 0);
            b.slli(2, 13, 3);
            b.add(2, 2, 20);
            b.ld(3, 2, 0);
            b.addi(3, 3, 1);
            b.st(2, 3, 0);
            // Every 64th move, audit the board (shared subroutine).
            Label no_audit = b.newLabel();
            b.andi(2, 1, 63);
            b.bne(2, 0, no_audit);
            emitPush(b, 31);
            b.call(audit);
            emitPop(b, 31);
            b.bind(no_audit);
            b.ret();
        }

        // ---- audit: checksum the 16-word board (shared).
        {
            b.bind(audit);
            b.li(4, 0);
            b.li(5, 0);
            Label loop = b.newLabel();
            Label non_negative = b.newLabel();
            b.bind(loop);
            b.slli(1, 4, 3);
            b.add(1, 1, 20);
            b.ld(2, 1, 0);
            b.bge(2, 0, non_negative);
            b.sub(2, 0, 2);
            b.bind(non_negative);
            b.add(5, 5, 2);
            b.addi(4, 4, 1);
            b.li(1, 16);
            b.blt(4, 1, loop);
            b.ret();
        }

        // ---- queens(col r11): backtracking search.
        {
            b.bind(queens);
            Label recurse = b.newLabel();
            Label row_loop = b.newLabel();
            Label next_row = b.newLabel();
            b.bne(11, 22, recurse);
            // col == 8: record the solution, audit occasionally.
            b.ld(1, 21, 0);
            b.addi(1, 1, 1);
            b.st(21, 1, 0);
            Label no_audit = b.newLabel();
            b.andi(2, 1, 15);
            b.bne(2, 0, no_audit);
            emitPush(b, 31);
            b.call(audit);
            emitPop(b, 31);
            b.bind(no_audit);
            b.ret();
            b.bind(recurse);
            Label do_place = b.newLabel();
            // Interpreter overhead: tag check plus a 3-element
            // argument-list walk per eval.
            b.bne(17, 18, error_exit);
            b.li(9, 0);
            Label eval_args = b.newLabel();
            b.bind(eval_args);
            b.addi(9, 9, 1);
            b.li(10, 3);
            b.blt(9, 10, eval_args);
            emitPush(b, 31);
            b.li(16, 0); // row
            b.bind(row_loop);
            // Odd/even row bookkeeping: a two-sided forward branch
            // alternating every row (period 2 — pattern history
            // captures it, one-bit and counter schemes cannot).
            Label odd_row = b.newLabel();
            b.andi(9, 16, 1);
            b.bne(9, 0, odd_row);
            b.addi(9, 9, 1);
            b.bind(odd_row);
            b.call(safe);
            // Placement is the rarer outcome (~30%); it lives out of
            // line, compiler-style.
            b.bne(13, 0, do_place);
            b.bind(next_row);
            b.addi(16, 16, 1);
            b.blt(16, 22, row_loop);
            emitPop(b, 31);
            b.ret();
            b.bind(do_place);
            b.slli(1, 11, 3); // place: board[col] = row
            b.add(1, 1, 20);
            b.st(1, 16, 0);
            emitPush(b, 16);
            emitPush(b, 11);
            b.addi(11, 11, 1);
            b.call(queens);
            emitPop(b, 11);
            emitPop(b, 16);
            b.jmp(next_row);
        }

        // ---- safe(row r16, col r11) -> r13: conflict scan (leaf).
        // The interpreter evaluates a distinct "safe?" expression per
        // column, so the check is dispatched to one of eight
        // per-column specializations — structurally identical clones
        // with their own static branch sites, the way xlisp unfolds
        // per-call-site bytecode.
        {
            b.bind(safe);
            Label stable = b.newLabel();
            std::vector<Label> clones;
            for (int c = 0; c < 8; ++c)
                clones.push_back(b.newLabel());
            b.la(1, stable);
            b.slli(2, 11, 2);
            b.add(1, 1, 2);
            b.jr(1);
            b.bind(stable);
            for (int c = 0; c < 8; ++c)
                b.jmp(clones[c]);

            for (int c = 0; c < 8; ++c) {
                b.bind(clones[c]);
                Label loop = b.newLabel();
                Label done = b.newLabel();
                Label unsafe = b.newLabel();
                Label positive = b.newLabel();
                // Tag check on the board object, then a property-list
                // walk (fixed 3 links) — xlisp-style per-call
                // overhead.
                b.bne(17, 18, error_exit);
                b.li(9, 0);
                Label plist = b.newLabel();
                b.bind(plist);
                b.addi(9, 9, 1);
                b.li(10, 3);
                b.blt(9, 10, plist);
                b.li(13, 1);
                b.li(4, 0); // c
                b.bind(loop);
                b.bge(4, 11, done);
                // Bounds check (always in range).
                b.bge(4, 22, error_exit);
                b.slli(1, 4, 3);
                b.add(1, 1, 20);
                b.ld(5, 1, 0); // board[c]
                b.beq(5, 16, unsafe);
                b.sub(6, 5, 16);
                b.bge(6, 0, positive);
                b.sub(6, 0, 6);
                b.bind(positive);
                b.sub(7, 11, 4);
                b.beq(6, 7, unsafe);
                b.addi(4, 4, 1);
                b.jmp(loop);
                b.bind(unsafe);
                b.li(13, 0);
                b.bind(done);
                b.ret();
            }
        }

        // Cold error exit for the (never-failing) interpreter checks.
        b.bind(error_exit);
        b.halt();

        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeLi()
{
    return std::make_unique<Li>();
}

} // namespace tlat::workloads
