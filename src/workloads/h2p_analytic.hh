/**
 * @file
 * Closed-form steady-state misprediction rates of the paper's
 * Figure-2 automata on analytically tractable branch processes. These
 * are the *external* expected values the adversarial-workload golden
 * tests assert against — derived by hand from the automaton
 * transition tables, never from simulator output.
 *
 * Method (Nicaud/Pivoteau/Vialette's Markov-chain analysis of branch
 * predictors in string matching, applied to core/automaton.hh's
 * tables): for an i.i.d. Bernoulli(p) outcome stream, the automaton
 * state forms a finite Markov chain; solve the stationary balance
 * equations and weight each state's misprediction probability (p when
 * the state predicts not-taken, 1-p when it predicts taken) by its
 * stationary mass. A two-level predictor slices an i.i.d. stream by
 * history pattern into sub-streams that are again i.i.d. Bernoulli(p),
 * so the rate is history-length invariant.
 *
 * Stationary solutions (q = 1 - p):
 *   LT  pi proportional to (q, p); predicts the last outcome:
 *       M = 2pq
 *   A1  2-bit shift register, predicts taken unless both recorded
 *       outcomes were not-taken (state 0, mass q^2):
 *       M = p q^2 + q (1 - q^2)
 *   A2  saturating counter; balance p*pi0 = q*pi1, p*pi1 = q*pi2,
 *       p*pi2 = q*pi3 gives pi ~ (q^3, pq^2, p^2q, p^3)/norm:
 *       M = pq / (1 - 2pq)
 *   A3  A2 with 3 --NT--> 1 fast recovery; balance gives
 *       pi ~ (q^2, pq, p^2 q, p^3) / (q^2 + pq + p^2 q + p^3):
 *       M = pq (1 + p) / (q^2 + pq + p^2 q + p^3)
 *   A4  big-jump hysteresis (1 -T-> 3, 2 -NT-> 0); balance
 *       pi1 = p pi0, pi2 = q pi3, pi3 = (p^2/q^2) pi0:
 *       M = (p + 2p^2 + p^2/q) / (1 + p + p^2/q + p^2/q^2)
 *
 * All five reduce to M = 1/2 at p = 1/2 (the symmetry check), and
 * every formula has been cross-checked against direct stationary
 * iteration of the kAutomatonSpecs tables.
 *
 * For a periodic burst branch (K taken then K not-taken, K larger
 * than the history length) each recurring history pattern sees a
 * deterministic outcome except at the two burst boundaries; walking
 * the tables around a period gives exact per-period miss counts:
 *   LT 4, A1 4, A2 2, A3 3, A4 2  per period of 2K.
 */

#ifndef TLAT_WORKLOADS_H2P_ANALYTIC_HH
#define TLAT_WORKLOADS_H2P_ANALYTIC_HH

#include "core/automaton.hh"
#include "util/logging.hh"

namespace tlat::workloads
{

/**
 * Steady-state misprediction rate of @p kind predicting an i.i.d.
 * Bernoulli(@p p) branch, 0 < p < 1.
 */
inline double
analyticIidMissRate(core::AutomatonKind kind, double p)
{
    const double q = 1.0 - p;
    switch (kind) {
    case core::AutomatonKind::LastTime:
        return 2.0 * p * q;
    case core::AutomatonKind::A1:
        return p * q * q + q * (1.0 - q * q);
    case core::AutomatonKind::A2:
        return p * q / (1.0 - 2.0 * p * q);
    case core::AutomatonKind::A3:
        return p * q * (1.0 + p) /
               (q * q + p * q + p * p * q + p * p * p);
    case core::AutomatonKind::A4:
        return (p + 2.0 * p * p + p * p / q) /
               (1.0 + p + p * p / q + (p * p) / (q * q));
    default:
        tlat_fatal("no analytic rate for automaton kind");
    }
}

/**
 * Steady-state misprediction rate of @p kind on a periodic burst
 * branch (@p k taken outcomes then @p k not-taken), as seen through a
 * two-level predictor whose history is shorter than @p k: exact
 * per-period miss count divided by the period 2k.
 */
inline double
analyticBurstMissRate(core::AutomatonKind kind, unsigned k)
{
    const double period = 2.0 * static_cast<double>(k);
    switch (kind) {
    case core::AutomatonKind::LastTime:
        return 4.0 / period; // 1 at each boundary + 1 echo each
    case core::AutomatonKind::A1:
        return 4.0 / period; // 1 entering the taken run, 3 leaving
    case core::AutomatonKind::A2:
        return 2.0 / period; // hysteresis absorbs the echo
    case core::AutomatonKind::A3:
        return 3.0 / period; // fast NT recovery echoes once
    case core::AutomatonKind::A4:
        return 2.0 / period; // big jump re-saturates immediately
    default:
        tlat_fatal("no analytic burst rate for automaton kind");
    }
}

} // namespace tlat::workloads

#endif // TLAT_WORKLOADS_H2P_ANALYTIC_HH
