/**
 * @file
 * espresso mirror: two-level logic minimization cube operations.
 *
 * espresso spends its time intersecting and comparing "cubes" (bit-set
 * representations of product terms): emptiness tests, containment
 * tests, popcount-style distance loops and set compaction. The branch
 * behaviour is data-dependent but biased — most intersections are
 * non-empty, most cubes are not contained in each other — with
 * variable-trip bit-scan loops layered on top.
 *
 * Data sets (paper Table 3): "bca" (testing) and "cps" (training) —
 * the parameters (cube count, literal density) live in the data image
 * so both runs execute identical code.
 */

#include "emit_helpers.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

/** Words per cube (espresso cubes span several machine words). */
constexpr std::int64_t kCubeWords = 4;

class Espresso : public WorkloadBase
{
  public:
    std::string name() const override { return "espresso"; }
    bool isFloatingPoint() const override { return false; }
    std::string testSet() const override { return "bca"; }
    std::optional<std::string> trainSet() const override
    {
        return "cps";
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        const bool train = dataSet == "cps";

        ProgramBuilder b(name());
        LcgEmitter lcg(b, train ? 0xe59e550 : 0xe59e551);

        constexpr std::int64_t kMaxCubes = 64;
        // Parameters in the data image so the code is data-set
        // independent: [cube count, density mask].
        const std::uint64_t params = b.data({
            train ? std::uint64_t{40} : std::uint64_t{56},
            // Literal density masks: sparse enough that some
            // intersections come up empty, dense enough that most do
            // not — the bias espresso's cube loops actually have.
            // The training input ("cps") is a sparser cover; its
            // rare-event rates differ from the testing input's, but
            // no pattern-majority inverts — which is why espresso's
            // Diff column degrades so little (see EXPERIMENTS.md).
            train ? 0x000000f00f0f00ffULL : 0x00ff00f0f00f0f0fULL,
        });
        const std::uint64_t cube_base =
            b.bss(static_cast<std::uint64_t>(kMaxCubes * kCubeWords));
        const std::uint64_t flag_base =
            b.bss(static_cast<std::uint64_t>(kMaxCubes));
        b.defineDataSymbol("params", params);
        b.defineDataSymbol("cubes", cube_base);
        b.defineDataSymbol("flags", flag_base);
        b.defineDataSymbol("lcg_state", lcg.stateAddress());

        // r19 cubes, r20 flags, r21 cube count, r23 density mask.
        b.loadImm(1, static_cast<std::int64_t>(params));
        b.ld(21, 1, 0);
        b.ld(23, 1, 8);
        b.loadImm(19, static_cast<std::int64_t>(cube_base));
        b.loadImm(20, static_cast<std::int64_t>(flag_base));

        // count_literals(r7 = word) -> r13: bit-clear popcount,
        // espresso's cdist kernel as a leaf subroutine.
        Label count_literals = b.newLabel("count_literals");
        Label over_count = b.newLabel();
        b.jmp(over_count);
        {
            b.bind(count_literals);
            b.li(13, 0);
            Label bits = b.newLabel();
            Label bits_done = b.newLabel();
            b.beq(7, 0, bits_done); // empty word: rare forward guard
            b.bind(bits);
            b.addi(2, 7, -1);
            b.and_(7, 7, 2);
            b.addi(13, 13, 1);
            b.bne(7, 0, bits); // bottom-tested bit-clear loop
            b.bind(bits_done);
            b.ret();
        }
        b.bind(over_count);

        // ---- generate cubes and clear flags.
        b.li(4, 0);
        Label gen = b.newLabel();
        b.bind(gen);
        b.slli(1, 4, 5); // cube stride = 32 bytes (4 words)
        b.add(1, 1, 19);
        for (std::int32_t w = 0; w < kCubeWords; ++w) {
            lcg.emitNext(b, 7, 8);
            b.and_(7, 7, 23);
            b.st(1, 7, w * 8);
        }
        b.slli(1, 4, 3);
        b.add(1, 1, 20);
        b.st(1, 0, 0);
        b.addi(4, 4, 1);
        b.blt(4, 21, gen);

        // ---- pairwise sweep: per-pair word loop computing the
        // intersection, then emptiness and containment tests with
        // their rare outcomes laid out out-of-line, compiler-style.
        Label empty_rare = b.newLabel();
        Label contained_rare = b.newLabel();
        Label next_j = b.newLabel();
        Label after_empty = b.newLabel();
        b.li(4, 0); // i
        Label pair_i = b.newLabel();
        Label pair_i_next = b.newLabel();
        b.bind(pair_i);
        b.addi(5, 4, 1);            // j = i + 1
        b.bge(5, 21, pair_i_next);  // last i has no pairs (rare)
        b.slli(8, 4, 5);
        b.add(8, 8, 19);            // &cube[i]
        Label pair_j = b.newLabel();
        b.bind(pair_j);
        b.slli(1, 5, 5);
        b.add(1, 1, 19);            // &cube[j]
        // Word loop (cubes span two words): accumulate the OR of the
        // intersection and the containment flag.
        b.li(6, 0);  // union of intersection words
        b.li(7, 1);  // contained-so-far flag
        b.li(2, 0);  // w
        Label wloop = b.newLabel();
        b.bind(wloop);
        b.slli(3, 2, 3);
        b.add(9, 8, 3);
        b.ld(9, 9, 0);   // a_w
        b.add(10, 1, 3);
        b.ld(10, 10, 0); // b_w
        b.and_(3, 9, 10);
        b.or_(6, 6, 3);
        // Word 0 is the cube's output part and is handled specially —
        // a two-sided forward branch taken for words 1..3 (the
        // deterministic if/else mix real cube loops have).
        Label not_first = b.newLabel();
        b.bne(2, 0, not_first);
        b.or_(11, 9, 10); // output-part union
        b.bind(not_first);
        Label word_contained = b.newLabel();
        b.beq(3, 9, word_contained); // rare: b covers this word of a
        b.li(7, 0);
        b.bind(word_contained);
        b.addi(2, 2, 1);
        b.li(3, static_cast<std::int32_t>(kCubeWords));
        b.blt(2, 3, wloop);
        // Emptiness: empty intersections are the rare case.
        b.beq(6, 0, empty_rare);
        b.bind(after_empty);
        // Containment: rare; sets the covered flag out of line.
        b.bne(7, 0, contained_rare);
        b.bind(next_j);
        b.addi(5, 5, 1);
        b.blt(5, 21, pair_j);
        b.bind(pair_i_next);
        b.addi(4, 4, 1);
        b.blt(4, 21, pair_i);
        Label sweep_done = b.newLabel();
        b.jmp(sweep_done);
        // -- cold paths.
        b.bind(empty_rare);
        b.addi(12, 12, 1); // distance-0 pair count
        b.jmp(next_j);     // empty pairs skip the containment test
        b.bind(contained_rare);
        b.slli(1, 4, 3);   // flag[i] = 1: cube i is covered
        b.add(1, 1, 20);
        b.li(2, 1);
        b.st(1, 2, 0);
        b.jmp(next_j);
        b.bind(sweep_done);

        // ---- distance loop: popcount of each cube's first word via
        // the classic w &= w - 1 bit-clear loop (variable trips).
        b.li(4, 0);
        b.li(12, 0); // literal total
        Label dist = b.newLabel();
        b.bind(dist);
        b.slli(1, 4, 5);
        b.add(1, 1, 19);
        b.ld(7, 1, 0);
        b.call(count_literals);
        b.add(12, 12, 13);
        b.addi(4, 4, 1);
        b.blt(4, 21, dist);

        // ---- compaction: copy uncovered cubes to the front.
        b.li(4, 0);
        b.li(5, 0); // write index
        Label compact = b.newLabel();
        Label skip = b.newLabel();
        b.bind(compact);
        b.slli(1, 4, 3);
        b.add(1, 1, 20);
        b.ld(2, 1, 0);
        b.bne(2, 0, skip); // covered cubes are the rare case
        b.slli(1, 4, 5);
        b.add(1, 1, 19);
        b.slli(2, 5, 5);
        b.add(2, 2, 19);
        for (std::int32_t w = 0; w < kCubeWords; ++w) {
            b.ld(6, 1, w * 8);
            b.st(2, 6, w * 8);
        }
        b.addi(5, 5, 1);
        b.bind(skip);
        b.addi(4, 4, 1);
        b.blt(4, 21, compact);

        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeEspresso()
{
    return std::make_unique<Espresso>();
}

} // namespace tlat::workloads
