/**
 * @file
 * The adversarial workload family (see adversarial.hh): KMP string
 * matching plus alternating / data-dependent / periodic-burst branch
 * kernels. Each analytic branch site is exposed through a code
 * symbol so tests can isolate it with trace filters.
 *
 * All four follow the workload contract: data sets change the initial
 * data image, never the code — every parameter (pattern, pattern
 * length, alphabet shift, failure function) is loaded from data
 * memory, and the pattern/next arrays have fixed capacity so data
 * addresses are data-set invariant.
 */

#include "adversarial.hh"

#include <cstdint>

#include "emit_helpers.hh"
#include "util/logging.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

/** Iterations per pass; state in data memory survives the restart. */
constexpr std::int64_t kPassIterations = 4096;

/** Fixed capacity of the kmp pattern/next arrays (max pattern len). */
constexpr std::size_t kKmpMaxPattern = 8;

// ---- kmp ----------------------------------------------------------

struct KmpParams
{
    const char *set;
    /** Pattern over {0, ..., sigma-1}, length <= kKmpMaxPattern. */
    std::vector<std::uint8_t> pattern;
    /** Alphabet size (power of two; characters are uniform). */
    unsigned sigma;
};

/** The data sets: a^m patterns are the analytic (i.i.d.) cases. */
const std::vector<KmpParams> &
kmpParamSets()
{
    static const std::vector<KmpParams> sets = {
        {"a4s4", {0, 0, 0, 0}, 4},
        {"a4s8", {0, 0, 0, 0}, 8},
        {"a6s2", {0, 0, 0, 0, 0, 0}, 2},
        // Fibonacci-word prefix: nontrivial failure function, so the
        // rescan loop actually revisits characters (not analytic).
        {"fib8s4", {0, 1, 0, 0, 1, 0, 1, 0}, 4},
    };
    return sets;
}

/**
 * KMP preprocessing: the border array and the strong ("next")
 * failure function with the -1 convention (next[0] = -1; a -1 state
 * means "give up on this character and restart at j = 0").
 */
struct KmpTables
{
    std::vector<std::int64_t> next;
    std::int64_t restart; // border of the full pattern
};

KmpTables
kmpTables(const std::vector<std::uint8_t> &pattern)
{
    const std::size_t m = pattern.size();
    std::vector<std::int64_t> border(m + 1);
    border[0] = -1;
    std::int64_t k = -1;
    for (std::size_t j = 1; j <= m; ++j) {
        while (k >= 0 &&
               pattern[static_cast<std::size_t>(k)] != pattern[j - 1])
            k = border[static_cast<std::size_t>(k)];
        ++k;
        border[j] = k;
    }

    KmpTables tables;
    tables.next.resize(m);
    tables.next[0] = -1;
    for (std::size_t j = 1; j < m; ++j) {
        const std::int64_t b = border[j];
        tables.next[j] =
            (pattern[static_cast<std::size_t>(b)] == pattern[j])
            ? tables.next[static_cast<std::size_t>(b)]
            : b;
    }
    tables.restart = border[m];
    return tables;
}

class KmpWorkload : public WorkloadBase
{
  public:
    std::string name() const override { return "kmp"; }
    bool isFloatingPoint() const override { return false; }
    std::string testSet() const override { return "a4s4"; }
    std::optional<std::string> trainSet() const override
    {
        return std::nullopt;
    }

    std::vector<std::string>
    dataSets() const override
    {
        std::vector<std::string> names;
        for (const KmpParams &params : kmpParamSets())
            names.emplace_back(params.set);
        return names;
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        const KmpParams *params = nullptr;
        for (const KmpParams &candidate : kmpParamSets()) {
            if (dataSet == candidate.set)
                params = &candidate;
        }
        tlat_assert(params, "kmp data set lookup");
        const std::size_t m = params->pattern.size();
        tlat_assert(m >= 1 && m <= kKmpMaxPattern,
                    "kmp pattern length out of range");
        const KmpTables tables = kmpTables(params->pattern);

        unsigned shift = 64;
        for (std::uint64_t s = params->sigma; s > 1; s >>= 1) {
            tlat_assert(s % 2 == 0, "kmp alphabet not a power of two");
            --shift;
        }

        ProgramBuilder b("kmp");
        LcgEmitter lcg(b, 0x9e3779b97f4a7c15ULL);

        // [m, char shift, chars per pass, restart j]
        const std::uint64_t params_addr = b.data(
            {m, shift, static_cast<std::uint64_t>(kPassIterations),
             static_cast<std::uint64_t>(tables.restart)});
        b.defineDataSymbol("kmp_params", params_addr);

        std::vector<std::uint64_t> pattern_words(kKmpMaxPattern, 0);
        std::vector<std::uint64_t> next_words(kKmpMaxPattern, 0);
        for (std::size_t j = 0; j < m; ++j) {
            pattern_words[j] = params->pattern[j];
            next_words[j] =
                static_cast<std::uint64_t>(tables.next[j]);
        }
        const std::uint64_t pattern_addr = b.data(pattern_words);
        b.defineDataSymbol("kmp_pattern", pattern_addr);
        const std::uint64_t next_addr = b.data(next_words);
        b.defineDataSymbol("kmp_next", next_addr);

        b.loadImm(1, static_cast<std::int64_t>(params_addr));
        b.ld(21, 1, 0);  // m
        b.ld(22, 1, 8);  // character shift (64 - log2 sigma)
        b.ld(23, 1, 16); // characters per pass
        b.ld(24, 1, 24); // j after a full match
        b.loadImm(19, static_cast<std::int64_t>(pattern_addr));
        b.loadImm(20, static_cast<std::int64_t>(next_addr));
        b.li(4, 0);  // i: characters consumed this pass
        b.li(5, 0);  // j: automaton state
        b.li(26, 0); // match count

        Label char_loop = b.newLabel();
        Label rescan = b.newLabel();
        Label reset_j = b.newLabel();
        Label matched = b.newLabel();
        Label advance = b.newLabel();
        Label compare = b.newLabel("kmp_compare");
        Label fallback = b.newLabel("kmp_fallback");
        Label accept = b.newLabel("kmp_accept");
        Label text_loop = b.newLabel("kmp_loop");

        b.bind(char_loop);
        // One fresh uniform character per outer iteration: the top
        // log2(sigma) bits of the LCG (low bits are weak).
        lcg.emitNext(b, 7, 1);
        b.srl(7, 7, 22);
        b.bind(rescan);
        b.slli(1, 5, 3);
        b.add(1, 1, 19);
        b.ld(8, 1, 0); // pattern[j]
        // THE analytic branch: for a^m patterns it fires exactly once
        // per character against the same pattern entry, so its
        // outcome stream is i.i.d. Bernoulli(1/sigma).
        b.bind(compare);
        b.beq(7, 8, matched);
        b.slli(1, 5, 3);
        b.add(1, 1, 20);
        b.ld(5, 1, 0); // j = next[j]
        b.bind(fallback);
        b.blt(5, 0, reset_j);
        b.jmp(rescan);
        b.bind(reset_j);
        b.li(5, 0);
        b.jmp(advance);
        b.bind(matched);
        b.addi(5, 5, 1);
        b.bind(accept);
        b.bne(5, 21, advance);
        b.addi(26, 26, 1); // full match
        b.mov(5, 24);      // continue at the pattern's border
        b.bind(advance);
        b.addi(4, 4, 1);
        b.bind(text_loop);
        b.blt(4, 23, char_loop);
        b.halt(); // restart: LCG state persists, text stays fresh

        return b.build();
    }
};

// ---- alternating --------------------------------------------------

class AlternatingWorkload : public WorkloadBase
{
  public:
    std::string name() const override { return "alternating"; }
    bool isFloatingPoint() const override { return false; }
    std::string testSet() const override { return "default"; }
    std::optional<std::string> trainSet() const override
    {
        return std::nullopt;
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        ProgramBuilder b("alternating");
        // Phase counters in data memory so the periodic sequences
        // continue seamlessly across restart-on-halt passes.
        const std::uint64_t phases = b.data({0, 0, 0});
        b.defineDataSymbol("alt_phases", phases);

        b.loadImm(19, static_cast<std::int64_t>(phases));
        b.li(4, 0);
        b.loadImm(23, kPassIterations);

        Label loop = b.newLabel();
        b.bind(loop);

        // Period 2: T, N, T, N, ...
        b.ld(1, 19, 0);
        b.xori(1, 1, 1);
        b.st(19, 1, 0);
        {
            Label skip = b.newLabel();
            b.bind(b.newLabel("alt_p2"));
            b.bne(1, 0, skip);
            b.nop();
            b.bind(skip);
        }

        // Period 3: T, T, N (taken while the incremented phase < 3).
        b.ld(1, 19, 8);
        b.addi(1, 1, 1);
        b.slti(2, 1, 3);
        {
            Label keep = b.newLabel();
            b.bind(b.newLabel("alt_p3"));
            b.bne(2, 0, keep);
            b.li(1, 0);
            b.bind(keep);
            b.st(19, 1, 8);
        }

        // Period 4: T, N, N, T (taken while phase mod 4 < 2).
        b.ld(1, 19, 16);
        b.addi(1, 1, 1);
        b.andi(1, 1, 3);
        b.st(19, 1, 16);
        b.slti(2, 1, 2);
        {
            Label skip = b.newLabel();
            b.bind(b.newLabel("alt_p4"));
            b.bne(2, 0, skip);
            b.nop();
            b.bind(skip);
        }

        b.addi(4, 4, 1);
        b.bind(b.newLabel("alt_loop"));
        b.blt(4, 23, loop);
        b.halt();
        return b.build();
    }
};

// ---- datadep ------------------------------------------------------

class DataDepWorkload : public WorkloadBase
{
  public:
    std::string name() const override { return "datadep"; }
    bool isFloatingPoint() const override { return false; }
    std::string testSet() const override { return "default"; }
    std::optional<std::string> trainSet() const override
    {
        return std::nullopt;
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        ProgramBuilder b("datadep");
        LcgEmitter lcg(b, 0x0da7adeb5ULL);
        b.li(4, 0);
        b.loadImm(23, kPassIterations);

        Label loop = b.newLabel();
        b.bind(loop);

        // Fresh independent draw per site; taken probability is set
        // by how many top bits must be zero (beq) or nonzero (bne).
        lcg.emitNext(b, 7, 1);
        b.srli(7, 7, 63);
        {
            Label skip = b.newLabel();
            b.bind(b.newLabel("dd_coin"));
            b.bne(7, 0, skip); // taken w.p. 1/2
            b.nop();
            b.bind(skip);
        }
        lcg.emitNext(b, 7, 1);
        b.srli(7, 7, 62);
        {
            Label skip = b.newLabel();
            b.bind(b.newLabel("dd_quarter"));
            b.beq(7, 0, skip); // taken w.p. 1/4
            b.nop();
            b.bind(skip);
        }
        lcg.emitNext(b, 7, 1);
        b.srli(7, 7, 61);
        {
            Label skip = b.newLabel();
            b.bind(b.newLabel("dd_eighth"));
            b.beq(7, 0, skip); // taken w.p. 1/8
            b.nop();
            b.bind(skip);
        }

        b.addi(4, 4, 1);
        b.bind(b.newLabel("dd_loop"));
        b.blt(4, 23, loop);
        b.halt();
        return b.build();
    }
};

// ---- burst --------------------------------------------------------

class BurstWorkload : public WorkloadBase
{
  public:
    std::string name() const override { return "burst"; }
    bool isFloatingPoint() const override { return false; }
    std::string testSet() const override { return "default"; }
    std::optional<std::string> trainSet() const override
    {
        return std::nullopt;
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        ProgramBuilder b("burst");
        const std::uint64_t phases = b.data({0, 0});
        b.defineDataSymbol("burst_phases", phases);

        b.loadImm(19, static_cast<std::int64_t>(phases));
        b.li(4, 0);
        b.loadImm(23, kPassIterations);

        Label loop = b.newLabel();
        b.bind(loop);

        // 16 taken, 16 not-taken (counter mod 32, taken while < 16).
        b.ld(1, 19, 0);
        b.addi(1, 1, 1);
        b.andi(1, 1, 31);
        b.st(19, 1, 0);
        b.slti(2, 1, 16);
        {
            Label skip = b.newLabel();
            b.bind(b.newLabel("burst16"));
            b.bne(2, 0, skip);
            b.nop();
            b.bind(skip);
        }

        // 8 taken, 8 not-taken (counter mod 16, taken while < 8).
        b.ld(1, 19, 8);
        b.addi(1, 1, 1);
        b.andi(1, 1, 15);
        b.st(19, 1, 8);
        b.slti(2, 1, 8);
        {
            Label skip = b.newLabel();
            b.bind(b.newLabel("burst8"));
            b.bne(2, 0, skip);
            b.nop();
            b.bind(skip);
        }

        b.addi(4, 4, 1);
        b.bind(b.newLabel("burst_loop"));
        b.blt(4, 23, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeKmp()
{
    return std::make_unique<KmpWorkload>();
}

std::unique_ptr<Workload>
makeAlternating()
{
    return std::make_unique<AlternatingWorkload>();
}

std::unique_ptr<Workload>
makeDataDep()
{
    return std::make_unique<DataDepWorkload>();
}

std::unique_ptr<Workload>
makeBurst()
{
    return std::make_unique<BurstWorkload>();
}

} // namespace tlat::workloads
