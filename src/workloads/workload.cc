#include "workload.hh"

#include "adversarial.hh"
#include "util/logging.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

struct RegistryEntry
{
    const char *name;
    std::unique_ptr<Workload> (*factory)();
    bool floatingPoint;
};

// Presentation order follows the paper: integer benchmarks first.
const RegistryEntry kRegistry[] = {
    {"eqntott", makeEqntott, false},
    {"espresso", makeEspresso, false},
    {"gcc", makeGcc, false},
    {"li", makeLi, false},
    {"doduc", makeDoduc, true},
    {"fpppp", makeFpppp, true},
    {"matrix300", makeMatrix300, true},
    {"spice2g6", makeSpice2g6, true},
    {"tomcatv", makeTomcatv, true},
};

// Analytic kernels: resolvable through makeWorkload() but outside
// kRegistry so workloadNames() — and everything that means "the
// paper's suite" (figure sweeps, suite means, AccuracyReport rows) —
// stays the nine SPEC mirrors.
const RegistryEntry kAdversarialRegistry[] = {
    {"kmp", makeKmp, false},
    {"alternating", makeAlternating, false},
    {"datadep", makeDataDep, false},
    {"burst", makeBurst, false},
};

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const RegistryEntry &entry : kRegistry)
        names.emplace_back(entry.name);
    return names;
}

std::vector<std::string>
integerWorkloadNames()
{
    std::vector<std::string> names;
    for (const RegistryEntry &entry : kRegistry) {
        if (!entry.floatingPoint)
            names.emplace_back(entry.name);
    }
    return names;
}

std::vector<std::string>
floatingPointWorkloadNames()
{
    std::vector<std::string> names;
    for (const RegistryEntry &entry : kRegistry) {
        if (entry.floatingPoint)
            names.emplace_back(entry.name);
    }
    return names;
}

std::vector<std::string>
adversarialWorkloadNames()
{
    std::vector<std::string> names;
    for (const RegistryEntry &entry : kAdversarialRegistry)
        names.emplace_back(entry.name);
    return names;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names = workloadNames();
    for (const RegistryEntry &entry : kAdversarialRegistry)
        names.emplace_back(entry.name);
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (const RegistryEntry &entry : kRegistry) {
        if (name == entry.name)
            return entry.factory();
    }
    for (const RegistryEntry &entry : kAdversarialRegistry) {
        if (name == entry.name)
            return entry.factory();
    }
    tlat_fatal("unknown workload '", name, "'");
}

} // namespace tlat::workloads
