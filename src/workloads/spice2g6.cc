/**
 * @file
 * spice2g6 mirror: circuit simulation — device evaluation dispatch plus
 * sparse solve sweeps.
 *
 * SPICE's inner time-step loop alternates (a) device-model evaluation,
 * a switch on device type leading to branchy model code, and (b) a
 * sparse linear solve with short variable-length row loops. The mix of
 * indirect dispatch (register-unconditional jumps through a jump
 * table), biased region checks and short data-dependent loops makes it
 * middling-predictable: harder than the array codes, easier than gcc.
 *
 * Data sets (paper Table 3): "greycode" (testing) and "short-greycode"
 * (training) — the training input uses a smaller circuit with a
 * different seed and a more regular device-type distribution.
 */

#include <vector>

#include "emit_helpers.hh"
#include "util/random.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

constexpr unsigned kNumDeviceTypes = 4;
constexpr std::int64_t kNewtonIters = 3;

class Spice2g6 : public WorkloadBase
{
  public:
    std::string name() const override { return "spice2g6"; }
    bool isFloatingPoint() const override { return true; }
    std::string testSet() const override { return "greycode"; }

    std::optional<std::string>
    trainSet() const override
    {
        return "short-greycode";
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        const bool shortInput = dataSet == "short-greycode";

        // Circuit description differs between data sets.
        const std::uint64_t num_devices = shortInput ? 48 : 80;
        const std::uint64_t num_rows = shortInput ? 48 : 64;
        Rng data_rng(shortInput ? 0x51ce2 : 0x51ce6);

        ProgramBuilder b(name());

        // Device table: one word per device, low 2 bits = type.
        // The training circuit is dominated by type 0 (resistors).
        std::vector<std::uint64_t> devices(num_devices);
        for (auto &device : devices) {
            const std::uint64_t draw = data_rng.nextBelow(100);
            std::uint64_t type = 0;
            if (shortInput)
                type = draw < 70 ? 0 : (draw < 85 ? 1 : (draw < 95 ? 2 : 3));
            else
                type = draw < 40 ? 0 : (draw < 65 ? 1 : (draw < 88 ? 2 : 3));
            device = type | (data_rng.nextBelow(1u << 12) << 2);
        }
        const std::uint64_t dev_base = b.data(devices);

        // Row lengths for the solve sweep: short and mode-heavy
        // (circuit matrices have a few nonzeros per row).
        std::vector<std::uint64_t> row_len(num_rows);
        for (auto &len : row_len) {
            const std::uint64_t draw = data_rng.nextBelow(100);
            len = draw < 80 ? 3 : (draw < 95 ? 2 : 4);
        }
        const std::uint64_t len_base = b.data(row_len);

        const std::uint64_t diag_base = b.bss(num_rows);
        const std::uint64_t rhs_base = b.bss(num_rows);
        LcgEmitter lcg(b, shortInput ? 0x1111 : 0x2222);

        // r19 devices, r20 row lengths, r21 diag, r23 rhs.
        b.loadImm(19, static_cast<std::int64_t>(dev_base));
        b.loadImm(20, static_cast<std::int64_t>(len_base));
        b.loadImm(21, static_cast<std::int64_t>(diag_base));
        b.loadImm(23, static_cast<std::int64_t>(rhs_base));
        b.loadImm(26, static_cast<std::int64_t>(num_devices));
        b.loadImm(27, static_cast<std::int64_t>(num_rows));
        b.loadDouble(24, 0.8125);
        b.loadDouble(25, 1.0);

        // Each device type has two model revisions (level-1 and
        // level-2 models in SPICE terms), selected by a device
        // parameter bit: eight executed handler bodies in all.
        constexpr unsigned kNumHandlers = 2 * kNumDeviceTypes;
        Label jtable = b.newLabel();
        Label after_dispatch = b.newLabel();
        std::vector<Label> handlers;
        for (unsigned h = 0; h < kNumHandlers; ++h)
            handlers.push_back(b.newLabel());

        // ---- Newton iteration loop.
        b.li(28, 0);
        Label newton = b.newLabel();
        b.bind(newton);

        // -- device evaluation sweep.
        b.li(4, 0); // device index
        Label dev_loop = b.newLabel();
        b.bind(dev_loop);
        b.slli(1, 4, 3);
        b.add(1, 1, 19);
        b.ld(5, 1, 0);   // device word
        b.andi(6, 5, 3); // type
        b.srli(7, 5, 2); // device parameter
        // Handler index = type | (model-revision bit << 2).
        b.srli(2, 7, 5);
        b.andi(2, 2, 1);
        b.slli(2, 2, 2);
        b.or_(6, 6, 2);

        // Indirect dispatch through the jump-slot table.
        b.la(1, jtable);
        b.slli(2, 6, 2);
        b.add(1, 1, 2);
        b.jr(1);

        b.bind(jtable);
        for (unsigned h = 0; h < kNumHandlers; ++h)
            b.jmp(handlers[h]);

        // Device handlers: conductance-style FP updates with a region
        // check; each returns by falling into after_dispatch. The
        // second revision of each model applies an extra smoothing
        // term (distinct static code, similar dynamics).
        for (unsigned h = 0; h < kNumHandlers; ++h) {
            const unsigned t = h % kNumDeviceTypes;
            const bool revision2 = h >= kNumDeviceTypes;
            b.bind(handlers[h]);
            // g = param scaled into a double.
            b.fcvt(8, 7);
            for (unsigned i = 0; i <= t; ++i)
                b.fmul(8, 8, 24);
            if (revision2) {
                b.fadd(8, 8, 25);
                b.fmul(8, 8, 24);
            }
            if (t >= 2) {
                // Nonlinear devices: region check on the parameter —
                // biased by the data distribution.
                Label linear_region = b.newLabel();
                b.li(2, 1024);
                b.blt(7, 2, linear_region);
                b.fadd(8, 8, 25);
                b.fmul(8, 8, 24);
                b.bind(linear_region);
            }
            // diag[device % rows] += g
            b.rem(2, 4, 27);
            b.slli(2, 2, 3);
            b.add(2, 2, 21);
            b.ld(3, 2, 0);
            b.fadd(3, 3, 8);
            b.st(2, 3, 0);
            b.jmp(after_dispatch);
        }

        b.bind(after_dispatch);
        b.addi(4, 4, 1);
        b.blt(4, 26, dev_loop);

        // -- solve sweep: variable-length row loops.
        b.li(4, 0); // row index
        Label row_loop = b.newLabel();
        b.bind(row_loop);
        b.slli(1, 4, 3);
        b.add(2, 1, 20);
        b.ld(5, 2, 0);  // row length 1..8
        b.add(2, 1, 21);
        b.ld(8, 2, 0);  // diag value
        b.li(6, 0);
        Label elem_loop = b.newLabel();
        b.bind(elem_loop);
        b.fmul(8, 8, 24);
        b.fadd(8, 8, 25);
        b.addi(6, 6, 1);
        b.blt(6, 5, elem_loop);
        b.add(2, 1, 23);
        b.st(2, 8, 0);  // rhs[row] = value

        // Convergence-style check: occasionally rescale (biased,
        // data-dependent).
        Label no_rescale = b.newLabel();
        b.fabs_(9, 8);
        b.loadDouble(3, 512.0);
        b.fle(9, 9, 3);
        b.bne(9, 0, no_rescale);
        b.fmul(8, 8, 24);
        b.add(2, 1, 21);
        b.st(2, 8, 0);
        b.bind(no_rescale);

        b.addi(4, 4, 1);
        b.blt(4, 27, row_loop);

        // -- time-step noise: perturb a random diag entry.
        lcg.emitNextBelowPow2(b, 7, 8, 32);
        b.slli(7, 7, 3);
        b.add(7, 7, 21);
        b.ld(8, 7, 0);
        b.fmul(8, 8, 24);
        b.st(7, 8, 0);

        b.addi(28, 28, 1);
        b.li(1, kNewtonIters);
        b.blt(28, 1, newton);

        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeSpice2g6()
{
    return std::make_unique<Spice2g6>();
}

} // namespace tlat::workloads
