/**
 * @file
 * eqntott mirror: truth-table term comparison and sorting.
 *
 * SPEC'89 eqntott converts boolean equations to truth tables; its
 * dominant kernel (cmppt) compares packed tri-state term vectors word
 * by word with early exits, feeding a sort. The comparison branches
 * are strongly correlated — terms arrive mostly ordered — which is
 * precisely the behaviour pattern-history prediction exploits and
 * single-counter schemes cannot (this benchmark shows one of the
 * biggest AT-vs-BTB gaps in the paper's Figure 10).
 *
 * The mirror regenerates a mostly-sorted array of 128 eight-word terms
 * each pass (in-ISA LCG noise on an increasing key), then runs an
 * insertion sort driven by a cmppt subroutine with early-exit compare
 * loops, followed by a bit-counting evaluation sweep over the sorted
 * terms.
 */

#include <vector>

#include "emit_helpers.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

constexpr std::int64_t kNumTerms = 128;
constexpr std::int64_t kTermWords = 8;

class Eqntott : public WorkloadBase
{
  public:
    std::string name() const override { return "eqntott"; }
    bool isFloatingPoint() const override { return false; }
    std::string testSet() const override { return "int_pri_3"; }

    std::optional<std::string>
    trainSet() const override
    {
        return std::nullopt; // paper Table 3: NA
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        ProgramBuilder b(name());
        LcgEmitter lcg(b, 0xe99);

        const std::uint64_t term_base = b.bss(
            static_cast<std::uint64_t>(kNumTerms * kTermWords));
        const std::uint64_t idx_base =
            b.bss(static_cast<std::uint64_t>(kNumTerms));
        b.defineDataSymbol("terms", term_base);
        b.defineDataSymbol("indices", idx_base);
        b.defineDataSymbol("num_terms",
                           static_cast<std::uint64_t>(kNumTerms));
        b.defineDataSymbol("term_words",
                           static_cast<std::uint64_t>(kTermWords));

        emitStackInit(b);
        // r19 terms, r20 index array, r21 = terms count,
        // r22 = term bytes.
        b.loadImm(19, static_cast<std::int64_t>(term_base));
        b.loadImm(20, static_cast<std::int64_t>(idx_base));
        b.loadImm(21, kNumTerms);
        b.loadImm(22, kTermWords * 8);

        Label cmppt = b.newLabel("cmppt");
        Label main = b.newLabel("main");
        b.jmp(main);

        // ---- cmppt(r11 = &a, r12 = &b, r14 = PI class 0..7)
        //      -> r13 in {-1, 0, 1}.
        // eqntott specializes its comparator per product-term class;
        // the dispatcher selects one of eight structurally identical
        // clones through a jump table, so each class has its own
        // static branch sites (paper Table 1 counts them all).
        constexpr unsigned kCompareClones = 8;
        {
            b.bind(cmppt);
            Label ctable = b.newLabel();
            std::vector<Label> clones;
            for (unsigned c = 0; c < kCompareClones; ++c)
                clones.push_back(b.newLabel());
            b.la(1, ctable);
            b.slli(2, 14, 2);
            b.add(1, 1, 2);
            b.jr(1);
            b.bind(ctable);
            for (unsigned c = 0; c < kCompareClones; ++c)
                b.jmp(clones[c]);

            for (unsigned c = 0; c < kCompareClones; ++c) {
                // Word-by-word compare with early exit, like
                // eqntott's cmppt.
                b.bind(clones[c]);
                b.li(13, 0);
                b.li(1, 0); // word index
                Label loop = b.newLabel();
                Label differ = b.newLabel();
                Label equal = b.newLabel();
                Label out = b.newLabel();
                b.bind(loop);
                b.slli(2, 1, 3);
                b.add(3, 11, 2);
                b.ld(3, 3, 0);  // a word
                b.add(2, 12, 2);
                b.ld(2, 2, 0);  // b word
                b.bne(3, 2, differ);
                b.addi(1, 1, 1);
                b.li(2, static_cast<std::int32_t>(kTermWords));
                b.blt(1, 2, loop);
                b.jmp(equal);
                b.bind(differ);
                b.li(13, 1);
                b.bgeu(3, 2, out);
                b.li(13, -1);
                b.jmp(out);
                b.bind(equal);
                b.li(13, 0);
                b.bind(out);
                b.ret();
            }
        }

        b.bind(main);

        // ---- regenerate terms: word 0 is a mostly-increasing key,
        // the rest is LCG noise.
        b.li(4, 0); // term index
        Label gen_loop = b.newLabel();
        b.bind(gen_loop);
        // key = i * 16 + (lcg % 32): overlapping windows create a
        // sprinkle of inversions for the sort to fix.
        lcg.emitNextBelowPow2(b, 7, 8, 32);
        b.slli(1, 4, 4);
        b.add(7, 7, 1);
        b.mul(2, 4, 22);
        b.add(2, 2, 19);
        b.st(2, 7, 0);
        // noise words 1..7
        b.li(5, 1);
        Label word_loop = b.newLabel();
        b.bind(word_loop);
        lcg.emitNext(b, 7, 8);
        b.slli(1, 5, 3);
        b.add(1, 1, 2);
        b.st(1, 7, 0);
        b.addi(5, 5, 1);
        b.li(1, static_cast<std::int32_t>(kTermWords));
        b.blt(5, 1, word_loop);
        // idx[i] = i
        b.slli(1, 4, 3);
        b.add(1, 1, 20);
        b.st(1, 4, 0);
        b.addi(4, 4, 1);
        b.blt(4, 21, gen_loop);

        // ---- insertion sort of idx[] by cmppt on the terms.
        b.li(4, 1); // i
        Label sort_loop = b.newLabel();
        b.bind(sort_loop);
        b.slli(1, 4, 3);
        b.add(1, 1, 20);
        b.ld(9, 1, 0);   // key index
        b.addi(5, 4, -1); // j
        Label inner = b.newLabel();
        Label place = b.newLabel();
        b.bind(inner);
        b.blt(5, 0, place);
        b.slli(1, 5, 3);
        b.add(1, 1, 20);
        b.ld(6, 1, 0);   // idx[j]
        b.mul(11, 6, 22);
        b.add(11, 11, 19);
        b.mul(12, 9, 22);
        b.add(12, 12, 19);
        b.andi(14, 6, kCompareClones - 1); // PI class of the left term
        b.call(cmppt);
        // cmppt result <= 0 means already in order: stop shifting.
        b.slti(2, 13, 1);
        b.bne(2, 0, place);
        // idx[j+1] = idx[j]
        b.slli(1, 5, 3);
        b.add(1, 1, 20);
        b.ld(3, 1, 0);
        b.st(1, 3, 8);
        b.addi(5, 5, -1);
        b.jmp(inner);
        b.bind(place);
        b.slli(1, 5, 3);
        b.add(1, 1, 20);
        b.st(1, 9, 8);   // idx[j+1] = key
        b.addi(4, 4, 1);
        b.blt(4, 21, sort_loop);

        // ---- dedup sweep: adjacent sorted terms are re-compared and
        // merged when equal (rare) — eqntott's duplicate-PT removal.
        b.li(4, 1);
        b.li(10, 0); // duplicate count
        Label dedup_loop = b.newLabel();
        b.bind(dedup_loop);
        b.slli(1, 4, 3);
        b.add(1, 1, 20);
        b.ld(6, 1, -8);  // idx[i-1]
        b.ld(7, 1, 0);   // idx[i]
        b.mul(11, 6, 22);
        b.add(11, 11, 19);
        b.mul(12, 7, 22);
        b.add(12, 12, 19);
        b.andi(14, 6, kCompareClones - 1);
        b.call(cmppt);
        Label not_dup = b.newLabel();
        b.bne(13, 0, not_dup);
        b.addi(10, 10, 1);
        b.bind(not_dup);
        b.addi(4, 4, 1);
        b.blt(4, 21, dedup_loop);

        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeEqntott()
{
    return std::make_unique<Eqntott>();
}

} // namespace tlat::workloads
