/**
 * @file
 * Shared code-generation snippets used by the workload programs:
 * an in-ISA linear congruential generator, call-stack push/pop for
 * recursive kernels, and simple data-initialization loops.
 *
 * Register conventions used by all workloads:
 *   r0         zero
 *   r1  - r10  scratch / locals
 *   r11 - r18  arguments and return values for in-program subroutines
 *   r19 - r29  callee-owned globals (base pointers, loop-invariants)
 *   r30        data stack pointer (grows downward)
 *   r31        link register (hardware, written by call)
 */

#ifndef TLAT_WORKLOADS_EMIT_HELPERS_HH
#define TLAT_WORKLOADS_EMIT_HELPERS_HH

#include <cstdint>

#include "isa/program.hh"

namespace tlat::workloads
{

using isa::ProgramBuilder;
using Label = isa::ProgramBuilder::Label;

/** Data stack pointer register. */
constexpr unsigned kSp = 30;

/**
 * Emits the stack setup: reserves @p words of stack space in bss and
 * points r30 one word past its top. Call once, early in the program.
 */
void emitStackInit(ProgramBuilder &b, std::uint64_t words = 4096);

/** Pushes @p reg onto the data stack. */
void emitPush(ProgramBuilder &b, unsigned reg);

/** Pops the data stack into @p reg. */
void emitPop(ProgramBuilder &b, unsigned reg);

/**
 * In-ISA pseudo-random number generator (64-bit LCG, constants from
 * Knuth MMIX). The generator state lives in data memory so it persists
 * across restart-on-halt runs, giving successive passes fresh data.
 */
class LcgEmitter
{
  public:
    /**
     * Allocates the state word (seeded with @p seed) in the data
     * image.
     */
    LcgEmitter(ProgramBuilder &b, std::uint64_t seed);

    /**
     * Emits code advancing the generator and leaving the new state in
     * @p dst. Clobbers @p scratch (must differ from dst).
     */
    void emitNext(ProgramBuilder &b, unsigned dst, unsigned scratch);

    /**
     * Emits code leaving a fresh value in [0, bound) in @p dst.
     * bound must be a power of two. Clobbers @p scratch.
     */
    void emitNextBelowPow2(ProgramBuilder &b, unsigned dst,
                           unsigned scratch, std::uint64_t bound);

    std::uint64_t stateAddress() const { return state_address_; }

  private:
    std::uint64_t state_address_;
};

/**
 * Emits a loop storing @p value into @p count consecutive words
 * starting at byte address @p base_addr. Clobbers r1-r3.
 */
void emitFillLoop(ProgramBuilder &b, std::uint64_t base_addr,
                  std::uint64_t count, std::int64_t value);

} // namespace tlat::workloads

#endif // TLAT_WORKLOADS_EMIT_HELPERS_HH
