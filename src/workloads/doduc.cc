/**
 * @file
 * doduc mirror: Monte-Carlo nuclear reactor kinetics.
 *
 * SPEC'89 doduc simulates a reactor with a large body of numerical
 * code: many distinct small routines, biased data-dependent branches
 * (cutoff tests on random draws), rejection-style loops and moderate
 * call/return traffic. It has the second-largest static conditional
 * branch count in the suite (paper Table 1: 1149).
 *
 * The mirror runs 24 generated "stations", each a distinct subroutine
 * with its own cutoff thresholds and FP update sequence; every station
 * iterates eight times per visit, drawing pseudo-random values from an
 * in-ISA LCG for the biased cutoff branch and a 25%-continue rejection
 * loop.
 */

#include "emit_helpers.hh"
#include "util/random.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

constexpr unsigned kNumStations = 24;
constexpr std::int64_t kSamplesPerPass = 48;
constexpr std::int64_t kItersPerStation = 8;

class Doduc : public WorkloadBase
{
  public:
    std::string name() const override { return "doduc"; }
    bool isFloatingPoint() const override { return true; }
    std::string testSet() const override { return "doducin"; }

    std::optional<std::string>
    trainSet() const override
    {
        return "tiny"; // paper: "tiny doducin"
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        ProgramBuilder b("doduc");
        Rng gen_rng(0xd0d0c);

        // The data sets differ in LCG seed and in the bias applied to
        // every cutoff threshold: the "tiny" training input is more
        // regular (higher bias), like a reduced reactor description.
        const bool tiny = dataSet == "tiny";
        const std::uint64_t seed = tiny ? 0x7001 : 0xd0c5eed;
        const int bias_shift = tiny ? 3000 : 0;

        LcgEmitter lcg(b, seed);
        const std::uint64_t acc_base = b.bss(kNumStations);
        // Pass counter (persists across restart-on-halt): the
        // simulation alternates between two operating regimes, the
        // nonstationarity that separates adaptive training from
        // preset pattern bits (paper Section 2.1's closing argument).
        const std::uint64_t pass_addr = b.data({0});

        emitStackInit(b);
        b.loadImm(19, static_cast<std::int64_t>(acc_base));
        b.loadImm(18, static_cast<std::int64_t>(pass_addr));
        b.ld(17, 18, 0);
        b.addi(1, 17, 1);
        b.st(18, 1, 0);
        b.andi(17, 17, 1); // r17 = regime phase (0/1)
        b.loadDouble(24, 0.46875);
        b.loadDouble(25, 0.96875);
        b.loadDouble(26, 1.0);

        Label done = b.newLabel();
        std::vector<Label> stations;
        stations.reserve(kNumStations);
        for (unsigned s = 0; s < kNumStations; ++s)
            stations.push_back(b.newLabel());

        // ---- main sampling loop.
        b.li(22, 0); // sample counter
        Label sample_loop = b.newLabel();
        b.bind(sample_loop);
        for (unsigned s = 0; s < kNumStations; ++s)
            b.call(stations[s]);
        b.addi(22, 22, 1);
        b.li(1, kSamplesPerPass);
        b.blt(22, 1, sample_loop);
        b.jmp(done);

        // ---- stations.
        for (unsigned s = 0; s < kNumStations; ++s)
            emitStation(b, gen_rng, lcg, stations[s], s, bias_shift);

        b.bind(done);
        b.halt();
        return b.build();
    }

  private:
    void
    emitStation(ProgramBuilder &b, Rng &gen_rng, LcgEmitter lcg,
                Label entry, unsigned station, int bias_shift) const
    {
        b.bind(entry);
        // acc = accumulators[station]
        b.ld(9, 19, static_cast<std::int32_t>(station * 8));

        Label rare = b.newLabel();
        Label after_cutoff = b.newLabel();

        b.li(6, 0); // iteration counter
        Label loop = b.newLabel();
        b.bind(loop);

        // Cutoff branch: the rare correction path (probability
        // ~2-8%) lives out of line after the routine, compiler-style.
        // Every third station is regime-sensitive: in the odd regime
        // its threshold drops so the branch flips direction — the
        // adaptive predictor relearns at each regime change, preset
        // pattern bits cannot.
        const std::int32_t bias =
            61000 +
            static_cast<std::int32_t>(gen_rng.nextBelow(4000)) +
            bias_shift;
        lcg.emitNextBelowPow2(b, 7, 8, 1u << 16);
        b.loadImm(1, std::min<std::int32_t>(bias, 65535));
        if (station % 3 == 0) {
            b.loadImm(2, 57000);
            b.mul(2, 2, 17); // phase * 57000
            b.sub(1, 1, 2);  // odd regime: threshold ~4000-8000
        }
        b.bgeu(7, 1, rare);
        b.bind(after_cutoff);

        // Common FP update, distinct per station.
        const unsigned ops =
            3 + static_cast<unsigned>(gen_rng.nextBelow(5));
        for (unsigned i = 0; i < ops; ++i) {
            switch (gen_rng.nextBelow(4)) {
              case 0: b.fmul(9, 9, 25); break;
              case 1: b.fadd(9, 9, 26); break;
              case 2: b.fsub(9, 9, 24); break;
              default: b.fmul(9, 9, 24); break;
            }
        }

        // Deterministic quadrature loop: fixed six-point update.
        b.li(5, 0);
        Label quad = b.newLabel();
        b.bind(quad);
        b.fmul(9, 9, 25);
        b.fadd(9, 9, 26);
        b.fmul(9, 9, 24);
        b.addi(5, 5, 1);
        b.li(1, 6);
        b.blt(5, 1, quad);

        // Rejection loop: redraw while v < 1/8 (12.5% continue).
        Label reject = b.newLabel();
        b.bind(reject);
        lcg.emitNextBelowPow2(b, 7, 8, 1u << 16);
        b.loadImm(1, 8192);
        b.bltu(7, 1, reject);

        b.addi(6, 6, 1);
        b.li(1, kItersPerStation);
        b.blt(6, 1, loop);

        b.st(19, 9, static_cast<std::int32_t>(station * 8));
        b.ret();

        // Out-of-line rare correction path.
        b.bind(rare);
        const unsigned rare_ops =
            4 + static_cast<unsigned>(gen_rng.nextBelow(6));
        for (unsigned i = 0; i < rare_ops; ++i) {
            if (gen_rng.nextBool())
                b.fmul(9, 9, 24);
            else
                b.fadd(9, 9, 26);
        }
        b.jmp(after_cutoff);
    }
};

} // namespace

std::unique_ptr<Workload>
makeDoduc()
{
    return std::make_unique<Doduc>();
}

} // namespace tlat::workloads
