/**
 * @file
 * matrix300 mirror: dense double-precision matrix multiply.
 *
 * The SPEC'89 matrix300 benchmark multiplies 300x300 matrices with
 * SAXPY-style inner loops; its branch behaviour is almost entirely
 * long, regular loop-closing branches, which is why every history-based
 * predictor scores near the top on it (paper Figures 5-10) and why
 * BTFN also does well (Figure 9).
 *
 * This mirror runs a 240x240 multiply with the inner loop unrolled by
 * four, giving the same character: very few static branches (paper
 * Table 1: 213), a low dynamic branch fraction, and loop trip counts
 * long enough that loop-exit mispredictions are rare.
 */

#include "emit_helpers.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

constexpr std::int64_t kN = 240;
constexpr unsigned kUnroll = 4;
static_assert(kN % kUnroll == 0);

class Matrix300 : public WorkloadBase
{
  public:
    std::string name() const override { return "matrix300"; }
    bool isFloatingPoint() const override { return true; }
    std::string testSet() const override { return "default"; }

    std::optional<std::string>
    trainSet() const override
    {
        return std::nullopt; // paper Table 3: NA
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        ProgramBuilder b("matrix300");

        // r19 = A, r20 = B, r21 = C, r22 = N, r23 = row stride bytes.
        const std::uint64_t a_base =
            b.bss(static_cast<std::uint64_t>(kN * kN));
        const std::uint64_t b_base =
            b.bss(static_cast<std::uint64_t>(kN * kN));
        const std::uint64_t c_base =
            b.bss(static_cast<std::uint64_t>(kN * kN));
        b.defineDataSymbol("matrix_a", a_base);
        b.defineDataSymbol("matrix_b", b_base);
        b.defineDataSymbol("matrix_c", c_base);
        b.defineDataSymbol("n", static_cast<std::uint64_t>(kN));

        b.loadImm(19, static_cast<std::int64_t>(a_base));
        b.loadImm(20, static_cast<std::int64_t>(b_base));
        b.loadImm(21, static_cast<std::int64_t>(c_base));
        b.loadImm(22, kN);
        b.loadImm(23, kN * 8);

        // ---- initialization: A[i] = (i % 17) * 0.25, B[i] = (i % 23).
        b.loadImm(5, kN * kN); // element count
        b.li(4, 0);            // index
        b.loadDouble(24, 0.25);
        Label init_loop = b.newLabel();
        b.bind(init_loop);
        b.li(1, 17);
        b.rem(2, 4, 1);
        b.fcvt(2, 2);
        b.fmul(2, 2, 24);
        b.slli(3, 4, 3);
        b.add(3, 3, 19);
        b.st(3, 2, 0);
        b.li(1, 23);
        b.rem(2, 4, 1);
        b.fcvt(2, 2);
        b.slli(3, 4, 3);
        b.add(3, 3, 20);
        b.st(3, 2, 0);
        b.addi(4, 4, 1);
        b.blt(4, 5, init_loop);

        // ---- triple loop: C[i][j] = sum_k A[i][k] * B[k][j].
        b.li(4, 0); // i
        Label loop_i = b.newLabel();
        b.bind(loop_i);
        b.li(5, 0); // j
        Label loop_j = b.newLabel();
        b.bind(loop_j);

        b.li(7, 0);             // sum = 0.0 (bit pattern zero)
        b.li(6, 0);             // k
        b.mul(8, 4, 22);        // r8 = &A[i][0]
        b.slli(8, 8, 3);
        b.add(8, 8, 19);
        b.slli(9, 5, 3);        // r9 = &B[0][j]
        b.add(9, 9, 20);

        Label loop_k = b.newLabel();
        b.bind(loop_k);
        for (unsigned u = 0; u < kUnroll; ++u) {
            b.ld(2, 8, static_cast<std::int32_t>(u * 8));
            b.ld(3, 9, 0);
            b.fmul(2, 2, 3);
            b.fadd(7, 7, 2);
            b.add(9, 9, 23); // advance B down one row
        }
        b.addi(8, 8, kUnroll * 8);
        b.addi(6, 6, kUnroll);
        b.blt(6, 22, loop_k);

        b.mul(1, 4, 22); // C[i][j] = sum
        b.add(1, 1, 5);
        b.slli(1, 1, 3);
        b.add(1, 1, 21);
        b.st(1, 7, 0);

        b.addi(5, 5, 1);
        b.blt(5, 22, loop_j);
        b.addi(4, 4, 1);
        b.blt(4, 22, loop_i);

        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeMatrix300()
{
    return std::make_unique<Matrix300>();
}

} // namespace tlat::workloads
