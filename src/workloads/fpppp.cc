/**
 * @file
 * fpppp mirror: enormous straight-line floating point basic blocks.
 *
 * SPEC'89 fpppp (two-electron integral derivatives) is famous for the
 * largest basic blocks in the suite: long runs of FP arithmetic with
 * only occasional branches, giving the lowest dynamic branch fraction
 * of the nine benchmarks (paper Figure 3: ~5% for FP codes). Its
 * conditional branches are a mix of short-period deterministic
 * patterns (loop remainders in the integral bookkeeping) and
 * value-dependent cutoffs.
 *
 * The mirror generates 56 distinct straight-line FP blocks, each 15-30
 * arithmetic instructions ending in one or two conditional branches:
 * one with a deterministic short period (2/3/5/7 passes — trivially
 * captured by pattern history, poison for plain 2-bit counters when
 * the period is 2) and, in half of the blocks, a value cutoff branch.
 */

#include "emit_helpers.hh"
#include "util/random.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

constexpr unsigned kNumBlocks = 56;
constexpr unsigned kArrayWords = 64;
constexpr std::int64_t kRepsPerPass = 4;

class Fpppp : public WorkloadBase
{
  public:
    std::string name() const override { return "fpppp"; }
    bool isFloatingPoint() const override { return true; }
    std::string testSet() const override { return "natoms"; }

    std::optional<std::string>
    trainSet() const override
    {
        return std::nullopt; // paper Table 3: NA
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        ProgramBuilder b("fpppp");
        Rng rng(0xf9999);

        // Working array of doubles, initialized in the data image.
        std::vector<double> init(kArrayWords);
        for (unsigned i = 0; i < kArrayWords; ++i)
            init[i] = 0.25 + 0.01 * static_cast<double>(i % 13);
        const std::uint64_t arr = b.dataDoubles(init);

        // Pass counter lives in memory so it survives restart-on-halt
        // and the short-period branches see long sequences.
        const std::uint64_t pass_addr = b.data({0});

        // r19 = array base, r20 = &pass counter, r21 = global step.
        b.loadImm(19, static_cast<std::int64_t>(arr));
        b.loadImm(20, static_cast<std::int64_t>(pass_addr));
        b.ld(21, 20, 0);
        b.addi(1, 21, 1);
        b.st(20, 1, 0);

        // Bounded-magnitude FP constants.
        b.loadDouble(24, 0.4375);
        b.loadDouble(25, 0.53125);
        b.loadDouble(26, 1.0);

        // r22 = rep, r5 = step = pass * kRepsPerPass + rep.
        b.li(22, 0);
        Label rep_loop = b.newLabel();
        b.bind(rep_loop);
        b.li(1, kRepsPerPass);
        b.mul(5, 21, 1);
        b.add(5, 5, 22);

        for (unsigned block = 0; block < kNumBlocks; ++block)
            emitBlock(b, rng, block);

        b.addi(22, 22, 1);
        b.li(1, kRepsPerPass);
        b.blt(22, 1, rep_loop);
        b.halt();
        return b.build();
    }

  private:
    /** One straight-line FP block with its trailing branches. */
    void
    emitBlock(ProgramBuilder &b, Rng &rng, unsigned block) const
    {
        // Load two array operands chosen at generation time.
        const auto slot = [&rng]() {
            return static_cast<std::int32_t>(
                rng.nextBelow(kArrayWords) * 8);
        };
        b.ld(1, 19, slot());
        b.ld(2, 19, slot());

        // 12-26 bounded FP operations.
        const unsigned ops = 12 + static_cast<unsigned>(
                                      rng.nextBelow(15));
        for (unsigned i = 0; i < ops; ++i) {
            switch (rng.nextBelow(5)) {
              case 0: b.fadd(1, 1, 2); break;
              case 1: b.fsub(2, 2, 1); break;
              case 2: b.fmul(1, 1, 24); break; // damp
              case 3: b.fmul(2, 2, 25); break; // damp
              default: b.fadd(2, 2, 26); break;
            }
        }
        b.st(19, 1, slot());

        // Deterministic short-period branch: taken unless
        // step % period == phase. Periods of 4-8 passes model the
        // integral-block bookkeeping (period 2 would be pathological
        // for counter schemes and does not occur in the original).
        const std::int32_t period = 4 + static_cast<std::int32_t>(
                                            rng.nextBelow(5));
        const std::int32_t phase = static_cast<std::int32_t>(
            rng.nextBelow(static_cast<std::uint64_t>(period)));
        Label skip = b.newLabel();
        b.li(3, period);
        b.rem(3, 5, 3);
        b.li(4, phase);
        b.beq(3, 4, skip);
        b.fadd(1, 1, 26);
        b.st(19, 1, slot());
        b.bind(skip);

        // Half the blocks get a value-cutoff branch as well.
        if (block % 2 == 0) {
            Label no_clamp = b.newLabel();
            b.fabs_(3, 1);
            b.loadDouble(4, 64.0);
            b.fle(3, 3, 4);
            b.bne(3, 0, no_clamp); // usually taken: |v| stays small
            b.fmul(1, 1, 24);
            b.bind(no_clamp);
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeFpppp()
{
    return std::make_unique<Fpppp>();
}

} // namespace tlat::workloads
