#include "emit_helpers.hh"

namespace tlat::workloads
{

void
emitStackInit(ProgramBuilder &b, std::uint64_t words)
{
    const std::uint64_t base = b.bss(words);
    b.loadImm(kSp, static_cast<std::int64_t>(base + words * 8));
}

void
emitPush(ProgramBuilder &b, unsigned reg)
{
    b.addi(kSp, kSp, -8);
    b.st(kSp, reg, 0);
}

void
emitPop(ProgramBuilder &b, unsigned reg)
{
    b.ld(reg, kSp, 0);
    b.addi(kSp, kSp, 8);
}

LcgEmitter::LcgEmitter(ProgramBuilder &b, std::uint64_t seed)
    : state_address_(b.data({seed}))
{
}

void
LcgEmitter::emitNext(ProgramBuilder &b, unsigned dst, unsigned scratch)
{
    // state = state * 6364136223846793005 + 1442695040888963407
    b.loadImm(scratch, static_cast<std::int64_t>(state_address_));
    b.ld(dst, scratch, 0);
    // Keep the multiplier in `scratch` only briefly; reload the state
    // address afterwards for the store.
    b.loadImm(scratch, static_cast<std::int64_t>(
                           6364136223846793005ULL));
    b.mul(dst, dst, scratch);
    b.loadImm(scratch, static_cast<std::int64_t>(
                           1442695040888963407ULL));
    b.add(dst, dst, scratch);
    b.loadImm(scratch, static_cast<std::int64_t>(state_address_));
    b.st(scratch, dst, 0);
}

void
LcgEmitter::emitNextBelowPow2(ProgramBuilder &b, unsigned dst,
                              unsigned scratch, std::uint64_t bound)
{
    emitNext(b, dst, scratch);
    // LCG low bits are weak; take bits from the top.
    unsigned log2 = 0;
    while ((std::uint64_t{1} << log2) < bound)
        ++log2;
    b.srli(dst, dst, static_cast<std::int32_t>(64 - log2));
}

void
emitFillLoop(ProgramBuilder &b, std::uint64_t base_addr,
             std::uint64_t count, std::int64_t value)
{
    b.loadImm(1, static_cast<std::int64_t>(base_addr));
    b.loadImm(2, static_cast<std::int64_t>(base_addr + count * 8));
    b.loadImm(3, value);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.bind(loop);
    b.bgeu(1, 2, done);
    b.st(1, 3, 0);
    b.addi(1, 1, 8);
    b.jmp(loop);
    b.bind(done);
}

} // namespace tlat::workloads
