/**
 * @file
 * Workload interface: the nine SPEC-mirror benchmarks of the study.
 *
 * Each workload is a micro88 program authored with the ProgramBuilder
 * API, designed to mirror the branch character of one SPEC'89
 * benchmark from the paper (see DESIGN.md for the substitution
 * rationale). A workload exposes named *data sets* which change the
 * program's initial data image but never its code, so Static
 * Training's Same/Diff experiments see identical static branches
 * across training and testing runs (paper Table 3).
 */

#ifndef TLAT_WORKLOADS_WORKLOAD_HH
#define TLAT_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace tlat::workloads
{

/** One SPEC-mirror benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name, e.g. "gcc". */
    virtual std::string name() const = 0;

    /** True for the floating point benchmarks (doduc, fpppp, ...). */
    virtual bool isFloatingPoint() const = 0;

    /** Name of the testing data set (paper Table 3). */
    virtual std::string testSet() const = 0;

    /**
     * Name of the training data set, if the benchmark has one distinct
     * enough to be usable (paper Table 3 lists "NA" for eqntott,
     * matrix300, fpppp and tomcatv).
     */
    virtual std::optional<std::string> trainSet() const = 0;

    /** All data-set names this workload accepts. */
    virtual std::vector<std::string> dataSets() const = 0;

    /**
     * Builds the program with the given data set's initial data image.
     * Fatal if @p dataSet is not one of dataSets().
     */
    virtual isa::Program build(const std::string &dataSet) const = 0;

    /** Builds with the testing data set. */
    isa::Program buildTest() const { return build(testSet()); }
};

/** Names of the nine benchmarks, in the paper's presentation order. */
std::vector<std::string> workloadNames();

/** Names of the integer benchmarks. */
std::vector<std::string> integerWorkloadNames();

/** Names of the floating point benchmarks. */
std::vector<std::string> floatingPointWorkloadNames();

/**
 * Names of the adversarial workloads (adversarial.hh): analytic
 * branch kernels kept *outside* workloadNames() so the paper's
 * figure sweeps and suite means stay the nine SPEC mirrors.
 */
std::vector<std::string> adversarialWorkloadNames();

/** The nine paper benchmarks followed by the adversarial family. */
std::vector<std::string> allWorkloadNames();

/**
 * Instantiates a workload by name — paper benchmark or adversarial
 * kernel; fatal on unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace tlat::workloads

#endif // TLAT_WORKLOADS_WORKLOAD_HH
