/**
 * @file
 * tomcatv mirror: vectorized mesh-generation-style stencil sweeps.
 *
 * SPEC'89 tomcatv generates a mesh by relaxing *two* coordinate
 * grids (X and Y): each iteration computes residuals over both grids
 * with 5-point stencils, tracks the maximum residual, and applies a
 * relaxation update. It is loop-bound (paper: "matrix300 and tomcatv
 * have repetitive loop execution; thus, a very high prediction
 * accuracy is attainable"), with the max-residual comparison adding
 * a sprinkle of data-dependent, rarely-taken branches.
 *
 * The mirror relaxes two 128x128 grids, four iterations per program
 * run: per grid, a residual sweep with a per-row max test and an
 * update sweep — the X and Y code paths are distinct static branch
 * sites, as in the Fortran original.
 */

#include "emit_helpers.hh"
#include "workload_base.hh"

namespace tlat::workloads
{

namespace
{

constexpr std::int64_t kM = 128;

class Tomcatv : public WorkloadBase
{
  public:
    std::string name() const override { return "tomcatv"; }
    bool isFloatingPoint() const override { return true; }
    std::string testSet() const override { return "default"; }

    std::optional<std::string>
    trainSet() const override
    {
        return std::nullopt; // paper Table 3: NA
    }

    isa::Program
    build(const std::string &dataSet) const override
    {
        checkDataSet(dataSet);
        ProgramBuilder b("tomcatv");

        const auto grid_words = static_cast<std::uint64_t>(kM * kM);
        const std::uint64_t x_base = b.bss(grid_words);
        const std::uint64_t rx_base = b.bss(grid_words);
        const std::uint64_t y_base = b.bss(grid_words);
        const std::uint64_t ry_base = b.bss(grid_words);
        b.defineDataSymbol("grid_x", x_base);
        b.defineDataSymbol("grid_r", rx_base);
        b.defineDataSymbol("grid_y", y_base);
        b.defineDataSymbol("grid_ry", ry_base);
        b.defineDataSymbol("m", static_cast<std::uint64_t>(kM));

        // r19 = X, r20 = RX, r21 = Y, r22 = RY, r23 = M,
        // r24 = row stride in bytes.
        b.loadImm(19, static_cast<std::int64_t>(x_base));
        b.loadImm(20, static_cast<std::int64_t>(rx_base));
        b.loadImm(21, static_cast<std::int64_t>(y_base));
        b.loadImm(22, static_cast<std::int64_t>(ry_base));
        b.loadImm(23, kM);
        b.loadImm(24, kM * 8);

        // ---- grid initialization (distinct formulas per grid).
        emitInit(b, 19, 7, 3, 31);   // X[i][j] = ((7i+3j)%31)/8
        emitInit(b, 21, 5, 11, 29);  // Y[i][j] = ((5i+11j)%29)/8

        // Relaxation weight and the running maximum register.
        b.loadDouble(26, 0.20);  // omega
        b.loadDouble(27, 0.0);   // rmax (reset each iteration)

        // ---- outer iterations: relax both grids.
        b.li(28, 0); // iteration counter
        Label iter_loop = b.newLabel();
        b.bind(iter_loop);
        b.li(27, 0); // rmax = 0.0
        emitRelaxation(b, 19, 20); // X against RX
        emitRelaxation(b, 21, 22); // Y against RY

        b.addi(28, 28, 1);
        b.li(1, 4);
        b.blt(28, 1, iter_loop);

        b.halt();
        return b.build();
    }

  private:
    /**
     * Emits the grid-fill loop:
     * grid[i][j] = ((i*c1 + j*c2) % mod) * 0.125.
     * Clobbers r1-r6 and r25.
     */
    void
    emitInit(ProgramBuilder &b, unsigned grid_reg, std::int32_t c1,
             std::int32_t c2, std::int32_t mod) const
    {
        b.loadImm(5, kM * kM);
        b.li(4, 0);
        b.loadDouble(25, 0.125);
        Label init_loop = b.newLabel();
        b.bind(init_loop);
        b.li(1, mod);
        b.li(2, c1);
        b.div(3, 4, 23);  // i = idx / M
        b.rem(6, 4, 23);  // j = idx % M
        b.mul(3, 3, 2);   // i * c1
        b.li(2, c2);
        b.mul(6, 6, 2);   // j * c2
        b.add(3, 3, 6);
        b.rem(3, 3, 1);
        b.fcvt(3, 3);
        b.fmul(3, 3, 25);
        b.slli(2, 4, 3);
        b.add(2, 2, grid_reg);
        b.st(2, 3, 0);
        b.addi(4, 4, 1);
        b.blt(4, 5, init_loop);
    }

    /**
     * Emits one relaxation iteration of one grid: the 5-point
     * residual sweep with the per-row max test, then the update
     * sweep. Distinct call sites produce distinct static branches,
     * like the X and Y loop nests of the Fortran original.
     * Clobbers r1-r10; reads r23/r24/r26, updates r27 (rmax).
     */
    void
    emitRelaxation(ProgramBuilder &b, unsigned grid_reg,
                   unsigned res_reg) const
    {
        // Residual sweep over the interior: i, j in [1, M-2].
        Label new_max = b.newLabel();
        Label after_max = b.newLabel();
        b.li(4, 1); // i
        Label res_i = b.newLabel();
        b.bind(res_i);
        // r8 = &grid[i][1], r9 = &res[i][1]
        b.mul(8, 4, 23);
        b.addi(8, 8, 1);
        b.slli(8, 8, 3);
        b.add(9, 8, res_reg);
        b.add(8, 8, grid_reg);
        b.li(10, 0); // row residual norm (0.0)
        b.li(5, 1);  // j
        Label res_j = b.newLabel();
        b.bind(res_j);
        // 5-point stencil residual:
        //   r = 0.25*(N + S + E + W) - C
        b.ld(1, 8, 0);           // C
        b.ld(2, 8, 8);           // E
        b.ld(3, 8, -8);          // W
        b.fadd(2, 2, 3);
        b.sub(6, 8, 24);         // &grid[i-1][j]
        b.ld(3, 6, 0);           // N
        b.fadd(2, 2, 3);
        b.add(6, 8, 24);         // &grid[i+1][j]
        b.ld(3, 6, 0);           // S
        b.fadd(2, 2, 3);
        b.loadDouble(6, 0.25);
        b.fmul(2, 2, 6);
        b.fsub(2, 2, 1);         // residual
        b.st(9, 2, 0);
        // Row norm accumulates branchlessly; the max test runs once
        // per row below (the per-element compare of the original is
        // reduced the way vectorizing compilers reduce it).
        b.fabs_(2, 2);
        b.fadd(10, 10, 2);
        b.addi(8, 8, 8);
        b.addi(9, 9, 8);
        b.addi(5, 5, 1);
        b.addi(1, 23, -1);
        b.blt(5, 1, res_j);
        // rmax = max(rmax, rownorm): a new maximum is the rare case
        // and lives out of line.
        b.fle(1, 10, 27);
        b.beq(1, 0, new_max);
        b.bind(after_max);
        b.addi(4, 4, 1);
        b.addi(1, 23, -1);
        b.blt(4, 1, res_i);
        Label res_done = b.newLabel();
        b.jmp(res_done);
        b.bind(new_max);
        b.mov(27, 10);
        b.jmp(after_max);
        b.bind(res_done);

        // Update sweep: grid += omega * res over the interior.
        b.li(4, 1);
        Label upd_i = b.newLabel();
        b.bind(upd_i);
        b.mul(8, 4, 23);
        b.addi(8, 8, 1);
        b.slli(8, 8, 3);
        b.add(9, 8, res_reg);
        b.add(8, 8, grid_reg);
        b.li(5, 1);
        Label upd_j = b.newLabel();
        b.bind(upd_j);
        b.ld(1, 8, 0);
        b.ld(2, 9, 0);
        b.fmul(2, 2, 26);
        b.fadd(1, 1, 2);
        b.st(8, 1, 0);
        b.addi(8, 8, 8);
        b.addi(9, 9, 8);
        b.addi(5, 5, 1);
        b.addi(1, 23, -1);
        b.blt(5, 1, upd_j);
        b.addi(4, 4, 1);
        b.addi(1, 23, -1);
        b.blt(4, 1, upd_i);
    }
};

} // namespace

std::unique_ptr<Workload>
makeTomcatv()
{
    return std::make_unique<Tomcatv>();
}

} // namespace tlat::workloads
