/**
 * @file
 * Adversarial workloads beyond the nine SPEC mirrors: small kernels
 * whose branch behaviour is *analytically known*, so measured
 * accuracy can be asserted against closed-form expected values
 * instead of against the simulator itself (ROADMAP open item 4).
 *
 * The family (registered alongside the paper benchmarks, see
 * workload.cc):
 *
 *  - "kmp": Knuth-Morris-Pratt string matching over pseudo-random
 *    text, parameterized by (pattern, alphabet size) through its data
 *    sets. For the a^m pattern sets the comparison branch consumes
 *    exactly one fresh uniform character per execution, so its
 *    outcome stream is i.i.d. Bernoulli(1/sigma) and its steady-state
 *    misprediction rate under every Figure-2 automaton has the closed
 *    form of h2p_analytic.hh (the Markov-chain method of Nicaud /
 *    Pivoteau / Vialette, "Asymptotic analysis of branch mispredicts
 *    in pattern matching", applied to the paper's automata). The
 *    comparison branch pc is exposed as the "kmp_compare" symbol.
 *
 *  - "alternating": three short deterministic periodic branches
 *    (periods 2, 3 and 4). Every pattern-table entry a site touches
 *    settles to a constant outcome, so the steady-state miss count of
 *    any two-level scheme with enough history is exactly zero.
 *
 *  - "datadep": data-dependent branches on fresh pseudo-random draws
 *    at taken probabilities 1/2, 1/4 and 1/8 ("dd_coin",
 *    "dd_quarter", "dd_eighth" symbols) — the same i.i.d. closed
 *    forms as kmp from an independent generator, plus the canonical
 *    Chaotic site for the taxonomy.
 *
 *  - "burst": periodic burst branches — K taken then K not-taken for
 *    K = 16 ("burst16") and K = 8 ("burst8"). With history shorter
 *    than K the per-period miss count of each automaton is a small
 *    exact constant (h2p_analytic.hh analyticBurstMissRate).
 *
 * Golden tests measure each analytic site on a trace *filtered to
 * that site's pc* (trace/trace_filter.hh): that removes pattern-table
 * interference from the workload's bookkeeping branches and matches
 * the single-branch model the closed forms describe.
 */

#ifndef TLAT_WORKLOADS_ADVERSARIAL_HH
#define TLAT_WORKLOADS_ADVERSARIAL_HH

#include <memory>
#include <string>
#include <vector>

#include "workload.hh"

namespace tlat::workloads
{

std::unique_ptr<Workload> makeKmp();
std::unique_ptr<Workload> makeAlternating();
std::unique_ptr<Workload> makeDataDep();
std::unique_ptr<Workload> makeBurst();

} // namespace tlat::workloads

#endif // TLAT_WORKLOADS_ADVERSARIAL_HH
