#include "lee_smith_btb.hh"

#include <utility>

#include "core/checkpoint.hh"
#include "core/contracts.hh"
#include "core/lane_prober.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace tlat::predictors
{

using core::Automaton;
using core::TableKind;

LeeSmithPredictor::LeeSmithPredictor(const LeeSmithConfig &config)
    : config_(config)
{
    table_ = makeTable();
}

std::unique_ptr<core::HistoryTable<Automaton>>
LeeSmithPredictor::makeTable() const
{
    const Automaton initial(config_.automaton);
    switch (config_.tableKind) {
      case TableKind::Ideal:
        return std::make_unique<core::IdealTable<Automaton>>(
            initial);
      case TableKind::Associative:
        return std::make_unique<core::AssociativeTable<Automaton>>(
            config_.entries, config_.associativity, initial,
            config_.addrShift);
      case TableKind::Hashed:
        return std::make_unique<core::HashedTable<Automaton>>(
            config_.entries, initial, config_.addrShift);
    }
    tlat_panic("unhandled table kind");
}

std::string
LeeSmithPredictor::name() const
{
    const std::string hrt_part =
        config_.tableKind == TableKind::Ideal
            ? format("IHRT(,%s)", core::automatonName(config_.automaton))
            : format("%s(%zu,%s)", core::tableKindName(config_.tableKind),
                     config_.entries,
                     core::automatonName(config_.automaton));
    return format("LS(%s,,)", hrt_part.c_str());
}

Automaton &
LeeSmithPredictor::lookup(std::uint64_t pc)
{
    if (last_entry_ && last_pc_ == pc)
        return *last_entry_;
    last_pc_ = pc;
    last_entry_ = &table_->lookup(pc);
    return *last_entry_;
}

bool
LeeSmithPredictor::predict(const trace::BranchRecord &record)
{
    return lookup(record.pc).predict();
}

void
LeeSmithPredictor::update(const trace::BranchRecord &record)
{
    lookup(record.pc).update(record.taken);
    // One predict/update pair is one logical table access.
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
}

template <typename Table, core::AutomatonPolicy Ops>
void
LeeSmithPredictor::fusedBatch(
    Table &table, const Ops &ops,
    std::span<const trace::BranchRecord> records,
    AccuracyCounter &accuracy)
{
    for (const trace::BranchRecord &record : records) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        // One probe per branch; the reference pair does the same via
        // the predict()/update() memo, so the table statistics match.
        Automaton &automaton = table.lookupDirect(record.pc);
        const bool predicted = ops.predict(automaton.state());
        accuracy.record(predicted == record.taken);
        automaton.setState(ops.next(automaton.state(), record.taken));
    }
}

template <typename Table>
void
LeeSmithPredictor::dispatchAutomaton(
    Table &table, std::span<const trace::BranchRecord> records,
    AccuracyCounter &accuracy)
{
    using core::AutomatonKind;
    using core::AutomatonOps;
    switch (config_.automaton) {
      case AutomatonKind::LastTime:
        fusedBatch(table, AutomatonOps<AutomatonKind::LastTime>{},
                   records, accuracy);
        break;
      case AutomatonKind::A1:
        fusedBatch(table, AutomatonOps<AutomatonKind::A1>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A2:
        fusedBatch(table, AutomatonOps<AutomatonKind::A2>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A3:
        fusedBatch(table, AutomatonOps<AutomatonKind::A3>{}, records,
                   accuracy);
        break;
      case AutomatonKind::A4:
        fusedBatch(table, AutomatonOps<AutomatonKind::A4>{}, records,
                   accuracy);
        break;
      default:
        BranchPredictor::simulateBatch(records, accuracy);
        break;
    }
}

template <typename Prober, core::AutomatonPolicy Ops>
void
LeeSmithPredictor::fusedBatchSoa(Prober &prober, const Ops &ops,
                                 const trace::PredecodedView &view,
                                 AccuracyCounter &accuracy)
{
    // Mirrors fusedBatch(); only the operand sources differ (index
    // lane probe + packed outcome bit), so the equivalence argument
    // carries over unchanged.
    const trace::PredecodedTrace &soa = view.soa();
    const std::span<const trace::BranchId> ids = soa.branchIds();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        Automaton &automaton = prober.probe(ids[i]);
        const bool taken = soa.taken(i);
        const bool predicted = ops.predict(automaton.state());
        accuracy.record(predicted == taken);
        automaton.setState(ops.next(automaton.state(), taken));
    }
}

template <typename Prober>
void
LeeSmithPredictor::dispatchAutomatonSoa(
    Prober &prober, const trace::PredecodedView &view,
    AccuracyCounter &accuracy)
{
    using core::AutomatonKind;
    using core::AutomatonOps;
    switch (config_.automaton) {
      case AutomatonKind::LastTime:
        fusedBatchSoa(prober,
                      AutomatonOps<AutomatonKind::LastTime>{}, view,
                      accuracy);
        break;
      case AutomatonKind::A1:
        fusedBatchSoa(prober, AutomatonOps<AutomatonKind::A1>{},
                      view, accuracy);
        break;
      case AutomatonKind::A2:
        fusedBatchSoa(prober, AutomatonOps<AutomatonKind::A2>{},
                      view, accuracy);
        break;
      case AutomatonKind::A3:
        fusedBatchSoa(prober, AutomatonOps<AutomatonKind::A3>{},
                      view, accuracy);
        break;
      case AutomatonKind::A4:
        fusedBatchSoa(prober, AutomatonOps<AutomatonKind::A4>{},
                      view, accuracy);
        break;
      default:
        simulateBatch(view.records(), accuracy);
        break;
    }
}

void
LeeSmithPredictor::simulateBatch(const trace::PredecodedView &view,
                                 AccuracyCounter &accuracy)
{
    if (last_entry_ != nullptr) {
        // Mid predict/update pair: the AoS twin owns the fallback to
        // the reference loop, which honours the memo.
        simulateBatch(view.records(), accuracy);
        return;
    }
    switch (config_.tableKind) {
      case TableKind::Ideal: {
        core::IdealLaneProber<Automaton> prober(
            static_cast<core::IdealTable<Automaton> &>(*table_),
            view.soa().uniquePcs());
        dispatchAutomatonSoa(prober, view, accuracy);
        break;
      }
      case TableKind::Associative: {
        core::AssociativeLaneProber<Automaton> prober(
            static_cast<core::AssociativeTable<Automaton> &>(
                *table_),
            view.soa());
        dispatchAutomatonSoa(prober, view, accuracy);
        break;
      }
      case TableKind::Hashed: {
        core::HashedLaneProber<Automaton> prober(
            static_cast<core::HashedTable<Automaton> &>(*table_),
            view.soa());
        dispatchAutomatonSoa(prober, view, accuracy);
        break;
      }
    }
}

void
LeeSmithPredictor::simulateBatch(
    std::span<const trace::BranchRecord> records,
    AccuracyCounter &accuracy)
{
    if (last_entry_ != nullptr) {
        // Mid predict/update pair: the memo models a shared physical
        // access, so hand off to the reference loop which honours it.
        BranchPredictor::simulateBatch(records, accuracy);
        return;
    }
    switch (config_.tableKind) {
      case TableKind::Ideal:
        dispatchAutomaton(
            static_cast<core::IdealTable<Automaton> &>(*table_),
            records, accuracy);
        break;
      case TableKind::Associative:
        dispatchAutomaton(
            static_cast<core::AssociativeTable<Automaton> &>(*table_),
            records, accuracy);
        break;
      case TableKind::Hashed:
        dispatchAutomaton(
            static_cast<core::HashedTable<Automaton> &>(*table_),
            records, accuracy);
        break;
    }
}

void
LeeSmithPredictor::reset()
{
    table_->reset();
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
}

namespace
{

constexpr std::uint32_t kCheckpointVersion = 1;

/** Geometry fingerprint, salted per predictor class (0x15b7b = LS). */
std::uint64_t
configFingerprint(const LeeSmithConfig &config)
{
    std::uint64_t fp = 0x15b7b;
    const auto mixIn = [&fp](std::uint64_t value) {
        fp = mix64(fp ^ value);
    };
    mixIn(static_cast<std::uint64_t>(config.tableKind));
    mixIn(config.entries);
    mixIn(config.associativity);
    mixIn(static_cast<std::uint64_t>(config.automaton));
    mixIn(config.addrShift);
    return fp;
}

} // namespace

bool
LeeSmithPredictor::saveCheckpoint(std::ostream &os) const
{
    core::ckpt::writeHeader(os, kCheckpointVersion,
                            configFingerprint(config_));
    table_->saveState(
        os, [](std::ostream &out, const Automaton &automaton) {
            core::ckpt::putScalar(out, automaton.state());
        });
    core::ckpt::writeEnd(os);
    return static_cast<bool>(os);
}

bool
LeeSmithPredictor::loadCheckpoint(std::istream &is)
{
    if (!core::ckpt::readHeader(is, kCheckpointVersion,
                                configFingerprint(config_)))
        return false;
    // Atomic temp-and-swap: the fresh table seeds every entry with
    // the configured automaton kind, the loader only restores the
    // state byte, and the live table_ is untouched unless the whole
    // stream validates.
    const std::uint8_t num_states =
        core::automatonSpec(config_.automaton).numStates;
    std::unique_ptr<core::HistoryTable<Automaton>> table =
        makeTable();
    const bool loaded = table->loadState(
        is, [num_states](std::istream &in, Automaton &automaton) {
            std::uint8_t state;
            if (!core::ckpt::getScalar(in, state) ||
                state >= num_states)
                return false;
            automaton.setState(state);
            return true;
        });
    if (!loaded || !core::ckpt::readEnd(is))
        return false;
    table_ = std::move(table);
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
    return true;
}

} // namespace tlat::predictors
