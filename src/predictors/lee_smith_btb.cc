#include "lee_smith_btb.hh"

#include "util/string_utils.hh"

namespace tlat::predictors
{

using core::Automaton;
using core::TableKind;

LeeSmithPredictor::LeeSmithPredictor(const LeeSmithConfig &config)
    : config_(config)
{
    const Automaton initial(config_.automaton);
    switch (config_.tableKind) {
      case TableKind::Ideal:
        table_ = std::make_unique<core::IdealTable<Automaton>>(initial);
        break;
      case TableKind::Associative:
        table_ = std::make_unique<core::AssociativeTable<Automaton>>(
            config_.entries, config_.associativity, initial,
            config_.addrShift);
        break;
      case TableKind::Hashed:
        table_ = std::make_unique<core::HashedTable<Automaton>>(
            config_.entries, initial, config_.addrShift);
        break;
    }
}

std::string
LeeSmithPredictor::name() const
{
    const std::string hrt_part =
        config_.tableKind == TableKind::Ideal
            ? format("IHRT(,%s)", core::automatonName(config_.automaton))
            : format("%s(%zu,%s)", core::tableKindName(config_.tableKind),
                     config_.entries,
                     core::automatonName(config_.automaton));
    return format("LS(%s,,)", hrt_part.c_str());
}

Automaton &
LeeSmithPredictor::lookup(std::uint64_t pc)
{
    if (last_entry_ && last_pc_ == pc)
        return *last_entry_;
    last_pc_ = pc;
    last_entry_ = &table_->lookup(pc);
    return *last_entry_;
}

bool
LeeSmithPredictor::predict(const trace::BranchRecord &record)
{
    return lookup(record.pc).predict();
}

void
LeeSmithPredictor::update(const trace::BranchRecord &record)
{
    lookup(record.pc).update(record.taken);
    // One predict/update pair is one logical table access.
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
}

void
LeeSmithPredictor::reset()
{
    table_->reset();
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
}

} // namespace tlat::predictors
