/**
 * @file
 * Lee & Smith's Branch Target Buffer designs [Lee & Smith 1984],
 * written "LS(HRT(size,Atm),,)" in the paper's Table 2.
 *
 * Each table entry holds one automaton (typically the A2 saturating
 * counter, or Last-Time) driven directly by the branch's own outcomes
 * — there is no pattern level, which is exactly what Two-Level
 * Adaptive Training adds. The same three storage flavours as the AT
 * history register table are evaluated: ideal, set-associative and
 * hashed.
 */

#ifndef TLAT_PREDICTORS_LEE_SMITH_BTB_HH
#define TLAT_PREDICTORS_LEE_SMITH_BTB_HH

#include <memory>

#include "core/automaton.hh"
#include "core/branch_predictor.hh"
#include "core/history_table.hh"

namespace tlat::predictors
{

/** Configuration of a Lee-Smith BTB design. */
struct LeeSmithConfig
{
    core::TableKind tableKind = core::TableKind::Associative;
    std::size_t entries = 512;
    unsigned associativity = 4;
    core::AutomatonKind automaton = core::AutomatonKind::A2;
    unsigned addrShift = 2;
};

/** Per-address automaton predictor (no pattern history level). */
class LeeSmithPredictor : public core::BranchPredictor
{
  public:
    explicit LeeSmithPredictor(const LeeSmithConfig &config);

    std::string name() const override;
    bool predict(const trace::BranchRecord &record) override;
    void update(const trace::BranchRecord &record) override;
    void reset() override;

    /**
     * Fused fast path: one table probe per branch, automaton
     * dispatched per batch so lambda/delta inline. Bit-identical to
     * the predict()/update() loop.
     */
    void simulateBatch(std::span<const trace::BranchRecord> records,
                       AccuracyCounter &accuracy) override;

    /**
     * SoA fused fast path over a predecoded trace: table probes go
     * through the per-geometry index lanes (direct pointer lane for
     * the ideal table, precomputed set/tag or hashed slot otherwise)
     * and outcomes stream from the packed bitvector. Bit-identical to
     * the AoS overload; falls back to it on mid-pair memo state.
     */
    void simulateBatch(const trace::PredecodedView &view,
                       AccuracyCounter &accuracy) override;

    /** The BTB table counters map onto the level-1 metric fields. */
    void
    collectMetrics(core::RunMetrics &metrics) const override
    {
        const core::TableStats &stats = table_->stats();
        metrics.hrtHits = stats.hits;
        metrics.hrtMisses = stats.misses;
        metrics.hrtEvictions = stats.evictions;
        metrics.hrtAliasedLookups = stats.aliasedLookups;
    }

    const core::TableStats &tableStats() const
    {
        return table_->stats();
    }

    const LeeSmithConfig &config() const { return config_; }

    /**
     * Checkpointing in the core/checkpoint.hh framing: table entries
     * (automaton states), replacement state and statistics. Loads
     * are atomic — parsed into a fresh table, committed by swap only
     * after the whole stream (end sentinel included) validated.
     */
    bool saveCheckpoint(std::ostream &os) const override;
    bool loadCheckpoint(std::istream &is) override;

  private:
    core::Automaton &lookup(std::uint64_t pc);

    /** Fresh table of the configured flavour (ctor + atomic load). */
    std::unique_ptr<core::HistoryTable<core::Automaton>>
    makeTable() const;

    /** Fused loop body, monomorphized over (table type, automaton). */
    template <typename Table, core::AutomatonPolicy Ops>
    void fusedBatch(Table &table, const Ops &ops,
                    std::span<const trace::BranchRecord> records,
                    AccuracyCounter &accuracy);

    /** Second dispatch level: automaton policy selection. */
    template <typename Table>
    void dispatchAutomaton(Table &table,
                           std::span<const trace::BranchRecord>
                               records,
                           AccuracyCounter &accuracy);

    /** SoA twin of fusedBatch, monomorphized over (prober, policy). */
    template <typename Prober, core::AutomatonPolicy Ops>
    void fusedBatchSoa(Prober &prober, const Ops &ops,
                       const trace::PredecodedView &view,
                       AccuracyCounter &accuracy);

    /** SoA twin of dispatchAutomaton. */
    template <typename Prober>
    void dispatchAutomatonSoa(Prober &prober,
                              const trace::PredecodedView &view,
                              AccuracyCounter &accuracy);

    LeeSmithConfig config_;
    std::unique_ptr<core::HistoryTable<core::Automaton>> table_;

    std::uint64_t last_pc_ = ~std::uint64_t{0};
    core::Automaton *last_entry_ = nullptr;
};

} // namespace tlat::predictors

#endif // TLAT_PREDICTORS_LEE_SMITH_BTB_HH
