/**
 * @file
 * The static comparison schemes of the paper's Section 5.3:
 * Always Taken, Always Not Taken, and Backward Taken / Forward Not
 * Taken (BTFN). None of them keep run-time state.
 */

#ifndef TLAT_PREDICTORS_STATIC_PREDICTORS_HH
#define TLAT_PREDICTORS_STATIC_PREDICTORS_HH

#include "core/branch_predictor.hh"
#include "core/checkpoint.hh"

namespace tlat::predictors
{

/**
 * Stateless schemes still carry framed (payload-free) checkpoints —
 * magic, version, a per-class fingerprint and the end sentinel — so
 * a combining predictor with a static component can checkpoint. The
 * load obeys the usual contract (full validation, trailing junk
 * rejected) even though there is nothing to restore.
 */
class StatelessPredictor : public core::BranchPredictor
{
  public:
    bool
    saveCheckpoint(std::ostream &os) const override
    {
        core::ckpt::writeHeader(os, 1,
                                core::ckpt::mixString(0x57a71c,
                                                      name()));
        core::ckpt::writeEnd(os);
        return static_cast<bool>(os);
    }

    bool
    loadCheckpoint(std::istream &is) override
    {
        return core::ckpt::readHeader(
                   is, 1,
                   core::ckpt::mixString(0x57a71c, name())) &&
               core::ckpt::readEnd(is);
    }
};

/** Predicts every conditional branch taken (~60% accuracy, Fig. 9). */
class AlwaysTakenPredictor : public StatelessPredictor
{
  public:
    std::string name() const override { return "AlwaysTaken"; }

    bool
    predict(const trace::BranchRecord &) override
    {
        return true;
    }

    void update(const trace::BranchRecord &) override {}
    void reset() override {}
};

/** Predicts every conditional branch not taken. */
class AlwaysNotTakenPredictor : public StatelessPredictor
{
  public:
    std::string name() const override { return "AlwaysNotTaken"; }

    bool
    predict(const trace::BranchRecord &) override
    {
        return false;
    }

    void update(const trace::BranchRecord &) override {}
    void reset() override {}
};

/**
 * Backward Taken, Forward Not taken [Smith 1981]: effective on
 * loop-bound programs — a loop-closing backward branch misses only
 * once per loop — poor on irregular code (paper Figure 9: ~98% on
 * matrix300/tomcatv, often below 70% elsewhere).
 */
class BtfnPredictor : public StatelessPredictor
{
  public:
    std::string name() const override { return "BTFN"; }

    bool
    predict(const trace::BranchRecord &record) override
    {
        return record.target < record.pc;
    }

    void update(const trace::BranchRecord &) override {}
    void reset() override {}
};

} // namespace tlat::predictors

#endif // TLAT_PREDICTORS_STATIC_PREDICTORS_HH
