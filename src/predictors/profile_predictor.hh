/**
 * @file
 * The simple profiling scheme of the paper's Section 5.3: a profiling
 * run counts, per static branch, how often it was taken and not
 * taken; the more frequent direction is encoded as a static
 * prediction bit. The run-time prediction is that bit; branches never
 * seen in profiling fall back to predict-taken (the majority
 * direction overall).
 *
 * The paper profiles and measures on the same data set, so the
 * reported accuracy is exactly sum(max(taken, not_taken)) / total.
 */

#ifndef TLAT_PREDICTORS_PROFILE_PREDICTOR_HH
#define TLAT_PREDICTORS_PROFILE_PREDICTOR_HH

#include <cstdint>
#include <unordered_map>

#include "core/branch_predictor.hh"

namespace tlat::predictors
{

/** Per-branch majority-direction profiling predictor. */
class ProfilePredictor : public core::BranchPredictor
{
  public:
    std::string name() const override { return "Profile"; }
    bool needsTraining() const override { return true; }

    void
    train(const trace::TraceBuffer &trace) override
    {
        for (const trace::BranchRecord &record : trace.records()) {
            if (record.cls != trace::BranchClass::Conditional)
                continue;
            Counts &counts = counts_[record.pc];
            if (record.taken)
                ++counts.taken;
            else
                ++counts.notTaken;
        }
    }

    bool
    predict(const trace::BranchRecord &record) override
    {
        const auto it = counts_.find(record.pc);
        if (it == counts_.end())
            return true; // unseen branch: majority prior is taken
        return it->second.taken >= it->second.notTaken;
    }

    void update(const trace::BranchRecord &) override {}

    void reset() override { counts_.clear(); }

    /** Number of static branches profiled. */
    std::size_t profiledBranches() const { return counts_.size(); }

  private:
    struct Counts
    {
        std::uint64_t taken = 0;
        std::uint64_t notTaken = 0;
    };

    std::unordered_map<std::uint64_t, Counts> counts_;
};

} // namespace tlat::predictors

#endif // TLAT_PREDICTORS_PROFILE_PREDICTOR_HH
