#include "scheme_factory.hh"

#include "core/combining_predictor.hh"
#include "core/contracts.hh"
#include "core/generalized_two_level.hh"
#include "core/two_level_predictor.hh"
#include "lee_smith_btb.hh"
#include "profile_predictor.hh"
#include "static_predictors.hh"
#include "static_training.hh"
#include "util/logging.hh"

namespace tlat::predictors
{

using core::Scheme;
using core::SchemeConfig;

std::unique_ptr<core::BranchPredictor>
makePredictor(const SchemeConfig &config)
{
    switch (config.scheme) {
      case Scheme::TwoLevelAdaptive: {
        core::TwoLevelConfig at;
        at.hrtKind = config.hrtKind;
        at.hrtEntries = config.hrtEntries;
        at.associativity = config.associativity;
        at.historyBits = config.historyBits;
        at.automaton = config.automaton;
        return std::make_unique<core::TwoLevelPredictor>(at);
      }
      case Scheme::StaticTraining: {
        StaticTrainingConfig st;
        st.hrtKind = config.hrtKind;
        st.hrtEntries = config.hrtEntries;
        st.associativity = config.associativity;
        st.historyBits = config.historyBits;
        st.data = config.data;
        return std::make_unique<StaticTrainingPredictor>(st);
      }
      case Scheme::LeeSmithBtb: {
        LeeSmithConfig ls;
        ls.tableKind = config.hrtKind;
        ls.entries = config.hrtEntries;
        ls.associativity = config.associativity;
        ls.automaton = config.automaton;
        return std::make_unique<LeeSmithPredictor>(ls);
      }
      case Scheme::AlwaysTaken:
        return std::make_unique<AlwaysTakenPredictor>();
      case Scheme::AlwaysNotTaken:
        return std::make_unique<AlwaysNotTakenPredictor>();
      case Scheme::Btfn:
        return std::make_unique<BtfnPredictor>();
      case Scheme::Profile:
        return std::make_unique<ProfilePredictor>();
      case Scheme::Gshare: {
        core::GeneralizedConfig gsh;
        gsh.historyScope = core::HistoryScope::Global;
        gsh.patternScope = core::PatternScope::Global;
        gsh.historyBits = config.historyBits;
        gsh.automaton = config.automaton;
        gsh.xorAddress = true;
        return std::make_unique<core::GeneralizedTwoLevelPredictor>(
            gsh);
      }
      case Scheme::Combining: {
        core::CombiningOptions options;
        options.chooserBits = config.chooserBits;
        // name() renders the canonical parsed text, so a factory
        // round-trip (parse -> build -> name -> parse) is stable.
        return std::make_unique<core::CombiningPredictor>(
            makePredictor(config.components[0]),
            makePredictor(config.components[1]), options,
            config.text());
      }
    }
    tlat_panic("unhandled scheme kind");
}

std::unique_ptr<core::BranchPredictor>
makePredictor(const std::string &schemeName)
{
    const auto config = SchemeConfig::parse(schemeName);
    if (!config)
        tlat_fatal("unparsable scheme name '", schemeName, "'");
    return makePredictor(*config);
}

} // namespace tlat::predictors
