/**
 * @file
 * Lee & Smith's Static Training scheme [Lee & Smith 1984], written
 * "ST(HRT(size,kSR),PT(2^k,PB),Same|Diff)" in the paper's Table 2.
 *
 * Like Two-Level Adaptive Training, the scheme keeps a k-bit history
 * register per branch and a 2^k-entry pattern table — but the pattern
 * table holds *preset prediction bits* computed from a profiling run
 * rather than live automata. Given a history pattern, the prediction
 * is fixed for the whole execution; this is exactly the property the
 * paper attacks: "the same statistics may not be applicable to
 * different data sets" (the Diff configurations of Figure 8).
 *
 * Profiling is software (paper Section 5.2), so training tracks every
 * static branch ideally; the configured HRT implementation applies to
 * the measured run only. Patterns never observed in training predict
 * taken, consistent with the ~60% overall taken rate.
 */

#ifndef TLAT_PREDICTORS_STATIC_TRAINING_HH
#define TLAT_PREDICTORS_STATIC_TRAINING_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/branch_predictor.hh"
#include "core/history_table.hh"
#include "core/scheme_config.hh"

namespace tlat::predictors
{

/** Configuration of a Static Training predictor. */
struct StaticTrainingConfig
{
    core::TableKind hrtKind = core::TableKind::Associative;
    std::size_t hrtEntries = 512;
    unsigned associativity = 4;
    unsigned historyBits = 12;
    /** Same/Diff label for the scheme name (the harness picks the
     *  actual training trace). */
    core::DataMode data = core::DataMode::Same;
    unsigned addrShift = 2;
};

/** Preset-pattern-bit predictor trained by profiling. */
class StaticTrainingPredictor : public core::BranchPredictor
{
  public:
    explicit StaticTrainingPredictor(
        const StaticTrainingConfig &config);

    std::string name() const override;
    bool needsTraining() const override { return true; }
    void train(const trace::TraceBuffer &trace) override;

    bool predict(const trace::BranchRecord &record) override;
    void update(const trace::BranchRecord &record) override;
    void reset() override;

    /** Preset bit for a pattern (tests; true = predict taken). */
    bool presetBit(std::uint32_t pattern) const;

    const StaticTrainingConfig &config() const { return config_; }

  private:
    struct StEntry
    {
        std::uint32_t history = 0;
    };

    StEntry &lookup(std::uint64_t pc);

    StaticTrainingConfig config_;
    std::uint32_t history_mask_;

    /** Profiling tallies, indexed by pattern. */
    struct PatternCounts
    {
        std::uint64_t taken = 0;
        std::uint64_t notTaken = 0;
    };

    std::vector<PatternCounts> counts_;

    /** Run-time history registers. */
    std::unique_ptr<core::HistoryTable<StEntry>> hrt_;

    std::uint64_t last_pc_ = ~std::uint64_t{0};
    StEntry *last_entry_ = nullptr;
};

} // namespace tlat::predictors

#endif // TLAT_PREDICTORS_STATIC_TRAINING_HH
