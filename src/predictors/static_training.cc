#include "static_training.hh"

#include "util/bitops.hh"
#include "util/string_utils.hh"

namespace tlat::predictors
{

using core::TableKind;

StaticTrainingPredictor::StaticTrainingPredictor(
    const StaticTrainingConfig &config)
    : config_(config),
      history_mask_(static_cast<std::uint32_t>(
          lowMask(config.historyBits))),
      counts_(std::size_t{1} << config.historyBits)
{
    const StEntry initial{history_mask_};
    switch (config_.hrtKind) {
      case TableKind::Ideal:
        hrt_ = std::make_unique<core::IdealTable<StEntry>>(initial);
        break;
      case TableKind::Associative:
        hrt_ = std::make_unique<core::AssociativeTable<StEntry>>(
            config_.hrtEntries, config_.associativity, initial,
            config_.addrShift);
        break;
      case TableKind::Hashed:
        hrt_ = std::make_unique<core::HashedTable<StEntry>>(
            config_.hrtEntries, initial, config_.addrShift);
        break;
    }
}

std::string
StaticTrainingPredictor::name() const
{
    const std::string hrt_part =
        config_.hrtKind == TableKind::Ideal
            ? format("IHRT(,%uSR)", config_.historyBits)
            : format("%s(%zu,%uSR)",
                     core::tableKindName(config_.hrtKind),
                     config_.hrtEntries, config_.historyBits);
    return format("ST(%s,PT(2^%u,PB),%s)", hrt_part.c_str(),
                  config_.historyBits,
                  config_.data == core::DataMode::Diff ? "Diff"
                                                       : "Same");
}

void
StaticTrainingPredictor::train(const trace::TraceBuffer &trace)
{
    // Software profiling: ideal per-branch history, regardless of the
    // run-time HRT flavour. Histories start all-ones like the HRT.
    std::unordered_map<std::uint64_t, std::uint32_t> histories;
    for (const trace::BranchRecord &record : trace.records()) {
        if (record.cls != trace::BranchClass::Conditional)
            continue;
        auto [it, inserted] =
            histories.try_emplace(record.pc, history_mask_);
        std::uint32_t &history = it->second;
        PatternCounts &counts = counts_[history];
        if (record.taken)
            ++counts.taken;
        else
            ++counts.notTaken;
        history =
            ((history << 1) | (record.taken ? 1u : 0u)) & history_mask_;
    }
}

bool
StaticTrainingPredictor::presetBit(std::uint32_t pattern) const
{
    const PatternCounts &counts = counts_[pattern & history_mask_];
    // Ties and never-seen patterns predict taken (the 60% prior).
    return counts.taken >= counts.notTaken;
}

StaticTrainingPredictor::StEntry &
StaticTrainingPredictor::lookup(std::uint64_t pc)
{
    if (last_entry_ && last_pc_ == pc)
        return *last_entry_;
    last_pc_ = pc;
    last_entry_ = &hrt_->lookup(pc);
    return *last_entry_;
}

bool
StaticTrainingPredictor::predict(const trace::BranchRecord &record)
{
    return presetBit(lookup(record.pc).history);
}

void
StaticTrainingPredictor::update(const trace::BranchRecord &record)
{
    StEntry &entry = lookup(record.pc);
    entry.history = ((entry.history << 1) |
                     (record.taken ? 1u : 0u)) &
                    history_mask_;
    // One predict/update pair is one logical table access.
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
}

void
StaticTrainingPredictor::reset()
{
    counts_.assign(counts_.size(), PatternCounts{});
    hrt_->reset();
    last_pc_ = ~std::uint64_t{0};
    last_entry_ = nullptr;
}

} // namespace tlat::predictors
