/**
 * @file
 * Builds a live predictor from a parsed Table 2 scheme name.
 */

#ifndef TLAT_PREDICTORS_SCHEME_FACTORY_HH
#define TLAT_PREDICTORS_SCHEME_FACTORY_HH

#include <memory>
#include <string>

#include "core/branch_predictor.hh"
#include "core/scheme_config.hh"

namespace tlat::predictors
{

/** Instantiates the predictor described by @p config. */
std::unique_ptr<core::BranchPredictor>
makePredictor(const core::SchemeConfig &config);

/** Parses a Table 2 name and instantiates it; fatal on bad names. */
std::unique_ptr<core::BranchPredictor>
makePredictor(const std::string &schemeName);

} // namespace tlat::predictors

#endif // TLAT_PREDICTORS_SCHEME_FACTORY_HH
