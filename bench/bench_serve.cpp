/**
 * @file
 * Load generator for the multi-tenant serving engine (`src/serve`).
 * Not a paper artifact — a software performance check for the serve
 * path itself, the serving twin of bench_throughput:
 *
 *  - builds one trace per tenant (cycling over the SPEC'89 mirror
 *    workloads, budget from TLAT_BRANCH_BUDGET),
 *  - streams all tenants interleaved through the sharded engine with
 *    per-record latency tracking on,
 *  - reports tenants/sec, records/sec, p50/p99 enqueue-to-applied
 *    latency, the served-vs-offline throughput ratio and peak RSS.
 *
 * The scalars land in BENCH_serve.json ("figure": "serve");
 * tools/check_throughput.py gates tenants_per_sec (downward) and
 * p99_latency_ns (upward) against bench/baselines/serve_baseline.json.
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "predictors/scheme_factory.hh"
#include "serve/serve_engine.hh"
#include "sim/simulator.hh"
#include "trace/trace_buffer.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

namespace
{

using namespace tlat;

constexpr const char *kScheme = "AT(AHRT(512,12SR),PT(2^12,A2),)";
constexpr unsigned kTenants = 8;
constexpr unsigned kShards = 4;
constexpr std::size_t kBatchRecords = 256;
constexpr std::size_t kInterleaveBlock = 1024;

std::vector<std::pair<std::string, trace::TraceBuffer>>
buildTenantTraces(std::uint64_t budget)
{
    const std::vector<std::string> names =
        workloads::workloadNames();
    std::vector<std::pair<std::string, trace::TraceBuffer>> traces;
    traces.reserve(kTenants);
    for (unsigned i = 0; i < kTenants; ++i) {
        const std::string &bench = names[i % names.size()];
        traces.emplace_back(
            bench + "#" + std::to_string(i),
            sim::collectTrace(
                workloads::makeWorkload(bench)->buildTest(),
                budget));
    }
    return traces;
}

core::SchemeConfig
schemeConfig()
{
    const auto config = core::SchemeConfig::parse(kScheme);
    if (!config) {
        std::cerr << "bad bench scheme\n";
        std::exit(1);
    }
    return *config;
}

/** Offline twin: every tenant stream through simulateBatch. */
double
offlineRecordsPerSec(
    const std::vector<std::pair<std::string, trace::TraceBuffer>>
        &traces)
{
    std::uint64_t records = 0;
    const auto start = std::chrono::steady_clock::now();
    for (const auto &[name, trace] : traces) {
        auto predictor = predictors::makePredictor(schemeConfig());
        predictor->reset();
        AccuracyCounter accuracy;
        predictor->simulateBatch(trace.records(), accuracy);
        records += trace.size();
    }
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(records) / seconds;
}

struct ServeRun
{
    double seconds = 0.0;
    std::uint64_t records = 0;
    std::vector<std::uint64_t> latenciesNs;
};

ServeRun
servedRun(const std::vector<std::pair<std::string,
                                      trace::TraceBuffer>> &traces)
{
    serve::ServeConfig config;
    config.shards = kShards;
    config.batchRecords = kBatchRecords;
    config.trackLatency = true;
    serve::ServeEngine engine(schemeConfig(), config);
    std::vector<std::size_t> handles;
    handles.reserve(traces.size());
    for (const auto &[name, trace] : traces)
        handles.push_back(engine.addTenant(name));

    ServeRun run;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::size_t> next(traces.size(), 0);
    bool advanced = true;
    while (advanced) {
        advanced = false;
        for (std::size_t t = 0; t < traces.size(); ++t) {
            const auto &records = traces[t].second.records();
            if (next[t] >= records.size())
                continue;
            const std::size_t take = std::min(
                kInterleaveBlock, records.size() - next[t]);
            engine.ingestSpan(handles[t],
                              {records.data() + next[t], take});
            next[t] += take;
            run.records += take;
            advanced = true;
        }
    }
    engine.drain();
    run.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    run.latenciesNs = engine.takeLatenciesNs();
    return run;
}

double
percentileNs(std::vector<std::uint64_t> &sorted, double fraction)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t index = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(fraction *
                                 static_cast<double>(sorted.size())));
    return static_cast<double>(sorted[index]);
}

} // namespace

int
main()
{
    using namespace tlat;
    bench::printHeader(
        "serve-path throughput (software check, not a paper figure)",
        "multi-tenant streaming: " + std::to_string(kTenants) +
            " tenants, " + std::to_string(kShards) + " shards, " +
            std::to_string(kBatchRecords) + "-record micro-batches");
    bench::BenchRecorder record("serve");

    const std::uint64_t budget = harness::branchBudgetFromEnv();
    const auto traces = buildTenantTraces(budget);

    const double offline_rps = offlineRecordsPerSec(traces);
    const ServeRun run = servedRun(traces);

    const double served_rps =
        static_cast<double>(run.records) / run.seconds;
    const double tenants_per_sec =
        static_cast<double>(traces.size()) / run.seconds;
    std::vector<std::uint64_t> latencies = run.latenciesNs;
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentileNs(latencies, 0.50);
    const double p99 = percentileNs(latencies, 0.99);

    struct rusage usage
    {
    };
    getrusage(RUSAGE_SELF, &usage);
    const double peak_rss_bytes =
        static_cast<double>(usage.ru_maxrss) * 1024.0;

    TablePrinter table("serve-path throughput");
    table.setHeader({"metric", "value"});
    table.addRow({"tenants", std::to_string(traces.size())});
    table.addRow({"records served", std::to_string(run.records)});
    table.addRow({"tenants/sec", format("%.2f", tenants_per_sec)});
    table.addRow({"records/sec", format("%.3g", served_rps)});
    table.addRow({"offline records/sec",
                  format("%.3g", offline_rps)});
    table.addRow({"served/offline",
                  format("%.3f", served_rps / offline_rps)});
    table.addRow({"p50 latency us", format("%.1f", p50 / 1000.0)});
    table.addRow({"p99 latency us", format("%.1f", p99 / 1000.0)});
    table.addRow({"peak rss MiB",
                  format("%.1f",
                         peak_rss_bytes / (1024.0 * 1024.0))});
    table.print(std::cout);

    record.addScalar("tenants_per_sec", tenants_per_sec);
    record.addScalar("records_per_sec", served_rps);
    record.addScalar("offline_records_per_sec", offline_rps);
    record.addScalar("serve_vs_offline", served_rps / offline_rps);
    record.addScalar("p50_latency_ns", p50);
    record.addScalar("p99_latency_ns", p99);
    record.addScalar("peak_rss_bytes", peak_rss_bytes);
    return 0;
}
