/**
 * @file
 * Extension: the designer's view of the paper — sweep the AT design
 * space (history length x table geometry), then report the storage/
 * accuracy Pareto frontier and the best configuration under a few
 * representative transistor budgets.
 */

#include "bench_common.hh"
#include "harness/design_space.hh"
#include "util/string_utils.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("design_space");
    bench::printHeader(
        "Extension: design space",
        "History length x HRT geometry sweep with the storage cost "
        "model.");

    harness::BenchmarkSuite suite;
    const auto points = harness::gridPoints(
        {6, 8, 10, 12},
        {core::TableKind::Associative, core::TableKind::Hashed},
        {256, 512});
    const harness::AccuracyReport report =
        harness::sweepDesignSpace(suite, points);
    report.print(std::cout);
    record.addReport(report);
    bench::maybeWriteCsv(report, "design_space");

    const auto entries = harness::measureFrontier(points, report);

    TablePrinter frontier_table("storage/accuracy Pareto frontier");
    frontier_table.setHeader(
        {"configuration", "Kbit", "Tot G Mean %"});
    for (const harness::FrontierEntry &entry :
         harness::paretoFrontier(entries)) {
        frontier_table.addRow(
            {entry.point.label(),
             format("%.1f", entry.storageBits / 1024.0),
             TablePrinter::percentCell(entry.totalMeanAccuracy)});
    }
    frontier_table.print(std::cout);

    TablePrinter budget_table("best configuration under budget");
    budget_table.setHeader({"budget Kbit", "pick", "Kbit used",
                            "Tot G Mean %"});
    for (const std::uint64_t kbit : {4ull, 8ull, 16ull, 32ull}) {
        const auto best =
            harness::bestUnderBudget(entries, kbit * 1024);
        if (!best) {
            budget_table.addRow(
                {std::to_string(kbit), "-", "-", "-"});
            continue;
        }
        budget_table.addRow(
            {std::to_string(kbit), best->point.label(),
             format("%.1f", best->storageBits / 1024.0),
             TablePrinter::percentCell(best->totalMeanAccuracy)});
    }
    budget_table.print(std::cout);

    bench::printExpectation(
        "the frontier climbs steeply through the cheap hashed "
        "configurations and flattens once the pattern table "
        "dominates cost; the tagless HHRT points win the small "
        "budgets (no tag store), the AHRT takes over once tags are "
        "affordable — the paper's Section 3.1/5.1.2 trade-off, "
        "priced out.");
    return 0;
}
