/**
 * @file
 * Table 1: the number of static conditional branches in each
 * benchmark. Absolute counts are scaled down in this reproduction
 * (the mirrors are smaller programs than SPEC'89 binaries); the
 * qualitative claim is the spread — gcc has by far the most static
 * branches, the loop-bound FP codes the fewest.
 */

#include <map>

#include "bench_common.hh"
#include "trace/trace_stats.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("table1_static_branches");
    bench::printHeader(
        "Table 1",
        "Number of static conditional branches per benchmark.");

    harness::BenchmarkSuite suite;
    TablePrinter table("static conditional branch census");
    table.setHeader({"benchmark", "static cond (code)",
                     "static cond (executed)", "paper (SPEC'89)"});

    const std::map<std::string, int> paper = {
        {"eqntott", 277},  {"espresso", 556}, {"gcc", 6922},
        {"li", 489},       {"doduc", 1149},   {"fpppp", 653},
        {"matrix300", 213}, {"spice2g6", 606}, {"tomcatv", 370},
    };

    for (const std::string &name : suite.benchmarks()) {
        const auto workload = workloads::makeWorkload(name);
        const isa::Program program = workload->buildTest();
        const trace::TraceStats stats =
            trace::computeStats(suite.testTrace(name));
        table.addRow(
            {name,
             std::to_string(program.staticConditionalBranches()),
             std::to_string(stats.staticConditionalBranches),
             std::to_string(paper.at(name))});
    }
    table.print(std::cout);

    bench::printExpectation(
        "gcc has roughly 6x more static conditional branches than "
        "any other benchmark (6922); matrix300 has the fewest (213). "
        "This reproduction preserves the spread, not the absolute "
        "counts.");
    return 0;
}
