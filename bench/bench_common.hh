/**
 * @file
 * Shared scaffolding for the figure/table reproduction binaries.
 *
 * Every bench prints:
 *  - a header naming the paper artifact it regenerates,
 *  - the measured table in the paper's layout,
 *  - the paper's qualitative expectation, so the output is
 *    self-checking by eye.
 *
 * The conditional-branch budget per benchmark comes from
 * TLAT_BRANCH_BUDGET (default 300000; the paper used twenty million —
 * accuracy differences past the budget are in the third digit).
 */

#ifndef TLAT_BENCH_BENCH_COMMON_HH
#define TLAT_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/figure_runner.hh"
#include "harness/parallel_sweep.hh"
#include "harness/suite.hh"

namespace tlat::bench
{

/** Prints the bench banner. */
inline void
printHeader(const std::string &artifact, const std::string &caption)
{
    std::cout << "==================================================="
                 "=========\n"
              << "Reproduction of " << artifact << "\n"
              << caption << "\n"
              << "branch budget per benchmark: "
              << harness::branchBudgetFromEnv()
              << " conditional branches"
              << " (override with TLAT_BRANCH_BUDGET)\n"
              << "sweep worker threads: " << harness::defaultJobs()
              << " (override with TLAT_JOBS; accuracies are "
                 "identical for every value)\n"
              << "==================================================="
                 "=========\n\n";
}

/** Prints the paper's expectation below the measured table. */
inline void
printExpectation(const std::string &text)
{
    std::cout << "paper expectation: " << text << "\n\n";
}

/**
 * Writes the report as CSV into $TLAT_CSV_DIR/<stem>.csv when that
 * environment variable is set (for replotting outside the harness).
 */
inline void
maybeWriteCsv(const harness::AccuracyReport &report,
              const std::string &stem)
{
    const char *dir = std::getenv("TLAT_CSV_DIR");
    if (!dir)
        return;
    const std::string path = std::string(dir) + "/" + stem + ".csv";
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    report.printCsv(os);
    std::cout << "(csv written to " << path << ")\n\n";
}

} // namespace tlat::bench

#endif // TLAT_BENCH_BENCH_COMMON_HH
