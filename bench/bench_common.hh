/**
 * @file
 * Shared scaffolding for the figure/table reproduction binaries.
 *
 * Every bench prints:
 *  - a header naming the paper artifact it regenerates,
 *  - the measured table in the paper's layout,
 *  - the paper's qualitative expectation, so the output is
 *    self-checking by eye.
 *
 * The conditional-branch budget per benchmark comes from
 * TLAT_BRANCH_BUDGET (default 300000; the paper used twenty million —
 * accuracy differences past the budget are in the third digit).
 */

#ifndef TLAT_BENCH_BENCH_COMMON_HH
#define TLAT_BENCH_BENCH_COMMON_HH

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/figure_runner.hh"
#include "harness/parallel_sweep.hh"
#include "harness/suite.hh"
#include "util/env.hh"
#include "util/json_writer.hh"
#include "util/mutex.hh"
#include "util/string_utils.hh"
#include "util/thread_annotations.hh"

namespace tlat::bench
{

/** Prints the bench banner. */
inline void
printHeader(const std::string &artifact, const std::string &caption)
{
    std::cout << "==================================================="
                 "=========\n"
              << "Reproduction of " << artifact << "\n"
              << caption << "\n"
              << "branch budget per benchmark: "
              << harness::branchBudgetFromEnv()
              << " conditional branches"
              << " (override with TLAT_BRANCH_BUDGET)\n"
              << "sweep worker threads: " << harness::defaultJobs()
              << " (override with TLAT_JOBS; accuracies are "
                 "identical for every value)\n"
              << "==================================================="
                 "=========\n\n";
}

/** Prints the paper's expectation below the measured table. */
inline void
printExpectation(const std::string &text)
{
    std::cout << "paper expectation: " << text << "\n\n";
}

/**
 * Writes the report as CSV into $TLAT_CSV_DIR/<stem>.csv when that
 * environment variable is set (for replotting outside the harness).
 */
inline void
maybeWriteCsv(const harness::AccuracyReport &report,
              const std::string &stem)
{
    const auto dir = util::envString("TLAT_CSV_DIR");
    if (!dir)
        return;
    const std::string path = *dir + "/" + stem + ".csv";
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    report.printCsv(os);
    std::cout << "(csv written to " << path << ")\n\n";
}

/**
 * Machine-readable record of one bench run, written as
 * BENCH_<stem>.json when the recorder goes out of scope.
 *
 * Schema "tlat-bench-v1":
 *   schema, figure, config{branch_budget, jobs, fingerprint},
 *   wall_time_seconds, results[{benchmark, scheme,
 *   accuracy_percent}], means[{scheme, int_mean, fp_mean,
 *   total_mean}], scalars{...}
 *
 * The file lands in $TLAT_BENCH_JSON_DIR when set, else the current
 * directory. `fingerprint` hashes the budget, the jobs setting and
 * every (benchmark, scheme) label, so a plotting script can tell two
 * records produced under different configurations apart. Everything
 * except wall_time_seconds is deterministic for a given config.
 */
class BenchRecorder
{
  public:
    explicit BenchRecorder(std::string stem)
        : stem_(std::move(stem)),
          start_(std::chrono::steady_clock::now())
    {
    }

    BenchRecorder(const BenchRecorder &) = delete;
    BenchRecorder &operator=(const BenchRecorder &) = delete;

    /**
     * Copies the report's cells and means into the record.
     * Thread-safe: a bench that records from sweep callbacks on pool
     * workers appends under the recorder's lock; rows keep arrival
     * order, so callers that need a deterministic file still record
     * from one thread or in a fixed order.
     */
    void
    addReport(const harness::AccuracyReport &report)
    {
        const util::MutexLock lock(mutex_);
        for (const std::string &scheme : report.schemes()) {
            for (const std::string &benchmark :
                 report.benchmarks()) {
                const double accuracy =
                    report.cell(benchmark, scheme);
                if (accuracy >= 0.0)
                    rows_.push_back({benchmark, scheme, accuracy});
            }
            means_.push_back({scheme, report.intMean(scheme),
                              report.fpMean(scheme),
                              report.totalMean(scheme)});
        }
    }

    /** Records one named headline number (e.g. a miss-rate ratio). */
    void
    addScalar(const std::string &name, double value)
    {
        const util::MutexLock lock(mutex_);
        scalars_.emplace_back(name, value);
    }

    ~BenchRecorder()
    {
        const double wall_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        const auto dir = util::envString("TLAT_BENCH_JSON_DIR");
        const std::string path = (dir ? *dir + "/" : "") +
                                 "BENCH_" + stem_ + ".json";
        // Write-then-rename (the trace preload cache's pattern): a
        // CI gate reading BENCH_*.json concurrently can never see a
        // half-written document, and a crashed bench never replaces
        // a good record with a truncated one.
        const std::string tmp =
            path + ".tmp." + std::to_string(::getpid());
        std::ofstream os(tmp);
        if (!os) {
            std::cerr << "cannot write " << tmp << "\n";
            return;
        }
        // Destruction is single-threaded by construction, but the
        // annotated fields are read here, so hold the lock for the
        // analysis (uncontended: no recorder outlives its writers).
        const util::MutexLock lock(mutex_);
        JsonWriter json(os);
        json.beginObject();
        json.member("schema", "tlat-bench-v1");
        json.member("figure", stem_);
        json.key("config").beginObject();
        json.member("branch_budget",
                    harness::branchBudgetFromEnv());
        json.member("jobs",
                    static_cast<std::uint64_t>(
                        harness::defaultJobs()));
        json.member("fingerprint", fingerprint());
        json.endObject();
        json.member("wall_time_seconds", wall_seconds);
        json.key("results").beginArray();
        for (const Row &row : rows_) {
            json.beginObject();
            json.member("benchmark", row.benchmark);
            json.member("scheme", row.scheme);
            json.member("accuracy_percent", row.accuracyPercent);
            json.endObject();
        }
        json.endArray();
        json.key("means").beginArray();
        for (const Mean &mean : means_) {
            json.beginObject();
            json.member("scheme", mean.scheme);
            json.member("int_mean", mean.intMean);
            json.member("fp_mean", mean.fpMean);
            json.member("total_mean", mean.totalMean);
            json.endObject();
        }
        json.endArray();
        json.key("scalars").beginObject();
        for (const auto &[name, value] : scalars_)
            json.member(name, value);
        json.endObject();
        json.endObject();
        os.flush();
        std::error_code ec;
        if (!os) {
            std::cerr << "cannot write " << tmp << "\n";
            std::filesystem::remove(tmp, ec);
            return;
        }
        os.close();
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            std::cerr << "cannot rename " << tmp << " to " << path
                      << ": " << ec.message() << "\n";
            std::filesystem::remove(tmp, ec);
            return;
        }
        std::cout << "(bench record written to " << path << ")\n";
    }

  private:
    struct Row
    {
        std::string benchmark;
        std::string scheme;
        double accuracyPercent;
    };
    struct Mean
    {
        std::string scheme;
        double intMean;
        double fpMean;
        double totalMean;
    };

    /** FNV-1a over the run configuration, as a hex string. */
    std::string
    fingerprint() const TLAT_REQUIRES(mutex_)
    {
        std::uint64_t hash = 0xcbf29ce484222325ULL;
        const auto absorb = [&hash](std::string_view text) {
            for (const char c : text) {
                hash ^= static_cast<unsigned char>(c);
                hash *= 0x100000001b3ULL;
            }
            hash *= 0x100000001b3ULL; // separator
        };
        // Only results-affecting configuration: jobs and wall time
        // are run-shape, not result-shape (the sweep engine is
        // deterministic for every jobs count).
        absorb(stem_);
        absorb(std::to_string(harness::branchBudgetFromEnv()));
        for (const Row &row : rows_) {
            absorb(row.benchmark);
            absorb(row.scheme);
        }
        return format("%016llx",
                      static_cast<unsigned long long>(hash));
    }

    std::string stem_;
    std::chrono::steady_clock::time_point start_;
    mutable util::Mutex mutex_;
    std::vector<Row> rows_ TLAT_GUARDED_BY(mutex_);
    std::vector<Mean> means_ TLAT_GUARDED_BY(mutex_);
    std::vector<std::pair<std::string, double>> scalars_
        TLAT_GUARDED_BY(mutex_);
};

} // namespace tlat::bench

#endif // TLAT_BENCH_BENCH_COMMON_HH
