/**
 * @file
 * google-benchmark microbenchmarks: predict+update throughput of
 * every predictor family on a pre-generated gcc trace, plus the
 * simulator's raw trace-generation rate. Not a paper artifact — a
 * software performance check for the library itself.
 */

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>

#include "bench_common.hh"
#include "core/two_level_predictor.hh"
#include "predictors/scheme_factory.hh"
#include "sim/simulator.hh"
#include "trace/predecode.hh"
#include "util/simd.hh"
#include "workloads/workload.hh"

namespace
{

using namespace tlat;

const trace::TraceBuffer &
gccTrace()
{
    static const trace::TraceBuffer trace = [] {
        const auto workload = workloads::makeWorkload("gcc");
        return sim::collectTrace(workload->buildTest(), 100000);
    }();
    return trace;
}

void
runPredictorLoop(benchmark::State &state, const std::string &scheme)
{
    const trace::TraceBuffer &trace = gccTrace();
    const auto predictor = predictors::makePredictor(scheme);
    if (predictor->needsTraining())
        predictor->train(trace);

    std::uint64_t branches = 0;
    for (auto _ : state) {
        for (const trace::BranchRecord &record : trace.records()) {
            if (record.cls != trace::BranchClass::Conditional)
                continue;
            benchmark::DoNotOptimize(predictor->predict(record));
            predictor->update(record);
            ++branches;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}

// Same predictors driven through the fused batch API
// (simulateBatch over the prefiltered conditional view) — the
// BM_*Fused / BM_* pairs are the per-family A/B the throughput gate
// summarizes.
void
runFusedLoop(benchmark::State &state, const std::string &scheme)
{
    const trace::TraceBuffer &trace = gccTrace();
    const auto predictor = predictors::makePredictor(scheme);
    if (predictor->needsTraining())
        predictor->train(trace);

    std::uint64_t branches = 0;
    for (auto _ : state) {
        AccuracyCounter accuracy;
        predictor->simulateBatch(trace.conditionalView(), accuracy);
        benchmark::DoNotOptimize(accuracy.hits());
        branches += accuracy.total();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}

// And the same predictors again over the predecoded SoA view — the
// per-trace dictionary/outcome/index lanes are built once (outside
// the timed region, matching how the harness shares one artifact
// across all sweep cells) and every pass reuses them.
void
runSoaLoop(benchmark::State &state, const std::string &scheme)
{
    const trace::TraceBuffer &trace = gccTrace();
    const trace::PredecodedView view = trace.predecodedView();
    const auto predictor = predictors::makePredictor(scheme);
    if (predictor->needsTraining())
        predictor->train(trace);

    std::uint64_t branches = 0;
    for (auto _ : state) {
        AccuracyCounter accuracy;
        predictor->simulateBatch(view, accuracy);
        benchmark::DoNotOptimize(accuracy.hits());
        branches += accuracy.total();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}

void
BM_TwoLevelAhrt(benchmark::State &state)
{
    runPredictorLoop(state, "AT(AHRT(512,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelAhrt);

void
BM_TwoLevelAhrtFused(benchmark::State &state)
{
    runFusedLoop(state, "AT(AHRT(512,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelAhrtFused);

void
BM_TwoLevelAhrtSoa(benchmark::State &state)
{
    runSoaLoop(state, "AT(AHRT(512,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelAhrtSoa);

void
BM_TwoLevelIhrt(benchmark::State &state)
{
    runPredictorLoop(state, "AT(IHRT(,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelIhrt);

void
BM_TwoLevelIhrtFused(benchmark::State &state)
{
    runFusedLoop(state, "AT(IHRT(,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelIhrtFused);

void
BM_TwoLevelIhrtSoa(benchmark::State &state)
{
    runSoaLoop(state, "AT(IHRT(,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelIhrtSoa);

void
BM_TwoLevelHhrt(benchmark::State &state)
{
    runPredictorLoop(state, "AT(HHRT(512,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelHhrt);

void
BM_TwoLevelHhrtSoa(benchmark::State &state)
{
    runSoaLoop(state, "AT(HHRT(512,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelHhrtSoa);

void
BM_LeeSmith(benchmark::State &state)
{
    runPredictorLoop(state, "LS(AHRT(512,A2),,)");
}
BENCHMARK(BM_LeeSmith);

void
BM_LeeSmithFused(benchmark::State &state)
{
    runFusedLoop(state, "LS(AHRT(512,A2),,)");
}
BENCHMARK(BM_LeeSmithFused);

void
BM_LeeSmithSoa(benchmark::State &state)
{
    runSoaLoop(state, "LS(AHRT(512,A2),,)");
}
BENCHMARK(BM_LeeSmithSoa);

// Tournament scheme: both components plus the chooser on every
// branch, so the reference loop pays roughly the sum of its parts.
// The fused path instead runs each component's own fused batch and
// replays the chooser over captured correctness lanes.
const char kCombiningScheme[] =
    "CMB(AT(AHRT(512,12SR),PT(2^12,A2),),LS(AHRT(512,A2),,),"
    "CT(2^12))";

void
BM_Combining(benchmark::State &state)
{
    runPredictorLoop(state, kCombiningScheme);
}
BENCHMARK(BM_Combining);

void
BM_CombiningFused(benchmark::State &state)
{
    runFusedLoop(state, kCombiningScheme);
}
BENCHMARK(BM_CombiningFused);

void
BM_CombiningSoa(benchmark::State &state)
{
    runSoaLoop(state, kCombiningScheme);
}
BENCHMARK(BM_CombiningSoa);

void
BM_StaticTraining(benchmark::State &state)
{
    runPredictorLoop(state, "ST(AHRT(512,12SR),PT(2^12,PB),Same)");
}
BENCHMARK(BM_StaticTraining);

void
BM_Btfn(benchmark::State &state)
{
    runPredictorLoop(state, "BTFN");
}
BENCHMARK(BM_Btfn);

void
BM_SimulatorTraceGeneration(benchmark::State &state)
{
    const auto workload = workloads::makeWorkload("matrix300");
    const isa::Program program = workload->buildTest();
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::Simulator simulator(program);
        sim::SimOptions options;
        options.maxInstructions = 2000000;
        const sim::SimResult result =
            simulator.run(nullptr, options);
        instructions += result.instructions;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_SimulatorTraceGeneration);

/**
 * Steady-clock A/B/C of a scheme: the reference predict()/update()
 * loop, the fused AoS simulateBatch() path, and the predecoded SoA
 * simulateBatch() path, all over the same gcc trace. These feed the
 * headline scalars the CI throughput gate (tools/check_throughput.py)
 * compares against the committed baseline — the gate checks the
 * speedup ratios (stable across hosts) rather than absolute
 * records/sec. The SoA legs reuse the buffer's cached artifact, like
 * the harness does when one trace is shared across all sweep cells.
 */
enum class DriveMode
{
    Reference,
    Fused,
    Soa,
};

double
timedRecordsPerSec(const std::string &scheme, DriveMode mode)
{
    const trace::TraceBuffer &trace = gccTrace();
    const trace::PredecodedView view = trace.predecodedView();
    const auto predictor = predictors::makePredictor(scheme);

    const auto pass = [&]() -> std::uint64_t {
        AccuracyCounter accuracy;
        switch (mode) {
        case DriveMode::Fused:
            predictor->simulateBatch(trace.conditionalView(),
                                     accuracy);
            break;
        case DriveMode::Soa:
            predictor->simulateBatch(view, accuracy);
            break;
        case DriveMode::Reference:
            for (const trace::BranchRecord &record : trace.records()) {
                if (record.cls != trace::BranchClass::Conditional)
                    continue;
                benchmark::DoNotOptimize(
                    predictor->predict(record));
                predictor->update(record);
                accuracy.record(true);
            }
            break;
        }
        return accuracy.total();
    };

    pass(); // warm tables, caches, and (for SoA) the index lanes
    // Best-of-N repeats rather than one long window: on shared CI
    // hosts a neighbour stealing the core mid-window skews whichever
    // leg it lands on, and the gated ratios divide two such windows.
    // The fastest repeat approximates the uncontended rate of each
    // leg, so the ratio stays stable run to run.
    constexpr int kRepeats = 5;
    constexpr int kPassesPerRepeat = 4;
    double best = 0.0;
    for (int r = 0; r < kRepeats; ++r) {
        std::uint64_t records = 0;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kPassesPerRepeat; ++i)
            records += pass();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        best = std::max(best,
                        static_cast<double>(records) / seconds);
    }
    return best;
}

/**
 * Seconds to build one predecoded artifact (dictionary + outcome
 * bitvector) from scratch for the gcc trace. This is the one-time
 * per-trace cost the sweep amortizes across all cells; the gate
 * reports it relative to a single fused AoS pass so a regression
 * that makes predecode slower than the work it saves is visible.
 */
double
timedPredecodeBuildSeconds()
{
    const trace::TraceBuffer &trace = gccTrace();
    constexpr int kBuilds = 20;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kBuilds; ++i) {
        const trace::PredecodedTrace soa(trace.conditionalView());
        benchmark::DoNotOptimize(soa.size());
    }
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return seconds / kBuilds;
}

} // namespace

// Expanded BENCHMARK_MAIN() so the run is wrapped in a BenchRecorder:
// like every other bench binary it leaves a BENCH_throughput.json
// behind (wall time + config fingerprint + the reference-vs-fused
// headline scalars; per-benchmark numbers come from
// --benchmark_format=json if needed).
int
main(int argc, char **argv)
{
    tlat::bench::BenchRecorder record("throughput");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const std::string ahrt = "AT(AHRT(512,12SR),PT(2^12,A2),)";
    const std::string ihrt = "AT(IHRT(,12SR),PT(2^12,A2),)";
    const double reference =
        timedRecordsPerSec(ahrt, DriveMode::Reference);
    const double fused = timedRecordsPerSec(ahrt, DriveMode::Fused);
    const double soa_ahrt = timedRecordsPerSec(ahrt, DriveMode::Soa);
    const double fused_ihrt =
        timedRecordsPerSec(ihrt, DriveMode::Fused);
    const double soa_ihrt = timedRecordsPerSec(ihrt, DriveMode::Soa);
    record.addScalar("reference_records_per_sec", reference);
    record.addScalar("fused_records_per_sec", fused);
    record.addScalar("fused_speedup", fused / reference);
    record.addScalar("soa_ahrt_records_per_sec", soa_ahrt);
    record.addScalar("soa_ahrt_speedup", soa_ahrt / fused);
    record.addScalar("fused_ihrt_records_per_sec", fused_ihrt);
    record.addScalar("soa_ihrt_records_per_sec", soa_ihrt);
    // The gated ratio: SoA over fused AoS on the IHRT scheme, where
    // the predecoded id lane turns every hash-map probe into a
    // direct vector index.
    record.addScalar("soa_speedup", soa_ihrt / fused_ihrt);

    // SIMD A/B on the same IHRT SoA leg: the vector fused kernel
    // (whatever level runtime dispatch picked) against the same run
    // with the level pinned to Scalar, which routes simulateBatch
    // back through the pre-SIMD lane-prober path. Self-normalizing
    // like the other gated ratios; simd_active records whether a
    // vector level was available at all (the gate relaxes to ~1.0x
    // on scalar-only hosts, where both legs run the same code).
    const double simd_rps = soa_ihrt;
    double simd_scalar_rps;
    {
        const util::simd::ScopedLevelOverride pin(
            util::simd::Level::Scalar);
        simd_scalar_rps = timedRecordsPerSec(ihrt, DriveMode::Soa);
    }
    const bool simd_active =
        util::simd::activeLevel() != util::simd::Level::Scalar;
    record.addScalar("simd_records_per_sec", simd_rps);
    record.addScalar("simd_scalar_records_per_sec",
                     simd_scalar_rps);
    record.addScalar("simd_speedup", simd_rps / simd_scalar_rps);
    record.addScalar("simd_active", simd_active ? 1.0 : 0.0);

    // Tournament A/B/C: the combining fused path should recover most
    // of the component fused speedup despite the chooser replay pass.
    const double comb_reference =
        timedRecordsPerSec(kCombiningScheme, DriveMode::Reference);
    const double comb_fused =
        timedRecordsPerSec(kCombiningScheme, DriveMode::Fused);
    const double comb_soa =
        timedRecordsPerSec(kCombiningScheme, DriveMode::Soa);
    record.addScalar("comb_reference_records_per_sec",
                     comb_reference);
    record.addScalar("comb_fused_records_per_sec", comb_fused);
    record.addScalar("comb_fused_speedup",
                     comb_fused / comb_reference);
    record.addScalar("comb_soa_records_per_sec", comb_soa);

    // Predecode build cost, expressed in fused-AoS-pass units: how
    // many single-scheme passes one build costs. Sweeps run hundreds
    // of cells per trace, so anything well under 1.0 amortizes away.
    const double conditionals = static_cast<double>(
        gccTrace().conditionalView().size());
    const double fused_pass_seconds = conditionals / fused;
    const double predecode_overhead =
        timedPredecodeBuildSeconds() / fused_pass_seconds;
    record.addScalar("predecode_overhead", predecode_overhead);

    // Peak resident set of the whole bench run — the memory-side
    // companion to the throughput scalars, printed (not gated) so a
    // footprint regression in the hot paths shows up in the log.
    struct rusage usage
    {
    };
    getrusage(RUSAGE_SELF, &usage);
    const double peak_rss_bytes =
        static_cast<double>(usage.ru_maxrss) * 1024.0;
    record.addScalar("peak_rss_bytes", peak_rss_bytes);

    std::cout << "reference: " << reference
              << " records/sec, fused: " << fused
              << " records/sec, speedup: " << fused / reference
              << "x\n"
              << "soa(ahrt): " << soa_ahrt << " records/sec ("
              << soa_ahrt / fused << "x fused)\n"
              << "fused(ihrt): " << fused_ihrt
              << " records/sec, soa(ihrt): " << soa_ihrt
              << " records/sec, soa_speedup: "
              << soa_ihrt / fused_ihrt << "x\n"
              << "combining reference: " << comb_reference
              << " records/sec, fused: " << comb_fused
              << " records/sec, speedup: "
              << comb_fused / comb_reference << "x, soa: "
              << comb_soa << " records/sec\n"
              << "predecode build: " << predecode_overhead
              << " fused passes\n"
              << "simd(" << util::simd::levelName(
                     util::simd::activeLevel())
              << "): " << simd_rps << " records/sec, scalar soa: "
              << simd_scalar_rps << " records/sec, simd_speedup: "
              << simd_rps / simd_scalar_rps << "x\n"
              << "peak rss: " << peak_rss_bytes / (1024.0 * 1024.0)
              << " MiB\n";
    return 0;
}
