/**
 * @file
 * google-benchmark microbenchmarks: predict+update throughput of
 * every predictor family on a pre-generated gcc trace, plus the
 * simulator's raw trace-generation rate. Not a paper artifact — a
 * software performance check for the library itself.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/two_level_predictor.hh"
#include "predictors/scheme_factory.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace
{

using namespace tlat;

const trace::TraceBuffer &
gccTrace()
{
    static const trace::TraceBuffer trace = [] {
        const auto workload = workloads::makeWorkload("gcc");
        return sim::collectTrace(workload->buildTest(), 100000);
    }();
    return trace;
}

void
runPredictorLoop(benchmark::State &state, const std::string &scheme)
{
    const trace::TraceBuffer &trace = gccTrace();
    const auto predictor = predictors::makePredictor(scheme);
    if (predictor->needsTraining())
        predictor->train(trace);

    std::uint64_t branches = 0;
    for (auto _ : state) {
        for (const trace::BranchRecord &record : trace.records()) {
            if (record.cls != trace::BranchClass::Conditional)
                continue;
            benchmark::DoNotOptimize(predictor->predict(record));
            predictor->update(record);
            ++branches;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}

// Same predictors driven through the fused batch API
// (simulateBatch over the prefiltered conditional view) — the
// BM_*Fused / BM_* pairs are the per-family A/B the throughput gate
// summarizes.
void
runFusedLoop(benchmark::State &state, const std::string &scheme)
{
    const trace::TraceBuffer &trace = gccTrace();
    const auto predictor = predictors::makePredictor(scheme);
    if (predictor->needsTraining())
        predictor->train(trace);

    std::uint64_t branches = 0;
    for (auto _ : state) {
        AccuracyCounter accuracy;
        predictor->simulateBatch(trace.conditionalView(), accuracy);
        benchmark::DoNotOptimize(accuracy.hits());
        branches += accuracy.total();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}

void
BM_TwoLevelAhrt(benchmark::State &state)
{
    runPredictorLoop(state, "AT(AHRT(512,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelAhrt);

void
BM_TwoLevelAhrtFused(benchmark::State &state)
{
    runFusedLoop(state, "AT(AHRT(512,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelAhrtFused);

void
BM_TwoLevelIhrt(benchmark::State &state)
{
    runPredictorLoop(state, "AT(IHRT(,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelIhrt);

void
BM_TwoLevelIhrtFused(benchmark::State &state)
{
    runFusedLoop(state, "AT(IHRT(,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelIhrtFused);

void
BM_TwoLevelHhrt(benchmark::State &state)
{
    runPredictorLoop(state, "AT(HHRT(512,12SR),PT(2^12,A2),)");
}
BENCHMARK(BM_TwoLevelHhrt);

void
BM_LeeSmith(benchmark::State &state)
{
    runPredictorLoop(state, "LS(AHRT(512,A2),,)");
}
BENCHMARK(BM_LeeSmith);

void
BM_LeeSmithFused(benchmark::State &state)
{
    runFusedLoop(state, "LS(AHRT(512,A2),,)");
}
BENCHMARK(BM_LeeSmithFused);

void
BM_StaticTraining(benchmark::State &state)
{
    runPredictorLoop(state, "ST(AHRT(512,12SR),PT(2^12,PB),Same)");
}
BENCHMARK(BM_StaticTraining);

void
BM_Btfn(benchmark::State &state)
{
    runPredictorLoop(state, "BTFN");
}
BENCHMARK(BM_Btfn);

void
BM_SimulatorTraceGeneration(benchmark::State &state)
{
    const auto workload = workloads::makeWorkload("matrix300");
    const isa::Program program = workload->buildTest();
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::Simulator simulator(program);
        sim::SimOptions options;
        options.maxInstructions = 2000000;
        const sim::SimResult result =
            simulator.run(nullptr, options);
        instructions += result.instructions;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_SimulatorTraceGeneration);

/**
 * Steady-clock A/B of the flagship AT(AHRT) scheme: the reference
 * predict()/update() loop against the fused simulateBatch() path,
 * both over the same gcc trace. These are the headline scalars the
 * CI throughput gate (tools/check_throughput.py) compares against
 * the committed baseline — the gate checks fused_speedup (a ratio,
 * stable across hosts) rather than absolute records/sec.
 */
double
timedRecordsPerSec(bool fused)
{
    const trace::TraceBuffer &trace = gccTrace();
    const auto predictor =
        predictors::makePredictor("AT(AHRT(512,12SR),PT(2^12,A2),)");

    const auto pass = [&]() -> std::uint64_t {
        AccuracyCounter accuracy;
        if (fused) {
            predictor->simulateBatch(trace.conditionalView(),
                                     accuracy);
        } else {
            for (const trace::BranchRecord &record : trace.records()) {
                if (record.cls != trace::BranchClass::Conditional)
                    continue;
                benchmark::DoNotOptimize(
                    predictor->predict(record));
                predictor->update(record);
                accuracy.record(true);
            }
        }
        return accuracy.total();
    };

    pass(); // warm tables and caches
    constexpr int kPasses = 20;
    std::uint64_t records = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kPasses; ++i)
        records += pass();
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(records) / seconds;
}

} // namespace

// Expanded BENCHMARK_MAIN() so the run is wrapped in a BenchRecorder:
// like every other bench binary it leaves a BENCH_throughput.json
// behind (wall time + config fingerprint + the reference-vs-fused
// headline scalars; per-benchmark numbers come from
// --benchmark_format=json if needed).
int
main(int argc, char **argv)
{
    tlat::bench::BenchRecorder record("throughput");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const double reference = timedRecordsPerSec(false);
    const double fused = timedRecordsPerSec(true);
    record.addScalar("reference_records_per_sec", reference);
    record.addScalar("fused_records_per_sec", fused);
    record.addScalar("fused_speedup", fused / reference);
    std::cout << "reference: " << reference
              << " records/sec, fused: " << fused
              << " records/sec, speedup: " << fused / reference
              << "x\n";
    return 0;
}
