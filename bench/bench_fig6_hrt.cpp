/**
 * @file
 * Figure 6: Two-Level Adaptive Training with different history
 * register table implementations (ideal, associative, hashed; two
 * sizes), all with 12-bit histories and A2 pattern automata.
 */

#include "bench_common.hh"
#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "util/table_printer.hh"

namespace
{

/** Measures the HRT hit ratio of one AT configuration on a trace. */
double
hitRatioOf(tlat::core::TableKind kind, std::size_t entries,
           const tlat::trace::TraceBuffer &trace)
{
    tlat::core::TwoLevelConfig config;
    config.hrtKind = kind;
    config.hrtEntries = entries;
    config.historyBits = 12;
    tlat::core::TwoLevelPredictor predictor(config);
    tlat::harness::measure(predictor, trace);
    return predictor.hrtStats().hitRatio() * 100.0;
}

} // namespace

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("fig6_hrt");
    bench::printHeader("Figure 6",
                       "Two-Level Adaptive Training schemes using "
                       "different history register table "
                       "implementations.");

    harness::BenchmarkSuite suite;
    const harness::AccuracyReport report = harness::runSchemes(
        suite, "prediction accuracy (percent)",
        {
            "AT(IHRT(,12SR),PT(2^12,A2),)",
            "AT(AHRT(512,12SR),PT(2^12,A2),)",
            "AT(HHRT(512,12SR),PT(2^12,A2),)",
            "AT(AHRT(256,12SR),PT(2^12,A2),)",
            "AT(HHRT(256,12SR),PT(2^12,A2),)",
        },
        {"IHRT", "AHRT512", "HHRT512", "AHRT256", "HHRT256"});
    report.print(std::cout);
    record.addReport(report);
    bench::maybeWriteCsv(report, "fig6");

    // The paper explains the ordering by HRT hit ratio ("in the
    // decreasing order of the HRT hit ratio"): print that axis too.
    TablePrinter ratios("HRT hit ratio (percent; IHRT misses only "
                        "first touches)");
    ratios.setHeader({"benchmark", "IHRT", "AHRT512", "HHRT512",
                      "AHRT256", "HHRT256"});
    for (const std::string &name : suite.benchmarks()) {
        const trace::TraceBuffer &trace = suite.testTrace(name);
        ratios.addRow(
            {name,
             TablePrinter::percentCell(
                 hitRatioOf(core::TableKind::Ideal, 0, trace)),
             TablePrinter::percentCell(hitRatioOf(
                 core::TableKind::Associative, 512, trace)),
             TablePrinter::percentCell(
                 hitRatioOf(core::TableKind::Hashed, 512, trace)),
             TablePrinter::percentCell(hitRatioOf(
                 core::TableKind::Associative, 256, trace)),
             TablePrinter::percentCell(
                 hitRatioOf(core::TableKind::Hashed, 256, trace))});
    }
    ratios.print(std::cout);

    bench::printExpectation(
        "accuracy decreases with HRT hit ratio: IHRT best, then "
        "AHRT(512), HHRT(512), AHRT(256), HHRT(256) — interference "
        "in the branch history grows as the hit ratio drops. (With "
        "few static branches per mirror benchmark, the practical "
        "tables sit very close to the ideal one.)");
    return 0;
}
