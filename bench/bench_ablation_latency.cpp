/**
 * @file
 * Ablation for Section 3.2: the cached-prediction-bit latency
 * optimization (one table access per prediction) versus the
 * two-lookup reference. The optimization is *not* semantically
 * identical — another branch can update the shared pattern table
 * entry between caching and use — and this bench quantifies the
 * accuracy cost, which the paper asserts is acceptable.
 */

#include "bench_common.hh"
#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("ablation_latency");
    bench::printHeader(
        "Section 3.2 ablation",
        "Cached prediction bit (one lookup) vs two sequential "
        "lookups.");

    harness::BenchmarkSuite suite;
    TablePrinter table("prediction accuracy (percent)");
    table.setHeader({"benchmark", "two-lookup", "cached bit",
                     "delta"});

    double worst_delta = 0.0;
    for (const std::string &name : suite.benchmarks()) {
        const trace::TraceBuffer &trace = suite.testTrace(name);

        core::TwoLevelConfig config;
        config.hrtKind = core::TableKind::Associative;
        config.hrtEntries = 512;
        config.historyBits = 12;
        core::TwoLevelPredictor reference(config);
        config.cachedPredictionBit = true;
        core::TwoLevelPredictor cached(config);

        const double ref =
            harness::measure(reference, trace).accuracyPercent();
        const double fast =
            harness::measure(cached, trace).accuracyPercent();
        worst_delta = std::max(worst_delta, ref - fast);
        table.addRow({name, TablePrinter::percentCell(ref),
                      TablePrinter::percentCell(fast),
                      TablePrinter::percentCell(fast - ref)});
    }
    table.print(std::cout);
    std::cout << "worst accuracy cost of the optimization: "
              << TablePrinter::percentCell(worst_delta) << " %\n\n";

    bench::printExpectation(
        "the paper proposes the cached bit as the practical "
        "single-cycle implementation; the accuracy difference should "
        "be negligible (well under one percent).");
    return 0;
}
