/**
 * @file
 * Ablation for Section 3.2's deep-pipeline observation: predictions
 * are often needed before the previous outcome of the same branch is
 * confirmed. We delay every update by 0-8 subsequent conditional
 * branches and measure the flagship AT configuration with and
 * without the paper's predict-taken-when-unresolved policy.
 */

#include <cmath>

#include "bench_common.hh"
#include "core/delayed_update.hh"
#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "util/table_printer.hh"

namespace
{

std::unique_ptr<tlat::core::BranchPredictor>
makeAt(bool speculative_history)
{
    tlat::core::TwoLevelConfig config;
    config.hrtKind = tlat::core::TableKind::Associative;
    config.hrtEntries = 512;
    config.historyBits = 12;
    config.speculativeHistoryUpdate = speculative_history;
    return std::make_unique<tlat::core::TwoLevelPredictor>(config);
}

} // namespace

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("ablation_delayed_update");
    bench::printHeader(
        "Section 3.2 ablation",
        "Update delay (deep pipeline) and the "
        "predict-taken-when-unresolved policy.");

    harness::BenchmarkSuite suite;
    const unsigned delays[] = {0, 1, 2, 4, 8};

    struct Mode
    {
        const char *label;
        bool policy;
        bool speculative;
    };
    const Mode modes[] = {
        {"policy OFF, retire-time history", false, false},
        {"policy ON (paper), retire-time history", true, false},
        {"policy OFF, speculative history (extension)", false, true},
        {"policy ON, speculative history (extension)", true, true},
    };
    for (const Mode &mode : modes) {
        TablePrinter table(
            std::string("geometric-mean accuracy (percent), ") +
            mode.label);
        std::vector<std::string> header = {"benchmark"};
        for (unsigned delay : delays)
            header.push_back("delay " + std::to_string(delay));
        table.setHeader(header);

        std::vector<double> log_sums(std::size(delays), 0.0);
        for (const std::string &name : suite.benchmarks()) {
            const trace::TraceBuffer &trace = suite.testTrace(name);
            std::vector<std::string> row = {name};
            for (std::size_t d = 0; d < std::size(delays); ++d) {
                core::DelayedUpdatePredictor predictor(
                    makeAt(mode.speculative), delays[d],
                    mode.policy);
                const double accuracy =
                    harness::measure(predictor, trace)
                        .accuracyPercent();
                log_sums[d] += std::log(accuracy);
                row.push_back(TablePrinter::percentCell(accuracy));
            }
            table.addRow(row);
        }
        table.addSeparator();
        std::vector<std::string> mean_row = {"Tot G Mean"};
        for (double log_sum : log_sums) {
            mean_row.push_back(TablePrinter::percentCell(std::exp(
                log_sum /
                static_cast<double>(suite.benchmarks().size()))));
        }
        table.addRow(mean_row);
        table.print(std::cout);
    }

    bench::printExpectation(
        "accuracy degrades with update delay. The paper's simple "
        "predict-taken-when-unresolved policy pays off on "
        "taken-dominated codes (doduc here; the paper's suite was "
        "~60% taken overall) but over-triggers on benchmarks whose "
        "hot branches lean not-taken (gcc, espresso in this "
        "mirror). The speculative-history extension — shift the "
        "predicted outcome in at fetch, repair on misprediction, "
        "the approach later hardware adopted — recovers most of the "
        "delay loss without that bias assumption. All modes "
        "coincide at delay 0.");
    return 0;
}
