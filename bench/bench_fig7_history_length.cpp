/**
 * @file
 * Figure 7: Two-Level Adaptive Training with history register lengths
 * of 6, 8, 10 and 12 bits (AHRT(512), A2).
 */

#include "bench_common.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("fig7_history_length");
    bench::printHeader("Figure 7",
                       "Two-Level Adaptive Training schemes using "
                       "history registers of different lengths.");

    harness::BenchmarkSuite suite;
    const harness::AccuracyReport report = harness::runSchemes(
        suite, "prediction accuracy (percent)",
        {
            "AT(AHRT(512,6SR),PT(2^6,A2),)",
            "AT(AHRT(512,8SR),PT(2^8,A2),)",
            "AT(AHRT(512,10SR),PT(2^10,A2),)",
            "AT(AHRT(512,12SR),PT(2^12,A2),)",
        },
        {"6SR", "8SR", "10SR", "12SR"});
    report.print(std::cout);
    record.addReport(report);
    bench::maybeWriteCsv(report, "fig7");

    bench::printExpectation(
        "accuracy increases by roughly 0.5% per two additional "
        "history bits until the asymptote is reached.");
    return 0;
}
