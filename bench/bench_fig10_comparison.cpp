/**
 * @file
 * Figure 10: the headline cross-scheme comparison at matched cost
 * (512-entry 4-way AHRT everywhere): Two-Level Adaptive Training vs
 * Static Training vs Lee-Smith BTB vs the profiling scheme vs
 * Last-Time. Also prints the abstract's headline numbers (accuracy
 * and miss-rate ratio).
 */

#include <algorithm>

#include "bench_common.hh"
#include "harness/experiment.hh"
#include "predictors/scheme_factory.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("fig10_comparison");
    bench::printHeader("Figure 10",
                       "Comparison of branch prediction schemes.");

    harness::BenchmarkSuite suite;
    harness::AccuracyReport report = harness::runSchemes(
        suite, "prediction accuracy (percent)",
        {
            "AT(AHRT(512,12SR),PT(2^12,A2),)",
            "LS(AHRT(512,A2),,)",
            "Profile",
            "LS(AHRT(512,LT),,)",
        },
        {"AT", "LS-A2", "Profile", "LS-LT"});

    // Static Training evaluated as it would be used: trained on the
    // training data set where one exists (Table 3), on the testing
    // set itself otherwise. This is what puts ST "1 to 5 percent
    // lower" than AT in the paper's comparison — the preset bits
    // cannot adapt when the training input mispredicts the field
    // input.
    {
        auto st = predictors::makePredictor(
            "ST(AHRT(512,12SR),PT(2^12,PB),Diff)");
        for (const std::string &benchmark : suite.benchmarks()) {
            const trace::TraceBuffer *train =
                suite.trainTrace(benchmark);
            const auto result = harness::runExperiment(
                *st, suite.testTrace(benchmark), train);
            report.add(benchmark, "ST",
                       result.accuracy.accuracyPercent());
        }
    }
    report.print(std::cout);
    record.addReport(report);
    bench::maybeWriteCsv(report, "fig10");

    // Abstract headline: miss-rate comparison.
    const double at_miss = 100.0 - report.totalMean("AT");
    double best_other = 0.0;
    for (const char *scheme : {"ST", "LS-A2", "Profile", "LS-LT"})
        best_other = std::max(best_other, report.totalMean(scheme));
    record.addScalar("at_miss_percent", at_miss);
    record.addScalar("best_other_miss_percent", 100.0 - best_other);
    std::cout << "headline: AT miss rate "
              << TablePrinter::percentCell(at_miss)
              << " % vs best other scheme "
              << TablePrinter::percentCell(100.0 - best_other)
              << " % ("
              << TablePrinter::percentCell(
                     (100.0 - best_other) / at_miss * 100.0 - 100.0)
              << " % more pipeline flushes than AT)\n\n";

    bench::printExpectation(
        "AT on top near 97%; Static Training 1-5% below; the "
        "profiling scheme about on par with the BTB design (~92.5%); "
        "Last-Time around 89%. The abstract's claim: a 3% miss rate "
        "for AT vs 7% best-case for the others — more than a 100% "
        "reduction in pipeline flushes.");
    return 0;
}
