/**
 * @file
 * Extension bench: accuracy versus hardware storage cost.
 *
 * The paper compares schemes "on the basis of similar costs"
 * (Section 5.4); this bench makes the comparison quantitative: every
 * configuration of Figure 10's families plus AT size/length sweeps
 * is plotted as (storage bits, total geometric-mean accuracy).
 */

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/string_utils.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("cost_accuracy");
    bench::printHeader(
        "Extension: cost vs accuracy",
        "Storage bits (cost model) against total geometric-mean "
        "accuracy.");

    const char *schemes[] = {
        "LS(AHRT(256,LT),,)",
        "LS(AHRT(512,LT),,)",
        "LS(AHRT(256,A2),,)",
        "LS(AHRT(512,A2),,)",
        "AT(AHRT(512,6SR),PT(2^6,A2),)",
        "AT(AHRT(512,8SR),PT(2^8,A2),)",
        "AT(AHRT(512,10SR),PT(2^10,A2),)",
        "AT(AHRT(256,12SR),PT(2^12,A2),)",
        "AT(AHRT(512,12SR),PT(2^12,A2),)",
        "AT(HHRT(512,12SR),PT(2^12,A2),)",
        "ST(AHRT(512,12SR),PT(2^12,PB),Same)",
    };

    harness::BenchmarkSuite suite;
    std::vector<std::string> names(std::begin(schemes),
                                   std::end(schemes));
    const harness::AccuracyReport report =
        harness::runSchemes(suite, "accuracy", names);
    record.addReport(report);

    TablePrinter table("storage cost vs accuracy");
    table.setHeader({"scheme", "history bits", "tag bits",
                     "pattern bits", "total Kbit", "Tot G Mean %"});
    for (const char *scheme : schemes) {
        const auto config = core::SchemeConfig::parse(scheme);
        const core::StorageCost cost = core::storageCost(*config);
        table.addRow({scheme,
                      std::to_string(cost.historyBits),
                      std::to_string(cost.tagBits),
                      std::to_string(cost.patternBits),
                      format("%.1f", cost.total() / 1024.0),
                      TablePrinter::percentCell(
                          report.totalMean(scheme))});
    }
    table.print(std::cout);

    bench::printExpectation(
        "at matched cost the two-level scheme dominates: the "
        "512-entry AHRT AT configuration spends its extra pattern "
        "bits for ~7% more accuracy than the same-table BTB design; "
        "the HHRT variant trades the tag store for a small accuracy "
        "loss; Static Training's cheaper 1-bit pattern entries do "
        "not close the adaptivity gap.");
    return 0;
}
