/**
 * @file
 * Ablation for the Section 4.2 initialization policy: history
 * registers initialized to all ones and automata to the taken-biased
 * state (because ~60% of branches are taken), versus all-zeros /
 * weakly-not-taken initialization. The effect is a warm-up
 * difference; it shrinks as the budget grows.
 */

#include <cmath>

#include "bench_common.hh"
#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("ablation_init");
    bench::printHeader(
        "Section 4.2 ablation",
        "Taken-biased initialization (paper) vs all-zeros "
        "initialization.");

    harness::BenchmarkSuite suite;
    TablePrinter table("prediction accuracy (percent)");
    table.setHeader(
        {"benchmark", "paper init", "zero init", "delta"});

    double paper_log_sum = 0;
    double zero_log_sum = 0;
    for (const std::string &name : suite.benchmarks()) {
        const trace::TraceBuffer &trace = suite.testTrace(name);

        core::TwoLevelConfig config;
        config.hrtKind = core::TableKind::Associative;
        config.hrtEntries = 512;
        config.historyBits = 12;
        core::TwoLevelPredictor paper_init(config);
        config.initHistoryOnes = false;
        config.automatonInitState = 0;
        core::TwoLevelPredictor zero_init(config);

        const double paper_accuracy =
            harness::measure(paper_init, trace).accuracyPercent();
        const double zero_accuracy =
            harness::measure(zero_init, trace).accuracyPercent();
        paper_log_sum += std::log(paper_accuracy);
        zero_log_sum += std::log(zero_accuracy);
        table.addRow({name,
                      TablePrinter::percentCell(paper_accuracy),
                      TablePrinter::percentCell(zero_accuracy),
                      TablePrinter::percentCell(zero_accuracy -
                                                paper_accuracy)});
    }
    table.addSeparator();
    const auto count =
        static_cast<double>(suite.benchmarks().size());
    table.addRow({"Tot G Mean",
                  TablePrinter::percentCell(
                      std::exp(paper_log_sum / count)),
                  TablePrinter::percentCell(
                      std::exp(zero_log_sum / count)),
                  ""});
    table.print(std::cout);

    bench::printExpectation(
        "the paper initializes toward taken because ~60% of its "
        "suite's conditional branches are taken; the effect is a "
        "small warm-up difference that shrinks with budget. In this "
        "mirror suite several integer benchmarks lean not-taken "
        "(compiler-style rare-path layout), so the zero "
        "initialization can come out marginally ahead — the ablation "
        "shows the policy only matters through the suite's taken "
        "bias, which is the paper's own reasoning.");
    return 0;
}
