/**
 * @file
 * Figure 9: Lee & Smith's Branch Target Buffer designs (A2 and
 * Last-Time entries; ideal/associative/hashed storage), Backward
 * Taken & Forward Not taken, Always Taken, and the profiling scheme.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("fig9_other_schemes");
    bench::printHeader(
        "Figure 9",
        "Prediction accuracy of Branch Target Buffer designs, BTFN, "
        "Always Taken, and the Profiling scheme.");

    harness::BenchmarkSuite suite;
    const harness::AccuracyReport report = harness::runSchemes(
        suite, "prediction accuracy (percent)",
        {
            "LS(IHRT(,A2),,)",
            "LS(AHRT(512,A2),,)",
            "LS(HHRT(512,A2),,)",
            "LS(IHRT(,LT),,)",
            "LS(AHRT(512,LT),,)",
            "LS(HHRT(512,LT),,)",
            "Profile",
            "BTFN",
            "AlwaysTaken",
        },
        {"LS-A2/I", "LS-A2/A", "LS-A2/H", "LS-LT/I", "LS-LT/A",
         "LS-LT/H", "Profile", "BTFN", "AlwaysTaken"});
    report.print(std::cout);
    record.addReport(report);
    bench::maybeWriteCsv(report, "fig9");

    bench::printExpectation(
        "the BTB designs top out near 93% (ideal table as the upper "
        "bound); the Last-Time variant runs about 4% below A2; the "
        "profiling scheme averages ~92.5%; BTFN averages ~69% but "
        "reaches ~98% on the loop-bound matrix300/tomcatv; Always "
        "Taken averages ~60% and swings strongly per benchmark.");
    return 0;
}
