/**
 * @file
 * Figure 3: distribution of dynamic instructions — the fraction of
 * each benchmark's dynamic instruction stream that is branches
 * (~24% for the integer benchmarks, ~5% for floating point in the
 * paper), with the non-branch side broken into coarse groups.
 */

#include "bench_common.hh"
#include "sim/simulator.hh"
#include "trace/trace_stats.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("fig3_instr_mix");
    bench::printHeader(
        "Figure 3", "Distribution of dynamic instructions.");

    harness::BenchmarkSuite suite;
    TablePrinter table("dynamic instruction mix (percent of dynamic "
                       "instructions)");
    table.setHeader({"benchmark", "branch", "int alu", "fp alu",
                     "memory", "other", "dyn instr"});

    double int_branch_sum = 0;
    double fp_branch_sum = 0;
    int int_count = 0;
    int fp_count = 0;

    for (const std::string &name : suite.benchmarks()) {
        const trace::TraceBuffer &trace = suite.testTrace(name);
        const trace::InstructionMix &mix = trace.mix();
        const double total = static_cast<double>(mix.total());
        const auto pct = [total](std::uint64_t count) {
            return TablePrinter::percentCell(100.0 * count / total);
        };
        table.addRow({name, pct(mix.controlFlow), pct(mix.intAlu),
                      pct(mix.fpAlu), pct(mix.memory),
                      pct(mix.other), std::to_string(mix.total())});
        const double branch_pct =
            100.0 * mix.branchFraction();
        if (suite.isFloatingPoint(name)) {
            fp_branch_sum += branch_pct;
            ++fp_count;
        } else {
            int_branch_sum += branch_pct;
            ++int_count;
        }
    }
    table.addSeparator();
    table.addRow({"Int mean",
                  TablePrinter::percentCell(int_branch_sum /
                                            int_count),
                  "", "", "", "", ""});
    table.addRow({"FP mean",
                  TablePrinter::percentCell(fp_branch_sum / fp_count),
                  "", "", "", "", ""});
    table.print(std::cout);

    bench::printExpectation(
        "about 24% of dynamic instructions are branches for the "
        "integer benchmarks and about 5% for the floating point "
        "benchmarks.");
    return 0;
}
