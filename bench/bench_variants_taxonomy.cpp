/**
 * @file
 * Extension bench: the two-level design space beyond the paper.
 *
 * The MICRO-24 scheme is "PAg" — per-address history registers, one
 * global pattern table. The authors' follow-up work explores the full
 * scope matrix; this bench measures the interesting corners on the
 * benchmark suite at equal history length, plus the gshare
 * refinement of the global-history point.
 */

#include <cmath>

#include "bench_common.hh"
#include "core/generalized_two_level.hh"
#include "harness/experiment.hh"
#include "predictors/scheme_factory.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

namespace
{

using namespace tlat;

core::GeneralizedConfig
makeConfig(core::HistoryScope history, core::PatternScope pattern,
           bool xor_address = false)
{
    core::GeneralizedConfig config;
    config.historyScope = history;
    config.patternScope = pattern;
    config.historyBits = 12;
    config.setBits = 4;
    config.xorAddress = xor_address;
    return config;
}

} // namespace

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("variants_taxonomy");
    bench::printHeader(
        "Extension: two-level variants",
        "GAg / GAg+xor / SAg / PAg (the paper) / PAs / PAp at 12 "
        "history bits.");

    const core::GeneralizedConfig configs[] = {
        makeConfig(core::HistoryScope::Global,
                   core::PatternScope::Global),
        makeConfig(core::HistoryScope::Global,
                   core::PatternScope::Global, true),
        makeConfig(core::HistoryScope::PerSet,
                   core::PatternScope::Global),
        makeConfig(core::HistoryScope::PerAddress,
                   core::PatternScope::Global),
        makeConfig(core::HistoryScope::PerAddress,
                   core::PatternScope::PerSet),
        makeConfig(core::HistoryScope::PerAddress,
                   core::PatternScope::PerAddress),
    };

    harness::BenchmarkSuite suite;
    TablePrinter table("prediction accuracy (percent)");
    {
        std::vector<std::string> header = {"benchmark"};
        for (const auto &config : configs)
            header.push_back(
                core::GeneralizedTwoLevelPredictor(config).name());
        table.setHeader(header);
    }

    std::vector<double> log_sums(std::size(configs), 0.0);
    for (const std::string &name : suite.benchmarks()) {
        const trace::TraceBuffer &trace = suite.testTrace(name);
        std::vector<std::string> row = {name};
        for (std::size_t c = 0; c < std::size(configs); ++c) {
            core::GeneralizedTwoLevelPredictor predictor(configs[c]);
            const double accuracy =
                harness::measure(predictor, trace).accuracyPercent();
            log_sums[c] += std::log(accuracy);
            row.push_back(TablePrinter::percentCell(accuracy));
        }
        table.addRow(row);
    }
    table.addSeparator();
    std::vector<std::string> mean_row = {"Tot G Mean"};
    for (double log_sum : log_sums) {
        mean_row.push_back(TablePrinter::percentCell(std::exp(
            log_sum /
            static_cast<double>(suite.benchmarks().size()))));
    }
    table.addRow(mean_row);
    table.print(std::cout);
    for (std::size_t c = 0; c < std::size(configs); ++c) {
        record.addScalar(
            core::GeneralizedTwoLevelPredictor(configs[c]).name() +
                "_total_mean",
            std::exp(log_sums[c] /
                     static_cast<double>(suite.benchmarks().size())));
    }

    // ---- H2P leg: the adversarial workloads through the taxonomy --
    //
    // The paper scheme over the analytic kernels, reported through
    // the hard-to-predict classification: alternating must collapse
    // to zero H2P sites, datadep/kmp surface Chaotic sites, burst's
    // boundary misses are Systematic. Recorded to BENCH_h2p.json so
    // CI archives the taxonomy alongside the accuracy grids.
    bench::BenchRecorder h2p_record("h2p");
    TablePrinter h2p_table(
        "adversarial workloads, AT(IHRT(,6SR),PT(2^6,A2),) taxonomy");
    h2p_table.setHeader({"workload", "accuracy", "sites", "h2p sites",
                         "systematic", "transient"});
    for (const std::string &name :
         workloads::adversarialWorkloadNames()) {
        const trace::TraceBuffer &trace = suite.testTrace(name);
        const auto predictor =
            predictors::makePredictor("AT(IHRT(,6SR),PT(2^6,A2),)");
        const harness::RunMetricsReport report =
            harness::runProfiledExperiment(*predictor, trace);
        h2p_table.addRow(
            {name,
             TablePrinter::percentCell(
                 report.accuracy.accuracyPercent()),
             std::to_string(report.h2p.staticSites),
             std::to_string(report.h2p.h2pSiteCount),
             std::to_string(report.h2p.systematicMisses),
             std::to_string(report.h2p.transientMisses)});
        h2p_record.addScalar(name + "_accuracy_percent",
                             report.accuracy.accuracyPercent());
        h2p_record.addScalar(
            name + "_h2p_sites",
            static_cast<double>(report.h2p.h2pSiteCount));
        h2p_record.addScalar(
            name + "_systematic_misses",
            static_cast<double>(report.h2p.systematicMisses));
        h2p_record.addScalar(
            name + "_transient_misses",
            static_cast<double>(report.h2p.transientMisses));
    }
    h2p_table.print(std::cout);

    bench::printExpectation(
        "per-address history (the paper's choice) beats global "
        "history at equal length; finer pattern-table scope adds "
        "little once histories are per-address (PAg ~ PAs ~ PAp); "
        "xor recovers part of GAg's alias loss. This matches the "
        "follow-up literature on two-level variants.");
    return 0;
}
