/**
 * @file
 * Extension ablation: pattern-entry counter width.
 *
 * The paper's pattern entries are 2-bit machines; this sweep replaces
 * them with n-bit saturating counters (1-4 bits). One bit has no
 * hysteresis (it is Last-Time); two bits is A2; wider counters gain
 * noise immunity but adapt more slowly after behaviour changes — the
 * classic result that 2 bits is the sweet spot.
 */

#include <cmath>

#include "bench_common.hh"
#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("ablation_counter_width");
    bench::printHeader(
        "Extension: counter width",
        "Pattern-table entries as n-bit saturating counters "
        "(AHRT(512), 12-bit histories).");

    harness::BenchmarkSuite suite;
    const unsigned widths[] = {1, 2, 3, 4};

    TablePrinter table("prediction accuracy (percent)");
    {
        std::vector<std::string> header = {"benchmark"};
        for (unsigned width : widths)
            header.push_back(std::to_string(width) + "-bit");
        header.emplace_back("A2 (ref)");
        table.setHeader(header);
    }

    std::vector<double> log_sums(std::size(widths) + 1, 0.0);
    for (const std::string &name : suite.benchmarks()) {
        const trace::TraceBuffer &trace = suite.testTrace(name);
        std::vector<std::string> row = {name};
        for (std::size_t w = 0; w <= std::size(widths); ++w) {
            core::TwoLevelConfig config;
            config.hrtKind = core::TableKind::Associative;
            config.hrtEntries = 512;
            config.historyBits = 12;
            if (w < std::size(widths))
                config.counterBits = widths[w];
            core::TwoLevelPredictor predictor(config);
            const double accuracy =
                harness::measure(predictor, trace).accuracyPercent();
            log_sums[w] += std::log(accuracy);
            row.push_back(TablePrinter::percentCell(accuracy));
        }
        table.addRow(row);
    }
    table.addSeparator();
    std::vector<std::string> mean_row = {"Tot G Mean"};
    for (double log_sum : log_sums) {
        mean_row.push_back(TablePrinter::percentCell(std::exp(
            log_sum /
            static_cast<double>(suite.benchmarks().size()))));
    }
    table.addRow(mean_row);
    table.print(std::cout);

    bench::printExpectation(
        "the 2-bit column must equal the A2 reference exactly (same "
        "machine); 1 bit loses the ~1% Last-Time pays everywhere in "
        "Figure 5; 3-4 bits change little either way — pattern "
        "history entries see filtered, mostly-consistent streams, so "
        "extra hysteresis has nothing to buy.");
    return 0;
}
