/**
 * @file
 * Section 4 companion experiment: return address stack target
 * prediction. "A return address is pushed onto the stack when a
 * subroutine is called and is popped as the prediction ... The
 * return address prediction may miss when the return address stack
 * overflows." Sweeps the stack depth per benchmark.
 */

#include "bench_common.hh"
#include "harness/ras_experiment.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("ras");
    bench::printHeader(
        "Section 4: return address stack",
        "Return-target hit rate versus stack depth.");

    harness::BenchmarkSuite suite;
    const std::size_t depths[] = {1, 2, 4, 8, 16, 32};

    TablePrinter table("return-target hit rate (percent)");
    {
        std::vector<std::string> header = {"benchmark", "returns"};
        for (std::size_t depth : depths)
            header.push_back("depth " + std::to_string(depth));
        table.setHeader(header);
    }

    for (const std::string &name : suite.benchmarks()) {
        const trace::TraceBuffer &trace = suite.testTrace(name);
        std::vector<std::string> row = {name};
        const harness::RasResult probe =
            harness::runRasExperiment(trace, 1);
        row.push_back(std::to_string(probe.returns));
        for (std::size_t depth : depths) {
            if (probe.returns == 0) {
                row.push_back("-");
                continue;
            }
            const harness::RasResult result =
                harness::runRasExperiment(trace, depth);
            row.push_back(TablePrinter::percentCell(
                result.hitRate() * 100.0));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    bench::printExpectation(
        "returns are perfectly predictable once the stack covers the "
        "call depth; shallow stacks lose exactly the overflowed "
        "frames (visible on the recursion-heavy li and the "
        "call-structured doduc/eqntott).");
    return 0;
}
