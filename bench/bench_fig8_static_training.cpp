/**
 * @file
 * Figure 8 (and Table 3): Static Training schemes — ideal,
 * associative and hashed HRTs, trained on the same data set (Same)
 * and on a different data set (Diff). The Diff columns are blank for
 * eqntott, matrix300, fpppp and tomcatv, which have no usable
 * training input (Table 3 lists "NA"), exactly as the paper leaves
 * those curves un-averaged.
 */

#include "bench_common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("fig8_static_training");
    bench::printHeader(
        "Figure 8 / Table 3",
        "Prediction accuracy of Static Training schemes.");

    // Table 3 reproduction: the train/test data sets.
    {
        TablePrinter table("training and testing data sets (Table 3)");
        table.setHeader({"benchmark", "training set", "testing set"});
        for (const std::string &name : workloads::workloadNames()) {
            const auto workload = workloads::makeWorkload(name);
            table.addRow({name,
                          workload->trainSet().value_or("NA"),
                          workload->testSet()});
        }
        table.print(std::cout);
    }

    harness::BenchmarkSuite suite;
    const harness::AccuracyReport report = harness::runSchemes(
        suite, "prediction accuracy (percent)",
        {
            "ST(IHRT(,12SR),PT(2^12,PB),Same)",
            "ST(AHRT(512,12SR),PT(2^12,PB),Same)",
            "ST(HHRT(512,12SR),PT(2^12,PB),Same)",
            "ST(IHRT(,12SR),PT(2^12,PB),Diff)",
            "ST(AHRT(512,12SR),PT(2^12,PB),Diff)",
            "ST(HHRT(512,12SR),PT(2^12,PB),Diff)",
            "AT(AHRT(512,12SR),PT(2^12,A2),)",
        },
        {"IHRT/Same", "AHRT/Same", "HHRT/Same", "IHRT/Diff",
         "AHRT/Diff", "HHRT/Diff", "AT(ref)"});
    report.print(std::cout);
    record.addReport(report);
    bench::maybeWriteCsv(report, "fig8");

    bench::printExpectation(
        "trained and tested on the same data, ST reaches ~97% with "
        "an IHRT — about the AT reference. With different training "
        "data, gcc and espresso lose about 1%, li about 5%; the FP "
        "benchmarks degrade under 0.5%. Diff means are not reported "
        "(incomplete rows), as in the paper.");
    return 0;
}
