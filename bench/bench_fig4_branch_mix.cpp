/**
 * @file
 * Figure 4: distribution of dynamic branch instructions across the
 * four branch classes of the paper's methodology section. The paper
 * reports about 80% of dynamic branches are conditional.
 */

#include "bench_common.hh"
#include "trace/trace_stats.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("fig4_branch_mix");
    bench::printHeader(
        "Figure 4", "Distribution of dynamic branch instructions.");

    harness::BenchmarkSuite suite;
    TablePrinter table(
        "dynamic branch class mix (percent of dynamic branches)");
    table.setHeader({"benchmark", "conditional", "return",
                     "imm uncond", "reg uncond", "dyn branches",
                     "taken %"});

    double conditional_sum = 0;
    int count = 0;
    for (const std::string &name : suite.benchmarks()) {
        const trace::TraceStats stats =
            trace::computeStats(suite.testTrace(name));
        const auto pct = [&stats](trace::BranchClass cls) {
            return TablePrinter::percentCell(
                100.0 * stats.classFraction(cls));
        };
        table.addRow(
            {name, pct(trace::BranchClass::Conditional),
             pct(trace::BranchClass::Return),
             pct(trace::BranchClass::ImmediateUnconditional),
             pct(trace::BranchClass::RegisterUnconditional),
             std::to_string(stats.dynamicBranches()),
             TablePrinter::percentCell(100.0 *
                                       stats.takenFraction())});
        conditional_sum +=
            100.0 * stats.classFraction(trace::BranchClass::Conditional);
        ++count;
    }
    table.addSeparator();
    table.addRow({"mean",
                  TablePrinter::percentCell(conditional_sum / count),
                  "", "", "", "", ""});
    table.print(std::cout);

    bench::printExpectation(
        "about 80% of the dynamic branch instructions are "
        "conditional branches; about 60% of conditional branches are "
        "taken.");
    return 0;
}
