/**
 * @file
 * Figure 5: Two-Level Adaptive Training with different pattern-table
 * automata (A2, A3, A4, Last-Time) on the 512-entry 4-way AHRT with
 * 12-bit history registers.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("fig5_automata");
    bench::printHeader("Figure 5",
                       "Two-Level Adaptive Training schemes using "
                       "different state transition automata.");

    harness::BenchmarkSuite suite;
    const harness::AccuracyReport report = harness::runSchemes(
        suite, "prediction accuracy (percent)",
        {
            "AT(AHRT(512,12SR),PT(2^12,A2),)",
            "AT(AHRT(512,12SR),PT(2^12,A3),)",
            "AT(AHRT(512,12SR),PT(2^12,A4),)",
            "AT(AHRT(512,12SR),PT(2^12,LT),)",
        },
        {"A2", "A3", "A4", "LT"});
    report.print(std::cout);
    record.addReport(report);
    bench::maybeWriteCsv(report, "fig5");

    bench::printExpectation(
        "A2, A3 and A4 achieve similar accuracy around 97%; the "
        "Last-Time automaton performs about 1% worse because a "
        "single pattern-history bit has no noise tolerance.");
    return 0;
}
