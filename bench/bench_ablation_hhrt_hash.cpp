/**
 * @file
 * Ablation for the HHRT index function (DESIGN.md item 4): the
 * paper-era low-order-bits index versus a mixed (SplitMix64) hash.
 * With branch addresses clustered in a small code segment, low bits
 * index well; mixing matters when address patterns are strided.
 */

#include "bench_common.hh"
#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("ablation_hhrt_hash");
    bench::printHeader(
        "HHRT hash ablation",
        "Low-order-bit indexing (paper-era) vs mixed hashing in the "
        "hashed history register table.");

    harness::BenchmarkSuite suite;
    for (const std::size_t entries : {256ul, 512ul}) {
        TablePrinter table("prediction accuracy (percent), HHRT(" +
                           std::to_string(entries) + ")");
        table.setHeader({"benchmark", "low bits", "mixed", "delta"});
        for (const std::string &name : suite.benchmarks()) {
            const trace::TraceBuffer &trace = suite.testTrace(name);

            core::TwoLevelConfig config;
            config.hrtKind = core::TableKind::Hashed;
            config.hrtEntries = entries;
            config.historyBits = 12;
            config.hhrtHash = core::HashKind::LowBits;
            core::TwoLevelPredictor low_bits(config);
            config.hhrtHash = core::HashKind::Mixed;
            core::TwoLevelPredictor mixed(config);

            const double low =
                harness::measure(low_bits, trace).accuracyPercent();
            const double mix =
                harness::measure(mixed, trace).accuracyPercent();
            table.addRow({name, TablePrinter::percentCell(low),
                          TablePrinter::percentCell(mix),
                          TablePrinter::percentCell(mix - low)});
        }
        table.print(std::cout);
    }

    bench::printExpectation(
        "with compact code, low-bit indexing is near-collision-free "
        "and the two hashes are close; mixing guards against strided "
        "aliasing at equal cost.");
    return 0;
}
