/**
 * @file
 * Derived result: pipeline cycles-per-instruction under each
 * prediction scheme — the abstract's claim ("a large performance
 * gain on a high-performance processor") made measurable with the
 * first-order deep-pipeline timing model (8-cycle resolve latency,
 * 512-entry BTB, 16-entry RAS).
 */

#include <cmath>

#include "bench_common.hh"
#include "harness/experiment.hh"
#include "util/string_utils.hh"
#include "pipeline/pipeline_model.hh"
#include "predictors/scheme_factory.hh"
#include "util/table_printer.hh"

int
main()
{
    using namespace tlat;
    bench::BenchRecorder record("pipeline_cpi");
    bench::printHeader(
        "Derived: pipeline CPI",
        "Cycles per instruction with each direction predictor "
        "(8-cycle resolve latency, 1-wide fetch).");

    const char *schemes[] = {
        "AT(AHRT(512,12SR),PT(2^12,A2),)",
        "ST(AHRT(512,12SR),PT(2^12,PB),Same)",
        "LS(AHRT(512,A2),,)",
        "LS(AHRT(512,LT),,)",
        "BTFN",
        "AlwaysTaken",
    };
    const char *labels[] = {"AT",   "ST/Same",     "LS-A2",
                            "LS-LT", "BTFN", "AlwaysTaken"};

    harness::BenchmarkSuite suite;
    pipeline::PipelineConfig config;
    config.resolveLatency = 8;

    TablePrinter table("CPI (lower is better)");
    {
        std::vector<std::string> header = {"benchmark"};
        for (const char *label : labels)
            header.emplace_back(label);
        table.setHeader(header);
    }

    std::vector<double> log_sums(std::size(schemes), 0.0);
    for (const std::string &name : suite.benchmarks()) {
        const trace::TraceBuffer &trace = suite.testTrace(name);
        std::vector<std::string> row = {name};
        for (std::size_t s = 0; s < std::size(schemes); ++s) {
            auto predictor = predictors::makePredictor(schemes[s]);
            if (predictor->needsTraining())
                predictor->train(trace);
            const double cpi = pipeline::PipelineModel(config)
                                   .run(trace, *predictor)
                                   .cpi();
            log_sums[s] += std::log(cpi);
            row.push_back(format("%.3f", cpi));
        }
        table.addRow(row);
    }
    table.addSeparator();
    std::vector<std::string> mean_row = {"G Mean"};
    std::vector<double> means;
    for (double log_sum : log_sums) {
        means.push_back(std::exp(
            log_sum /
            static_cast<double>(suite.benchmarks().size())));
        mean_row.push_back(format("%.3f", means.back()));
    }
    table.addRow(mean_row);
    table.print(std::cout);

    std::cout << "speedup of AT over each scheme: ";
    for (std::size_t s = 1; s < means.size(); ++s) {
        std::cout << labels[s] << " "
                  << format("%.1f%%",
                            (means[s] / means[0] - 1.0) * 100.0)
                  << "  ";
    }
    std::cout << "\n\n";

    bench::printExpectation(
        "the halved miss rate turns into a single-digit-percent CPI "
        "advantage at this depth on the FP codes and considerably "
        "more on the branchy integer codes — the \"considerable\" "
        "performance gain the paper's conclusion points at.");
    return 0;
}
