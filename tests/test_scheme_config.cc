/**
 * @file
 * Unit tests for the Table 2 scheme-name grammar.
 */

#include <gtest/gtest.h>

#include "core/scheme_config.hh"

namespace tlat::core
{
namespace
{

SchemeConfig
mustParse(const std::string &name)
{
    const auto config = SchemeConfig::parse(name);
    EXPECT_TRUE(config.has_value()) << name;
    return config.value_or(SchemeConfig{});
}

TEST(SchemeConfig, ParsesFlagshipAtConfiguration)
{
    const SchemeConfig config =
        mustParse("AT(AHRT(512,12SR),PT(2^12,A2),)");
    EXPECT_EQ(config.scheme, Scheme::TwoLevelAdaptive);
    EXPECT_EQ(config.hrtKind, TableKind::Associative);
    EXPECT_EQ(config.hrtEntries, 512u);
    EXPECT_EQ(config.historyBits, 12u);
    EXPECT_EQ(config.automaton, AutomatonKind::A2);
    EXPECT_EQ(config.data, DataMode::None);
}

TEST(SchemeConfig, ParsesIdealHrt)
{
    const SchemeConfig config =
        mustParse("AT(IHRT(,12SR),PT(2^12,A2),)");
    EXPECT_EQ(config.hrtKind, TableKind::Ideal);
    EXPECT_EQ(config.hrtEntries, 0u);
}

TEST(SchemeConfig, ParsesEveryTable2AtRow)
{
    // The eleven AT rows of Table 2.
    const char *rows[] = {
        "AT(AHRT(256,12SR),PT(2^12,A2),)",
        "AT(AHRT(512,12SR),PT(2^12,A2),)",
        "AT(AHRT(512,12SR),PT(2^12,A3),)",
        "AT(AHRT(512,12SR),PT(2^12,A4),)",
        "AT(AHRT(512,12SR),PT(2^12,LT),)",
        "AT(AHRT(512,10SR),PT(2^10,A2),)",
        "AT(AHRT(512,8SR),PT(2^8,A2),)",
        "AT(AHRT(512,6SR),PT(2^6,A2),)",
        "AT(HHRT(256,12SR),PT(2^12,A2),)",
        "AT(HHRT(512,12SR),PT(2^12,A2),)",
        "AT(IHRT(,12SR),PT(2^12,A2),)",
    };
    for (const char *row : rows) {
        const SchemeConfig config = mustParse(row);
        EXPECT_EQ(config.scheme, Scheme::TwoLevelAdaptive);
        // Round trip through text().
        EXPECT_EQ(config.text(), row);
    }
}

TEST(SchemeConfig, ParsesStaticTrainingRows)
{
    const SchemeConfig same =
        mustParse("ST(AHRT(512,12SR),PT(2^12,PB),Same)");
    EXPECT_EQ(same.scheme, Scheme::StaticTraining);
    EXPECT_EQ(same.data, DataMode::Same);
    const SchemeConfig diff =
        mustParse("ST(IHRT(,12SR),PT(2^12,PB),Diff)");
    EXPECT_EQ(diff.data, DataMode::Diff);
    EXPECT_EQ(diff.hrtKind, TableKind::Ideal);
    EXPECT_EQ(same.text(), "ST(AHRT(512,12SR),PT(2^12,PB),Same)");
}

TEST(SchemeConfig, ParsesLeeSmithRows)
{
    const char *rows[] = {
        "LS(AHRT(512,A2),,)", "LS(AHRT(512,LT),,)",
        "LS(HHRT(512,A2),,)", "LS(HHRT(512,LT),,)",
        "LS(IHRT(,A2),,)",    "LS(IHRT(,LT),,)",
    };
    for (const char *row : rows) {
        const SchemeConfig config = mustParse(row);
        EXPECT_EQ(config.scheme, Scheme::LeeSmithBtb);
        EXPECT_EQ(config.text(), row);
    }
    EXPECT_EQ(mustParse("LS(AHRT(512,A2),,)").automaton,
              AutomatonKind::A2);
    EXPECT_EQ(mustParse("LS(AHRT(512,LT),,)").automaton,
              AutomatonKind::LastTime);
}

TEST(SchemeConfig, ParsesStaticSchemes)
{
    EXPECT_EQ(mustParse("AlwaysTaken").scheme, Scheme::AlwaysTaken);
    EXPECT_EQ(mustParse("AlwaysNotTaken").scheme,
              Scheme::AlwaysNotTaken);
    EXPECT_EQ(mustParse("BTFN").scheme, Scheme::Btfn);
    EXPECT_EQ(mustParse("Profile").scheme, Scheme::Profile);
    EXPECT_EQ(mustParse("Profile").data, DataMode::Same);
}

TEST(SchemeConfig, ParsesGshareRows)
{
    const SchemeConfig config = mustParse("GSH(12,A2)");
    EXPECT_EQ(config.scheme, Scheme::Gshare);
    EXPECT_EQ(config.historyBits, 12u);
    EXPECT_EQ(config.automaton, AutomatonKind::A2);
    EXPECT_EQ(config.text(), "GSH(12,A2)");
    EXPECT_EQ(mustParse("GSH(8,LT)").automaton,
              AutomatonKind::LastTime);
    EXPECT_EQ(mustParse("GSH(2^4,A2)").historyBits, 16u);
}

TEST(SchemeConfig, ParsesCombiningRows)
{
    const SchemeConfig config = mustParse(
        "CMB(AT(AHRT(512,12SR),PT(2^12,A2),),LS(AHRT(512,A2),,),"
        "CT(2^12))");
    EXPECT_EQ(config.scheme, Scheme::Combining);
    EXPECT_EQ(config.chooserBits, 12u);
    ASSERT_EQ(config.components.size(), 2u);
    EXPECT_EQ(config.components[0].scheme, Scheme::TwoLevelAdaptive);
    EXPECT_EQ(config.components[1].scheme, Scheme::LeeSmithBtb);
    // Round trip: text() renders exactly the canonical spelling.
    EXPECT_EQ(config.text(),
              "CMB(AT(AHRT(512,12SR),PT(2^12,A2),),"
              "LS(AHRT(512,A2),,),CT(2^12))");

    // Components recurse through the full grammar: gshare and the
    // static schemes are valid component spellings.
    const SchemeConfig nested =
        mustParse("CMB(GSH(10,A2),BTFN,CT(2^8))");
    EXPECT_EQ(nested.components[0].scheme, Scheme::Gshare);
    EXPECT_EQ(nested.components[1].scheme, Scheme::Btfn);
    EXPECT_EQ(nested.chooserBits, 8u);
    EXPECT_EQ(nested.text(), "CMB(GSH(10,A2),BTFN,CT(2^8))");
}

TEST(SchemeConfig, RejectsMalformedGshareAndCombining)
{
    const char *bad[] = {
        "gshare",                         // bare word is not a scheme
        "GSH",                            // no clauses
        "GSH(12)",                        // missing automaton
        "GSH(12,A2,A2)",                  // too many clauses
        "GSH(0,A2)",                      // history bits out of range
        "GSH(25,A2)",                     // history bits out of range
        "GSH(12,PB)",                     // PB is ST-only
        "CMB(BTFN,CT(2^12))",             // missing a component
        "CMB(BTFN,AlwaysTaken,CT(12))",   // chooser not a power of two
        "CMB(BTFN,AlwaysTaken,CT(2^0))",  // chooser too small
        "CMB(BTFN,AlwaysTaken,CT(2^25))", // chooser too large
        "CMB(BTFN,AlwaysTaken,PT(2^12))", // wrong chooser keyword
        "CMB(BTFN,AlwaysTaken,CT(2^12),)",// trailing clause
        "CMB(BTFN,NotAScheme,CT(2^12))",  // bad component
    };
    for (const char *name : bad) {
        EXPECT_FALSE(SchemeConfig::parse(name).has_value()) << name;
    }
}

TEST(SchemeConfig, AcceptsWhitespace)
{
    EXPECT_TRUE(SchemeConfig::parse(
                    "  AT(AHRT(512,12SR),PT(2^12,A2),)  ")
                    .has_value());
}

TEST(SchemeConfig, RejectsMalformedNames)
{
    const char *bad[] = {
        "",
        "XX(AHRT(512,12SR),PT(2^12,A2),)",
        "AT(AHRT(512,12SR),PT(2^12,A2))",       // missing clause
        "AT(AHRT(512,12SR),PT(2^12,A2),Same)",  // AT takes no data
        "AT(AHRT(0,12SR),PT(2^12,A2),)",        // zero entries
        "AT(AHRT(512,12),PT(2^12,A2),)",        // not a SR spec
        "AT(AHRT(512,12SR),PT(2^10,A2),)",      // PT size mismatch
        "AT(AHRT(512,12SR),PT(2^12,A9),)",      // unknown automaton
        "AT(QHRT(512,12SR),PT(2^12,A2),)",      // unknown table
        "AT(IHRT(512,12SR),PT(2^12,A2),)",      // IHRT with a size
        "ST(AHRT(512,12SR),PT(2^12,PB),)",      // ST needs Same/Diff
        "ST(AHRT(512,12SR),PT(2^12,A2),Same)",  // ST needs PB
        "LS(AHRT(512,A2),PT(2^12,A2),)",        // LS has no PT
        "LS(AHRT(512,12SR),,)",                 // LS entry is automaton
        "AlwaysSometimes",
    };
    for (const char *name : bad) {
        EXPECT_FALSE(SchemeConfig::parse(name).has_value()) << name;
    }
}

TEST(SchemeConfig, HistoryBitsBoundaries)
{
    EXPECT_TRUE(SchemeConfig::parse("AT(AHRT(512,1SR),PT(2^1,A2),)")
                    .has_value());
    EXPECT_FALSE(SchemeConfig::parse("AT(AHRT(512,0SR),PT(2^0,A2),)")
                     .has_value());
    EXPECT_FALSE(
        SchemeConfig::parse("AT(AHRT(512,25SR),PT(2^25,A2),)")
            .has_value());
}

TEST(SchemeConfig, TextForStaticSchemes)
{
    SchemeConfig config;
    config.scheme = Scheme::Btfn;
    EXPECT_EQ(config.text(), "BTFN");
    config.scheme = Scheme::AlwaysTaken;
    EXPECT_EQ(config.text(), "AlwaysTaken");
}

} // namespace
} // namespace tlat::core
