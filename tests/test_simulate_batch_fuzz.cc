/**
 * @file
 * Randomized equivalence suite for the batched simulation fast path.
 *
 * BranchPredictor::simulateBatch() carries a strict bit-equivalence
 * contract: the fused overrides must leave the predictor in exactly
 * the state the reference predict()/record()/update() loop would —
 * same accuracy counts, same internal tables and statistics, same
 * collectMetrics() JSON, same checkpoint bytes. This suite holds
 * every scheme the factory can build (and the direct-construction
 * configurations the factory never emits: cached prediction bit,
 * speculative history update, counter-width pattern entries, the
 * generalized scope matrix, delayed updates) to that contract on
 * randomized traces across multiple seeds.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/delayed_update.hh"
#include "core/generalized_two_level.hh"
#include "core/scheme_config.hh"
#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "harness/metrics_json.hh"
#include "predictors/scheme_factory.hh"
#include "trace/trace_buffer.hh"
#include "util/random.hh"

namespace tlat
{
namespace
{

using core::TwoLevelConfig;
using core::TwoLevelPredictor;
using harness::measure;
using harness::measureReference;
using trace::BranchClass;
using trace::BranchRecord;
using trace::TraceBuffer;

/**
 * A randomized trace mixing biased conditional branches (a small pc
 * pool so histories and tables actually warm up), loop-like
 * alternating branches, and the non-conditional classes the batch
 * loop must skip. Forward and backward targets both occur so BTFN is
 * exercised in both directions.
 */
TraceBuffer
makeRandomTrace(std::uint64_t seed, std::size_t records = 4000)
{
    Rng rng(seed);
    TraceBuffer trace("fuzz-" + std::to_string(seed));

    constexpr std::size_t kSites = 48;
    struct Site
    {
        std::uint64_t pc;
        std::uint64_t target;
        std::uint32_t takenPermille;
        bool alternating;
        bool lastTaken;
    };
    std::vector<Site> sites;
    for (std::size_t i = 0; i < kSites; ++i) {
        Site site;
        site.pc = 0x1000 + 4 * rng.nextBelow(1 << 14);
        // Half backward targets, half forward, so BTFN sees both.
        site.target = (i % 2 == 0) ? site.pc - 4 * rng.nextBelow(64)
                                   : site.pc + 4 * rng.nextBelow(64);
        site.takenPermille =
            static_cast<std::uint32_t>(rng.nextBelow(1001));
        site.alternating = rng.nextBelow(8) == 0;
        site.lastTaken = false;
        sites.push_back(site);
    }

    for (std::size_t i = 0; i < records; ++i) {
        // ~1 in 8 records is non-conditional noise the loop skips.
        if (rng.nextBelow(8) == 0) {
            BranchRecord record;
            record.pc = 0x9000 + 4 * rng.nextBelow(1 << 10);
            record.target = 0x9000 + 4 * rng.nextBelow(1 << 10);
            const std::uint64_t pick = rng.nextBelow(3);
            record.cls = pick == 0
                ? BranchClass::Return
                : pick == 1 ? BranchClass::ImmediateUnconditional
                            : BranchClass::RegisterUnconditional;
            record.taken = true;
            record.isCall = rng.nextBelow(2) == 0;
            trace.append(record);
            continue;
        }
        Site &site = sites[rng.nextBelow(kSites)];
        BranchRecord record;
        record.pc = site.pc;
        record.target = site.target;
        record.cls = BranchClass::Conditional;
        if (site.alternating) {
            site.lastTaken = !site.lastTaken;
            record.taken = site.lastTaken;
        } else {
            record.taken = rng.nextBelow(1000) < site.takenPermille;
        }
        trace.append(record);
    }
    return trace;
}

/** collectMetrics() rendered through the stable JSON serializer. */
std::string
metricsJson(const core::BranchPredictor &predictor,
            const AccuracyCounter &accuracy,
            const TraceBuffer &trace)
{
    harness::RunMetricsReport report;
    report.scheme = predictor.name();
    report.benchmark = trace.name();
    report.accuracy = accuracy;
    predictor.collectMetrics(report.predictor);
    return harness::runMetricsJsonString(report);
}

/**
 * Runs the measured protocol on two freshly built predictors — one
 * through measure() (the batch API, fused where overridden), one
 * through measureReference() (the per-record virtual loop) — and
 * asserts identical accuracy and identical metrics JSON.
 */
void
expectBatchEqualsReference(core::BranchPredictor &fast,
                           core::BranchPredictor &reference,
                           const TraceBuffer &trace)
{
    fast.reset();
    reference.reset();
    if (fast.needsTraining())
        fast.train(trace);
    if (reference.needsTraining())
        reference.train(trace);

    const AccuracyCounter fast_acc = measure(fast, trace);
    const AccuracyCounter ref_acc = measureReference(reference, trace);

    EXPECT_EQ(fast_acc.total(), ref_acc.total())
        << fast.name() << " on " << trace.name();
    EXPECT_EQ(fast_acc.hits(), ref_acc.hits())
        << fast.name() << " on " << trace.name();
    EXPECT_EQ(metricsJson(fast, fast_acc, trace),
              metricsJson(reference, ref_acc, trace))
        << fast.name() << " on " << trace.name();
}

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

TEST(SimulateBatchFuzz, EveryFactoryScheme)
{
    std::vector<std::string> schemes;
    for (const char *hrt :
         {"IHRT(,", "AHRT(64,", "HHRT(64,"}) {
        for (const char *atm : {"LT", "A1", "A2", "A3", "A4"}) {
            schemes.push_back(std::string("AT(") + hrt + "6SR),PT(2^6," +
                              atm + "),)");
        }
        schemes.push_back(std::string("ST(") + hrt +
                          "6SR),PT(2^6,PB),Same)");
    }
    for (const char *hrt : {"IHRT(,", "AHRT(64,", "HHRT(64,"}) {
        schemes.push_back(std::string("LS(") + hrt + "A2),,)");
        schemes.push_back(std::string("LS(") + hrt + "LT),,)");
    }
    schemes.insert(schemes.end(),
                   {"AlwaysTaken", "AlwaysNotTaken", "BTFN",
                    "Profile"});

    for (const std::string &scheme : schemes) {
        const auto config = core::SchemeConfig::parse(scheme);
        ASSERT_TRUE(config.has_value()) << scheme;
        for (const std::uint64_t seed : kSeeds) {
            const TraceBuffer trace = makeRandomTrace(seed);
            const auto fast = predictors::makePredictor(*config);
            const auto reference = predictors::makePredictor(*config);
            expectBatchEqualsReference(*fast, *reference, trace);
        }
    }
}

TEST(SimulateBatchFuzz, TwoLevelCachedSpeculativeAndCounterModes)
{
    // The factory never sets these knobs; construct directly. Every
    // (HRT flavour x cached bit x speculative update) combination
    // plus the counter-width extension must stay bit-identical —
    // including checkpoint bytes, compared below.
    for (const core::TableKind kind :
         {core::TableKind::Ideal, core::TableKind::Associative,
          core::TableKind::Hashed}) {
        for (const bool cached : {false, true}) {
            for (const bool speculative : {false, true}) {
                for (const unsigned counter_bits : {0u, 3u}) {
                    TwoLevelConfig config;
                    config.hrtKind = kind;
                    config.hrtEntries = 64;
                    config.historyBits = 6;
                    config.cachedPredictionBit = cached;
                    config.speculativeHistoryUpdate = speculative;
                    config.counterBits = counter_bits;
                    for (const std::uint64_t seed : kSeeds) {
                        const TraceBuffer trace = makeRandomTrace(seed);
                        TwoLevelPredictor fast(config);
                        TwoLevelPredictor reference(config);
                        expectBatchEqualsReference(fast, reference,
                                                   trace);
                        EXPECT_EQ(fast.inFlightBranches(), 0u);
                        EXPECT_EQ(fast.squashEvents(),
                                  reference.squashEvents());

                        std::ostringstream fast_ckpt;
                        std::ostringstream ref_ckpt;
                        ASSERT_TRUE(fast.saveCheckpoint(fast_ckpt));
                        ASSERT_TRUE(
                            reference.saveCheckpoint(ref_ckpt));
                        EXPECT_EQ(fast_ckpt.str(), ref_ckpt.str())
                            << fast.name() << " cached=" << cached
                            << " spec=" << speculative
                            << " counterBits=" << counter_bits;
                    }
                }
            }
        }
    }
}

TEST(SimulateBatchFuzz, GeneralizedScopeMatrix)
{
    using core::GeneralizedConfig;
    using core::GeneralizedTwoLevelPredictor;
    using core::HistoryScope;
    using core::PatternScope;
    for (const HistoryScope history :
         {HistoryScope::Global, HistoryScope::PerAddress,
          HistoryScope::PerSet}) {
        for (const PatternScope pattern :
             {PatternScope::Global, PatternScope::PerSet,
              PatternScope::PerAddress}) {
            GeneralizedConfig config;
            config.historyScope = history;
            config.patternScope = pattern;
            config.historyBits = 6;
            config.xorAddress = history == HistoryScope::Global;
            for (const std::uint64_t seed : kSeeds) {
                const TraceBuffer trace = makeRandomTrace(seed);
                GeneralizedTwoLevelPredictor fast(config);
                GeneralizedTwoLevelPredictor reference(config);
                expectBatchEqualsReference(fast, reference, trace);
            }
        }
    }
}

TEST(SimulateBatchFuzz, DelayedUpdateWrapperUsesReferenceSemantics)
{
    // The delayed-update wrapper does not override simulateBatch; the
    // default implementation must reproduce the reference loop's
    // delayed pipeline exactly, including the tight-loop
    // predict-taken-when-unresolved policy.
    for (const unsigned delay : {0u, 3u, 7u}) {
        for (const std::uint64_t seed : kSeeds) {
            const TraceBuffer trace = makeRandomTrace(seed);
            TwoLevelConfig config;
            config.hrtKind = core::TableKind::Associative;
            config.hrtEntries = 64;
            config.historyBits = 6;
            core::DelayedUpdatePredictor fast(
                std::make_unique<TwoLevelPredictor>(config), delay);
            core::DelayedUpdatePredictor reference(
                std::make_unique<TwoLevelPredictor>(config), delay);
            expectBatchEqualsReference(fast, reference, trace);
        }
    }
}

TEST(SimulateBatchFuzz, MidPairStateFallsBackToReference)
{
    // A predict() without its paired update() leaves the lookup memo
    // live; a batch issued in that state must still match the
    // reference loop run from the same mid-pair state.
    const TraceBuffer trace = makeRandomTrace(11);
    ASSERT_FALSE(trace.conditionalView().empty());
    const BranchRecord &first = trace.conditionalView().front();

    TwoLevelConfig config;
    config.hrtKind = core::TableKind::Associative;
    config.hrtEntries = 64;
    config.historyBits = 6;
    TwoLevelPredictor fast(config);
    TwoLevelPredictor reference(config);

    (void)fast.predict(first);
    (void)reference.predict(first);
    fast.update(first);
    reference.update(first);

    // Leave a dangling predict() and then batch.
    (void)fast.predict(first);
    (void)reference.predict(first);
    AccuracyCounter fast_acc;
    fast.simulateBatch(trace.conditionalView(), fast_acc);
    AccuracyCounter ref_acc;
    for (const BranchRecord &record : trace.records()) {
        if (record.cls != BranchClass::Conditional)
            continue;
        const bool predicted = reference.predict(record);
        ref_acc.record(predicted == record.taken);
        reference.update(record);
    }
    EXPECT_EQ(fast_acc.hits(), ref_acc.hits());
    EXPECT_EQ(fast_acc.total(), ref_acc.total());
    EXPECT_EQ(metricsJson(fast, fast_acc, trace),
              metricsJson(reference, ref_acc, trace));
}

TEST(SimulateBatchFuzz, EmptyTraceYieldsZeroAccuracyNotNaN)
{
    // End-to-end face of the AccuracyCounter divide-by-zero guard: a
    // trace with no conditional branches measures as 0.0 everywhere.
    TraceBuffer empty("empty");
    TwoLevelConfig config;
    TwoLevelPredictor predictor(config);
    const AccuracyCounter accuracy = measure(predictor, empty);
    EXPECT_EQ(accuracy.total(), 0u);
    EXPECT_EQ(accuracy.accuracy(), 0.0);
    EXPECT_EQ(accuracy.accuracyPercent(), 0.0);
    EXPECT_EQ(accuracy.missPercent(), 0.0);
}

} // namespace
} // namespace tlat
