/**
 * @file
 * Randomized equivalence suite for the batched simulation fast path.
 *
 * BranchPredictor::simulateBatch() carries a strict bit-equivalence
 * contract: the fused overrides must leave the predictor in exactly
 * the state the reference predict()/record()/update() loop would —
 * same accuracy counts, same internal tables and statistics, same
 * collectMetrics() JSON, same checkpoint bytes. This suite holds
 * every scheme the factory can build (and the direct-construction
 * configurations the factory never emits: cached prediction bit,
 * speculative history update, counter-width pattern entries, the
 * generalized scope matrix, delayed updates) to that contract on
 * randomized traces across multiple seeds.
 *
 * The comparison is four-way: the predecoded-view fast path under the
 * host's best SIMD level (util/simd.hh — the vectorized fused pass on
 * AVX2/NEON hosts), the same path pinned to the scalar kernels via
 * ScopedLevelOverride, the AoS span overload, and the per-record
 * reference loop. On a scalar-only host the first two legs coincide
 * and the suite degenerates to the original three-way — still a valid
 * run, just without cross-level coverage.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/combining_predictor.hh"
#include "core/delayed_update.hh"
#include "core/generalized_two_level.hh"
#include "core/scheme_config.hh"
#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "harness/metrics_json.hh"
#include "isa/instruction.hh"
#include "predictors/scheme_factory.hh"
#include "sim/simulator.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_filter.hh"
#include "util/random.hh"
#include "util/simd.hh"
#include "workloads/workload.hh"

namespace tlat
{
namespace
{

using core::TwoLevelConfig;
using core::TwoLevelPredictor;
using harness::measure;
using harness::measureReference;
using trace::BranchClass;
using trace::BranchRecord;
using trace::TraceBuffer;

/**
 * A randomized trace mixing biased conditional branches (a small pc
 * pool so histories and tables actually warm up), loop-like
 * alternating branches, and the non-conditional classes the batch
 * loop must skip. Forward and backward targets both occur so BTFN is
 * exercised in both directions.
 */
TraceBuffer
makeRandomTrace(std::uint64_t seed, std::size_t records = 4000)
{
    Rng rng(seed);
    TraceBuffer trace("fuzz-" + std::to_string(seed));

    constexpr std::size_t kSites = 48;
    struct Site
    {
        std::uint64_t pc;
        std::uint64_t target;
        std::uint32_t takenPermille;
        bool alternating;
        bool lastTaken;
    };
    std::vector<Site> sites;
    for (std::size_t i = 0; i < kSites; ++i) {
        Site site;
        site.pc = 0x1000 + 4 * rng.nextBelow(1 << 14);
        // Half backward targets, half forward, so BTFN sees both.
        site.target = (i % 2 == 0) ? site.pc - 4 * rng.nextBelow(64)
                                   : site.pc + 4 * rng.nextBelow(64);
        site.takenPermille =
            static_cast<std::uint32_t>(rng.nextBelow(1001));
        site.alternating = rng.nextBelow(8) == 0;
        site.lastTaken = false;
        sites.push_back(site);
    }

    for (std::size_t i = 0; i < records; ++i) {
        // ~1 in 8 records is non-conditional noise the loop skips.
        if (rng.nextBelow(8) == 0) {
            BranchRecord record;
            record.pc = 0x9000 + 4 * rng.nextBelow(1 << 10);
            record.target = 0x9000 + 4 * rng.nextBelow(1 << 10);
            const std::uint64_t pick = rng.nextBelow(3);
            record.cls = pick == 0
                ? BranchClass::Return
                : pick == 1 ? BranchClass::ImmediateUnconditional
                            : BranchClass::RegisterUnconditional;
            record.taken = true;
            record.isCall = rng.nextBelow(2) == 0;
            trace.append(record);
            continue;
        }
        Site &site = sites[rng.nextBelow(kSites)];
        BranchRecord record;
        record.pc = site.pc;
        record.target = site.target;
        record.cls = BranchClass::Conditional;
        if (site.alternating) {
            site.lastTaken = !site.lastTaken;
            record.taken = site.lastTaken;
        } else {
            record.taken = rng.nextBelow(1000) < site.takenPermille;
        }
        trace.append(record);
    }
    return trace;
}

/** collectMetrics() rendered through the stable JSON serializer. */
std::string
metricsJson(const core::BranchPredictor &predictor,
            const AccuracyCounter &accuracy,
            const TraceBuffer &trace)
{
    harness::RunMetricsReport report;
    report.scheme = predictor.name();
    report.benchmark = trace.name();
    report.accuracy = accuracy;
    predictor.collectMetrics(report.predictor);
    return harness::runMetricsJsonString(report);
}

/** The AoS batch overload, bypassing the predecoded view. */
AccuracyCounter
measureAos(core::BranchPredictor &predictor, const TraceBuffer &trace)
{
    AccuracyCounter accuracy;
    predictor.simulateBatch(trace.conditionalView(), accuracy);
    return accuracy;
}

/** measure() with SIMD dispatch pinned to the scalar kernels. */
AccuracyCounter
measureScalarSoa(core::BranchPredictor &predictor,
                 const TraceBuffer &trace)
{
    const util::simd::ScopedLevelOverride pin(
        util::simd::Level::Scalar);
    return measure(predictor, trace);
}

/**
 * Runs the measured protocol on four freshly built predictors — one
 * through measure() at the host's best SIMD level (the vectorized
 * fused pass where eligible), one through measure() pinned to
 * scalar dispatch (the SoA fast path), one through the AoS span
 * overload, one through measureReference() (the per-record virtual
 * loop) — and asserts identical accuracy and identical metrics JSON
 * across all four.
 */
void
expectBatchEqualsReference(core::BranchPredictor &fast,
                           core::BranchPredictor &scalar_soa,
                           core::BranchPredictor &aos,
                           core::BranchPredictor &reference,
                           const TraceBuffer &trace)
{
    fast.reset();
    scalar_soa.reset();
    aos.reset();
    reference.reset();
    if (fast.needsTraining())
        fast.train(trace);
    if (scalar_soa.needsTraining()) {
        const util::simd::ScopedLevelOverride pin(
            util::simd::Level::Scalar);
        scalar_soa.train(trace);
    }
    if (aos.needsTraining())
        aos.train(trace);
    if (reference.needsTraining())
        reference.train(trace);

    const AccuracyCounter fast_acc = measure(fast, trace);
    const AccuracyCounter soa_acc = measureScalarSoa(scalar_soa, trace);
    const AccuracyCounter aos_acc = measureAos(aos, trace);
    const AccuracyCounter ref_acc = measureReference(reference, trace);

    EXPECT_EQ(fast_acc.total(), ref_acc.total())
        << fast.name() << " on " << trace.name();
    EXPECT_EQ(fast_acc.hits(), ref_acc.hits())
        << fast.name() << " on " << trace.name();
    EXPECT_EQ(soa_acc.total(), ref_acc.total())
        << scalar_soa.name() << " (scalar) on " << trace.name();
    EXPECT_EQ(soa_acc.hits(), ref_acc.hits())
        << scalar_soa.name() << " (scalar) on " << trace.name();
    EXPECT_EQ(aos_acc.total(), ref_acc.total())
        << aos.name() << " on " << trace.name();
    EXPECT_EQ(aos_acc.hits(), ref_acc.hits())
        << aos.name() << " on " << trace.name();
    EXPECT_EQ(metricsJson(fast, fast_acc, trace),
              metricsJson(reference, ref_acc, trace))
        << fast.name() << " on " << trace.name();
    EXPECT_EQ(metricsJson(scalar_soa, soa_acc, trace),
              metricsJson(reference, ref_acc, trace))
        << scalar_soa.name() << " (scalar) on " << trace.name();
    EXPECT_EQ(metricsJson(aos, aos_acc, trace),
              metricsJson(reference, ref_acc, trace))
        << aos.name() << " on " << trace.name();
}

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

TEST(SimulateBatchFuzz, EveryFactoryScheme)
{
    std::vector<std::string> schemes;
    for (const char *hrt :
         {"IHRT(,", "AHRT(64,", "HHRT(64,"}) {
        for (const char *atm : {"LT", "A1", "A2", "A3", "A4"}) {
            schemes.push_back(std::string("AT(") + hrt + "6SR),PT(2^6," +
                              atm + "),)");
        }
        schemes.push_back(std::string("ST(") + hrt +
                          "6SR),PT(2^6,PB),Same)");
    }
    for (const char *hrt : {"IHRT(,", "AHRT(64,", "HHRT(64,"}) {
        schemes.push_back(std::string("LS(") + hrt + "A2),,)");
        schemes.push_back(std::string("LS(") + hrt + "LT),,)");
    }
    schemes.insert(schemes.end(),
                   {"AlwaysTaken", "AlwaysNotTaken", "BTFN",
                    "Profile", "GSH(6,A2)", "GSH(8,LT)"});
    // Combining schemes: every component pairing class the factory
    // can emit — two-level + BTB, gshare + BTB, two-level + static.
    schemes.insert(
        schemes.end(),
        {"CMB(AT(AHRT(64,6SR),PT(2^6,A2),),LS(AHRT(64,A2),,),"
         "CT(2^8))",
         "CMB(GSH(6,A2),LS(IHRT(,LT),,),CT(2^6))",
         "CMB(AT(IHRT(,6SR),PT(2^6,A2),),BTFN,CT(2^8))"});

    for (const std::string &scheme : schemes) {
        const auto config = core::SchemeConfig::parse(scheme);
        ASSERT_TRUE(config.has_value()) << scheme;
        for (const std::uint64_t seed : kSeeds) {
            const TraceBuffer trace = makeRandomTrace(seed);
            const auto fast = predictors::makePredictor(*config);
            const auto scalar = predictors::makePredictor(*config);
            const auto aos = predictors::makePredictor(*config);
            const auto reference = predictors::makePredictor(*config);
            expectBatchEqualsReference(*fast, *scalar, *aos,
                                       *reference, trace);
        }
    }
}

TEST(SimulateBatchFuzz, TwoLevelCachedSpeculativeAndCounterModes)
{
    // The factory never sets these knobs; construct directly. Every
    // (HRT flavour x cached bit x speculative update) combination
    // plus the counter-width extension must stay bit-identical —
    // including checkpoint bytes, compared below.
    for (const core::TableKind kind :
         {core::TableKind::Ideal, core::TableKind::Associative,
          core::TableKind::Hashed}) {
        for (const bool cached : {false, true}) {
            for (const bool speculative : {false, true}) {
                for (const unsigned counter_bits : {0u, 3u}) {
                    TwoLevelConfig config;
                    config.hrtKind = kind;
                    config.hrtEntries = 64;
                    config.historyBits = 6;
                    config.cachedPredictionBit = cached;
                    config.speculativeHistoryUpdate = speculative;
                    config.counterBits = counter_bits;
                    for (const std::uint64_t seed : kSeeds) {
                        const TraceBuffer trace = makeRandomTrace(seed);
                        TwoLevelPredictor fast(config);
                        TwoLevelPredictor scalar(config);
                        TwoLevelPredictor aos(config);
                        TwoLevelPredictor reference(config);
                        expectBatchEqualsReference(fast, scalar, aos,
                                                   reference, trace);
                        EXPECT_EQ(fast.inFlightBranches(), 0u);
                        EXPECT_EQ(fast.squashEvents(),
                                  reference.squashEvents());
                        EXPECT_EQ(scalar.squashEvents(),
                                  reference.squashEvents());
                        EXPECT_EQ(aos.squashEvents(),
                                  reference.squashEvents());

                        std::ostringstream fast_ckpt;
                        std::ostringstream scalar_ckpt;
                        std::ostringstream aos_ckpt;
                        std::ostringstream ref_ckpt;
                        ASSERT_TRUE(fast.saveCheckpoint(fast_ckpt));
                        ASSERT_TRUE(
                            scalar.saveCheckpoint(scalar_ckpt));
                        ASSERT_TRUE(aos.saveCheckpoint(aos_ckpt));
                        ASSERT_TRUE(
                            reference.saveCheckpoint(ref_ckpt));
                        EXPECT_EQ(fast_ckpt.str(), ref_ckpt.str())
                            << fast.name() << " cached=" << cached
                            << " spec=" << speculative
                            << " counterBits=" << counter_bits;
                        EXPECT_EQ(scalar_ckpt.str(), ref_ckpt.str())
                            << scalar.name() << " (scalar) cached="
                            << cached << " spec=" << speculative
                            << " counterBits=" << counter_bits;
                        EXPECT_EQ(aos_ckpt.str(), ref_ckpt.str())
                            << aos.name() << " cached=" << cached
                            << " spec=" << speculative
                            << " counterBits=" << counter_bits;
                    }
                }
            }
        }
    }
}

TEST(SimulateBatchFuzz, GeneralizedScopeMatrix)
{
    using core::GeneralizedConfig;
    using core::GeneralizedTwoLevelPredictor;
    using core::HistoryScope;
    using core::PatternScope;
    for (const HistoryScope history :
         {HistoryScope::Global, HistoryScope::PerAddress,
          HistoryScope::PerSet}) {
        for (const PatternScope pattern :
             {PatternScope::Global, PatternScope::PerSet,
              PatternScope::PerAddress}) {
            GeneralizedConfig config;
            config.historyScope = history;
            config.patternScope = pattern;
            config.historyBits = 6;
            config.xorAddress = history == HistoryScope::Global;
            for (const std::uint64_t seed : kSeeds) {
                const TraceBuffer trace = makeRandomTrace(seed);
                GeneralizedTwoLevelPredictor fast(config);
                GeneralizedTwoLevelPredictor scalar(config);
                GeneralizedTwoLevelPredictor aos(config);
                GeneralizedTwoLevelPredictor reference(config);
                expectBatchEqualsReference(fast, scalar, aos,
                                           reference, trace);
            }
        }
    }
}

/** Builds a factory component for direct CombiningPredictor tests. */
std::unique_ptr<core::BranchPredictor>
makeComponent(const std::string &scheme)
{
    const auto config = core::SchemeConfig::parse(scheme);
    EXPECT_TRUE(config.has_value()) << scheme;
    return predictors::makePredictor(*config);
}

TEST(SimulateBatchFuzz, CombiningChooserInitStatesAndCheckpointBytes)
{
    // The factory always starts the chooser weakly preferring A;
    // direct construction sweeps every initial counter value. The
    // three drive paths must agree on accuracy, metrics JSON and
    // checkpoint bytes.
    for (const unsigned init : {0u, 1u, 2u, 3u}) {
        core::CombiningOptions options;
        options.chooserBits = 6;
        options.initialState = static_cast<std::uint8_t>(init);
        for (const std::uint64_t seed : kSeeds) {
            const TraceBuffer trace = makeRandomTrace(seed);
            core::CombiningPredictor fast(
                makeComponent("AT(AHRT(64,6SR),PT(2^6,A2),)"),
                makeComponent("LS(AHRT(64,A2),,)"), options);
            core::CombiningPredictor scalar(
                makeComponent("AT(AHRT(64,6SR),PT(2^6,A2),)"),
                makeComponent("LS(AHRT(64,A2),,)"), options);
            core::CombiningPredictor aos(
                makeComponent("AT(AHRT(64,6SR),PT(2^6,A2),)"),
                makeComponent("LS(AHRT(64,A2),,)"), options);
            core::CombiningPredictor reference(
                makeComponent("AT(AHRT(64,6SR),PT(2^6,A2),)"),
                makeComponent("LS(AHRT(64,A2),,)"), options);
            expectBatchEqualsReference(fast, scalar, aos, reference,
                                       trace);

            std::ostringstream fast_ckpt;
            std::ostringstream scalar_ckpt;
            std::ostringstream aos_ckpt;
            std::ostringstream ref_ckpt;
            ASSERT_TRUE(fast.saveCheckpoint(fast_ckpt));
            ASSERT_TRUE(scalar.saveCheckpoint(scalar_ckpt));
            ASSERT_TRUE(aos.saveCheckpoint(aos_ckpt));
            ASSERT_TRUE(reference.saveCheckpoint(ref_ckpt));
            EXPECT_EQ(fast_ckpt.str(), ref_ckpt.str())
                << "init=" << init << " seed=" << seed;
            EXPECT_EQ(scalar_ckpt.str(), ref_ckpt.str())
                << "(scalar) init=" << init << " seed=" << seed;
            EXPECT_EQ(aos_ckpt.str(), ref_ckpt.str())
                << "init=" << init << " seed=" << seed;
        }
    }
}

TEST(SimulateBatchFuzz, CombiningMatchesComponentwiseHandSimulation)
{
    // Hand simulation: drive standalone copies of both components
    // through the trace, replay a scalar 2-bit chooser over their
    // correctness streams in plain test code, and require the
    // combining predictor to report exactly that accuracy, the same
    // disagreement count, and the same final chooser counter for
    // every branch site.
    for (const std::uint64_t seed : kSeeds) {
        const TraceBuffer trace = makeRandomTrace(seed);
        core::CombiningOptions options;
        options.chooserBits = 6;
        core::CombiningPredictor combined(
            makeComponent("AT(AHRT(64,6SR),PT(2^6,A2),)"),
            makeComponent("LS(AHRT(64,A2),,)"), options);
        const auto alone_a =
            makeComponent("AT(AHRT(64,6SR),PT(2^6,A2),)");
        const auto alone_b = makeComponent("LS(AHRT(64,A2),,)");

        std::vector<std::uint8_t> chooser(
            std::size_t{1} << options.chooserBits,
            options.initialState);
        const std::uint64_t mask =
            (std::uint64_t{1} << options.chooserBits) - 1;
        AccuracyCounter hand;
        std::uint64_t disagreements = 0;
        for (const BranchRecord &record : trace.records()) {
            if (record.cls != BranchClass::Conditional)
                continue;
            const bool pa = alone_a->predict(record);
            const bool pb = alone_b->predict(record);
            std::uint8_t &counter =
                chooser[(record.pc >> options.addrShift) & mask];
            hand.record((counter >= 2 ? pa : pb) == record.taken);
            const bool correct_a = pa == record.taken;
            const bool correct_b = pb == record.taken;
            if (correct_a != correct_b) {
                ++disagreements;
                if (correct_a)
                    counter = static_cast<std::uint8_t>(
                        std::min<unsigned>(counter + 1u, 3u));
                else
                    counter = static_cast<std::uint8_t>(
                        counter > 0 ? counter - 1u : 0u);
            }
            alone_a->update(record);
            alone_b->update(record);
        }

        const AccuracyCounter combined_acc =
            measureReference(combined, trace);
        EXPECT_EQ(combined_acc.hits(), hand.hits()) << "seed=" << seed;
        EXPECT_EQ(combined_acc.total(), hand.total());
        EXPECT_EQ(combined.disagreements(), disagreements);
        for (const std::uint64_t pc : trace.predecoded()->uniquePcs())
            EXPECT_EQ(combined.chooserState(pc),
                      chooser[(pc >> options.addrShift) & mask])
                << "pc=" << pc << " seed=" << seed;
    }
}

TEST(SimulateBatchFuzz, DelayedUpdateWrapperUsesReferenceSemantics)
{
    // The delayed-update wrapper does not override simulateBatch; the
    // default implementation must reproduce the reference loop's
    // delayed pipeline exactly, including the tight-loop
    // predict-taken-when-unresolved policy.
    for (const unsigned delay : {0u, 3u, 7u}) {
        for (const std::uint64_t seed : kSeeds) {
            const TraceBuffer trace = makeRandomTrace(seed);
            TwoLevelConfig config;
            config.hrtKind = core::TableKind::Associative;
            config.hrtEntries = 64;
            config.historyBits = 6;
            core::DelayedUpdatePredictor fast(
                std::make_unique<TwoLevelPredictor>(config), delay);
            core::DelayedUpdatePredictor scalar(
                std::make_unique<TwoLevelPredictor>(config), delay);
            core::DelayedUpdatePredictor aos(
                std::make_unique<TwoLevelPredictor>(config), delay);
            core::DelayedUpdatePredictor reference(
                std::make_unique<TwoLevelPredictor>(config), delay);
            expectBatchEqualsReference(fast, scalar, aos, reference,
                                       trace);
        }
    }
}

/** Four-way equivalence for one factory scheme on a given trace. */
void
expectSchemeEqualsReference(const std::string &scheme,
                            const TraceBuffer &trace)
{
    const auto config = core::SchemeConfig::parse(scheme);
    ASSERT_TRUE(config.has_value()) << scheme;
    const auto fast = predictors::makePredictor(*config);
    const auto scalar = predictors::makePredictor(*config);
    const auto aos = predictors::makePredictor(*config);
    const auto reference = predictors::makePredictor(*config);
    expectBatchEqualsReference(*fast, *scalar, *aos, *reference,
                               trace);
}

/** Generalized (PAg) four-way equivalence on a given trace. */
void
expectGeneralizedEqualsReference(const TraceBuffer &trace)
{
    core::GeneralizedConfig config;
    config.historyScope = core::HistoryScope::PerAddress;
    config.patternScope = core::PatternScope::Global;
    config.historyBits = 6;
    core::GeneralizedTwoLevelPredictor fast(config);
    core::GeneralizedTwoLevelPredictor scalar(config);
    core::GeneralizedTwoLevelPredictor aos(config);
    core::GeneralizedTwoLevelPredictor reference(config);
    expectBatchEqualsReference(fast, scalar, aos, reference, trace);
}

/** Schemes covering every SoA prober flavour plus Lee-Smith. */
constexpr const char *kEdgeSchemes[] = {
    "AT(IHRT(,6SR),PT(2^6,A2),)",
    "AT(AHRT(64,6SR),PT(2^6,A2),)",
    "AT(HHRT(64,6SR),PT(2^6,A2),)",
    "LS(AHRT(64,A2),,)",
    "CMB(AT(AHRT(64,6SR),PT(2^6,A2),),LS(AHRT(64,A2),,),CT(2^6))",
};

TEST(SimulateBatchFuzz, EdgeTraceZeroConditionals)
{
    // A trace whose records are all non-conditional predecodes to an
    // empty SoA artifact; the fused loops must run zero iterations
    // and leave all counters and tables untouched.
    Rng rng(0xed6e0);
    TraceBuffer trace("no-conditionals");
    for (std::size_t i = 0; i < 200; ++i) {
        BranchRecord record;
        record.pc = 0x9000 + 4 * rng.nextBelow(1 << 8);
        record.target = 0x9000 + 4 * rng.nextBelow(1 << 8);
        record.cls = rng.nextBelow(2) == 0
            ? BranchClass::Return
            : BranchClass::ImmediateUnconditional;
        record.taken = true;
        trace.append(record);
    }
    ASSERT_TRUE(trace.conditionalView().empty());
    for (const char *scheme : kEdgeSchemes)
        expectSchemeEqualsReference(scheme, trace);
    expectGeneralizedEqualsReference(trace);
}

TEST(SimulateBatchFuzz, EdgeTraceSingleUniquePc)
{
    // One conditional site only: the dictionary has a single id and
    // every record is a repeat probe (the IHRT lane's repeat-hit
    // accounting must match per-record lookups exactly).
    Rng rng(0xed6e1);
    TraceBuffer trace("single-site");
    bool last = false;
    for (std::size_t i = 0; i < 3000; ++i) {
        if (rng.nextBelow(5) == 0)
            last = !last;
        trace.append([&] {
            BranchRecord record;
            record.pc = 0x2000;
            record.target = 0x1f00;
            record.cls = BranchClass::Conditional;
            record.taken = last;
            return record;
        }());
    }
    ASSERT_EQ(trace.predecoded()->uniquePcCount(), 1u);
    for (const char *scheme : kEdgeSchemes)
        expectSchemeEqualsReference(scheme, trace);
    expectGeneralizedEqualsReference(trace);
}

TEST(SimulateBatchFuzz, EdgeTraceManyUniquePcsStressDictionary)
{
    // >64Ki unique conditional PCs: stresses the first-appearance
    // dictionary past the 16-bit boundary, forces cold IHRT probes
    // for every id, and drives heavy AHRT eviction traffic. A tail
    // of random repeats exercises warm probes over the wide id
    // space too.
    constexpr std::size_t kUnique = 70000; // > 65536
    Rng rng(0xed6e2);
    TraceBuffer trace("wide-dictionary");
    for (std::size_t i = 0; i < kUnique; ++i) {
        BranchRecord record;
        record.pc = 0x10000 + 4 * i;
        record.target = record.pc + 16;
        record.cls = BranchClass::Conditional;
        record.taken = i % 3 == 0;
        trace.append(record);
    }
    for (std::size_t i = 0; i < 10000; ++i) {
        BranchRecord record;
        record.pc = 0x10000 + 4 * rng.nextBelow(kUnique);
        record.target = record.pc + 16;
        record.cls = BranchClass::Conditional;
        record.taken = rng.nextBool(0.5);
        trace.append(record);
    }
    ASSERT_EQ(trace.predecoded()->uniquePcCount(), kUnique);
    for (const char *scheme : kEdgeSchemes)
        expectSchemeEqualsReference(scheme, trace);
    expectGeneralizedEqualsReference(trace);
}

TEST(SimulateBatchFuzz, AdversarialAlternatingTraceMatchesReference)
{
    // A real simulator-collected trace from the adversarial family:
    // strictly periodic sites drive long same-pattern runs through
    // the SoA lanes (saturated pattern entries, constant history
    // windows) that the synthetic random traces rarely sustain.
    const auto workload = workloads::makeWorkload("alternating");
    const TraceBuffer trace =
        sim::collectTrace(workload->buildTest(), 6000);
    ASSERT_FALSE(trace.conditionalView().empty());
    for (const char *scheme : kEdgeSchemes)
        expectSchemeEqualsReference(scheme, trace);
    expectGeneralizedEqualsReference(trace);
}

TEST(SimulateBatchFuzz, AdversarialSingleHotBranchMatchesReference)
{
    // The kmp comparison branch filtered to its own pc: one blazing
    // hot conditional site with an i.i.d. outcome stream — a
    // single-id dictionary whose every probe is a repeat hit, with
    // genuinely random (not synthetic-runs) history churn.
    const auto workload = workloads::makeWorkload("kmp");
    const isa::Program program = workload->buildTest();
    const TraceBuffer full = sim::collectTrace(program, 12000);
    const std::uint64_t pc =
        program.symbols.at("kmp_compare") * isa::kInstructionBytes;
    const TraceBuffer trace = trace::filterByPcRange(
        full, pc, pc + isa::kInstructionBytes);
    ASSERT_GT(trace.size(), 3000u);
    ASSERT_EQ(trace.predecoded()->uniquePcCount(), 1u);
    for (const char *scheme : kEdgeSchemes)
        expectSchemeEqualsReference(scheme, trace);
    expectGeneralizedEqualsReference(trace);
}

TEST(SimulateBatchFuzz, HashedMixedHrtMatchesReference)
{
    // The factory builds HHRTs with the low-bits hash; the mixed
    // hash routes the SoA fast path through the precomputed mix64
    // index lane (and the AoS fused path through lookupDirect's
    // indexOfLine), so pin it explicitly across seeds.
    TwoLevelConfig config;
    config.hrtKind = core::TableKind::Hashed;
    config.hrtEntries = 64;
    config.historyBits = 6;
    config.hhrtHash = core::HashKind::Mixed;
    for (const std::uint64_t seed : kSeeds) {
        const TraceBuffer trace = makeRandomTrace(seed);
        TwoLevelPredictor fast(config);
        TwoLevelPredictor scalar(config);
        TwoLevelPredictor aos(config);
        TwoLevelPredictor reference(config);
        expectBatchEqualsReference(fast, scalar, aos, reference,
                                   trace);
    }
}

TEST(SimulateBatchFuzz, MidPairStateFallsBackToReference)
{
    // A predict() without its paired update() leaves the lookup memo
    // live; a batch issued in that state must still match the
    // reference loop run from the same mid-pair state.
    const TraceBuffer trace = makeRandomTrace(11);
    ASSERT_FALSE(trace.conditionalView().empty());
    const BranchRecord &first = trace.conditionalView().front();

    TwoLevelConfig config;
    config.hrtKind = core::TableKind::Associative;
    config.hrtEntries = 64;
    config.historyBits = 6;
    TwoLevelPredictor fast(config);
    TwoLevelPredictor reference(config);

    (void)fast.predict(first);
    (void)reference.predict(first);
    fast.update(first);
    reference.update(first);

    // Leave a dangling predict() and then batch.
    (void)fast.predict(first);
    (void)reference.predict(first);
    AccuracyCounter fast_acc;
    fast.simulateBatch(trace.conditionalView(), fast_acc);
    AccuracyCounter ref_acc;
    for (const BranchRecord &record : trace.records()) {
        if (record.cls != BranchClass::Conditional)
            continue;
        const bool predicted = reference.predict(record);
        ref_acc.record(predicted == record.taken);
        reference.update(record);
    }
    EXPECT_EQ(fast_acc.hits(), ref_acc.hits());
    EXPECT_EQ(fast_acc.total(), ref_acc.total());
    EXPECT_EQ(metricsJson(fast, fast_acc, trace),
              metricsJson(reference, ref_acc, trace));
}

TEST(SimulateBatchFuzz, EmptyTraceYieldsZeroAccuracyNotNaN)
{
    // End-to-end face of the AccuracyCounter divide-by-zero guard: a
    // trace with no conditional branches measures as 0.0 everywhere.
    TraceBuffer empty("empty");
    TwoLevelConfig config;
    TwoLevelPredictor predictor(config);
    const AccuracyCounter accuracy = measure(predictor, empty);
    EXPECT_EQ(accuracy.total(), 0u);
    EXPECT_EQ(accuracy.accuracy(), 0.0);
    EXPECT_EQ(accuracy.accuracyPercent(), 0.0);
    EXPECT_EQ(accuracy.missPercent(), 0.0);
}

} // namespace
} // namespace tlat
