/**
 * @file
 * Unit tests for the remaining util pieces: saturating counter, table
 * printer and CSV writer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/csv_writer.hh"
#include "util/saturating_counter.hh"
#include "util/table_printer.hh"

namespace tlat
{
namespace
{

TEST(SaturatingCounter, SaturatesBothEnds)
{
    SaturatingCounter counter(2, 0);
    EXPECT_EQ(counter.value(), 0u);
    counter.decrement();
    EXPECT_EQ(counter.value(), 0u);
    for (int i = 0; i < 10; ++i)
        counter.increment();
    EXPECT_EQ(counter.value(), 3u);
    counter.increment();
    EXPECT_EQ(counter.value(), 3u);
}

TEST(SaturatingCounter, InitialClampAndReset)
{
    SaturatingCounter counter(2, 9);
    EXPECT_EQ(counter.value(), 3u); // clamped to max
    counter.decrement();
    counter.reset();
    EXPECT_EQ(counter.value(), 3u);
}

TEST(SaturatingCounter, UpperHalf)
{
    SaturatingCounter counter(2, 0);
    EXPECT_FALSE(counter.upperHalf());
    counter.increment(); // 1
    EXPECT_FALSE(counter.upperHalf());
    counter.increment(); // 2
    EXPECT_TRUE(counter.upperHalf());
    counter.increment(); // 3
    EXPECT_TRUE(counter.upperHalf());
}

TEST(SaturatingCounter, WiderCounter)
{
    SaturatingCounter counter(4, 8);
    EXPECT_EQ(counter.max(), 15u);
    counter.set(100);
    EXPECT_EQ(counter.value(), 15u);
}

TEST(TablePrinter, RendersAlignedTable)
{
    TablePrinter printer("t");
    printer.setHeader({"name", "value"});
    printer.addRow({"a", "1"});
    printer.addSeparator();
    printer.addRow({"long-name", "22"});
    std::ostringstream oss;
    printer.print(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("t\n=\n"), std::string::npos);
    EXPECT_NE(text.find("| name"), std::string::npos);
    EXPECT_NE(text.find("| long-name | 22"), std::string::npos);
}

TEST(TablePrinter, PercentCell)
{
    EXPECT_EQ(TablePrinter::percentCell(97.0), " 97.00");
    EXPECT_EQ(TablePrinter::percentCell(3.126), "  3.13");
    EXPECT_EQ(TablePrinter::percentCell(100.0), "100.00");
}

TEST(CsvWriter, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRows)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow({"a", "b,c"});
    csv.writeRow({"1", "2"});
    EXPECT_EQ(oss.str(), "a,\"b,c\"\n1,2\n");
}

} // namespace
} // namespace tlat
