/**
 * @file
 * Serial-equivalence harness for the deterministic parallel sweep
 * engine (the Figure 5 grid is the golden workload):
 *
 *  - jobs=1 and jobs=4..8 produce bit-identical AccuracyReports,
 *    including when the traces themselves are generated under
 *    different pool widths;
 *  - repeated runs at the same jobs value are bit-identical;
 *  - the engine matches a hand-rolled serial reference that runs one
 *    cold predictor per (scheme, benchmark) cell;
 *  - every cell starts from a cold predictor — no warmed HRT/PT state
 *    leaks from one benchmark into the next (regression guard for the
 *    old runSchemes, which reused one predictor per scheme column);
 *  - the per-cell RNG seeding rule is a pure, collision-aware
 *    function of (scheme, benchmark).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/scheme_config.hh"
#include "harness/experiment.hh"
#include "harness/figure_runner.hh"
#include "harness/parallel_sweep.hh"
#include "predictors/scheme_factory.hh"
#include "workloads/workload.hh"

namespace tlat::harness
{
namespace
{

// Small but non-trivial: every benchmark exercises HRT evictions and
// the tests stay fast enough for tier1.
constexpr std::uint64_t kBudget = 2000;

const std::vector<std::string> kFig5Schemes = {
    "AT(AHRT(512,12SR),PT(2^12,A2),)",
    "AT(AHRT(512,12SR),PT(2^12,A3),)",
    "AT(AHRT(512,12SR),PT(2^12,A4),)",
    "AT(AHRT(512,12SR),PT(2^12,LT),)",
};
const std::vector<std::string> kFig5Labels = {"A2", "A3", "A4", "LT"};

/** Exact bit equality — stricter than double ==, which would let
 *  +0.0 pass for -0.0. */
void
expectBitIdentical(double a, double b, const std::string &where)
{
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
              std::bit_cast<std::uint64_t>(b))
        << where << ": " << a << " vs " << b;
}

/** Every cell, every mean, and the column order must match. */
void
expectReportsBitIdentical(const AccuracyReport &a,
                          const AccuracyReport &b)
{
    ASSERT_EQ(a.schemes(), b.schemes());
    for (const std::string &scheme : a.schemes()) {
        for (const std::string &bench : workloads::workloadNames()) {
            expectBitIdentical(a.cell(bench, scheme),
                               b.cell(bench, scheme),
                               bench + "/" + scheme);
        }
        expectBitIdentical(a.totalMean(scheme), b.totalMean(scheme),
                           "totalMean/" + scheme);
        expectBitIdentical(a.intMean(scheme), b.intMean(scheme),
                           "intMean/" + scheme);
        expectBitIdentical(a.fpMean(scheme), b.fpMean(scheme),
                           "fpMean/" + scheme);
    }
}

AccuracyReport
runFig5(unsigned jobs)
{
    // A fresh suite per run: trace generation itself happens under
    // the pool width being tested, so this covers preload
    // determinism, not just the cell engine.
    BenchmarkSuite suite(kBudget);
    return runSweep(suite, "fig5", kFig5Schemes, kFig5Labels, jobs);
}

TEST(ParallelSweep, SerialEquivalenceAcrossJobCounts)
{
    const AccuracyReport serial = runFig5(1);
    for (const unsigned jobs : {4u, 8u}) {
        const AccuracyReport parallel = runFig5(jobs);
        expectReportsBitIdentical(serial, parallel);
    }
}

TEST(ParallelSweep, RepeatedRunsAtSameJobCountAreIdentical)
{
    const AccuracyReport first = runFig5(6);
    const AccuracyReport second = runFig5(6);
    expectReportsBitIdentical(first, second);
}

TEST(ParallelSweep, MatchesHandRolledSerialReference)
{
    // Reference: the textbook serial protocol, one cold predictor per
    // cell, no thread pool anywhere.
    BenchmarkSuite ref_suite(kBudget);
    AccuracyReport reference(
        "fig5", workloads::workloadNames(),
        workloads::floatingPointWorkloadNames());
    for (std::size_t s = 0; s < kFig5Schemes.size(); ++s) {
        const auto config =
            core::SchemeConfig::parse(kFig5Schemes[s]);
        ASSERT_TRUE(config.has_value());
        for (const std::string &bench : ref_suite.benchmarks()) {
            const auto predictor = predictors::makePredictor(*config);
            const ExperimentResult result = runExperiment(
                *predictor, ref_suite.testTrace(bench), nullptr);
            reference.add(bench, kFig5Labels[s],
                          result.accuracy.accuracyPercent());
        }
    }
    expectReportsBitIdentical(reference, runFig5(5));
}

TEST(ParallelSweep, EveryCellStartsFromAColdPredictor)
{
    // Regression guard: the pre-engine runSchemes built one predictor
    // per scheme and carried it across all nine benchmarks. Each cell
    // of a full-suite sweep must equal a standalone run on a fresh
    // predictor that has never seen another benchmark.
    const std::string scheme = kFig5Schemes[0];
    BenchmarkSuite suite(kBudget);
    const AccuracyReport swept =
        runSchemes(suite, "cold", {scheme}, {"A2"}, 3);
    for (const std::string &bench : suite.benchmarks()) {
        const auto predictor = predictors::makePredictor(scheme);
        const ExperimentResult standalone = runExperiment(
            *predictor, suite.testTrace(bench), nullptr);
        expectBitIdentical(swept.cell(bench, "A2"),
                           standalone.accuracy.accuracyPercent(),
                           "cold cell " + bench);
    }
}

TEST(ParallelSweep, DiffCellsSkipBenchmarksWithoutTrainingSets)
{
    // Paper Table 3: four benchmarks have no distinct training set;
    // their Diff-data cells must stay empty at any jobs count, and
    // the measured cells must agree between serial and parallel.
    const std::vector<std::string> schemes = {
        "ST(AHRT(512,12SR),PT(2^12,PB),Diff)"};
    BenchmarkSuite serial_suite(kBudget);
    const AccuracyReport serial =
        runSweep(serial_suite, "st-diff", schemes, {"ST"}, 1);
    BenchmarkSuite parallel_suite(kBudget);
    const AccuracyReport parallel =
        runSweep(parallel_suite, "st-diff", schemes, {"ST"}, 4);

    for (const std::string &bench : serial_suite.benchmarks()) {
        const bool has_training =
            serial_suite.trainTrace(bench) != nullptr;
        EXPECT_EQ(serial.cell(bench, "ST") >= 0.0, has_training)
            << bench;
        expectBitIdentical(serial.cell(bench, "ST"),
                           parallel.cell(bench, "ST"), bench);
    }
}

TEST(CellSeed, PureFunctionOfSchemeAndBenchmark)
{
    EXPECT_EQ(cellSeed("AT(...)", "gcc"), cellSeed("AT(...)", "gcc"));
    EXPECT_NE(cellSeed("AT(...)", "gcc"), cellSeed("AT(...)", "li"));
    EXPECT_NE(cellSeed("AT(...)", "gcc"), cellSeed("LS(...)", "gcc"));
    // Swapping the roles must matter...
    EXPECT_NE(cellSeed("gcc", "li"), cellSeed("li", "gcc"));
    // ...and the separator keeps concatenations apart.
    EXPECT_NE(cellSeed("ab", "c"), cellSeed("a", "bc"));
}

TEST(CellSeed, SpreadsAcrossTheFigureGrid)
{
    std::set<std::uint64_t> seeds;
    for (const std::string &scheme : kFig5Schemes)
        for (const std::string &bench : workloads::workloadNames())
            seeds.insert(cellSeed(scheme, bench));
    EXPECT_EQ(seeds.size(),
              kFig5Schemes.size() * workloads::workloadNames().size());
}

} // namespace
} // namespace tlat::harness
