/**
 * @file
 * Unit tests for the data memory and the return address stack.
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"
#include "sim/return_address_stack.hh"

namespace tlat::sim
{
namespace
{

TEST(Memory, InitializeAndAccess)
{
    Memory memory(4);
    memory.initialize({1, 2});
    EXPECT_EQ(memory.load(0), 1u);
    EXPECT_EQ(memory.load(8), 2u);
    EXPECT_EQ(memory.load(16), 0u);
    memory.store(24, 99);
    EXPECT_EQ(memory.load(24), 99u);
    EXPECT_EQ(memory.sizeWords(), 4u);
    EXPECT_EQ(memory.sizeBytes(), 32u);
}

TEST(Memory, DoubleAccessors)
{
    Memory memory(2);
    memory.storeDouble(8, 3.25);
    EXPECT_DOUBLE_EQ(memory.loadDouble(8), 3.25);
    EXPECT_EQ(memory.load(8), 0x400a000000000000ull);
}

TEST(MemoryDeath, UnalignedAccessIsFatal)
{
    Memory memory(4);
    EXPECT_EXIT(memory.load(4), ::testing::ExitedWithCode(1),
                "unaligned");
    EXPECT_EXIT(memory.store(3, 0), ::testing::ExitedWithCode(1),
                "unaligned");
}

TEST(MemoryDeath, OutOfBoundsIsFatal)
{
    Memory memory(4);
    EXPECT_EXIT(memory.load(32), ::testing::ExitedWithCode(1),
                "out of bounds");
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(100);
    ras.push(200);
    ras.push(300);
    EXPECT_EQ(ras.liveEntries(), 3u);
    EXPECT_EQ(ras.pop(), 300u);
    EXPECT_EQ(ras.pop(), 200u);
    EXPECT_EQ(ras.pop(), 100u);
    EXPECT_EQ(ras.liveEntries(), 0u);
}

TEST(Ras, UnderflowReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.underflows(), 1u);
}

TEST(Ras, OverflowDropsOldest)
{
    // The paper: "The return address prediction may miss when the
    // return address stack overflows." The oldest entry is lost.
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.overflows(), 1u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    // Entry 1 is gone: a further pop underflows.
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.underflows(), 1u);
}

TEST(Ras, DeepCallChainWithinDepthIsExact)
{
    ReturnAddressStack ras(16);
    for (std::uint64_t i = 1; i <= 16; ++i)
        ras.push(i * 4);
    for (std::uint64_t i = 16; i >= 1; --i)
        EXPECT_EQ(ras.pop(), i * 4);
    EXPECT_EQ(ras.overflows(), 0u);
}

TEST(Ras, Clear)
{
    ReturnAddressStack ras(4);
    ras.push(1);
    ras.pop();
    ras.pop(); // underflow
    ras.clear();
    EXPECT_EQ(ras.liveEntries(), 0u);
    EXPECT_EQ(ras.underflows(), 0u);
    EXPECT_EQ(ras.overflows(), 0u);
}

} // namespace
} // namespace tlat::sim
