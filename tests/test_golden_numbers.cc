/**
 * @file
 * Golden-number regression pins: the whole stack — workload
 * generation, the micro88 simulator, trace collection and the
 * predictors — is deterministic, so the flagship accuracies at a
 * fixed small budget are exact constants. Any change to an opcode's
 * semantics, a workload's code generation, an LCG constant or a
 * predictor's update rule shows up here immediately.
 *
 * If a change is *intentional* (e.g. retuning a workload), re-derive
 * the constants by running the schemes at budget 20000 and update the
 * table — and mention it in EXPERIMENTS.md, since every figure moves
 * with them.
 */

#include <gtest/gtest.h>

#include "harness/figure_runner.hh"

namespace tlat
{
namespace
{

struct GoldenRow
{
    const char *benchmark;
    double at;   // AT(AHRT(512,12SR),PT(2^12,A2),)
    double ls;   // LS(AHRT(512,A2),,)
    double btfn; // BTFN
};

// Derived at TLAT_BRANCH_BUDGET = 20000 (exact, deterministic).
constexpr GoldenRow kGolden[] = {
    {"eqntott", 96.355000, 92.265000, 70.155000},
    {"espresso", 99.495000, 86.520000, 73.310000},
    {"gcc", 92.355000, 89.785000, 80.720000},
    {"li", 83.165000, 80.390000, 81.960000},
    {"doduc", 94.360000, 85.055000, 76.275000},
    {"fpppp", 96.045000, 87.790000, 55.405000},
    {"matrix300", 100.000000, 100.000000, 100.000000},
    {"spice2g6", 92.105000, 80.885000, 81.325000},
    {"tomcatv", 99.995000, 99.995000, 99.995000},
};

TEST(GoldenNumbers, FlagshipAccuraciesAreExact)
{
    harness::BenchmarkSuite suite(20000);
    const harness::AccuracyReport report = harness::runSchemes(
        suite, "golden",
        {"AT(AHRT(512,12SR),PT(2^12,A2),)", "LS(AHRT(512,A2),,)",
         "BTFN"},
        {"at", "ls", "btfn"});
    for (const GoldenRow &row : kGolden) {
        EXPECT_NEAR(report.cell(row.benchmark, "at"), row.at, 1e-6)
            << row.benchmark;
        EXPECT_NEAR(report.cell(row.benchmark, "ls"), row.ls, 1e-6)
            << row.benchmark;
        EXPECT_NEAR(report.cell(row.benchmark, "btfn"), row.btfn,
                    1e-6)
            << row.benchmark;
    }
}

} // namespace
} // namespace tlat
