/**
 * @file
 * Unit tests for the pattern-history automata of paper Figure 2.
 */

#include <gtest/gtest.h>

#include "core/automaton.hh"

namespace tlat::core
{
namespace
{

/** Feeds a T/N string and returns the automaton afterwards. */
Automaton
feed(AutomatonKind kind, const std::string &outcomes)
{
    Automaton automaton(kind);
    for (char c : outcomes)
        automaton.update(c == 'T');
    return automaton;
}

TEST(AutomatonSpecs, NamesRoundTrip)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(AutomatonKind::NumKinds); ++i) {
        const auto kind = static_cast<AutomatonKind>(i);
        EXPECT_EQ(automatonFromName(automatonName(kind)), kind);
    }
    EXPECT_FALSE(automatonFromName("A9").has_value());
    EXPECT_FALSE(automatonFromName("").has_value());
    EXPECT_FALSE(automatonFromName("lt").has_value());
}

TEST(AutomatonSpecs, PaperInitialization)
{
    // Section 4.2: A1-A4 start in state 3; Last-Time starts in
    // state 1, so early branches predict taken.
    for (AutomatonKind kind : {AutomatonKind::A1, AutomatonKind::A2,
                               AutomatonKind::A3, AutomatonKind::A4}) {
        EXPECT_EQ(automatonSpec(kind).initialState, 3);
        EXPECT_TRUE(Automaton(kind).predict());
    }
    EXPECT_EQ(automatonSpec(AutomatonKind::LastTime).initialState, 1);
    EXPECT_TRUE(Automaton(AutomatonKind::LastTime).predict());
}

TEST(AutomatonSpecs, TransitionsStayInRange)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(AutomatonKind::NumKinds); ++i) {
        const AutomatonSpec &spec =
            automatonSpec(static_cast<AutomatonKind>(i));
        for (unsigned s = 0; s < spec.numStates; ++s) {
            EXPECT_LT(spec.nextState[s][0], spec.numStates);
            EXPECT_LT(spec.nextState[s][1], spec.numStates);
        }
    }
}

TEST(LastTime, PredictsPreviousOutcome)
{
    // "The next time the same history pattern appears the prediction
    // will be what happened last time."
    Automaton automaton(AutomatonKind::LastTime);
    automaton.update(false);
    EXPECT_FALSE(automaton.predict());
    automaton.update(true);
    EXPECT_TRUE(automaton.predict());
    automaton.update(true);
    EXPECT_TRUE(automaton.predict());
    automaton.update(false);
    EXPECT_FALSE(automaton.predict());
}

TEST(A1, PredictsNotTakenOnlyAfterTwoNotTakens)
{
    // "Only when there is no taken branch recorded [in the last two
    // outcomes] ... will be predicted as not taken."
    EXPECT_FALSE(feed(AutomatonKind::A1, "NN").predict());
    EXPECT_TRUE(feed(AutomatonKind::A1, "NT").predict());
    EXPECT_TRUE(feed(AutomatonKind::A1, "TN").predict());
    EXPECT_TRUE(feed(AutomatonKind::A1, "TT").predict());
    EXPECT_TRUE(feed(AutomatonKind::A1, "NNT").predict());
    EXPECT_FALSE(feed(AutomatonKind::A1, "TNN").predict());
}

TEST(A2, IsSaturatingUpDownCounter)
{
    // "The counter is incremented when the branch is taken and is
    // decremented when the branch is not taken ... predicted as taken
    // when the counter value is greater than or equal to two."
    Automaton automaton(AutomatonKind::A2); // state 3
    automaton.update(true);
    EXPECT_EQ(automaton.state(), 3); // saturates high
    automaton.update(false);
    EXPECT_EQ(automaton.state(), 2);
    EXPECT_TRUE(automaton.predict());
    automaton.update(false);
    EXPECT_EQ(automaton.state(), 1);
    EXPECT_FALSE(automaton.predict());
    automaton.update(false);
    automaton.update(false);
    EXPECT_EQ(automaton.state(), 0); // saturates low
    automaton.update(true);
    EXPECT_EQ(automaton.state(), 1);
}

TEST(A2, HysteresisToleratesOneOffOutcome)
{
    // A single not-taken in a taken stream must not flip the
    // prediction — the noise tolerance the paper credits the
    // four-state automata with.
    Automaton automaton(AutomatonKind::A2);
    for (int i = 0; i < 4; ++i)
        automaton.update(true);
    automaton.update(false);
    EXPECT_TRUE(automaton.predict());
}

TEST(A3, FastRecoveryFromStrongTaken)
{
    Automaton automaton(AutomatonKind::A3); // state 3
    automaton.update(false);
    EXPECT_EQ(automaton.state(), 1); // 3 --N--> 1 (A2 would go to 2)
    EXPECT_FALSE(automaton.predict());
}

TEST(A4, BigJumpHysteresis)
{
    Automaton automaton(AutomatonKind::A4);
    automaton.update(false); // 3 -> 2
    EXPECT_EQ(automaton.state(), 2);
    automaton.update(false); // 2 -> 0: big jump down
    EXPECT_EQ(automaton.state(), 0);
    automaton.update(true);  // 0 -> 1
    EXPECT_EQ(automaton.state(), 1);
    EXPECT_FALSE(automaton.predict());
    automaton.update(true);  // 1 -> 3: big jump up
    EXPECT_EQ(automaton.state(), 3);
    EXPECT_TRUE(automaton.predict());
}

TEST(A4, IsNotDegenerateLastTime)
{
    // Regression: an earlier A4 definition collapsed to Last-Time.
    // After one not-taken from strong-taken, A4 must still predict
    // taken (LT would predict not-taken).
    Automaton a4(AutomatonKind::A4);
    a4.update(false);
    EXPECT_TRUE(a4.predict());
    Automaton lt(AutomatonKind::LastTime);
    lt.update(false);
    EXPECT_FALSE(lt.predict());
}

TEST(FourStateAutomata, PredictBoundaryAtTwo)
{
    for (AutomatonKind kind : {AutomatonKind::A2, AutomatonKind::A3,
                               AutomatonKind::A4}) {
        const AutomatonSpec &spec = automatonSpec(kind);
        EXPECT_FALSE(spec.predictTaken[0]);
        EXPECT_FALSE(spec.predictTaken[1]);
        EXPECT_TRUE(spec.predictTaken[2]);
        EXPECT_TRUE(spec.predictTaken[3]);
    }
}

/**
 * Property sweep: on a strongly biased outcome stream every automaton
 * must converge to predicting the majority direction.
 */
class BiasConvergence
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>>
{
};

TEST_P(BiasConvergence, LearnsTheMajorityDirection)
{
    const auto [kind_index, majority] = GetParam();
    Automaton automaton(static_cast<AutomatonKind>(kind_index));
    // 10 majority outcomes in a row pin every automaton.
    for (int i = 0; i < 10; ++i)
        automaton.update(majority);
    EXPECT_EQ(automaton.predict(), majority);
    // A long biased stream with a 1-in-5 minority outcome. Expected
    // steady-state accuracy differs per automaton:
    //  - A2 misses only the minority outcome itself (4/5);
    //  - LT misses the minority and the following prediction (3/5);
    //  - A3/A4 fast-switch out of the saturated state and pay one
    //    extra miss re-entering it (3/5);
    //  - A1 predicts not-taken only after two not-takens, so a
    //    not-taken-majority stream with periodic takens costs it
    //    three misses per period (2/5).
    int correct = 0;
    for (int i = 0; i < 500; ++i) {
        const bool outcome = i % 5 == 0 ? !majority : majority;
        if (automaton.predict() == outcome)
            ++correct;
        automaton.update(outcome);
    }
    const auto kind = static_cast<AutomatonKind>(kind_index);
    int minimum = 280;
    if (kind == AutomatonKind::A2)
        minimum = 390;
    else if (kind == AutomatonKind::A1 && !majority)
        minimum = 180;
    else if (kind == AutomatonKind::A1)
        minimum = 390;
    EXPECT_GT(correct, minimum);
}

INSTANTIATE_TEST_SUITE_P(
    AllAutomata, BiasConvergence,
    ::testing::Combine(
        ::testing::Range(0u, static_cast<unsigned>(
                                 AutomatonKind::NumKinds)),
        ::testing::Bool()));

TEST(Automaton, SetState)
{
    Automaton automaton(AutomatonKind::A2);
    automaton.setState(0);
    EXPECT_FALSE(automaton.predict());
    EXPECT_EQ(automaton.state(), 0);
}

} // namespace
} // namespace tlat::core
