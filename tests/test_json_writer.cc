/**
 * @file
 * Tests for the streaming JSON emitter: document shape, escaping,
 * number formatting, and the schema-stability property the metrics
 * determinism tests rely on (identical values -> byte-identical
 * text). The emitted documents are also fed through a minimal
 * recursive-descent checker to prove they are well-formed JSON.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "harness/metrics_json.hh"
#include "util/json_writer.hh"

namespace tlat
{
namespace
{

/** Minimal well-formedness checker (no value extraction). */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        skipSpace();
        if (!value())
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (!string())
                return false;
            skipSpace();
            if (peek() != ':')
                return false;
            ++pos_;
            skipSpace();
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const std::string &word)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            return false;
        pos_ += word.size();
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

std::string
emitSample()
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.member("name", "two-level");
    json.member("accuracy", 97.03125);
    json.member("branches", std::uint64_t{300000});
    json.member("speculative", false);
    json.key("nested").beginObject();
    json.member("depth", 2);
    json.endObject();
    json.key("values").beginArray();
    json.value(1).value(2).value(3);
    json.endArray();
    json.endObject();
    EXPECT_TRUE(json.complete());
    return os.str();
}

TEST(JsonWriter, EmitsWellFormedDocuments)
{
    const std::string text = emitSample();
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
}

TEST(JsonWriter, KeysAppearInCallOrder)
{
    const std::string text = emitSample();
    EXPECT_LT(text.find("\"name\""), text.find("\"accuracy\""));
    EXPECT_LT(text.find("\"accuracy\""), text.find("\"branches\""));
    EXPECT_LT(text.find("\"branches\""), text.find("\"nested\""));
    EXPECT_LT(text.find("\"nested\""), text.find("\"values\""));
}

TEST(JsonWriter, IdenticalValuesProduceIdenticalText)
{
    // The schema-stability contract the sweep determinism tests
    // build on: same calls, same values -> byte-identical output.
    EXPECT_EQ(emitSample(), emitSample());
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)),
              "\\u0001");
}

TEST(JsonWriter, DoubleFormattingIsFixed)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginArray();
    json.value(0.5).value(97.03).value(100.0).value(0.0);
    json.endArray();
    EXPECT_EQ(os.str(), "[\n  0.5,\n  97.03,\n  100,\n  0\n]\n");
}

TEST(JsonWriter, IntegerAndBoolFormatting)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.member("u64", std::uint64_t{18446744073709551615ULL});
    json.member("i64", std::int64_t{-42});
    json.member("flag", true);
    json.endObject();
    const std::string text = os.str();
    EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
    EXPECT_NE(text.find("-42"), std::string::npos);
    EXPECT_NE(text.find("true"), std::string::npos);
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
}

TEST(JsonWriter, EmptyContainers)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.key("empty_object").beginObject();
    json.endObject();
    json.key("empty_array").beginArray();
    json.endArray();
    json.endObject();
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST(RunMetricsJson, DocumentIsWellFormedAndSchemaTagged)
{
    harness::RunMetricsReport report;
    report.scheme = "AT(AHRT(512,12SR),PT(2^12,A2),)";
    report.benchmark = "gcc";
    report.accuracy.record(true);
    report.accuracy.record(false);
    report.predictor.hrtHits = 1;
    report.predictor.hrtMisses = 1;
    report.predictor.ptStateHistogram = {2, 0, 1, 1};
    harness::WarmupPoint point;
    point.branches = 2;
    point.windowAccuracyPercent = 50.0;
    point.cumulativeAccuracyPercent = 50.0;
    report.warmupCurve.push_back(point);
    harness::BranchSite site;
    site.pc = 0x40;
    site.executions = 2;
    site.mispredictions = 1;
    report.topOffenders.push_back(site);

    const std::string text = harness::runMetricsJsonString(report);
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find(harness::kRunMetricsSchema),
              std::string::npos);
    EXPECT_NE(text.find("\"top_offenders\""), std::string::npos);
    EXPECT_NE(text.find("\"state_histogram\""), std::string::npos);
    EXPECT_NE(text.find("\"0x40\""), std::string::npos);

    // Serialization is a pure function of the report.
    EXPECT_EQ(text, harness::runMetricsJsonString(report));
}

} // namespace
} // namespace tlat
