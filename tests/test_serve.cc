/**
 * @file
 * Determinism-contract tests for the serve engine: a served stream
 * must leave every tenant in exactly the state an offline simulation
 * of the same trace produces — byte-identical checkpoints and
 * byte-identical metrics JSON — at every shard count and micro-batch
 * size, and tenant warm state must survive snapshot / migrate /
 * restore round trips. The ring/engine TSan CI preset replays these
 * same tests under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/branch_predictor.hh"
#include "core/run_metrics.hh"
#include "core/scheme_config.hh"
#include "predictors/scheme_factory.hh"
#include "serve/serve_engine.hh"
#include "sim/simulator.hh"
#include "trace/trace_buffer.hh"
#include "util/json_writer.hh"
#include "util/stats.hh"
#include "workloads/workload.hh"

namespace tlat::serve
{
namespace
{

constexpr const char *kScheme = "AT(AHRT(512,12SR),PT(2^12,A2),)";

core::SchemeConfig
schemeConfig()
{
    const auto config = core::SchemeConfig::parse(kScheme);
    EXPECT_TRUE(config.has_value());
    return *config;
}

/** The tenant workloads every test serves (distinct behaviours). */
std::vector<std::pair<std::string, trace::TraceBuffer>>
tenantTraces(std::uint64_t budget = 4000)
{
    std::vector<std::pair<std::string, trace::TraceBuffer>> traces;
    for (const char *name : {"eqntott", "gcc", "li"}) {
        traces.emplace_back(
            name, sim::collectTrace(
                      workloads::makeWorkload(name)->buildTest(),
                      budget));
    }
    return traces;
}

/**
 * The offline twin of one served tenant: a fresh predictor run over
 * the whole stream through the reference batch API, reported exactly
 * as the engine reports it.
 */
TenantReport
offlineReport(const std::string &name,
              const trace::TraceBuffer &trace)
{
    auto predictor = predictors::makePredictor(schemeConfig());
    predictor->reset();
    TenantReport report;
    report.name = name;
    report.records = trace.size();
    predictor->simulateBatch(trace.records(), report.accuracy);
    predictor->collectMetrics(report.metrics);
    return report;
}

/** Offline checkpoint bytes after the whole stream (or empty). */
std::string
offlineCheckpoint(const trace::TraceBuffer &trace)
{
    auto predictor = predictors::makePredictor(schemeConfig());
    predictor->reset();
    AccuracyCounter accuracy;
    predictor->simulateBatch(trace.records(), accuracy);
    std::ostringstream os(std::ios::binary);
    EXPECT_TRUE(predictor->saveCheckpoint(os));
    return os.str();
}

/**
 * Ingests every tenant's stream interleaved in fixed blocks (block
 * size deliberately not a divisor of anything) and drains.
 */
void
ingestInterleaved(
    ServeEngine &engine,
    const std::vector<std::pair<std::string, trace::TraceBuffer>>
        &traces,
    const std::vector<std::size_t> &handles)
{
    constexpr std::size_t kBlock = 173;
    std::vector<std::size_t> next(traces.size(), 0);
    bool advanced = true;
    while (advanced) {
        advanced = false;
        for (std::size_t t = 0; t < traces.size(); ++t) {
            const auto &records = traces[t].second.records();
            if (next[t] >= records.size())
                continue;
            const std::size_t take =
                std::min(kBlock, records.size() - next[t]);
            engine.ingestSpan(handles[t],
                              {records.data() + next[t], take});
            next[t] += take;
            advanced = true;
        }
    }
    engine.drain();
}

/**
 * The full tlat-serve-metrics-v1 document built offline, following
 * the documented layout — the byte-level twin writeMetricsJson()
 * must reproduce for every serving configuration.
 */
std::string
offlineMetricsDocument(
    const std::vector<std::pair<std::string, trace::TraceBuffer>>
        &traces)
{
    std::vector<TenantReport> reports;
    for (const auto &[name, trace] : traces)
        reports.push_back(offlineReport(name, trace));
    std::sort(reports.begin(), reports.end(),
              [](const TenantReport &a, const TenantReport &b) {
                  return a.name < b.name;
              });
    std::uint64_t total_records = 0;
    AccuracyCounter totals;
    for (const TenantReport &report : reports) {
        total_records += report.records;
        totals.merge(report.accuracy);
    }
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.member("schema", kServeMetricsSchema);
    json.member("scheme", schemeConfig().text());
    json.key("totals").beginObject();
    json.member("tenants",
                static_cast<std::uint64_t>(reports.size()));
    json.member("records", total_records);
    json.member("conditional_branches", totals.total());
    json.member("hits", totals.hits());
    json.member("misses", totals.misses());
    json.endObject();
    json.key("tenants").beginArray();
    for (const TenantReport &report : reports)
        ServeEngine::writeTenantJson(json, report);
    json.endArray();
    json.endObject();
    os << "\n";
    return os.str();
}

/** The shard-count x batch-size grid the acceptance criteria pin. */
struct ServeShape
{
    unsigned shards;
    std::size_t batchRecords;
};

class ServeDeterminism : public ::testing::TestWithParam<ServeShape>
{
};

TEST_P(ServeDeterminism, ServedEqualsOfflineByteForByte)
{
    const ServeShape &shape = GetParam();
    const auto traces = tenantTraces();

    ServeConfig config;
    config.shards = shape.shards;
    config.batchRecords = shape.batchRecords;
    ServeEngine engine(schemeConfig(), config);
    std::vector<std::size_t> handles;
    for (const auto &[name, trace] : traces)
        handles.push_back(engine.addTenant(name));
    ingestInterleaved(engine, traces, handles);

    // Checkpoints: byte-identical to the offline twin per tenant.
    for (std::size_t t = 0; t < traces.size(); ++t) {
        std::string served;
        ASSERT_TRUE(engine.snapshotTenant(handles[t], &served));
        EXPECT_EQ(served, offlineCheckpoint(traces[t].second))
            << "checkpoint diverged for tenant " << traces[t].first
            << " at shards=" << shape.shards
            << " batch=" << shape.batchRecords;
    }

    // Metrics document: byte-identical to the offline-built twin
    // (and therefore identical across every grid point).
    EXPECT_EQ(engine.metricsJsonString(),
              offlineMetricsDocument(traces))
        << "metrics JSON diverged at shards=" << shape.shards
        << " batch=" << shape.batchRecords;
}

INSTANTIATE_TEST_SUITE_P(
    ShardBatchGrid, ServeDeterminism,
    ::testing::Values(ServeShape{1, 1}, ServeShape{1, 64},
                      ServeShape{1, 4096}, ServeShape{4, 1},
                      ServeShape{4, 64}, ServeShape{4, 4096},
                      ServeShape{8, 1}, ServeShape{8, 64},
                      ServeShape{8, 4096}),
    [](const ::testing::TestParamInfo<ServeShape> &info) {
        return "shards" + std::to_string(info.param.shards) +
               "_batch" + std::to_string(info.param.batchRecords);
    });

TEST(ServeEngineTest, AccuracyMatchesReferencePredictUpdateLoop)
{
    const auto traces = tenantTraces();
    ServeConfig config;
    config.shards = 2;
    ServeEngine engine(schemeConfig(), config);
    std::vector<std::size_t> handles;
    for (const auto &[name, trace] : traces)
        handles.push_back(engine.addTenant(name));
    ingestInterleaved(engine, traces, handles);

    for (std::size_t t = 0; t < traces.size(); ++t) {
        auto reference = predictors::makePredictor(schemeConfig());
        reference->reset();
        AccuracyCounter expected;
        for (const trace::BranchRecord &record :
             traces[t].second.records()) {
            if (record.cls != trace::BranchClass::Conditional)
                continue;
            expected.record(reference->predict(record) ==
                            record.taken);
            reference->update(record);
        }
        const TenantReport report =
            engine.tenantReport(handles[t]);
        EXPECT_EQ(report.accuracy.hits(), expected.hits());
        EXPECT_EQ(report.accuracy.total(), expected.total());
        EXPECT_EQ(report.records, traces[t].second.size());
    }
}

TEST(ServeEngineTest, SnapshotMigrateRestoreRoundTrip)
{
    const auto traces = tenantTraces();
    const auto &[name, trace] = traces[1]; // gcc
    const auto &records = trace.records();
    const std::size_t half = records.size() / 2;

    ServeConfig config;
    config.shards = 4;
    ServeEngine engine(schemeConfig(), config);
    const std::size_t tenant = engine.addTenant(name, 0);
    ASSERT_EQ(engine.tenantShard(tenant), 0u);

    // First half, then snapshot the warm state.
    engine.ingestSpan(tenant, {records.data(), half});
    engine.drain();
    std::string half_state;
    ASSERT_TRUE(engine.snapshotTenant(tenant, &half_state));

    // Migrate across shards — the engine moves the tenant *through*
    // the checkpoint format, so this also proves completeness.
    ASSERT_TRUE(engine.migrateTenant(tenant, 3));
    EXPECT_EQ(engine.tenantShard(tenant), 3u);

    // Second half on the new shard; final state must equal the
    // offline full-stream twin bit for bit.
    engine.ingestSpan(tenant,
                      {records.data() + half,
                       records.size() - half});
    engine.drain();
    std::string final_state;
    ASSERT_TRUE(engine.snapshotTenant(tenant, &final_state));
    EXPECT_EQ(final_state, offlineCheckpoint(trace));

    // Restore path: hand the mid-stream snapshot to a *fresh* engine
    // and replay the second half there — same final bytes again.
    ServeEngine fresh(schemeConfig(), config);
    const std::size_t adopted = fresh.addTenant(name, 2);
    ASSERT_TRUE(fresh.restoreTenant(adopted, half_state));
    fresh.ingestSpan(adopted, {records.data() + half,
                               records.size() - half});
    fresh.drain();
    std::string adopted_state;
    ASSERT_TRUE(fresh.snapshotTenant(adopted, &adopted_state));
    EXPECT_EQ(adopted_state, final_state);
}

TEST(ServeEngineTest, RestoreRejectsCorruptSnapshot)
{
    ServeConfig config;
    ServeEngine engine(schemeConfig(), config);
    const std::size_t tenant = engine.addTenant("victim");
    std::string snapshot;
    ASSERT_TRUE(engine.snapshotTenant(tenant, &snapshot));
    // Framing violations the checkpoint contract must reject: a
    // truncated stream (missing end sentinel) and a bad magic.
    EXPECT_FALSE(engine.restoreTenant(
        tenant, snapshot.substr(0, snapshot.size() - 1)));
    std::string corrupt = snapshot;
    corrupt[0] ^= 0x5a;
    EXPECT_FALSE(engine.restoreTenant(tenant, corrupt));
    // The tenant is untouched (checkpoint loads are atomic).
    std::string after;
    ASSERT_TRUE(engine.snapshotTenant(tenant, &after));
    EXPECT_EQ(after, snapshot);
}

TEST(ServeConfigTest, ValidateNamesTheFirstBadKnob)
{
    ServeConfig good;
    EXPECT_TRUE(good.validate().empty());

    ServeConfig zero_shards;
    zero_shards.shards = 0;
    EXPECT_FALSE(zero_shards.validate().empty());

    ServeConfig zero_batch;
    zero_batch.batchRecords = 0;
    EXPECT_FALSE(zero_batch.validate().empty());

    ServeConfig bad_ring;
    bad_ring.ringCapacity = 100;
    EXPECT_FALSE(bad_ring.validate().empty());
}

TEST(ServeEngineTest, HashPlacementIsStableAndInRange)
{
    ServeConfig config;
    config.shards = 4;
    ServeEngine a(schemeConfig(), config);
    ServeEngine b(schemeConfig(), config);
    for (const char *name : {"alpha", "beta", "gamma", "delta"}) {
        const unsigned shard_a = a.tenantShard(a.addTenant(name));
        const unsigned shard_b = b.tenantShard(b.addTenant(name));
        EXPECT_EQ(shard_a, shard_b) << name;
        EXPECT_LT(shard_a, 4u);
    }
}

} // namespace
} // namespace tlat::serve
