/**
 * @file
 * Unit tests for the HRT storage strategies: ideal, set-associative
 * (tags + LRU) and tagless hashed, including the paper's
 * no-reinitialization-on-reallocation rule.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/history_table.hh"
#include "util/random.hh"

namespace tlat::core
{
namespace
{

struct Payload
{
    int value = -1;
    bool operator==(const Payload &other) const = default;
};

TEST(TableKindNames, Rendering)
{
    EXPECT_STREQ(tableKindName(TableKind::Ideal), "IHRT");
    EXPECT_STREQ(tableKindName(TableKind::Associative), "AHRT");
    EXPECT_STREQ(tableKindName(TableKind::Hashed), "HHRT");
}

TEST(IdealTable, OneEntryPerAddressNeverEvicts)
{
    IdealTable<Payload> table(Payload{7});
    for (std::uint64_t pc = 0; pc < 1000 * 4; pc += 4) {
        Payload &entry = table.lookup(pc);
        EXPECT_EQ(entry.value, 7);
        entry.value = static_cast<int>(pc);
    }
    EXPECT_EQ(table.size(), 1000u);
    for (std::uint64_t pc = 0; pc < 1000 * 4; pc += 4)
        EXPECT_EQ(table.lookup(pc).value, static_cast<int>(pc));
    EXPECT_EQ(table.stats().misses, 1000u);
    EXPECT_EQ(table.stats().hits, 1000u);
}

TEST(IdealTable, Reset)
{
    IdealTable<Payload> table(Payload{1});
    table.lookup(4).value = 9;
    table.reset();
    EXPECT_EQ(table.lookup(4).value, 1);
    EXPECT_EQ(table.size(), 1u);
}

TEST(AssociativeTable, HitsWithinTheWorkingSet)
{
    // 8 entries, 4-way => 2 sets. Two branches mapping to different
    // sets always hit after first touch.
    AssociativeTable<Payload> table(8, 4, Payload{0});
    table.lookup(0 * 4).value = 1;
    table.lookup(1 * 4).value = 2;
    EXPECT_EQ(table.lookup(0 * 4).value, 1);
    EXPECT_EQ(table.lookup(1 * 4).value, 2);
    EXPECT_EQ(table.stats().misses, 2u);
    EXPECT_EQ(table.stats().hits, 2u);
}

TEST(AssociativeTable, LruEvictsLeastRecentlyUsed)
{
    // One set (4 entries, 4-way): pcs 0,8,16,24 (all even set bits —
    // with 1 set every line maps to set 0).
    AssociativeTable<Payload> table(4, 4, Payload{0});
    for (int i = 0; i < 4; ++i)
        table.lookup(static_cast<std::uint64_t>(i) * 4).value = i;
    // Touch 0,1,2 so 3 is LRU.
    table.lookup(0);
    table.lookup(4);
    table.lookup(8);
    // A fifth branch evicts pc 12 (value 3).
    table.lookup(16 * 4).value = 99;
    // pc 12 misses now; pcs 0,4,8 still hit with their payloads.
    EXPECT_EQ(table.lookup(0).value, 0);
    EXPECT_EQ(table.lookup(4).value, 1);
    EXPECT_EQ(table.lookup(8).value, 2);
    const std::uint64_t misses_before = table.stats().misses;
    table.lookup(12);
    EXPECT_EQ(table.stats().misses, misses_before + 1);
}

TEST(AssociativeTable, ReallocationKeepsPayload)
{
    // Paper Section 4.2: "when an entry is re-allocated to a
    // different static branch, the history register is not
    // re-initialized."
    AssociativeTable<Payload> table(4, 4, Payload{5});
    for (int i = 0; i < 4; ++i)
        table.lookup(static_cast<std::uint64_t>(i) * 4).value = 10 + i;
    // Evict the LRU entry (pc 0) with a new branch: the new branch
    // must inherit value 10, not the initial 5.
    EXPECT_EQ(table.lookup(100 * 4).value, 10);
}

TEST(AssociativeTable, TagsDistinguishAliasedAddresses)
{
    // 4 entries, 4-way = 1 set: all addresses alias the set but tags
    // keep them distinct.
    AssociativeTable<Payload> table(4, 4, Payload{0});
    table.lookup(0x1000).value = 1;
    table.lookup(0x2000).value = 2;
    EXPECT_EQ(table.lookup(0x1000).value, 1);
    EXPECT_EQ(table.lookup(0x2000).value, 2);
}

TEST(AssociativeTable, GeometryAccessors)
{
    AssociativeTable<Payload> table(512, 4, Payload{});
    EXPECT_EQ(table.numSets(), 128u);
    EXPECT_EQ(table.associativity(), 4u);
    EXPECT_EQ(table.kind(), TableKind::Associative);
}

TEST(AssociativeTable, Reset)
{
    AssociativeTable<Payload> table(8, 4, Payload{3});
    table.lookup(4).value = 9;
    table.reset();
    EXPECT_EQ(table.lookup(4).value, 3);
    EXPECT_EQ(table.stats().misses, 1u);
    EXPECT_EQ(table.stats().hits, 0u);
}

TEST(HashedTable, CollisionsShareEntries)
{
    // 4 entries, low-bit indexing on pc>>2: pcs 0 and 16 collide
    // (lines 0 and 4, index 0).
    HashedTable<Payload> table(4, Payload{0});
    table.lookup(0).value = 42;
    EXPECT_EQ(table.lookup(16).value, 42); // interference!
    table.lookup(16).value = 7;
    EXPECT_EQ(table.lookup(0).value, 7);
}

TEST(HashedTable, DistinctIndicesAreIndependent)
{
    HashedTable<Payload> table(4, Payload{0});
    table.lookup(0 * 4).value = 1;
    table.lookup(1 * 4).value = 2;
    table.lookup(2 * 4).value = 3;
    EXPECT_EQ(table.lookup(0 * 4).value, 1);
    EXPECT_EQ(table.lookup(1 * 4).value, 2);
    EXPECT_EQ(table.lookup(2 * 4).value, 3);
}

TEST(HashedTable, MixedHashSpreadsStridedAddresses)
{
    // Addresses striding by table-size*4 all collide with low-bit
    // indexing but spread under the mixed hash.
    HashedTable<Payload> low(16, Payload{0}, 2, HashKind::LowBits);
    HashedTable<Payload> mixed(16, Payload{0}, 2, HashKind::Mixed);
    int low_collisions = 0;
    int mixed_collisions = 0;
    for (int i = 0; i < 8; ++i) {
        const std::uint64_t pc = static_cast<std::uint64_t>(i) * 16 * 4;
        Payload &le = low.lookup(pc);
        if (le.value == 1)
            ++low_collisions;
        le.value = 1;
        Payload &me = mixed.lookup(pc);
        if (me.value == 1)
            ++mixed_collisions;
        me.value = 1;
    }
    EXPECT_EQ(low_collisions, 7);
    EXPECT_LT(mixed_collisions, 7);
}

TEST(HashedTable, FirstTouchCountsAsMiss)
{
    HashedTable<Payload> table(8, Payload{0});
    table.lookup(0);
    table.lookup(0);
    table.lookup(32); // collides with 0 (8 entries): counted a hit
    EXPECT_EQ(table.stats().misses, 1u);
    EXPECT_EQ(table.stats().hits, 2u);
}

TEST(TableStats, HitRatio)
{
    TableStats stats;
    EXPECT_EQ(stats.hitRatio(), 0.0);
    stats.hits = 3;
    stats.misses = 1;
    EXPECT_DOUBLE_EQ(stats.hitRatio(), 0.75);
}

TEST(HashedTableDeath, NonPowerOfTwoSizeIsRejected)
{
    EXPECT_DEATH(HashedTable<Payload>(100, Payload{}),
                 "power of two");
}

TEST(AssociativeTableDeath, BadGeometryIsRejected)
{
    EXPECT_DEATH(AssociativeTable<Payload>(10, 4, Payload{}),
                 "divisible");
    EXPECT_DEATH(AssociativeTable<Payload>(12, 4, Payload{}),
                 "power of two");
}

/**
 * Randomized-operation fuzz of the AHRT against a naive reference:
 * each set is modelled as an LRU-ordered list (front = next victim)
 * with at most `ways` residents. Checked on every operation:
 *  - tag match correctness: a hit returns the payload last written
 *    through that (set, tag), never an alias's;
 *  - LRU eviction order: a miss in a full set re-allocates exactly
 *    the least recently used way, and (paper rule) the new branch
 *    inherits the victim's payload un-reinitialized;
 *  - occupancy: a set never holds more residents than ways;
 *  - hit/miss accounting matches the reference exactly.
 */
void
fuzzAssociativeAgainstReference(std::size_t entries, unsigned ways,
                                std::uint64_t address_pool,
                                std::uint64_t seed, int iterations)
{
    const int kInitial = -1;
    core::AssociativeTable<Payload> table(entries, ways,
                                          Payload{kInitial});
    const std::size_t num_sets = entries / ways;

    struct RefEntry
    {
        std::uint64_t tag;
        int value;
    };
    std::vector<std::list<RefEntry>> sets(num_sets);
    std::uint64_t ref_hits = 0;
    std::uint64_t ref_misses = 0;

    tlat::Rng rng(seed);
    int next_value = 0;
    for (int i = 0; i < iterations; ++i) {
        const std::uint64_t pc = rng.nextBelow(address_pool) * 4;
        const std::uint64_t line = pc >> 2;
        const std::size_t set_index = line & (num_sets - 1);
        const std::uint64_t tag = line / num_sets;
        auto &set = sets[set_index];

        Payload &entry = table.lookup(pc);

        auto it = set.begin();
        while (it != set.end() && it->tag != tag)
            ++it;
        if (it != set.end()) {
            ++ref_hits;
            ASSERT_EQ(entry.value, it->value)
                << "hit payload mismatch at pc " << pc
                << " (iteration " << i << ")";
            set.splice(set.end(), set, it); // now most recent
        } else {
            ++ref_misses;
            int inherited = kInitial;
            if (set.size() == ways) {
                inherited = set.front().value;
                set.pop_front();
            }
            ASSERT_EQ(entry.value, inherited)
                << "re-allocated way did not inherit the LRU "
                   "victim's payload at pc "
                << pc << " (iteration " << i << ")";
            set.push_back(RefEntry{tag, inherited});
        }
        ASSERT_LE(set.size(), ways);

        if (rng.nextBool(0.5)) {
            entry.value = next_value;
            set.back().value = next_value;
            ++next_value;
        }
    }

    EXPECT_EQ(table.stats().hits, ref_hits);
    EXPECT_EQ(table.stats().misses, ref_misses);
    EXPECT_GT(ref_hits, 0u);
    EXPECT_GT(ref_misses, static_cast<std::uint64_t>(num_sets));
}

TEST(AssociativeTableFuzz, PaperGeometryEightSets)
{
    // 32 entries, 4-way = 8 sets; 96 hot lines => 12 tags per set
    // competing for 4 ways, so evictions are constant.
    fuzzAssociativeAgainstReference(32, 4, 96, 0xa11ce, 20000);
}

TEST(AssociativeTableFuzz, FullyAssociativeSingleSet)
{
    fuzzAssociativeAgainstReference(4, 4, 12, 0xbeef1, 10000);
}

TEST(AssociativeTableFuzz, DirectMappedDegenerateWays)
{
    fuzzAssociativeAgainstReference(16, 1, 48, 0xcafe2, 10000);
}

TEST(AssociativeTableFuzz, DeterministicUnderIdenticalSeeds)
{
    // The fuzz itself must be reproducible: same seed, same walk.
    for (int round = 0; round < 2; ++round)
        fuzzAssociativeAgainstReference(32, 4, 64, 0xd00d3, 5000);
}

// -----------------------------------------------------------------
// SoA index-lane probe equivalence: lookupDirect() now delegates to
// lookupAtIndex()/lookupWithSetTag(), and the predecode fast path
// calls those directly with precomputed operands. Driving two tables
// through the two entry points with the same pc walk must leave them
// byte-identical — entries, replacement state, statistics, and (for
// the HHRT) the touched_/lines_ aliasing attribution, all of which
// saveState() serializes.
// -----------------------------------------------------------------

std::string
tableStateBytes(const HistoryTable<Payload> &table)
{
    std::ostringstream os;
    table.saveState(os, [](std::ostream &out, const Payload &p) {
        out.write(reinterpret_cast<const char *>(&p.value),
                  sizeof(p.value));
    });
    return os.str();
}

void
fuzzHashedProbeEquivalence(HashKind hash, std::uint64_t seed)
{
    // Small table + strided addresses so collisions (and thus the
    // aliasing attribution the satellite fix must preserve) are hot.
    HashedTable<Payload> direct(64, Payload{-1}, 2, hash);
    HashedTable<Payload> indexed(64, Payload{-1}, 2, hash);

    tlat::Rng rng(seed);
    int next_value = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t pc = rng.nextBelow(4096) * 4;
        Payload &a = direct.lookupDirect(pc);
        const std::uint64_t line = pc >> indexed.addrShift();
        Payload &b =
            indexed.lookupAtIndex(indexed.indexOfLine(line), line);
        ASSERT_EQ(a.value, b.value) << "probe divergence at pc "
                                    << pc << " (iteration " << i
                                    << ")";
        if (rng.nextBool(0.5)) {
            a.value = next_value;
            b.value = next_value;
            ++next_value;
        }
    }

    EXPECT_EQ(direct.stats().hits, indexed.stats().hits);
    EXPECT_EQ(direct.stats().misses, indexed.stats().misses);
    EXPECT_EQ(direct.stats().aliasedLookups,
              indexed.stats().aliasedLookups);
    EXPECT_GT(direct.stats().aliasedLookups, 0u);
    EXPECT_EQ(tableStateBytes(direct), tableStateBytes(indexed));
}

TEST(HashedTable, LookupAtIndexMatchesDirectLowBits)
{
    fuzzHashedProbeEquivalence(HashKind::LowBits, 0x50a1);
}

TEST(HashedTable, LookupAtIndexMatchesDirectMixed)
{
    // The Mixed hash is the satellite target: lookupDirect re-runs
    // mix64 per probe, the lane path must not change any behaviour.
    fuzzHashedProbeEquivalence(HashKind::Mixed, 0x50a2);
}

TEST(AssociativeTable, LookupWithSetTagMatchesDirect)
{
    AssociativeTable<Payload> direct(32, 4, Payload{-1});
    AssociativeTable<Payload> indexed(32, 4, Payload{-1});

    tlat::Rng rng(0x5e7a);
    int next_value = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t pc = rng.nextBelow(256) * 4;
        Payload &a = direct.lookupDirect(pc);
        const std::uint64_t line = pc >> indexed.addrShift();
        Payload &b = indexed.lookupWithSetTag(
            line & (indexed.numSets() - 1), line / indexed.numSets());
        ASSERT_EQ(a.value, b.value);
        if (rng.nextBool(0.5)) {
            a.value = next_value;
            b.value = next_value;
            ++next_value;
        }
    }

    EXPECT_EQ(direct.stats().hits, indexed.stats().hits);
    EXPECT_EQ(direct.stats().misses, indexed.stats().misses);
    EXPECT_EQ(direct.stats().evictions, indexed.stats().evictions);
    EXPECT_GT(direct.stats().evictions, 0u);
    EXPECT_EQ(tableStateBytes(direct), tableStateBytes(indexed));
}

TEST(IdealTable, NoteRepeatHitMatchesRepeatedLookup)
{
    IdealTable<Payload> direct(Payload{3});
    IdealTable<Payload> noted(Payload{3});

    for (std::uint64_t pc = 0; pc < 64; pc += 4) {
        direct.lookupDirect(pc);
        noted.lookupDirect(pc);
    }
    // Repeat pass: the SoA prober replaces the repeated hash lookup
    // with a cached pointer + noteRepeatHit().
    for (std::uint64_t pc = 0; pc < 64; pc += 4) {
        direct.lookupDirect(pc);
        noted.noteRepeatHit();
    }
    EXPECT_EQ(direct.stats().hits, noted.stats().hits);
    EXPECT_EQ(direct.stats().misses, noted.stats().misses);
    EXPECT_EQ(tableStateBytes(direct), tableStateBytes(noted));
}

} // namespace
} // namespace tlat::core
