/**
 * @file
 * Unit tests for the HRT storage strategies: ideal, set-associative
 * (tags + LRU) and tagless hashed, including the paper's
 * no-reinitialization-on-reallocation rule.
 */

#include <gtest/gtest.h>

#include "core/history_table.hh"

namespace tlat::core
{
namespace
{

struct Payload
{
    int value = -1;
    bool operator==(const Payload &other) const = default;
};

TEST(TableKindNames, Rendering)
{
    EXPECT_STREQ(tableKindName(TableKind::Ideal), "IHRT");
    EXPECT_STREQ(tableKindName(TableKind::Associative), "AHRT");
    EXPECT_STREQ(tableKindName(TableKind::Hashed), "HHRT");
}

TEST(IdealTable, OneEntryPerAddressNeverEvicts)
{
    IdealTable<Payload> table(Payload{7});
    for (std::uint64_t pc = 0; pc < 1000 * 4; pc += 4) {
        Payload &entry = table.lookup(pc);
        EXPECT_EQ(entry.value, 7);
        entry.value = static_cast<int>(pc);
    }
    EXPECT_EQ(table.size(), 1000u);
    for (std::uint64_t pc = 0; pc < 1000 * 4; pc += 4)
        EXPECT_EQ(table.lookup(pc).value, static_cast<int>(pc));
    EXPECT_EQ(table.stats().misses, 1000u);
    EXPECT_EQ(table.stats().hits, 1000u);
}

TEST(IdealTable, Reset)
{
    IdealTable<Payload> table(Payload{1});
    table.lookup(4).value = 9;
    table.reset();
    EXPECT_EQ(table.lookup(4).value, 1);
    EXPECT_EQ(table.size(), 1u);
}

TEST(AssociativeTable, HitsWithinTheWorkingSet)
{
    // 8 entries, 4-way => 2 sets. Two branches mapping to different
    // sets always hit after first touch.
    AssociativeTable<Payload> table(8, 4, Payload{0});
    table.lookup(0 * 4).value = 1;
    table.lookup(1 * 4).value = 2;
    EXPECT_EQ(table.lookup(0 * 4).value, 1);
    EXPECT_EQ(table.lookup(1 * 4).value, 2);
    EXPECT_EQ(table.stats().misses, 2u);
    EXPECT_EQ(table.stats().hits, 2u);
}

TEST(AssociativeTable, LruEvictsLeastRecentlyUsed)
{
    // One set (4 entries, 4-way): pcs 0,8,16,24 (all even set bits —
    // with 1 set every line maps to set 0).
    AssociativeTable<Payload> table(4, 4, Payload{0});
    for (int i = 0; i < 4; ++i)
        table.lookup(static_cast<std::uint64_t>(i) * 4).value = i;
    // Touch 0,1,2 so 3 is LRU.
    table.lookup(0);
    table.lookup(4);
    table.lookup(8);
    // A fifth branch evicts pc 12 (value 3).
    table.lookup(16 * 4).value = 99;
    // pc 12 misses now; pcs 0,4,8 still hit with their payloads.
    EXPECT_EQ(table.lookup(0).value, 0);
    EXPECT_EQ(table.lookup(4).value, 1);
    EXPECT_EQ(table.lookup(8).value, 2);
    const std::uint64_t misses_before = table.stats().misses;
    table.lookup(12);
    EXPECT_EQ(table.stats().misses, misses_before + 1);
}

TEST(AssociativeTable, ReallocationKeepsPayload)
{
    // Paper Section 4.2: "when an entry is re-allocated to a
    // different static branch, the history register is not
    // re-initialized."
    AssociativeTable<Payload> table(4, 4, Payload{5});
    for (int i = 0; i < 4; ++i)
        table.lookup(static_cast<std::uint64_t>(i) * 4).value = 10 + i;
    // Evict the LRU entry (pc 0) with a new branch: the new branch
    // must inherit value 10, not the initial 5.
    EXPECT_EQ(table.lookup(100 * 4).value, 10);
}

TEST(AssociativeTable, TagsDistinguishAliasedAddresses)
{
    // 4 entries, 4-way = 1 set: all addresses alias the set but tags
    // keep them distinct.
    AssociativeTable<Payload> table(4, 4, Payload{0});
    table.lookup(0x1000).value = 1;
    table.lookup(0x2000).value = 2;
    EXPECT_EQ(table.lookup(0x1000).value, 1);
    EXPECT_EQ(table.lookup(0x2000).value, 2);
}

TEST(AssociativeTable, GeometryAccessors)
{
    AssociativeTable<Payload> table(512, 4, Payload{});
    EXPECT_EQ(table.numSets(), 128u);
    EXPECT_EQ(table.associativity(), 4u);
    EXPECT_EQ(table.kind(), TableKind::Associative);
}

TEST(AssociativeTable, Reset)
{
    AssociativeTable<Payload> table(8, 4, Payload{3});
    table.lookup(4).value = 9;
    table.reset();
    EXPECT_EQ(table.lookup(4).value, 3);
    EXPECT_EQ(table.stats().misses, 1u);
    EXPECT_EQ(table.stats().hits, 0u);
}

TEST(HashedTable, CollisionsShareEntries)
{
    // 4 entries, low-bit indexing on pc>>2: pcs 0 and 16 collide
    // (lines 0 and 4, index 0).
    HashedTable<Payload> table(4, Payload{0});
    table.lookup(0).value = 42;
    EXPECT_EQ(table.lookup(16).value, 42); // interference!
    table.lookup(16).value = 7;
    EXPECT_EQ(table.lookup(0).value, 7);
}

TEST(HashedTable, DistinctIndicesAreIndependent)
{
    HashedTable<Payload> table(4, Payload{0});
    table.lookup(0 * 4).value = 1;
    table.lookup(1 * 4).value = 2;
    table.lookup(2 * 4).value = 3;
    EXPECT_EQ(table.lookup(0 * 4).value, 1);
    EXPECT_EQ(table.lookup(1 * 4).value, 2);
    EXPECT_EQ(table.lookup(2 * 4).value, 3);
}

TEST(HashedTable, MixedHashSpreadsStridedAddresses)
{
    // Addresses striding by table-size*4 all collide with low-bit
    // indexing but spread under the mixed hash.
    HashedTable<Payload> low(16, Payload{0}, 2, HashKind::LowBits);
    HashedTable<Payload> mixed(16, Payload{0}, 2, HashKind::Mixed);
    int low_collisions = 0;
    int mixed_collisions = 0;
    for (int i = 0; i < 8; ++i) {
        const std::uint64_t pc = static_cast<std::uint64_t>(i) * 16 * 4;
        Payload &le = low.lookup(pc);
        if (le.value == 1)
            ++low_collisions;
        le.value = 1;
        Payload &me = mixed.lookup(pc);
        if (me.value == 1)
            ++mixed_collisions;
        me.value = 1;
    }
    EXPECT_EQ(low_collisions, 7);
    EXPECT_LT(mixed_collisions, 7);
}

TEST(HashedTable, FirstTouchCountsAsMiss)
{
    HashedTable<Payload> table(8, Payload{0});
    table.lookup(0);
    table.lookup(0);
    table.lookup(32); // collides with 0 (8 entries): counted a hit
    EXPECT_EQ(table.stats().misses, 1u);
    EXPECT_EQ(table.stats().hits, 2u);
}

TEST(TableStats, HitRatio)
{
    TableStats stats;
    EXPECT_EQ(stats.hitRatio(), 0.0);
    stats.hits = 3;
    stats.misses = 1;
    EXPECT_DOUBLE_EQ(stats.hitRatio(), 0.75);
}

TEST(HashedTableDeath, NonPowerOfTwoSizeIsRejected)
{
    EXPECT_DEATH(HashedTable<Payload>(100, Payload{}),
                 "power of two");
}

TEST(AssociativeTableDeath, BadGeometryIsRejected)
{
    EXPECT_DEATH(AssociativeTable<Payload>(10, 4, Payload{}),
                 "divisible");
    EXPECT_DEATH(AssociativeTable<Payload>(12, 4, Payload{}),
                 "power of two");
}

} // namespace
} // namespace tlat::core
