/**
 * @file
 * Tests for the run-metrics observability layer:
 *
 *  - the in_flight_ map drains under paired predict()/update() use
 *    (regression guard for the unbounded-growth bug: drained deques
 *    used to stay in the map forever);
 *  - squash counters match the speculative-update semantics;
 *  - collectMetrics() snapshots agree with the predictor's own
 *    counters, AHRT evictions/aliasing behave as documented and the
 *    pattern-table histogram always sums to the table size;
 *  - measureWithMetrics() is observationally identical to the plain
 *    measure() loop (the zero-cost-when-disabled contract has a
 *    correctness side: turning metrics on must not change results);
 *  - the warmup curve's window bookkeeping adds up;
 *  - metrics collected through runSweep are byte-identical (via the
 *    canonical JSON serialization) for every jobs count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/two_level_predictor.hh"
#include "harness/experiment.hh"
#include "harness/metrics_json.hh"
#include "harness/parallel_sweep.hh"
#include "harness/suite.hh"
#include "predictors/scheme_factory.hh"
#include "sim/simulator.hh"
#include "util/random.hh"
#include "workloads/workload.hh"

namespace tlat
{
namespace
{

trace::BranchRecord
conditional(std::uint64_t pc, bool taken)
{
    trace::BranchRecord record;
    record.pc = pc;
    record.target = pc + 16;
    record.cls = trace::BranchClass::Conditional;
    record.taken = taken;
    return record;
}

core::TwoLevelConfig
speculativeConfig()
{
    core::TwoLevelConfig config;
    config.hrtKind = core::TableKind::Ideal;
    config.historyBits = 6;
    config.speculativeHistoryUpdate = true;
    return config;
}

const trace::TraceBuffer &
gccTrace()
{
    static const trace::TraceBuffer trace = sim::collectTrace(
        workloads::makeWorkload("gcc")->buildTest(), 20000);
    return trace;
}

// ---- in_flight_ growth regression ---------------------------------

TEST(InFlightMap, DrainsUnderPairedUse)
{
    // The original bug: update() popped the deque but never erased
    // the map node, so in_flight_ grew by one node per distinct pc
    // and never shrank — after a long paired run the map held every
    // static branch ever seen. Paired use must leave it empty.
    core::TwoLevelPredictor predictor(speculativeConfig());
    Rng rng(0x1f11);
    for (int i = 0; i < 20000; ++i) {
        const auto record = conditional(
            4 * (1 + rng.nextBelow(500)), rng.nextBool(0.6));
        predictor.predict(record);
        predictor.update(record);
        ASSERT_EQ(predictor.inFlightBranches(), 0u)
            << "iteration " << i;
    }
}

TEST(InFlightMap, TracksOnlyUnresolvedBranches)
{
    core::TwoLevelPredictor predictor(speculativeConfig());
    // Three distinct branches in flight at once.
    predictor.predict(conditional(4, true));
    predictor.predict(conditional(8, true));
    predictor.predict(conditional(12, true));
    EXPECT_EQ(predictor.inFlightBranches(), 3u);
    // Resolving each one removes its node — not just empties it.
    predictor.update(conditional(4, true));
    EXPECT_EQ(predictor.inFlightBranches(), 2u);
    predictor.update(conditional(8, true));
    EXPECT_EQ(predictor.inFlightBranches(), 1u);
    predictor.update(conditional(12, true));
    EXPECT_EQ(predictor.inFlightBranches(), 0u);
}

TEST(InFlightMap, PairedFullRunEndsDrained)
{
    auto config = speculativeConfig();
    config.historyBits = 12;
    core::TwoLevelPredictor predictor(config);
    harness::measure(predictor, gccTrace());
    EXPECT_EQ(predictor.inFlightBranches(), 0u);

    core::RunMetrics metrics;
    predictor.collectMetrics(metrics);
    EXPECT_EQ(metrics.inFlightBranches, 0u);
}

// ---- squash accounting --------------------------------------------

TEST(SquashCounters, MispredictionSquashesYoungerSpeculation)
{
    core::TwoLevelConfig config = speculativeConfig();
    config.historyBits = 4;
    core::TwoLevelPredictor predictor(config);
    // Fresh predictor predicts taken (all-ones init). Two in-flight
    // predictions of a branch that resolves not-taken: the first
    // resolution mispredicts and squashes the younger speculation.
    const auto record = conditional(4, false);
    EXPECT_TRUE(predictor.predict(record));
    EXPECT_TRUE(predictor.predict(record));
    EXPECT_EQ(predictor.squashEvents(), 0u);
    predictor.update(record);
    EXPECT_EQ(predictor.squashEvents(), 1u);
    EXPECT_EQ(predictor.squashedSpeculations(), 1u);
    // The squashed speculation is gone: its pc no longer in flight.
    EXPECT_EQ(predictor.inFlightBranches(), 0u);
    predictor.update(record); // unpaired fallback, no new squash
    EXPECT_EQ(predictor.squashEvents(), 1u);

    core::RunMetrics metrics;
    predictor.collectMetrics(metrics);
    EXPECT_EQ(metrics.squashEvents, 1u);
    EXPECT_EQ(metrics.squashedSpeculations, 1u);

    predictor.reset();
    EXPECT_EQ(predictor.squashEvents(), 0u);
    EXPECT_EQ(predictor.squashedSpeculations(), 0u);
}

// ---- collectMetrics snapshots -------------------------------------

TEST(CollectMetrics, MatchesPredictorCounters)
{
    core::TwoLevelConfig config;
    config.hrtKind = core::TableKind::Associative;
    config.hrtEntries = 64; // small: force evictions on gcc
    config.historyBits = 8;
    core::TwoLevelPredictor predictor(config);
    harness::measure(predictor, gccTrace());

    core::RunMetrics metrics;
    predictor.collectMetrics(metrics);
    EXPECT_EQ(metrics.hrtHits, predictor.hrtStats().hits);
    EXPECT_EQ(metrics.hrtMisses, predictor.hrtStats().misses);
    EXPECT_GT(metrics.hrtHits, 0u);
    EXPECT_GT(metrics.hrtMisses, 0u);
    EXPECT_GT(metrics.hrtEvictions, 0u);
    EXPECT_GT(metrics.hrtAliasedLookups, 0u);
    EXPECT_DOUBLE_EQ(metrics.hrtHitRatio(),
                     predictor.hrtStats().hitRatio());
}

TEST(CollectMetrics, IdealTableNeverEvicts)
{
    core::TwoLevelConfig config;
    config.hrtKind = core::TableKind::Ideal;
    config.historyBits = 8;
    core::TwoLevelPredictor predictor(config);
    harness::measure(predictor, gccTrace());

    core::RunMetrics metrics;
    predictor.collectMetrics(metrics);
    EXPECT_EQ(metrics.hrtEvictions, 0u);
    EXPECT_EQ(metrics.hrtAliasedLookups, 0u);
    // An ideal table misses exactly once per static branch.
    EXPECT_EQ(metrics.hrtMisses, predictor.hrtStats().misses);
}

TEST(CollectMetrics, PatternHistogramSumsToTableSize)
{
    for (const unsigned bits : {4u, 8u}) {
        core::TwoLevelConfig config;
        config.hrtKind = core::TableKind::Ideal;
        config.historyBits = bits;
        core::TwoLevelPredictor predictor(config);
        harness::measure(predictor, gccTrace());

        core::RunMetrics metrics;
        predictor.collectMetrics(metrics);
        ASSERT_EQ(metrics.ptStateHistogram.size(),
                  predictor.patternTable().statesPerEntry());
        std::uint64_t sum = 0;
        for (const std::uint64_t count : metrics.ptStateHistogram)
            sum += count;
        EXPECT_EQ(sum, predictor.patternTable().size());
        EXPECT_EQ(sum, std::uint64_t{1} << bits);
    }
}

TEST(CollectMetrics, StatelessPredictorsReportZeroedMetrics)
{
    const auto predictor = predictors::makePredictor("BTFN");
    harness::measure(*predictor, gccTrace());
    core::RunMetrics metrics;
    predictor->collectMetrics(metrics);
    EXPECT_EQ(metrics.hrtHits + metrics.hrtMisses, 0u);
    EXPECT_TRUE(metrics.ptStateHistogram.empty());
}

// ---- measureWithMetrics vs measure --------------------------------

TEST(MeasureWithMetrics, IdenticalAccuracyToPlainMeasure)
{
    // Two cold predictors of the same configuration over the same
    // trace: the instrumented loop must count exactly what the plain
    // loop counts. This is the observable half of the "zero cost when
    // disabled" requirement — the metrics loop is a superset, never a
    // divergence.
    const std::string scheme = "AT(AHRT(512,12SR),PT(2^12,A2),)";
    const auto plain = predictors::makePredictor(scheme);
    const auto instrumented = predictors::makePredictor(scheme);

    const AccuracyCounter baseline =
        harness::measure(*plain, gccTrace());
    const harness::RunMetricsReport report =
        harness::measureWithMetrics(*instrumented, gccTrace());
    EXPECT_EQ(report.accuracy.total(), baseline.total());
    EXPECT_EQ(report.accuracy.hits(), baseline.hits());
    EXPECT_EQ(report.accuracy.misses(), baseline.misses());
}

TEST(MeasureWithMetrics, WarmupWindowBookkeepingAddsUp)
{
    core::TwoLevelConfig config;
    config.hrtKind = core::TableKind::Ideal;
    config.historyBits = 8;
    core::TwoLevelPredictor predictor(config);

    harness::MetricsOptions options;
    options.warmupWindow = 1000;
    const harness::RunMetricsReport report =
        harness::measureWithMetrics(predictor, gccTrace(), options);

    const std::uint64_t total = report.accuracy.total();
    ASSERT_GT(total, 0u);
    const std::uint64_t expected_points =
        (total + options.warmupWindow - 1) / options.warmupWindow;
    ASSERT_EQ(report.warmupCurve.size(), expected_points);

    // Point i's cumulative count is monotone and ends at the total.
    std::uint64_t previous = 0;
    for (const harness::WarmupPoint &point : report.warmupCurve) {
        EXPECT_GT(point.branches, previous);
        EXPECT_LE(point.branches - previous, options.warmupWindow);
        EXPECT_GE(point.windowAccuracyPercent, 0.0);
        EXPECT_LE(point.windowAccuracyPercent, 100.0);
        previous = point.branches;
    }
    EXPECT_EQ(previous, total);
    EXPECT_DOUBLE_EQ(
        report.warmupCurve.back().cumulativeAccuracyPercent,
        report.accuracy.accuracyPercent());
}

TEST(MeasureWithMetrics, TopOffendersAreWorstFirstAndBounded)
{
    core::TwoLevelConfig config;
    config.hrtKind = core::TableKind::Ideal;
    config.historyBits = 6;
    core::TwoLevelPredictor predictor(config);

    harness::MetricsOptions options;
    options.topOffenders = 5;
    const harness::RunMetricsReport report =
        harness::measureWithMetrics(predictor, gccTrace(), options);
    ASSERT_LE(report.topOffenders.size(), options.topOffenders);
    ASSERT_FALSE(report.topOffenders.empty());
    for (std::size_t i = 1; i < report.topOffenders.size(); ++i) {
        EXPECT_GE(report.topOffenders[i - 1].mispredictions,
                  report.topOffenders[i].mispredictions);
    }
}

// ---- sweep determinism --------------------------------------------

std::vector<std::string>
sweepMetricsJson(unsigned jobs)
{
    // Fresh suite per run: trace generation happens under the pool
    // width being tested, like the accuracy serial-equivalence test.
    harness::BenchmarkSuite suite(2000);
    std::vector<harness::RunMetricsReport> metrics;
    harness::runSweep(suite, "metrics",
                      {"AT(AHRT(512,12SR),PT(2^12,A2),)",
                       "LS(AHRT(512,LT),,)"},
                      {"AT", "LS"}, jobs, &metrics);
    std::vector<std::string> serialized;
    serialized.reserve(metrics.size());
    for (const harness::RunMetricsReport &report : metrics)
        serialized.push_back(harness::runMetricsJsonString(report));
    return serialized;
}

TEST(SweepMetrics, ByteIdenticalAcrossJobCounts)
{
    // The strongest form of the determinism requirement: the full
    // JSON serialization — every counter, histogram bucket, warmup
    // point and offender row — is byte-identical for jobs 1, 4, 8.
    const std::vector<std::string> serial = sweepMetricsJson(1);
    ASSERT_FALSE(serial.empty());
    for (const unsigned jobs : {4u, 8u}) {
        const std::vector<std::string> parallel =
            sweepMetricsJson(jobs);
        ASSERT_EQ(serial.size(), parallel.size()) << jobs << " jobs";
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(serial[i], parallel[i])
                << "cell " << i << " at " << jobs << " jobs";
    }
}

TEST(SweepMetrics, CellOrderIsSchemeMajor)
{
    harness::BenchmarkSuite suite(2000);
    std::vector<harness::RunMetricsReport> metrics;
    harness::runSweep(suite, "order",
                      {"AT(AHRT(512,12SR),PT(2^12,A2),)",
                       "LS(AHRT(512,LT),,)"},
                      {}, 4, &metrics);
    const std::vector<std::string> benchmarks = suite.benchmarks();
    ASSERT_EQ(metrics.size(), 2 * benchmarks.size());
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        EXPECT_EQ(metrics[i].benchmark,
                  benchmarks[i % benchmarks.size()])
            << "cell " << i;
    }
}

} // namespace
} // namespace tlat
