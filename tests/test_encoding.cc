/**
 * @file
 * Unit and property tests for micro88 binary encoding.
 */

#include <gtest/gtest.h>

#include "isa/encoding.hh"
#include "util/random.hh"

namespace tlat::isa
{
namespace
{

Instruction
makeInstruction(Opcode opcode, unsigned rd, unsigned rs1, unsigned rs2,
                std::int32_t imm)
{
    Instruction instruction;
    instruction.opcode = opcode;
    instruction.rd = static_cast<std::uint8_t>(rd);
    instruction.rs1 = static_cast<std::uint8_t>(rs1);
    instruction.rs2 = static_cast<std::uint8_t>(rs2);
    instruction.imm = imm;
    return instruction;
}

TEST(Encoding, RFormatRoundTrip)
{
    const Instruction in =
        makeInstruction(Opcode::Add, 3, 17, 31, 0);
    const auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, in);
}

TEST(Encoding, ImmediateSignRoundTrip)
{
    for (std::int32_t imm :
         {0, 1, -1, 100, -100, kImm16Min, kImm16Max}) {
        const Instruction in =
            makeInstruction(Opcode::Addi, 4, 5, 0, imm);
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->imm, imm) << imm;
    }
}

TEST(Encoding, JumpImm26RoundTrip)
{
    for (std::int32_t imm :
         {0, 1, -1, kImm26Min, kImm26Max, 12345, -54321}) {
        const Instruction in =
            makeInstruction(Opcode::Jmp, 0, 0, 0, imm);
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->imm, imm) << imm;
    }
}

TEST(Encoding, StoreFormatRoundTrip)
{
    const Instruction in = makeInstruction(Opcode::St, 0, 9, 12, -48);
    const auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->rs1, 9);
    EXPECT_EQ(out->rs2, 12);
    EXPECT_EQ(out->imm, -48);
}

TEST(Encoding, DecodeRejectsBadOpcodeField)
{
    const std::uint32_t bad =
        static_cast<std::uint32_t>(Opcode::NumOpcodes) << 26;
    EXPECT_FALSE(decode(bad).has_value());
    EXPECT_FALSE(decode(0xffffffffu).has_value());
}

TEST(Encoding, IsEncodableBoundaries)
{
    EXPECT_TRUE(isEncodable(
        makeInstruction(Opcode::Addi, 0, 0, 0, kImm16Max)));
    EXPECT_FALSE(isEncodable(
        makeInstruction(Opcode::Addi, 0, 0, 0, kImm16Max + 1)));
    EXPECT_FALSE(isEncodable(
        makeInstruction(Opcode::Addi, 0, 0, 0, kImm16Min - 1)));
    EXPECT_TRUE(isEncodable(
        makeInstruction(Opcode::Jmp, 0, 0, 0, kImm26Min)));
    EXPECT_FALSE(isEncodable(
        makeInstruction(Opcode::Jmp, 0, 0, 0, kImm26Min - 1)));
    EXPECT_FALSE(
        isEncodable(makeInstruction(Opcode::Add, 32, 0, 0, 0)));
}

/** Property: random valid instructions of every opcode round trip. */
class EncodingSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EncodingSweep, RandomRoundTrip)
{
    const auto opcode = static_cast<Opcode>(GetParam());
    Rng rng(GetParam() * 977 + 5);
    for (int i = 0; i < 200; ++i) {
        Instruction in;
        in.opcode = opcode;
        switch (opcodeFormat(opcode)) {
          case Format::R:
            in.rd = static_cast<std::uint8_t>(rng.nextBelow(32));
            in.rs1 = static_cast<std::uint8_t>(rng.nextBelow(32));
            in.rs2 = static_cast<std::uint8_t>(rng.nextBelow(32));
            break;
          case Format::R2:
            in.rd = static_cast<std::uint8_t>(rng.nextBelow(32));
            in.rs1 = static_cast<std::uint8_t>(rng.nextBelow(32));
            break;
          case Format::RI:
            in.rd = static_cast<std::uint8_t>(rng.nextBelow(32));
            in.rs1 = static_cast<std::uint8_t>(rng.nextBelow(32));
            in.imm = static_cast<std::int32_t>(
                rng.nextInRange(kImm16Min, kImm16Max));
            break;
          case Format::RdImm:
            in.rd = static_cast<std::uint8_t>(rng.nextBelow(32));
            in.imm = static_cast<std::int32_t>(
                rng.nextInRange(kImm16Min, kImm16Max));
            break;
          case Format::Store:
          case Format::Branch:
            in.rs1 = static_cast<std::uint8_t>(rng.nextBelow(32));
            in.rs2 = static_cast<std::uint8_t>(rng.nextBelow(32));
            in.imm = static_cast<std::int32_t>(
                rng.nextInRange(kImm16Min, kImm16Max));
            break;
          case Format::Jump:
            in.imm = static_cast<std::int32_t>(
                rng.nextInRange(kImm26Min, kImm26Max));
            break;
          case Format::JumpReg:
            in.rs1 = static_cast<std::uint8_t>(rng.nextBelow(32));
            break;
          case Format::None:
            break;
        }
        ASSERT_TRUE(isEncodable(in));
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, in)
            << opcodeName(opcode) << " iteration " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodingSweep,
    ::testing::Range(
        0u, static_cast<unsigned>(Opcode::NumOpcodes)),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return std::string(
            opcodeName(static_cast<Opcode>(info.param)));
    });

} // namespace
} // namespace tlat::isa
