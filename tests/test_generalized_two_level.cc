/**
 * @file
 * Unit tests for the generalized two-level predictor (the GAg..PAp
 * scope taxonomy), including the key equivalence: the PAg point of
 * the design space makes exactly the predictions of the paper's
 * TwoLevelPredictor with an ideal HRT.
 */

#include <gtest/gtest.h>

#include "core/generalized_two_level.hh"
#include "core/two_level_predictor.hh"
#include "util/random.hh"

namespace tlat::core
{
namespace
{

trace::BranchRecord
conditional(std::uint64_t pc, bool taken)
{
    trace::BranchRecord record;
    record.pc = pc;
    record.target = pc + 16;
    record.cls = trace::BranchClass::Conditional;
    record.taken = taken;
    return record;
}

GeneralizedConfig
makeConfig(HistoryScope history, PatternScope pattern,
           unsigned bits = 6)
{
    GeneralizedConfig config;
    config.historyScope = history;
    config.patternScope = pattern;
    config.historyBits = bits;
    return config;
}

TEST(Generalized, TaxonomyNames)
{
    EXPECT_EQ(GeneralizedTwoLevelPredictor(
                  makeConfig(HistoryScope::PerAddress,
                             PatternScope::Global, 12))
                  .name(),
              "PAg(12,A2)");
    EXPECT_EQ(GeneralizedTwoLevelPredictor(
                  makeConfig(HistoryScope::Global,
                             PatternScope::Global, 12))
                  .name(),
              "GAg(12,A2)");
    EXPECT_EQ(GeneralizedTwoLevelPredictor(
                  makeConfig(HistoryScope::PerAddress,
                             PatternScope::PerAddress, 8))
                  .name(),
              "PAp(8,A2)");
    EXPECT_EQ(GeneralizedTwoLevelPredictor(
                  makeConfig(HistoryScope::PerSet,
                             PatternScope::PerSet, 10))
                  .name(),
              "SAs(10,A2)");
    GeneralizedConfig gshare =
        makeConfig(HistoryScope::Global, PatternScope::Global, 12);
    gshare.xorAddress = true;
    EXPECT_EQ(GeneralizedTwoLevelPredictor(gshare).name(),
              "GAg(12,A2)+xor");
}

TEST(Generalized, PAgMatchesTwoLevelPredictorExactly)
{
    // Property: the paper's predictor with an ideal HRT and the PAg
    // point of the generalized design make identical predictions on
    // arbitrary traces.
    GeneralizedTwoLevelPredictor pag(makeConfig(
        HistoryScope::PerAddress, PatternScope::Global, 8));
    TwoLevelConfig reference_config;
    reference_config.hrtKind = TableKind::Ideal;
    reference_config.historyBits = 8;
    TwoLevelPredictor reference(reference_config);

    Rng rng(0x9a9);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t pc = 4 * (1 + rng.nextBelow(40));
        const bool taken = rng.nextBool(0.6);
        const auto record = conditional(pc, taken);
        ASSERT_EQ(pag.predict(record), reference.predict(record))
            << "iteration " << i;
        pag.update(record);
        reference.update(record);
    }
}

TEST(Generalized, GlobalHistoryIsShared)
{
    GeneralizedTwoLevelPredictor gag(
        makeConfig(HistoryScope::Global, PatternScope::Global, 4));
    // Branch A drives the global register to 0.
    for (int i = 0; i < 4; ++i)
        gag.update(conditional(4, false));
    EXPECT_EQ(gag.historyRegisterCount(), 1u);
    // Branch B sees the same (zeroed) register: its prediction is
    // driven by PT[0000], which A pushed toward not-taken.
    for (int i = 0; i < 3; ++i)
        gag.update(conditional(400, false));
    EXPECT_FALSE(gag.predict(conditional(4000, false)));
}

TEST(Generalized, PerAddressPatternTablesIsolateBranches)
{
    // In PAp, branch B cannot pollute branch A's pattern entries.
    GeneralizedTwoLevelPredictor pap(makeConfig(
        HistoryScope::PerAddress, PatternScope::PerAddress, 4));
    // Four fresh branches each push their own PT[1111] once: no
    // accumulation across branches.
    for (std::uint64_t pc = 4; pc <= 16; pc += 4)
        pap.update(conditional(pc, false));
    EXPECT_EQ(pap.patternTableCount(), 4u);
    EXPECT_TRUE(pap.predict(conditional(400, false)));

    // The global-table flavour accumulates (regression companion of
    // TwoLevel.HistoryIsPerBranchPatternTableIsShared).
    GeneralizedTwoLevelPredictor pag(makeConfig(
        HistoryScope::PerAddress, PatternScope::Global, 4));
    for (std::uint64_t pc = 4; pc <= 16; pc += 4)
        pag.update(conditional(pc, false));
    EXPECT_FALSE(pag.predict(conditional(400, false)));
}

TEST(Generalized, PerSetScopesPartitionByAddress)
{
    GeneralizedConfig config = makeConfig(HistoryScope::PerSet,
                                          PatternScope::Global, 4);
    config.setBits = 2; // 4 sets, selected by pc bits [3:2]
    GeneralizedTwoLevelPredictor sag(config);
    EXPECT_EQ(sag.historyRegisterCount(), 4u);
    // pcs 0 and 16 share set 0 (line bits 0 and 4 -> low 2 bits 0);
    // pc 4 (line 1) is in set 1. Six not-takens walk set 0's
    // register to 0000 and then drive PT[0000] to not-taken.
    for (int i = 0; i < 6; ++i)
        sag.update(conditional(0, false));
    EXPECT_FALSE(sag.predict(conditional(16, false)));
    // Set 1 still holds 1111, whose entry predicts taken.
    EXPECT_TRUE(sag.predict(conditional(4, false)));
}

TEST(Generalized, GshareXorSeparatesAliasedHistories)
{
    // Two branches with identical (all-taken) behaviour but
    // different addresses: with plain GAg they share PT entries;
    // with the xor refinement their patterns separate.
    GeneralizedConfig plain =
        makeConfig(HistoryScope::Global, PatternScope::Global, 8);
    GeneralizedConfig xored = plain;
    xored.xorAddress = true;
    GeneralizedTwoLevelPredictor gag(plain);
    GeneralizedTwoLevelPredictor gshare(xored);

    // Branch A taken, branch B not taken, alternating. The xor keeps
    // their pattern sets apart, so gshare converges to perfect
    // prediction at least as fast.
    int gag_misses = 0;
    int gshare_misses = 0;
    for (int i = 0; i < 400; ++i) {
        for (auto [pc, taken] :
             {std::pair<std::uint64_t, bool>{64, true},
              std::pair<std::uint64_t, bool>{4096, false}}) {
            const auto record = conditional(pc, taken);
            gag_misses += gag.predict(record) != taken;
            gshare_misses += gshare.predict(record) != taken;
            gag.update(record);
            gshare.update(record);
        }
    }
    EXPECT_LE(gshare_misses, gag_misses);
}

TEST(Generalized, LearnsPeriodicPatternInEveryScope)
{
    for (HistoryScope history :
         {HistoryScope::Global, HistoryScope::PerAddress,
          HistoryScope::PerSet}) {
        for (PatternScope pattern :
             {PatternScope::Global, PatternScope::PerSet,
              PatternScope::PerAddress}) {
            GeneralizedTwoLevelPredictor predictor(
                makeConfig(history, pattern, 6));
            // Single branch, T T N repeating: every scope collapses
            // to the same machine and must learn it perfectly.
            int correct = 0;
            int total = 0;
            for (int i = 0; i < 300; ++i) {
                const bool taken = i % 3 != 2;
                const auto record = conditional(64, taken);
                if (i >= 60) {
                    ++total;
                    correct += predictor.predict(record) == taken;
                }
                predictor.update(record);
            }
            EXPECT_EQ(correct, total)
                << predictor.name();
        }
    }
}

TEST(Generalized, ResetRestoresInitialState)
{
    GeneralizedTwoLevelPredictor predictor(makeConfig(
        HistoryScope::PerAddress, PatternScope::PerAddress, 4));
    for (std::uint64_t pc = 4; pc <= 64; pc += 4)
        predictor.update(conditional(pc, false));
    predictor.reset();
    EXPECT_EQ(predictor.patternTableCount(), 0u);
    EXPECT_EQ(predictor.historyRegisterCount(), 0u);
    EXPECT_TRUE(predictor.predict(conditional(4, false)));
}

TEST(GeneralizedDeath, XorRequiresGlobalHistory)
{
    GeneralizedConfig config = makeConfig(
        HistoryScope::PerAddress, PatternScope::Global, 8);
    config.xorAddress = true;
    EXPECT_DEATH(GeneralizedTwoLevelPredictor{config},
                 "global-history");
}

} // namespace
} // namespace tlat::core
