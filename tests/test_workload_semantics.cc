/**
 * @file
 * End-to-end semantic verification of the workloads: the micro88
 * programs must compute *correct results*, not just plausible branch
 * streams. These tests run a full program pass in the simulator and
 * check its data memory against host-computed references:
 *
 *  - li/hanoi moves exactly 2^depth - 1 disks;
 *  - li/queens finds exactly the 92 solutions of eight queens;
 *  - matrix300's product matches a bit-identical host matmul;
 *  - tomcatv's grid matches a bit-identical host stencil replay;
 *  - espresso's cube memory matches a host mirror of the whole pass
 *    (LCG generation, containment flags, compaction);
 *  - eqntott's index array is sorted under its own comparator.
 *
 * Together these differentially test the simulator's integer, FP and
 * memory semantics against the host CPU.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace tlat
{
namespace
{

/** Runs one full program pass (to Halt) and returns the simulator. */
std::unique_ptr<sim::Simulator>
runOnePass(const isa::Program &program)
{
    auto simulator = std::make_unique<sim::Simulator>(program);
    const sim::SimResult result = simulator->run(nullptr, {});
    EXPECT_EQ(result.stopReason, sim::StopReason::Halted);
    return simulator;
}

double
loadDouble(const sim::Memory &memory, std::uint64_t address)
{
    return memory.loadDouble(address);
}

TEST(WorkloadSemantics, HanoiMovesExactlyTwoToTheNMinusOne)
{
    const auto workload = workloads::makeWorkload("li");
    const isa::Program program = workload->build("hanoi");
    const auto simulator = runOnePass(program);
    const std::uint64_t counter_addr =
        program.dataSymbols.at("counter");
    // The driver runs hanoi(12): 2^12 - 1 moves.
    EXPECT_EQ(simulator->memory().load(counter_addr), 4095u);
}

TEST(WorkloadSemantics, EightQueensFindsNinetyTwoSolutions)
{
    const auto workload = workloads::makeWorkload("li");
    const isa::Program program = workload->build("queens");
    const auto simulator = runOnePass(program);
    const std::uint64_t counter_addr =
        program.dataSymbols.at("counter");
    // The classic result: 92 solutions on the 8x8 board.
    EXPECT_EQ(simulator->memory().load(counter_addr), 92u);
}

TEST(WorkloadSemantics, Matrix300ProductIsBitExact)
{
    const auto workload = workloads::makeWorkload("matrix300");
    const isa::Program program = workload->buildTest();
    const auto simulator = runOnePass(program);
    const sim::Memory &memory = simulator->memory();

    const auto n = static_cast<std::int64_t>(
        program.dataSymbols.at("n"));
    const std::uint64_t c_base = program.dataSymbols.at("matrix_c");

    const auto a_at = [&](std::int64_t idx) {
        // A[idx] = double(idx % 17) * 0.25, in the program's own
        // operation order (exact in binary FP).
        return static_cast<double>(idx % 17) * 0.25;
    };
    const auto b_at = [&](std::int64_t idx) {
        return static_cast<double>(idx % 23);
    };

    // Spot-check a spread of cells with the exact summation order
    // the program uses (k ascending, multiply then accumulate).
    const std::pair<std::int64_t, std::int64_t> matmul_cells[] = {
        {0, 0}, {1, 2}, {17, 40}, {n - 1, n - 1}, {n / 2, 3}};
    for (const auto &[i, j] : matmul_cells) {
        double sum = 0.0;
        for (std::int64_t k = 0; k < n; ++k)
            sum += a_at(i * n + k) * b_at(k * n + j);
        const double simulated = loadDouble(
            memory,
            c_base + static_cast<std::uint64_t>(i * n + j) * 8);
        EXPECT_EQ(simulated, sum) << "C[" << i << "][" << j << "]";
    }
}

TEST(WorkloadSemantics, TomcatvGridIsBitExact)
{
    const auto workload = workloads::makeWorkload("tomcatv");
    const isa::Program program = workload->buildTest();
    const auto simulator = runOnePass(program);
    const sim::Memory &memory = simulator->memory();

    const auto m = static_cast<std::int64_t>(
        program.dataSymbols.at("m"));
    const std::uint64_t x_base = program.dataSymbols.at("grid_x");

    // Host replay with the program's exact operation order.
    std::vector<double> x(static_cast<std::size_t>(m * m));
    std::vector<double> r(static_cast<std::size_t>(m * m));
    for (std::int64_t idx = 0; idx < m * m; ++idx) {
        const std::int64_t i = idx / m;
        const std::int64_t j = idx % m;
        x[static_cast<std::size_t>(idx)] =
            static_cast<double>((i * 7 + j * 3) % 31) * 0.125;
    }
    const double omega = 0.20;
    for (int iteration = 0; iteration < 4; ++iteration) {
        for (std::int64_t i = 1; i < m - 1; ++i) {
            for (std::int64_t j = 1; j < m - 1; ++j) {
                const std::size_t at =
                    static_cast<std::size_t>(i * m + j);
                const double c = x[at];
                double t = x[at + 1] + x[at - 1]; // E + W
                t = t + x[at - static_cast<std::size_t>(m)]; // + N
                t = t + x[at + static_cast<std::size_t>(m)]; // + S
                t = t * 0.25;
                r[at] = t - c;
            }
        }
        for (std::int64_t i = 1; i < m - 1; ++i) {
            for (std::int64_t j = 1; j < m - 1; ++j) {
                const std::size_t at =
                    static_cast<std::size_t>(i * m + j);
                x[at] = x[at] + r[at] * omega;
            }
        }
    }

    // Compare a sample of interior and border cells bitwise.
    const std::pair<std::int64_t, std::int64_t> grid_cells[] = {
        {0, 0}, {1, 1}, {5, 77}, {m - 2, m - 2}, {m / 2, m / 2}};
    for (const auto &[i, j] : grid_cells) {
        const std::size_t at = static_cast<std::size_t>(i * m + j);
        const double simulated =
            loadDouble(memory, x_base + at * 8);
        EXPECT_EQ(simulated, x[at])
            << "X[" << i << "][" << j << "]";
    }
}

TEST(WorkloadSemantics, EspressoPassMatchesHostMirror)
{
    const auto workload = workloads::makeWorkload("espresso");
    const isa::Program program = workload->build("bca");
    const auto simulator = runOnePass(program);
    const sim::Memory &memory = simulator->memory();

    const std::uint64_t params_addr =
        program.dataSymbols.at("params");
    const std::uint64_t cube_base = program.dataSymbols.at("cubes");
    const std::uint64_t flag_base = program.dataSymbols.at("flags");
    const std::uint64_t lcg_addr =
        program.dataSymbols.at("lcg_state");

    const std::uint64_t nc = memory.load(params_addr);
    const std::uint64_t mask = memory.load(params_addr + 8);
    ASSERT_GT(nc, 0u);

    // Host mirror of the whole pass, from the program's initial LCG
    // seed (the image value, since we ran exactly one pass).
    std::uint64_t lcg = program.initialData[lcg_addr / 8];
    const auto next = [&lcg]() {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcg;
    };

    constexpr std::size_t kWords = 4;
    std::vector<std::uint64_t> cubes(nc * kWords);
    for (auto &word : cubes)
        word = next() & mask;

    std::vector<std::uint64_t> flags(nc, 0);
    for (std::uint64_t i = 0; i + 1 < nc; ++i) {
        for (std::uint64_t j = i + 1; j < nc; ++j) {
            std::uint64_t inter_union = 0;
            bool contained = true;
            for (std::size_t w = 0; w < kWords; ++w) {
                const std::uint64_t a = cubes[i * kWords + w];
                const std::uint64_t b = cubes[j * kWords + w];
                inter_union |= a & b;
                contained = contained && (a & b) == a;
            }
            if (inter_union == 0)
                continue; // empty pairs skip the containment test
            if (contained)
                flags[i] = 1;
        }
    }

    // Compaction: copy uncovered cubes to the front, in place.
    std::uint64_t write = 0;
    for (std::uint64_t i = 0; i < nc; ++i) {
        if (flags[i] != 0)
            continue;
        for (std::size_t w = 0; w < kWords; ++w)
            cubes[write * kWords + w] = cubes[i * kWords + w];
        ++write;
    }

    // Compare every cube word and every flag against the simulation.
    for (std::uint64_t word = 0; word < nc * kWords; ++word) {
        EXPECT_EQ(memory.load(cube_base + word * 8), cubes[word])
            << "cube word " << word;
    }
    for (std::uint64_t i = 0; i < nc; ++i) {
        EXPECT_EQ(memory.load(flag_base + i * 8), flags[i])
            << "flag " << i;
    }
    EXPECT_EQ(memory.load(lcg_addr), lcg);
}

TEST(WorkloadSemantics, EqntottIndexArrayIsSorted)
{
    const auto workload = workloads::makeWorkload("eqntott");
    const isa::Program program = workload->buildTest();
    const auto simulator = runOnePass(program);
    const sim::Memory &memory = simulator->memory();

    const std::uint64_t term_base = program.dataSymbols.at("terms");
    const std::uint64_t idx_base = program.dataSymbols.at("indices");
    const std::uint64_t count = program.dataSymbols.at("num_terms");
    const std::uint64_t words = program.dataSymbols.at("term_words");

    // cmppt order: word-by-word unsigned comparison.
    const auto cmppt = [&](std::uint64_t a, std::uint64_t b) {
        for (std::uint64_t w = 0; w < words; ++w) {
            const std::uint64_t wa =
                memory.load(term_base + (a * words + w) * 8);
            const std::uint64_t wb =
                memory.load(term_base + (b * words + w) * 8);
            if (wa != wb)
                return wa > wb ? 1 : -1;
        }
        return 0;
    };

    std::vector<std::uint64_t> indices(count);
    std::vector<bool> seen(count, false);
    for (std::uint64_t i = 0; i < count; ++i) {
        indices[i] = memory.load(idx_base + i * 8);
        ASSERT_LT(indices[i], count);
        EXPECT_FALSE(seen[indices[i]])
            << "index " << indices[i] << " duplicated";
        seen[indices[i]] = true;
    }
    for (std::uint64_t i = 1; i < count; ++i) {
        EXPECT_LE(cmppt(indices[i - 1], indices[i]), 0)
            << "out of order at position " << i;
    }
}

} // namespace
} // namespace tlat
