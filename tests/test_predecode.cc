/**
 * @file
 * Unit tests for the trace predecode layer (trace/predecode.hh): the
 * first-appearance branch-id dictionary, the packed outcome
 * bitvector, the per-geometry index lanes (which must match the
 * history tables' own index derivations bit-for-bit), and the
 * build-once sharing/invalidation rules of the TraceBuffer cache.
 */

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/history_table.hh"
#include "trace/trace_buffer.hh"
#include "util/random.hh"

namespace tlat::trace
{
namespace
{

BranchRecord
conditional(std::uint64_t pc, bool taken)
{
    BranchRecord r;
    r.pc = pc;
    r.target = pc + 16;
    r.cls = BranchClass::Conditional;
    r.taken = taken;
    return r;
}

TraceBuffer
randomTrace(std::uint64_t seed, std::size_t records,
            std::uint64_t sites)
{
    TraceBuffer buffer("predecode");
    Rng rng(seed);
    for (std::size_t i = 0; i < records; ++i) {
        buffer.append(conditional(4 * (1 + rng.nextBelow(sites)),
                                  rng.nextBool(0.6)));
    }
    return buffer;
}

TEST(Predecode, DictionaryAssignsIdsInFirstAppearanceOrder)
{
    TraceBuffer buffer("dict");
    buffer.append(conditional(40, true));
    buffer.append(conditional(8, false));
    buffer.append(conditional(40, true));
    buffer.append(conditional(24, false));
    buffer.append(conditional(8, true));

    const auto soa = buffer.predecoded();
    ASSERT_EQ(soa->size(), 5u);
    ASSERT_EQ(soa->uniquePcCount(), 3u);
    const std::vector<std::uint64_t> pcs(soa->uniquePcs().begin(),
                                         soa->uniquePcs().end());
    EXPECT_EQ(pcs, (std::vector<std::uint64_t>{40, 8, 24}));
    const std::vector<BranchId> ids(soa->branchIds().begin(),
                                    soa->branchIds().end());
    EXPECT_EQ(ids, (std::vector<BranchId>{0, 1, 0, 2, 1}));
}

TEST(Predecode, OutcomeBitvectorMatchesRecords)
{
    const TraceBuffer buffer = randomTrace(0xb17, 1000, 37);
    const auto soa = buffer.predecoded();
    const auto view = buffer.conditionalView();
    ASSERT_EQ(soa->size(), view.size());
    for (std::size_t i = 0; i < view.size(); ++i)
        ASSERT_EQ(soa->taken(i), view[i].taken) << "bit " << i;
    // 1000 bits need 16 words (pinned: one u64 per 64 outcomes).
    EXPECT_EQ(soa->outcomeWords().size(), 16u);
}

TEST(Predecode, AhrtLaneMatchesAssociativeTableDerivation)
{
    const TraceBuffer buffer = randomTrace(0xa427, 2000, 301);
    const auto soa = buffer.predecoded();

    // Same derivation AssociativeTable::lookupDirect performs.
    constexpr unsigned kShift = 2;
    constexpr std::size_t kSets = 128 / 4;
    const AhrtLane &lane = soa->ahrtLane(kShift, kSets);
    ASSERT_EQ(lane.sets.size(), soa->uniquePcCount());
    ASSERT_EQ(lane.tags.size(), soa->uniquePcCount());
    for (std::size_t id = 0; id < soa->uniquePcCount(); ++id) {
        const std::uint64_t line = soa->uniquePcs()[id] >> kShift;
        EXPECT_EQ(lane.sets[id], line & (kSets - 1));
        EXPECT_EQ(lane.tags[id], line / kSets);
    }
}

TEST(Predecode, HashedLaneMatchesHashedTableDerivation)
{
    const TraceBuffer buffer = randomTrace(0x4a5e, 2000, 301);
    const auto soa = buffer.predecoded();

    for (const core::HashKind hash :
         {core::HashKind::LowBits, core::HashKind::Mixed}) {
        const core::HashedTable<int> table(
            256, 0, 2, hash);
        const HashedLane &lane = soa->hashedLane(
            table.addrShift(), table.size(),
            table.hashKind() == core::HashKind::Mixed);
        ASSERT_EQ(lane.indices.size(), soa->uniquePcCount());
        for (std::size_t id = 0; id < soa->uniquePcCount(); ++id) {
            const std::uint64_t line =
                soa->uniquePcs()[id] >> table.addrShift();
            EXPECT_EQ(lane.lines[id], line);
            EXPECT_EQ(lane.indices[id], table.indexOfLine(line));
        }
    }
}

TEST(Predecode, LanesAreCachedPerGeometry)
{
    const TraceBuffer buffer = randomTrace(0xcac4e, 500, 31);
    const auto soa = buffer.predecoded();
    const AhrtLane &a = soa->ahrtLane(2, 32);
    const AhrtLane &b = soa->ahrtLane(2, 32);
    EXPECT_EQ(&a, &b);
    const AhrtLane &c = soa->ahrtLane(2, 64);
    EXPECT_NE(&a, &c);
    const HashedLane &h1 = soa->hashedLane(2, 64, false);
    const HashedLane &h2 = soa->hashedLane(2, 64, false);
    const HashedLane &h3 = soa->hashedLane(2, 64, true);
    EXPECT_EQ(&h1, &h2);
    EXPECT_NE(&h1, &h3);
}

TEST(Predecode, BufferCacheIsSharedAndInvalidatedByGrowth)
{
    TraceBuffer buffer = randomTrace(0x9a3, 100, 11);
    const auto first = buffer.predecoded();
    const auto second = buffer.predecoded();
    EXPECT_EQ(first.get(), second.get()); // build once, re-share

    buffer.append(conditional(4, true));
    const auto rebuilt = buffer.predecoded();
    EXPECT_NE(first.get(), rebuilt.get());
    EXPECT_EQ(rebuilt->size(), first->size() + 1);

    // The old artifact stays valid for holders of the shared_ptr.
    EXPECT_EQ(first->size(), 100u);
}

TEST(Predecode, CopiedBufferGetsItsOwnCacheSlot)
{
    TraceBuffer original = randomTrace(0xc09, 50, 7);
    const auto original_soa = original.predecoded();

    TraceBuffer copy = original;
    const auto copy_soa = copy.predecoded();
    EXPECT_NE(original_soa.get(), copy_soa.get());
    EXPECT_EQ(copy_soa->size(), original_soa->size());

    // Diverging the copy must never poison the original's artifact.
    copy.append(conditional(4, false));
    copy.predecoded();
    EXPECT_EQ(original.predecoded().get(), original_soa.get());
}

TEST(Predecode, ViewPairsLanesWithFallbackRecords)
{
    const TraceBuffer buffer = randomTrace(0x71e3, 300, 23);
    const PredecodedView view = buffer.predecodedView();
    EXPECT_EQ(view.records().data(),
              buffer.conditionalView().data());
    EXPECT_EQ(view.records().size(),
              buffer.conditionalView().size());
    EXPECT_EQ(&view.soa(), buffer.predecoded().get());
}

TEST(Predecode, EmptyAndNonConditionalTraces)
{
    TraceBuffer empty("empty");
    EXPECT_EQ(empty.predecoded()->size(), 0u);
    EXPECT_EQ(empty.predecoded()->uniquePcCount(), 0u);

    TraceBuffer unconditional("uncond");
    BranchRecord r;
    r.pc = 4;
    r.cls = BranchClass::Return;
    r.taken = true;
    unconditional.append(r);
    const auto soa = unconditional.predecoded();
    EXPECT_EQ(soa->size(), 0u);
    EXPECT_TRUE(soa->outcomeWords().empty());
}

TEST(Predecode, ConcurrentLaneBuildsShareOneLane)
{
    const TraceBuffer buffer = randomTrace(0x7412ead, 5000, 997);
    const auto soa = buffer.predecoded();

    std::vector<const AhrtLane *> seen(8, nullptr);
    std::vector<std::thread> threads;
    threads.reserve(seen.size());
    for (std::size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&soa, &seen, t] {
            seen[t] = &soa->ahrtLane(2, 128);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (const AhrtLane *lane : seen)
        EXPECT_EQ(lane, seen[0]);
}

} // namespace
} // namespace tlat::trace
