/**
 * @file
 * Tests for predictor checkpointing: a predictor restored from a
 * mid-run checkpoint must continue with bit-identical predictions,
 * across every HRT flavour and option combination; mismatched
 * configurations and corrupt streams are rejected.
 */

#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/generalized_two_level.hh"
#include "core/two_level_predictor.hh"
#include "predictors/lee_smith_btb.hh"
#include "predictors/static_predictors.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace tlat::core
{
namespace
{

struct CheckpointCase
{
    const char *label;
    TableKind kind;
    bool cached;
    bool speculative;
};

class CheckpointSweep
    : public ::testing::TestWithParam<CheckpointCase>
{
};

TEST_P(CheckpointSweep, RestoredPredictorContinuesIdentically)
{
    const CheckpointCase &params = GetParam();
    TwoLevelConfig config;
    config.hrtKind = params.kind;
    config.hrtEntries = 128;
    config.historyBits = 10;
    config.cachedPredictionBit = params.cached;
    config.speculativeHistoryUpdate = params.speculative;

    const trace::TraceBuffer trace = sim::collectTrace(
        workloads::makeWorkload("gcc")->buildTest(), 6000);
    const auto &records = trace.records();

    // Run the original predictor over the first half.
    TwoLevelPredictor original(config);
    std::size_t half = records.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
        if (records[i].cls != trace::BranchClass::Conditional)
            continue;
        original.predict(records[i]);
        original.update(records[i]);
    }

    // Checkpoint and restore into a fresh predictor.
    std::stringstream checkpoint;
    ASSERT_TRUE(original.saveCheckpoint(checkpoint));
    TwoLevelPredictor restored(config);
    ASSERT_TRUE(restored.loadCheckpoint(checkpoint));

    // Both must agree on every remaining branch.
    for (std::size_t i = half; i < records.size(); ++i) {
        if (records[i].cls != trace::BranchClass::Conditional)
            continue;
        ASSERT_EQ(original.predict(records[i]),
                  restored.predict(records[i]))
            << params.label << " diverged at record " << i;
        original.update(records[i]);
        restored.update(records[i]);
    }
    EXPECT_EQ(original.hrtStats().hits, restored.hrtStats().hits);
    EXPECT_EQ(original.hrtStats().misses,
              restored.hrtStats().misses);
}

INSTANTIATE_TEST_SUITE_P(
    Flavours, CheckpointSweep,
    ::testing::Values(
        CheckpointCase{"ideal", TableKind::Ideal, false, false},
        CheckpointCase{"assoc", TableKind::Associative, false, false},
        CheckpointCase{"hashed", TableKind::Hashed, false, false},
        CheckpointCase{"assoc_cached", TableKind::Associative, true,
                       false},
        CheckpointCase{"assoc_spec", TableKind::Associative, false,
                       true}),
    [](const ::testing::TestParamInfo<CheckpointCase> &info) {
        return std::string(info.param.label);
    });

TEST(Checkpoint, RejectsMismatchedConfiguration)
{
    TwoLevelConfig config;
    config.hrtKind = TableKind::Associative;
    config.hrtEntries = 128;
    config.historyBits = 10;
    TwoLevelPredictor source(config);
    std::stringstream checkpoint;
    ASSERT_TRUE(source.saveCheckpoint(checkpoint));

    config.historyBits = 12; // different geometry
    TwoLevelPredictor target(config);
    EXPECT_FALSE(target.loadCheckpoint(checkpoint));
}

TEST(Checkpoint, RejectsGarbageAndTruncation)
{
    TwoLevelConfig config;
    config.hrtKind = TableKind::Hashed;
    config.hrtEntries = 64;
    config.historyBits = 8;
    TwoLevelPredictor predictor(config);

    std::stringstream garbage("definitely not a checkpoint");
    EXPECT_FALSE(predictor.loadCheckpoint(garbage));

    std::stringstream checkpoint;
    ASSERT_TRUE(predictor.saveCheckpoint(checkpoint));
    const std::string full = checkpoint.str();
    std::stringstream truncated(
        full.substr(0, full.size() / 2));
    EXPECT_FALSE(predictor.loadCheckpoint(truncated));
}

/** Drives predict()/update() pairs over records [from, to). */
void
drive(BranchPredictor &predictor,
      std::span<const trace::BranchRecord> records, std::size_t from,
      std::size_t to)
{
    for (std::size_t i = from; i < to; ++i) {
        if (records[i].cls != trace::BranchClass::Conditional)
            continue;
        predictor.predict(records[i]);
        predictor.update(records[i]);
    }
}

/** Serialized checkpoint of @p predictor (must succeed). */
std::string
checkpointBytes(const BranchPredictor &predictor)
{
    std::ostringstream os;
    EXPECT_TRUE(predictor.saveCheckpoint(os));
    return os.str();
}

TEST(Checkpoint, LoadIsAtomicUnderTruncationAtEveryByteOffset)
{
    // Regression for the non-atomic loader: the old code committed
    // the pattern table before parsing the HRT, so a stream that
    // died between the two left the predictor half-restored. A
    // failed load at ANY truncation point must now leave the target
    // byte-for-byte untouched.
    TwoLevelConfig config;
    config.hrtKind = TableKind::Associative;
    config.hrtEntries = 64;
    config.historyBits = 8;

    const trace::TraceBuffer trace = sim::collectTrace(
        workloads::makeWorkload("gcc")->buildTest(), 4000);
    const auto &records = trace.records();
    const std::size_t half = records.size() / 2;

    TwoLevelPredictor source(config);
    drive(source, records, 0, half);
    const std::string bytes = checkpointBytes(source);

    TwoLevelPredictor victim(config);
    drive(victim, records, half, records.size());
    const std::string victim_bytes = checkpointBytes(victim);
    ASSERT_NE(victim_bytes, bytes);

    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::istringstream truncated(bytes.substr(0, len));
        EXPECT_FALSE(victim.loadCheckpoint(truncated))
            << "len=" << len;
        EXPECT_EQ(checkpointBytes(victim), victim_bytes)
            << "state mutated by truncated load, len=" << len;
    }
    // The untruncated stream still loads, proving the loop above
    // exercised real prefixes of a valid checkpoint.
    std::istringstream full(bytes);
    EXPECT_TRUE(victim.loadCheckpoint(full));
    EXPECT_EQ(checkpointBytes(victim), bytes);
}

TEST(Checkpoint, LeeSmithLoadIsAtomicUnderTruncation)
{
    predictors::LeeSmithConfig config;
    config.tableKind = TableKind::Associative;
    config.entries = 64;

    const trace::TraceBuffer trace = sim::collectTrace(
        workloads::makeWorkload("gcc")->buildTest(), 4000);
    const auto &records = trace.records();
    const std::size_t half = records.size() / 2;

    predictors::LeeSmithPredictor source(config);
    drive(source, records, 0, half);
    const std::string bytes = checkpointBytes(source);

    predictors::LeeSmithPredictor victim(config);
    drive(victim, records, half, records.size());
    const std::string victim_bytes = checkpointBytes(victim);
    ASSERT_NE(victim_bytes, bytes);

    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::istringstream truncated(bytes.substr(0, len));
        EXPECT_FALSE(victim.loadCheckpoint(truncated))
            << "len=" << len;
        EXPECT_EQ(checkpointBytes(victim), victim_bytes)
            << "state mutated by truncated load, len=" << len;
    }
}

TEST(Checkpoint, GeneralizedLoadIsAtomicUnderTruncation)
{
    // PAp: per-address histories AND per-address pattern tables, the
    // richest stream (two pc-sorted map projections).
    GeneralizedConfig config;
    config.historyScope = HistoryScope::PerAddress;
    config.patternScope = PatternScope::PerAddress;
    config.historyBits = 6;

    const trace::TraceBuffer trace = sim::collectTrace(
        workloads::makeWorkload("gcc")->buildTest(), 4000);
    const auto &records = trace.records();
    const std::size_t half = records.size() / 2;

    GeneralizedTwoLevelPredictor source(config);
    drive(source, records, 0, half);
    const std::string bytes = checkpointBytes(source);

    GeneralizedTwoLevelPredictor victim(config);
    drive(victim, records, half, records.size());
    const std::string victim_bytes = checkpointBytes(victim);
    ASSERT_NE(victim_bytes, bytes);

    // Every-offset scans repeat per class elsewhere; stride the scan
    // to keep the richest stream's test affordable while still
    // crossing every section boundary.
    for (std::size_t len = 0; len < bytes.size();
         len += (len % 7) + 1) {
        std::istringstream truncated(bytes.substr(0, len));
        EXPECT_FALSE(victim.loadCheckpoint(truncated))
            << "len=" << len;
        EXPECT_EQ(checkpointBytes(victim), victim_bytes)
            << "state mutated by truncated load, len=" << len;
    }
    std::istringstream full(bytes);
    EXPECT_TRUE(victim.loadCheckpoint(full));
    EXPECT_EQ(checkpointBytes(victim), bytes);
}

TEST(Checkpoint, GeneralizedRestoredPredictorContinuesIdentically)
{
    for (const PatternScope pattern :
         {PatternScope::Global, PatternScope::PerSet,
          PatternScope::PerAddress}) {
        GeneralizedConfig config;
        config.historyScope = HistoryScope::PerAddress;
        config.patternScope = pattern;
        config.historyBits = 6;

        const trace::TraceBuffer trace = sim::collectTrace(
            workloads::makeWorkload("gcc")->buildTest(), 4000);
        const auto &records = trace.records();
        const std::size_t half = records.size() / 2;

        GeneralizedTwoLevelPredictor original(config);
        drive(original, records, 0, half);
        std::stringstream checkpoint;
        ASSERT_TRUE(original.saveCheckpoint(checkpoint));
        GeneralizedTwoLevelPredictor restored(config);
        ASSERT_TRUE(restored.loadCheckpoint(checkpoint));
        EXPECT_EQ(restored.historyRegisterCount(),
                  original.historyRegisterCount());
        EXPECT_EQ(restored.patternTableCount(),
                  original.patternTableCount());

        for (std::size_t i = half; i < records.size(); ++i) {
            if (records[i].cls != trace::BranchClass::Conditional)
                continue;
            ASSERT_EQ(original.predict(records[i]),
                      restored.predict(records[i]))
                << "diverged at record " << i;
            original.update(records[i]);
            restored.update(records[i]);
        }
        EXPECT_EQ(checkpointBytes(restored),
                  checkpointBytes(original));
    }
}

TEST(Checkpoint, RejectsTrailingJunkInEveryClass)
{
    // The end sentinel plus the fully-consumed check: a checkpoint
    // followed by extra bytes must be rejected by every predictor
    // class, with the target left untouched.
    const auto expectJunkRejected = [](BranchPredictor &predictor) {
        const std::string bytes = checkpointBytes(predictor);
        std::istringstream junk(bytes + 'x');
        EXPECT_FALSE(predictor.loadCheckpoint(junk))
            << predictor.name();
        EXPECT_EQ(checkpointBytes(predictor), bytes)
            << predictor.name();
        std::istringstream clean(bytes);
        EXPECT_TRUE(predictor.loadCheckpoint(clean))
            << predictor.name();
    };

    TwoLevelConfig at_config;
    at_config.hrtKind = TableKind::Hashed;
    at_config.hrtEntries = 64;
    at_config.historyBits = 6;
    TwoLevelPredictor two_level(at_config);
    expectJunkRejected(two_level);

    predictors::LeeSmithPredictor lee_smith(
        predictors::LeeSmithConfig{});
    expectJunkRejected(lee_smith);

    GeneralizedConfig gen_config;
    gen_config.historyBits = 6;
    GeneralizedTwoLevelPredictor generalized(gen_config);
    expectJunkRejected(generalized);

    predictors::BtfnPredictor btfn;
    expectJunkRejected(btfn);
}

TEST(Checkpoint, StatelessClassesRejectEachOthersCheckpoints)
{
    // The framed payload is empty, so only the name-salted
    // fingerprint tells an AlwaysTaken checkpoint from a BTFN one —
    // it must.
    predictors::AlwaysTakenPredictor taken;
    predictors::BtfnPredictor btfn;
    const std::string taken_bytes = checkpointBytes(taken);
    std::istringstream cross(taken_bytes);
    EXPECT_FALSE(btfn.loadCheckpoint(cross));
    std::istringstream self(taken_bytes);
    EXPECT_TRUE(taken.loadCheckpoint(self));
}

TEST(Checkpoint, RefusesWithInFlightSpeculation)
{
    TwoLevelConfig config;
    config.hrtKind = TableKind::Ideal;
    config.historyBits = 8;
    config.speculativeHistoryUpdate = true;
    TwoLevelPredictor predictor(config);

    trace::BranchRecord record;
    record.pc = 4;
    record.cls = trace::BranchClass::Conditional;
    record.taken = true;
    predictor.predict(record); // speculation now in flight

    std::stringstream checkpoint;
    EXPECT_FALSE(predictor.saveCheckpoint(checkpoint));
    predictor.update(record); // resolve it
    EXPECT_TRUE(predictor.saveCheckpoint(checkpoint));
}

} // namespace
} // namespace tlat::core
