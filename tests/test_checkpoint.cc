/**
 * @file
 * Tests for predictor checkpointing: a predictor restored from a
 * mid-run checkpoint must continue with bit-identical predictions,
 * across every HRT flavour and option combination; mismatched
 * configurations and corrupt streams are rejected.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/two_level_predictor.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace tlat::core
{
namespace
{

struct CheckpointCase
{
    const char *label;
    TableKind kind;
    bool cached;
    bool speculative;
};

class CheckpointSweep
    : public ::testing::TestWithParam<CheckpointCase>
{
};

TEST_P(CheckpointSweep, RestoredPredictorContinuesIdentically)
{
    const CheckpointCase &params = GetParam();
    TwoLevelConfig config;
    config.hrtKind = params.kind;
    config.hrtEntries = 128;
    config.historyBits = 10;
    config.cachedPredictionBit = params.cached;
    config.speculativeHistoryUpdate = params.speculative;

    const trace::TraceBuffer trace = sim::collectTrace(
        workloads::makeWorkload("gcc")->buildTest(), 6000);
    const auto &records = trace.records();

    // Run the original predictor over the first half.
    TwoLevelPredictor original(config);
    std::size_t half = records.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
        if (records[i].cls != trace::BranchClass::Conditional)
            continue;
        original.predict(records[i]);
        original.update(records[i]);
    }

    // Checkpoint and restore into a fresh predictor.
    std::stringstream checkpoint;
    ASSERT_TRUE(original.saveCheckpoint(checkpoint));
    TwoLevelPredictor restored(config);
    ASSERT_TRUE(restored.loadCheckpoint(checkpoint));

    // Both must agree on every remaining branch.
    for (std::size_t i = half; i < records.size(); ++i) {
        if (records[i].cls != trace::BranchClass::Conditional)
            continue;
        ASSERT_EQ(original.predict(records[i]),
                  restored.predict(records[i]))
            << params.label << " diverged at record " << i;
        original.update(records[i]);
        restored.update(records[i]);
    }
    EXPECT_EQ(original.hrtStats().hits, restored.hrtStats().hits);
    EXPECT_EQ(original.hrtStats().misses,
              restored.hrtStats().misses);
}

INSTANTIATE_TEST_SUITE_P(
    Flavours, CheckpointSweep,
    ::testing::Values(
        CheckpointCase{"ideal", TableKind::Ideal, false, false},
        CheckpointCase{"assoc", TableKind::Associative, false, false},
        CheckpointCase{"hashed", TableKind::Hashed, false, false},
        CheckpointCase{"assoc_cached", TableKind::Associative, true,
                       false},
        CheckpointCase{"assoc_spec", TableKind::Associative, false,
                       true}),
    [](const ::testing::TestParamInfo<CheckpointCase> &info) {
        return std::string(info.param.label);
    });

TEST(Checkpoint, RejectsMismatchedConfiguration)
{
    TwoLevelConfig config;
    config.hrtKind = TableKind::Associative;
    config.hrtEntries = 128;
    config.historyBits = 10;
    TwoLevelPredictor source(config);
    std::stringstream checkpoint;
    ASSERT_TRUE(source.saveCheckpoint(checkpoint));

    config.historyBits = 12; // different geometry
    TwoLevelPredictor target(config);
    EXPECT_FALSE(target.loadCheckpoint(checkpoint));
}

TEST(Checkpoint, RejectsGarbageAndTruncation)
{
    TwoLevelConfig config;
    config.hrtKind = TableKind::Hashed;
    config.hrtEntries = 64;
    config.historyBits = 8;
    TwoLevelPredictor predictor(config);

    std::stringstream garbage("definitely not a checkpoint");
    EXPECT_FALSE(predictor.loadCheckpoint(garbage));

    std::stringstream checkpoint;
    ASSERT_TRUE(predictor.saveCheckpoint(checkpoint));
    const std::string full = checkpoint.str();
    std::stringstream truncated(
        full.substr(0, full.size() / 2));
    EXPECT_FALSE(predictor.loadCheckpoint(truncated));
}

TEST(Checkpoint, RefusesWithInFlightSpeculation)
{
    TwoLevelConfig config;
    config.hrtKind = TableKind::Ideal;
    config.historyBits = 8;
    config.speculativeHistoryUpdate = true;
    TwoLevelPredictor predictor(config);

    trace::BranchRecord record;
    record.pc = 4;
    record.cls = trace::BranchClass::Conditional;
    record.taken = true;
    predictor.predict(record); // speculation now in flight

    std::stringstream checkpoint;
    EXPECT_FALSE(predictor.saveCheckpoint(checkpoint));
    predictor.update(record); // resolve it
    EXPECT_TRUE(predictor.saveCheckpoint(checkpoint));
}

} // namespace
} // namespace tlat::core
