/**
 * @file
 * Direct unit tests for the util/simd.hh fused predict/update
 * kernels, below the predictor layer: the dispatch machinery
 * (detection, env kill-switch contract, scoped overrides) and
 * bit-exact equivalence of every compiled-in vector kernel against
 * the scalar reference on adversarial index lanes — all-conflicting
 * blocks, conflict-free blocks, ragged tails, every automaton LUT,
 * and the capture-byte feed the combining predictor replays.
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/automaton.hh"
#include "util/random.hh"
#include "util/simd.hh"

namespace tlat
{
namespace
{

namespace simd = util::simd;

/** LUTs for one Figure 2 automaton, as the predictor builds them. */
simd::FusedLuts
lutsFor(core::AutomatonKind kind)
{
    const core::AutomatonSpec &spec = core::automatonSpec(kind);
    simd::FusedLuts luts{};
    for (unsigned s = 0; s < spec.numStates; ++s) {
        luts.predict[s] = spec.predictTaken[s] ? 1 : 0;
        luts.nextTaken[s] = spec.nextState[s][1];
        luts.nextNotTaken[s] = spec.nextState[s][0];
    }
    return luts;
}

/** LUTs for an n-bit saturating counter. */
simd::FusedLuts
counterLuts(unsigned bits)
{
    const core::CounterOps ops(bits);
    simd::FusedLuts luts{};
    for (unsigned s = 0; s < (1u << bits); ++s) {
        const auto state = static_cast<std::uint8_t>(s);
        luts.predict[s] = ops.predict(state) ? 1 : 0;
        luts.nextTaken[s] = ops.next(state, true);
        luts.nextNotTaken[s] = ops.next(state, false);
    }
    return luts;
}

/** One kernel input: index lane, packed outcomes, table geometry. */
struct KernelCase
{
    std::vector<std::uint32_t> lane; // n + kLaneSlack entries
    std::vector<std::uint64_t> outcomeWords;
    std::size_t n = 0;
    std::size_t tableSize = 0;
    std::uint8_t initialState = 3;
};

KernelCase
makeRandomCase(std::uint64_t seed, std::size_t n,
               std::size_t table_size, unsigned num_states,
               double conflict_bias)
{
    Rng rng(seed);
    KernelCase c;
    c.n = n;
    c.tableSize = table_size;
    c.initialState = static_cast<std::uint8_t>(
        rng.nextBelow(num_states));
    c.lane.assign(n + simd::kLaneSlack, 0);
    for (std::size_t i = 0; i < n; ++i) {
        // conflict_bias compresses the index range so intra-block
        // duplicates become likely (1.0 = all indexes identical).
        const auto range = static_cast<std::uint64_t>(
            1 + static_cast<double>(table_size - 1) *
                    (1.0 - conflict_bias));
        c.lane[i] = static_cast<std::uint32_t>(rng.nextBelow(range));
    }
    c.outcomeWords.assign((n + 63) / 64 + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.nextBool(0.5))
            c.outcomeWords[i / 64] |= std::uint64_t{1} << (i % 64);
    }
    return c;
}

/** Runs one kernel level over a fresh table; returns (hits, table,
 *  capture). */
struct KernelResult
{
    std::uint64_t hits = 0;
    std::vector<std::uint8_t> table;
    std::vector<std::uint8_t> capture;
};

KernelResult
runAtLevel(simd::Level level, const KernelCase &c,
           const simd::FusedLuts &luts, bool with_capture)
{
    KernelResult r;
    r.table.assign(c.tableSize + simd::kGatherSlackBytes,
                   c.initialState);
    r.capture.assign(with_capture ? c.n : 0, 0xEE);
    const simd::ScopedLevelOverride pin(level);
    r.hits = simd::fusedPass(
        c.lane.data(), c.outcomeWords.data(), c.n, r.table.data(),
        luts, with_capture ? r.capture.data() : nullptr);
    return r;
}

std::vector<simd::Level>
compiledVectorLevels()
{
    std::vector<simd::Level> levels;
    if (simd::levelSupported(simd::Level::Avx2))
        levels.push_back(simd::Level::Avx2);
    if (simd::levelSupported(simd::Level::Neon))
        levels.push_back(simd::Level::Neon);
    return levels;
}

void
expectLevelsMatchScalar(const KernelCase &c,
                        const simd::FusedLuts &luts)
{
    for (const bool with_capture : {false, true}) {
        const KernelResult ref = runAtLevel(simd::Level::Scalar, c,
                                            luts, with_capture);
        for (const simd::Level level : compiledVectorLevels()) {
            const KernelResult got =
                runAtLevel(level, c, luts, with_capture);
            EXPECT_EQ(got.hits, ref.hits)
                << simd::levelName(level) << " n=" << c.n
                << " capture=" << with_capture;
            EXPECT_EQ(got.table, ref.table)
                << simd::levelName(level) << " n=" << c.n;
            EXPECT_EQ(got.capture, ref.capture)
                << simd::levelName(level) << " n=" << c.n;
        }
    }
}

TEST(SimdKernel, ActiveLevelIsSupported)
{
    EXPECT_TRUE(simd::levelSupported(simd::activeLevel()));
    EXPECT_TRUE(simd::levelSupported(simd::Level::Scalar));
}

TEST(SimdKernel, ScopedOverridePinsAndRestores)
{
    const simd::Level before = simd::activeLevel();
    {
        const simd::ScopedLevelOverride pin(simd::Level::Scalar);
        EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
        {
            // Nested override wins, then unwinds to the outer one.
            const simd::ScopedLevelOverride inner(
                simd::Level::Avx2);
            if (simd::levelSupported(simd::Level::Avx2))
                EXPECT_EQ(simd::activeLevel(), simd::Level::Avx2);
            else
                EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
        }
        EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
    }
    EXPECT_EQ(simd::activeLevel(), before);
}

TEST(SimdKernel, UnsupportedOverrideDegradesToScalar)
{
#if !defined(__ARM_NEON) && !defined(__ARM_NEON__)
    const simd::ScopedLevelOverride pin(simd::Level::Neon);
    EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
#else
    GTEST_SKIP() << "NEON is compiled in on this host";
#endif
}

TEST(SimdKernel, LevelNamesAreStable)
{
    EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx2), "avx2");
    EXPECT_STREQ(simd::levelName(simd::Level::Neon), "neon");
}

TEST(SimdKernel, AllAutomataMatchScalarOnRandomLanes)
{
    for (const core::AutomatonKind kind :
         {core::AutomatonKind::LastTime, core::AutomatonKind::A1,
          core::AutomatonKind::A2, core::AutomatonKind::A3,
          core::AutomatonKind::A4}) {
        const simd::FusedLuts luts = lutsFor(kind);
        const unsigned states = core::automatonSpec(kind).numStates;
        for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
            expectLevelsMatchScalar(
                makeRandomCase(seed, 4096, 256, states, 0.0), luts);
        }
    }
}

TEST(SimdKernel, CounterWidthsMatchScalarOnRandomLanes)
{
    for (const unsigned bits : {1u, 2u, 3u, 4u}) {
        const simd::FusedLuts luts = counterLuts(bits);
        for (const std::uint64_t seed : {44ull, 55ull}) {
            expectLevelsMatchScalar(
                makeRandomCase(seed, 4096, 1024, 1u << bits, 0.0),
                luts);
        }
    }
}

TEST(SimdKernel, ConflictHeavyLanesMatchScalar)
{
    // Sweep the duplicate-index density from conflict-free to every
    // record hitting the same PT entry (the hazard case the vector
    // blocks must detect and run in order).
    const simd::FusedLuts luts = lutsFor(core::AutomatonKind::A2);
    for (const double bias : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        expectLevelsMatchScalar(
            makeRandomCase(0xC0Fu + static_cast<std::uint64_t>(
                                        bias * 1000),
                           4096, 64, 4, bias),
            luts);
    }
}

TEST(SimdKernel, RaggedTailsMatchScalar)
{
    // Lengths straddling the 8-record block width, including the
    // all-tail n < 8 cases and n = 0.
    const simd::FusedLuts luts = lutsFor(core::AutomatonKind::A3);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7},
          std::size_t{8}, std::size_t{9}, std::size_t{63},
          std::size_t{64}, std::size_t{65}, std::size_t{4095}}) {
        expectLevelsMatchScalar(makeRandomCase(n + 101, n, 128, 4, 0.2),
                                luts);
    }
}

TEST(SimdKernel, HighestIndexIsSafeUnderGatherSlack)
{
    // Every record hits the last table entry: the scale-1 gather at
    // that index reads kGatherSlackBytes - 1 bytes past it, which the
    // padded allocation must absorb (ASan would trip otherwise).
    const simd::FusedLuts luts = lutsFor(core::AutomatonKind::A2);
    KernelCase c;
    c.n = 256;
    c.tableSize = 64;
    c.initialState = 3;
    c.lane.assign(c.n + simd::kLaneSlack,
                  static_cast<std::uint32_t>(c.tableSize - 1));
    c.outcomeWords.assign(c.n / 64 + 1, 0x5555555555555555ULL);
    expectLevelsMatchScalar(c, luts);
}

TEST(SimdKernel, ScalarKernelGoldenSingleEntry)
{
    // Closed-form check of the scalar reference itself: one A2 entry
    // fed T,T,N,N,... from state 0 (strongly not-taken). The first
    // taken is a miss (predict NT), state walks 0->1->2; hits follow
    // the A2 walk deterministically.
    const simd::FusedLuts luts = lutsFor(core::AutomatonKind::A2);
    std::vector<std::uint32_t> lane(4 + simd::kLaneSlack, 0);
    std::vector<std::uint64_t> words{0b0011}; // T,T,N,N
    std::vector<std::uint8_t> table(1 + simd::kGatherSlackBytes, 0);
    std::vector<std::uint8_t> capture(4, 0xEE);
    const simd::ScopedLevelOverride pin(simd::Level::Scalar);
    const std::uint64_t hits =
        simd::fusedPass(lane.data(), words.data(), 4, table.data(),
                        luts, capture.data());
    // state 0 (predict N) vs T -> miss, state 1
    // state 1 (predict N) vs T -> miss, state 2
    // state 2 (predict T) vs N -> miss, state 1
    // state 1 (predict N) vs N -> hit,  state 0
    EXPECT_EQ(hits, 1u);
    EXPECT_EQ(table[0], 0);
    EXPECT_EQ(capture, (std::vector<std::uint8_t>{0, 0, 0, 1}));
}

} // namespace
} // namespace tlat
